//! Execution-time breakdowns.

/// Which bucket of the paper's execution-time breakdown a stall belongs
/// to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StallClass {
    /// An L1 miss that hit in the L2.
    L2Hit,
    /// A miss serviced by local memory (includes hits in the node's own
    /// remote access cache, which lives in local memory).
    Local,
    /// A clean miss serviced by a remote home node (2-hop).
    RemoteClean,
    /// A miss serviced by dirty data in a remote cache (3-hop).
    RemoteDirty,
}

/// Accumulated execution time, split into the paper's components.
///
/// All values are in processor cycles (equal to nanoseconds at the paper's
/// 1 GHz clock). Passive data: fields are public and the struct is plain
/// old data.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExecBreakdown {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles the processor was busy issuing instructions ("CPU").
    pub busy_cycles: f64,
    /// Cycles stalled on L2 hits.
    pub l2_hit_cycles: f64,
    /// Cycles stalled on local-memory misses.
    pub local_cycles: f64,
    /// Cycles stalled on 2-hop remote misses.
    pub remote_clean_cycles: f64,
    /// Cycles stalled on 3-hop dirty remote misses.
    pub remote_dirty_cycles: f64,
}

impl ExecBreakdown {
    /// Adds `cycles` to the bucket selected by `class`.
    #[inline]
    pub fn charge(&mut self, class: StallClass, cycles: f64) {
        match class {
            StallClass::L2Hit => self.l2_hit_cycles += cycles,
            StallClass::Local => self.local_cycles += cycles,
            StallClass::RemoteClean => self.remote_clean_cycles += cycles,
            StallClass::RemoteDirty => self.remote_dirty_cycles += cycles,
        }
    }

    /// Total remote stall time (2-hop + 3-hop), the paper's "RemStall".
    pub fn remote_cycles(&self) -> f64 {
        self.remote_clean_cycles + self.remote_dirty_cycles
    }

    /// Total execution time in cycles.
    pub fn total_cycles(&self) -> f64 {
        self.busy_cycles
            + self.l2_hit_cycles
            + self.local_cycles
            + self.remote_clean_cycles
            + self.remote_dirty_cycles
    }

    /// Cycles per instruction; zero when no instructions retired.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.total_cycles() / self.instructions as f64
        }
    }

    /// Fraction of time the processor was busy (the paper quotes ~17%
    /// utilization for Base multiprocessor OLTP). Zero when empty.
    pub fn cpu_utilization(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0.0 {
            0.0
        } else {
            self.busy_cycles / total
        }
    }

    /// The component-wise change from `earlier` to `self`. Epoch
    /// sampling diffs cumulative snapshots with this to get
    /// per-interval breakdowns; `earlier` must be an earlier snapshot
    /// of the same accumulator (every component monotonically
    /// non-decreasing).
    pub fn delta(&self, earlier: &ExecBreakdown) -> ExecBreakdown {
        ExecBreakdown {
            instructions: self.instructions - earlier.instructions,
            busy_cycles: self.busy_cycles - earlier.busy_cycles,
            l2_hit_cycles: self.l2_hit_cycles - earlier.l2_hit_cycles,
            local_cycles: self.local_cycles - earlier.local_cycles,
            remote_clean_cycles: self.remote_clean_cycles - earlier.remote_clean_cycles,
            remote_dirty_cycles: self.remote_dirty_cycles - earlier.remote_dirty_cycles,
        }
    }

    /// Accumulates another breakdown into this one (aggregation across
    /// nodes).
    pub fn merge(&mut self, other: &ExecBreakdown) {
        self.instructions += other.instructions;
        self.busy_cycles += other.busy_cycles;
        self.l2_hit_cycles += other.l2_hit_cycles;
        self.local_cycles += other.local_cycles;
        self.remote_clean_cycles += other.remote_clean_cycles;
        self.remote_dirty_cycles += other.remote_dirty_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_routes_to_the_right_bucket() {
        let mut bd = ExecBreakdown::default();
        bd.charge(StallClass::L2Hit, 25.0);
        bd.charge(StallClass::Local, 100.0);
        bd.charge(StallClass::RemoteClean, 175.0);
        bd.charge(StallClass::RemoteDirty, 275.0);
        assert_eq!(bd.l2_hit_cycles, 25.0);
        assert_eq!(bd.local_cycles, 100.0);
        assert_eq!(bd.remote_cycles(), 450.0);
        assert_eq!(bd.total_cycles(), 575.0);
    }

    #[test]
    fn cpi_and_utilization() {
        let bd = ExecBreakdown {
            instructions: 100,
            busy_cycles: 100.0,
            l2_hit_cycles: 300.0,
            ..Default::default()
        };
        assert_eq!(bd.cpi(), 4.0);
        assert_eq!(bd.cpu_utilization(), 0.25);
    }

    #[test]
    fn empty_breakdown_is_all_zero() {
        let bd = ExecBreakdown::default();
        assert_eq!(bd.cpi(), 0.0);
        assert_eq!(bd.cpu_utilization(), 0.0);
        assert_eq!(bd.total_cycles(), 0.0);
    }

    #[test]
    fn delta_inverts_merge() {
        let earlier = ExecBreakdown {
            instructions: 10,
            busy_cycles: 10.0,
            local_cycles: 5.0,
            ..Default::default()
        };
        let mut later = earlier;
        later.merge(&ExecBreakdown {
            instructions: 20,
            busy_cycles: 20.0,
            remote_dirty_cycles: 7.0,
            ..Default::default()
        });
        let d = later.delta(&earlier);
        assert_eq!(d.instructions, 20);
        assert_eq!(d.busy_cycles, 20.0);
        assert_eq!(d.local_cycles, 0.0);
        assert_eq!(d.remote_dirty_cycles, 7.0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = ExecBreakdown {
            instructions: 10,
            busy_cycles: 10.0,
            local_cycles: 5.0,
            ..Default::default()
        };
        let b = ExecBreakdown {
            instructions: 20,
            busy_cycles: 20.0,
            remote_dirty_cycles: 7.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 30);
        assert_eq!(a.busy_cycles, 30.0);
        assert_eq!(a.local_cycles, 5.0);
        assert_eq!(a.remote_dirty_cycles, 7.0);
    }
}
