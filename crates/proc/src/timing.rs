//! In-order and out-of-order timing models.

use csim_config::{OooParams, ProcessorModel};

use crate::breakdown::{ExecBreakdown, StallClass};

/// A processor timing model: converts retired instructions and memory
/// events into execution time.
pub trait TimingModel {
    /// Accounts for one retired instruction (busy time).
    fn retire_instruction(&mut self, bd: &mut ExecBreakdown);

    /// Accounts for `n` consecutively retired instructions.
    ///
    /// Contract: must be bit-identical to calling [`retire_instruction`]
    /// `n` times. The default does exactly that; a model may override it
    /// with a closed form only when it can prove the rounding matches
    /// (see [`InOrderTiming`]'s override).
    ///
    /// [`retire_instruction`]: TimingModel::retire_instruction
    fn retire_instructions(&mut self, n: u64, bd: &mut ExecBreakdown) {
        for _ in 0..n {
            self.retire_instruction(bd);
        }
    }

    /// Accounts for a memory stall of `latency_cycles`, exposing however
    /// much of it the core cannot hide into the matching bucket of `bd`.
    fn stall(&mut self, class: StallClass, latency_cycles: u64, bd: &mut ExecBreakdown);
}

/// The paper's single-issue pipelined in-order core: CPI 1 plus fully
/// exposed memory latencies (stall-on-miss under sequential consistency).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InOrderTiming;

impl InOrderTiming {
    /// Creates the model.
    pub fn new() -> Self {
        InOrderTiming
    }
}

impl TimingModel for InOrderTiming {
    #[inline]
    fn retire_instruction(&mut self, bd: &mut ExecBreakdown) {
        bd.instructions += 1;
        // analyze: exact — unit increment of an integer-valued accumulator
        bd.busy_cycles += 1.0;
    }

    /// Closed form of `n` unit retires. Exact, not approximate: under
    /// this model `busy_cycles` only ever grows by `1.0` (stalls charge
    /// the other buckets), so it is an integer-valued f64, and integer
    /// additions below 2^53 never round — `n` separate `+= 1.0` steps
    /// and one `+= n as f64` produce the same bits. This is what lets
    /// the simulator's batched dispatch retire a run of back-to-back
    /// instruction fetches in one call without breaking bit-identity
    /// with the per-reference oracle path.
    #[inline]
    fn retire_instructions(&mut self, n: u64, bd: &mut ExecBreakdown) {
        bd.instructions += n;
        // analyze: exact — the closed form the doc comment argues: an integer count cast to f64
        bd.busy_cycles += n as f64;
    }

    #[inline]
    fn stall(&mut self, class: StallClass, latency_cycles: u64, bd: &mut ExecBreakdown) {
        // analyze: exact — in-order stalls charge whole cycles; the bucket stays integer-valued
        bd.charge(class, latency_cycles as f64);
    }
}

/// Calibration constants for the out-of-order overlap model.
///
/// The model is analytical: the window hides `hide_cycles` of each stall
/// outright, and the exposed remainder is scaled by a per-class residual
/// overlap factor. The paper's Section 7 finds the *relative* benefits of
/// integration to be virtually identical for in-order and out-of-order
/// cores, which requires the hiding to be (close to) a fixed *fraction*
/// of each stall class rather than a fixed cycle count — so the default
/// calibration uses `hide_cycles = 0` with purely multiplicative
/// residuals. OLTP's dependent load chains leave little memory-level
/// parallelism, so even the "hidden" fractions are modest (consistent
/// with Ranganathan et al.'s user-level-trace study the paper cites).
/// Defaults reproduce the paper's 1.4x (uniprocessor) and 1.3x
/// (multiprocessor) OOO gains on the Base configurations; see
/// EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OooCalibration {
    /// Busy cycles per instruction (dependency-limited issue, > 1/width).
    pub base_cpi: f64,
    /// Stall cycles the window can overlap with useful work.
    pub hide_cycles: f64,
    /// Residual factor on the exposed part of short stalls (L2 hits).
    pub short_residual: f64,
    /// Residual factor on the exposed part of memory stalls.
    pub long_residual: f64,
}

impl Default for OooCalibration {
    fn default() -> Self {
        OooCalibration { base_cpi: 0.55, hide_cycles: 0.0, short_residual: 0.75, long_residual: 0.81 }
    }
}

impl OooCalibration {
    /// Derives the calibration from microarchitectural parameters. The
    /// residuals are calibrated for the paper's 4-wide, 64-entry core;
    /// only the dependency-limited busy CPI scales with issue width
    /// (wider issue buys little for OLTP, as the paper observes).
    pub fn from_params(params: OooParams) -> Self {
        let mut cal = OooCalibration::default();
        let width = f64::from(params.issue_width.max(1));
        cal.base_cpi = (2.2 / width).max(0.25);
        cal
    }
}

/// The paper's 4-issue, 64-entry-window out-of-order core as an analytical
/// latency-overlap model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OooTiming {
    cal: OooCalibration,
}

impl OooTiming {
    /// Creates the model from microarchitectural parameters.
    pub fn new(params: OooParams) -> Self {
        OooTiming { cal: OooCalibration::from_params(params) }
    }

    /// Creates the model from explicit calibration constants.
    pub fn with_calibration(cal: OooCalibration) -> Self {
        OooTiming { cal }
    }

    /// The calibration in use.
    pub fn calibration(&self) -> OooCalibration {
        self.cal
    }
}

impl TimingModel for OooTiming {
    #[inline]
    fn retire_instruction(&mut self, bd: &mut ExecBreakdown) {
        bd.instructions += 1;
        bd.busy_cycles += self.cal.base_cpi;
    }

    #[inline]
    fn stall(&mut self, class: StallClass, latency_cycles: u64, bd: &mut ExecBreakdown) {
        let exposed = (latency_cycles as f64 - self.cal.hide_cycles).max(0.0);
        let residual = match class {
            StallClass::L2Hit => self.cal.short_residual,
            _ => self.cal.long_residual,
        };
        bd.charge(class, exposed * residual);
    }
}

/// Enum dispatch over the two timing models.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Timing {
    /// Single-issue in-order.
    InOrder(InOrderTiming),
    /// Multiple-issue out-of-order.
    Ooo(OooTiming),
}

impl Timing {
    /// Builds the timing model selected by a [`ProcessorModel`].
    pub fn for_model(model: ProcessorModel) -> Timing {
        match model {
            ProcessorModel::InOrder => Timing::InOrder(InOrderTiming::new()),
            ProcessorModel::OutOfOrder(p) => Timing::Ooo(OooTiming::new(p)),
        }
    }
}

impl TimingModel for Timing {
    #[inline]
    fn retire_instruction(&mut self, bd: &mut ExecBreakdown) {
        match self {
            Timing::InOrder(t) => t.retire_instruction(bd),
            Timing::Ooo(t) => t.retire_instruction(bd),
        }
    }

    #[inline]
    fn retire_instructions(&mut self, n: u64, bd: &mut ExecBreakdown) {
        match self {
            // In-order takes its exact closed form; out-of-order keeps
            // the default per-instruction loop (its fractional CPI would
            // round differently under a closed form).
            Timing::InOrder(t) => t.retire_instructions(n, bd),
            Timing::Ooo(t) => t.retire_instructions(n, bd),
        }
    }

    #[inline]
    fn stall(&mut self, class: StallClass, latency_cycles: u64, bd: &mut ExecBreakdown) {
        match self {
            Timing::InOrder(t) => t.stall(class, latency_cycles, bd),
            Timing::Ooo(t) => t.stall(class, latency_cycles, bd),
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn calibration_round_trips_through_with_calibration() {
        let from_params = OooTiming::new(OooParams::default());
        let rebuilt = OooTiming::with_calibration(from_params.calibration());
        assert_eq!(from_params, rebuilt);
    }

    use super::*;

    #[test]
    fn in_order_exposes_full_latency() {
        let mut t = InOrderTiming::new();
        let mut bd = ExecBreakdown::default();
        t.retire_instruction(&mut bd);
        t.stall(StallClass::RemoteDirty, 275, &mut bd);
        assert_eq!(bd.instructions, 1);
        assert_eq!(bd.busy_cycles, 1.0);
        assert_eq!(bd.remote_dirty_cycles, 275.0);
    }

    #[test]
    fn ooo_hides_a_fixed_fraction_of_short_stalls() {
        // Multiplicative hiding preserves the paper's finding that the
        // relative gains of integration are identical for both cores: a
        // 15-cycle and a 25-cycle L2 hit are hidden in equal proportion.
        let mut t = OooTiming::new(OooParams::paper());
        let mut a = ExecBreakdown::default();
        let mut b = ExecBreakdown::default();
        t.stall(StallClass::L2Hit, 15, &mut a);
        t.stall(StallClass::L2Hit, 25, &mut b);
        let ratio = b.l2_hit_cycles / a.l2_hit_cycles;
        assert!((ratio - 25.0 / 15.0).abs() < 1e-9);
        assert!(a.l2_hit_cycles > 0.0 && a.l2_hit_cycles < 15.0);
    }

    #[test]
    fn ooo_exposes_most_of_long_stalls() {
        let mut t = OooTiming::new(OooParams::paper());
        let mut bd = ExecBreakdown::default();
        t.stall(StallClass::RemoteDirty, 275, &mut bd);
        let cal = t.calibration();
        let expected = (275.0 - cal.hide_cycles) * cal.long_residual;
        let _ = &expected;
        assert!((bd.remote_dirty_cycles - expected).abs() < 1e-9);
        // The exposed fraction must dominate: OLTP remote misses are hard
        // to hide (paper Section 7).
        assert!(bd.remote_dirty_cycles > 0.8 * 275.0);
    }

    #[test]
    fn ooo_busy_time_reflects_wider_issue() {
        let mut t = OooTiming::new(OooParams::paper());
        let mut bd = ExecBreakdown::default();
        for _ in 0..100 {
            t.retire_instruction(&mut bd);
        }
        assert_eq!(bd.instructions, 100);
        assert!(bd.busy_cycles < 100.0, "OOO busy CPI must beat in-order CPI 1");
    }

    #[test]
    fn busy_cpi_derives_from_issue_width() {
        let cal = OooCalibration::from_params(OooParams { issue_width: 8, window: 64, load_store_units: 2 });
        assert!(cal.base_cpi < OooCalibration::default().base_cpi);
        let narrow = OooCalibration::from_params(OooParams { issue_width: 1, window: 64, load_store_units: 2 });
        assert!(narrow.base_cpi > 1.0);
    }

    #[test]
    fn enum_dispatch_selects_model() {
        let mut bd_in = ExecBreakdown::default();
        let mut t = Timing::for_model(ProcessorModel::InOrder);
        t.retire_instruction(&mut bd_in);
        assert_eq!(bd_in.busy_cycles, 1.0);

        let mut bd_ooo = ExecBreakdown::default();
        let mut t = Timing::for_model(ProcessorModel::OutOfOrder(OooParams::paper()));
        t.retire_instruction(&mut bd_ooo);
        assert!(bd_ooo.busy_cycles < 1.0);
    }
}
