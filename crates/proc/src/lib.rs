//! Processor timing models for the chip-level-integration simulator.
//!
//! The paper uses two processor models: a single-issue pipelined in-order
//! core (most results) and a 4-issue, 64-entry-window out-of-order core
//! (Section 7). Both are *timing* models layered on the same memory-system
//! simulation: the memory hierarchy decides what each reference costs, and
//! the timing model decides how much of that cost the processor actually
//! exposes as stall time.
//!
//! * [`InOrderTiming`] — one cycle of busy time per instruction; every
//!   miss latency is exposed in full (stall-on-miss, sequentially
//!   consistent).
//! * [`OooTiming`] — an analytical latency-overlap model: the instruction
//!   window hides a bounded number of cycles of each stall and a residual
//!   overlap factor models the (limited) memory-level parallelism of
//!   OLTP's dependent memory chains.
//!
//! Accumulated time lands in an [`ExecBreakdown`] whose components mirror
//! the paper's stacked execution-time bars: CPU busy, L2 hit, local stall,
//! and remote (2-hop / 3-hop) stall.
//!
//! # Example
//!
//! ```
//! use csim_proc::{ExecBreakdown, InOrderTiming, StallClass, TimingModel};
//!
//! let mut t = InOrderTiming::new();
//! let mut bd = ExecBreakdown::default();
//! t.retire_instruction(&mut bd);
//! t.stall(StallClass::L2Hit, 25, &mut bd);
//! assert_eq!(bd.total_cycles(), 26.0);
//! ```

#![forbid(unsafe_code)]

mod breakdown;
mod timing;

pub use breakdown::{ExecBreakdown, StallClass};
pub use timing::{InOrderTiming, OooCalibration, OooTiming, Timing, TimingModel};
