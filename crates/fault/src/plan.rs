//! Fault plans: the declarative description of what can go wrong.

use std::error::Error;
use std::fmt;

use crate::toml::{self, TomlValue};

/// How a NACKed requester retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry attempts before the livelock watchdog forces the
    /// transaction through (graceful degradation, never a hang).
    pub max_retries: u32,
    /// Backoff before the first retry, in cycles.
    pub backoff_base: u64,
    /// Whether backoff doubles on every consecutive NACK.
    pub exponential: bool,
    /// Upper bound on a single backoff interval, in cycles.
    pub backoff_cap: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 8, backoff_base: 16, exponential: true, backoff_cap: 4096 }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based), in cycles.
    pub fn backoff(&self, attempt: u32) -> u64 {
        if !self.exponential {
            return self.backoff_base.min(self.backoff_cap);
        }
        let doubled = self.backoff_base.saturating_mul(1u64 << attempt.min(32));
        doubled.min(self.backoff_cap)
    }
}

/// Probabilistic NACKs at the directory controller.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NackPlan {
    /// Probability in `[0, 1]` that a directory transaction is NACKed
    /// (rolled independently per attempt, including retries).
    pub prob: f64,
    /// What the requester does about it.
    pub retry: RetryPolicy,
}

impl Default for NackPlan {
    fn default() -> Self {
        NackPlan { prob: 0.0, retry: RetryPolicy::default() }
    }
}

/// A transient window during which NoC links run below nominal
/// bandwidth. Windows are expressed in per-node reference counts since
/// the last statistics reset (the simulator's logical clock).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFault {
    /// First reference index the fault is active at.
    pub start: u64,
    /// Number of references the fault lasts.
    pub duration: u64,
    /// Remaining link capacity as a fraction of nominal, in `(0, 1]`.
    pub capacity: f64,
}

impl LinkFault {
    /// Whether the window covers reference index `now`.
    pub fn covers(&self, now: u64) -> bool {
        now >= self.start && now - self.start < self.duration
    }
}

/// A transient window during which a home memory controller is busy and
/// fills from memory pay extra cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct McFault {
    /// First reference index the fault is active at.
    pub start: u64,
    /// Number of references the fault lasts.
    pub duration: u64,
    /// Extra cycles charged to every memory fill inside the window.
    pub extra_cycles: u64,
}

impl McFault {
    /// Whether the window covers reference index `now`.
    pub fn covers(&self, now: u64) -> bool {
        now >= self.start && now - self.start < self.duration
    }
}

/// Network constants used when retry traffic is folded back into the
/// contention model. The defaults match the paper's machine (a small
/// torus, line-sized messages).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkParams {
    /// Mean hops a retried transaction travels.
    pub mean_hops: f64,
    /// Link occupancy of one line-sized message, in cycles.
    pub line_cycles: f64,
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams { mean_hops: 2.0, line_cycles: 4.0 }
    }
}

/// Everything a [`crate::FaultInjector`] needs to know about what can go
/// wrong and when.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Directory NACK behaviour.
    pub nack: NackPlan,
    /// Transient link-degradation windows.
    pub link_faults: Vec<LinkFault>,
    /// Memory-controller busy windows.
    pub mc_faults: Vec<McFault>,
    /// Constants for the retry-traffic feedback model.
    pub network: NetworkParams,
}

impl FaultPlan {
    /// The empty plan: nothing ever goes wrong. An injector built from
    /// it draws no random numbers and charges no cycles.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A preset stress plan used by robustness tests and the docs:
    /// frequent NACKs, one long degraded-link window and one
    /// memory-controller busy window.
    pub fn storm() -> Self {
        FaultPlan {
            nack: NackPlan { prob: 0.05, retry: RetryPolicy::default() },
            link_faults: vec![LinkFault { start: 1_000, duration: 50_000, capacity: 0.25 }],
            mc_faults: vec![McFault { start: 20_000, duration: 20_000, extra_cycles: 40 }],
            network: NetworkParams::default(),
        }
    }

    /// Whether the plan can ever perturb a run.
    pub fn is_active(&self) -> bool {
        self.nack.prob > 0.0 || !self.link_faults.is_empty() || !self.mc_faults.is_empty()
    }

    /// Checks every field for physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::Invalid`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let invalid = |field: &'static str, message: String| {
            Err(FaultPlanError::Invalid { field, message })
        };
        if !(0.0..=1.0).contains(&self.nack.prob) || !self.nack.prob.is_finite() {
            return invalid("nack.prob", format!("probability {} not in [0, 1]", self.nack.prob));
        }
        if self.nack.retry.max_retries > 64 {
            return invalid(
                "nack.max_retries",
                format!("{} exceeds the watchdog ceiling of 64", self.nack.retry.max_retries),
            );
        }
        if self.nack.retry.backoff_base > self.nack.retry.backoff_cap {
            return invalid(
                "nack.backoff_base",
                format!(
                    "base {} exceeds cap {}",
                    self.nack.retry.backoff_base, self.nack.retry.backoff_cap
                ),
            );
        }
        for (i, f) in self.link_faults.iter().enumerate() {
            if f.duration == 0 {
                return invalid("link_fault.duration", format!("window {i} has zero duration"));
            }
            if !(f.capacity > 0.0 && f.capacity <= 1.0) {
                return invalid(
                    "link_fault.capacity",
                    format!("window {i}: capacity {} not in (0, 1]", f.capacity),
                );
            }
        }
        for (i, f) in self.mc_faults.iter().enumerate() {
            if f.duration == 0 {
                return invalid("mc_fault.duration", format!("window {i} has zero duration"));
            }
        }
        let positive = |v: f64| v.is_finite() && v > 0.0;
        if !positive(self.network.mean_hops) || !positive(self.network.line_cycles) {
            return invalid("network", "mean_hops and line_cycles must be positive".to_string());
        }
        Ok(())
    }

    /// Parses a plan from the workspace's TOML dialect and validates it.
    ///
    /// Recognized tables: `[nack]` (`prob`, `max_retries`,
    /// `backoff_base`, `backoff_cap`, `exponential`), `[network]`
    /// (`mean_hops`, `line_cycles`), and repeated `[[link_fault]]`
    /// (`start`, `duration`, `capacity`) / `[[mc_fault]]` (`start`,
    /// `duration`, `extra_cycles`) windows.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::Parse`] for malformed input or unknown
    /// keys/tables, [`FaultPlanError::Invalid`] when the parsed plan
    /// fails [`FaultPlan::validate`].
    pub fn from_toml_str(input: &str) -> Result<Self, FaultPlanError> {
        let mut plan = FaultPlan::none();
        for item in toml::parse(input)? {
            match item.table.as_str() {
                "nack" => {
                    let NackPlan { mut prob, mut retry } = plan.nack;
                    for (key, value, line) in item.entries {
                        match key.as_str() {
                            "prob" => prob = value.as_f64(line)?,
                            "max_retries" => retry.max_retries = value.as_u64(line)? as u32,
                            "backoff_base" => retry.backoff_base = value.as_u64(line)?,
                            "backoff_cap" => retry.backoff_cap = value.as_u64(line)?,
                            "exponential" => retry.exponential = value.as_bool(line)?,
                            other => return Err(unknown_key("nack", other, line)),
                        }
                    }
                    plan.nack = NackPlan { prob, retry };
                }
                "network" => {
                    for (key, value, line) in item.entries {
                        match key.as_str() {
                            "mean_hops" => plan.network.mean_hops = value.as_f64(line)?,
                            "line_cycles" => plan.network.line_cycles = value.as_f64(line)?,
                            other => return Err(unknown_key("network", other, line)),
                        }
                    }
                }
                "link_fault" => {
                    let mut f = LinkFault { start: 0, duration: 0, capacity: 1.0 };
                    for (key, value, line) in item.entries {
                        match key.as_str() {
                            "start" => f.start = value.as_u64(line)?,
                            "duration" => f.duration = value.as_u64(line)?,
                            "capacity" => f.capacity = value.as_f64(line)?,
                            other => return Err(unknown_key("link_fault", other, line)),
                        }
                    }
                    plan.link_faults.push(f);
                }
                "mc_fault" => {
                    let mut f = McFault { start: 0, duration: 0, extra_cycles: 0 };
                    for (key, value, line) in item.entries {
                        match key.as_str() {
                            "start" => f.start = value.as_u64(line)?,
                            "duration" => f.duration = value.as_u64(line)?,
                            "extra_cycles" => f.extra_cycles = value.as_u64(line)?,
                            other => return Err(unknown_key("mc_fault", other, line)),
                        }
                    }
                    plan.mc_faults.push(f);
                }
                other => {
                    return Err(FaultPlanError::Parse {
                        line: item.line,
                        message: format!("unknown table '[{other}]'"),
                    })
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

fn unknown_key(table: &str, key: &str, line: usize) -> FaultPlanError {
    FaultPlanError::Parse { line, message: format!("unknown key '{key}' in [{table}]") }
}

/// What went wrong while loading or checking a fault plan.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultPlanError {
    /// The TOML input is malformed or mentions unknown keys/tables.
    Parse {
        /// 1-based line number of the offending input.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The plan parsed but a field value is out of range.
    Invalid {
        /// Dotted path of the offending field.
        field: &'static str,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::Parse { line, message } => {
                write!(f, "fault plan parse error at line {line}: {message}")
            }
            FaultPlanError::Invalid { field, message } => {
                write!(f, "invalid fault plan field {field}: {message}")
            }
        }
    }
}

impl Error for FaultPlanError {}

// Re-exported here so `toml.rs` stays private.
impl TomlValue {
    pub(crate) fn as_f64(&self, line: usize) -> Result<f64, FaultPlanError> {
        match self {
            TomlValue::Float(v) => Ok(*v),
            TomlValue::Integer(v) => Ok(*v as f64),
            other => Err(FaultPlanError::Parse {
                line,
                message: format!("expected a number, found {other:?}"),
            }),
        }
    }

    pub(crate) fn as_u64(&self, line: usize) -> Result<u64, FaultPlanError> {
        match self {
            TomlValue::Integer(v) => Ok(*v),
            other => Err(FaultPlanError::Parse {
                line,
                message: format!("expected an integer, found {other:?}"),
            }),
        }
    }

    pub(crate) fn as_bool(&self, line: usize) -> Result<bool, FaultPlanError> {
        match self {
            TomlValue::Bool(v) => Ok(*v),
            other => Err(FaultPlanError::Parse {
                line,
                message: format!("expected true or false, found {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_and_valid() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        plan.validate().unwrap();
    }

    #[test]
    fn storm_is_active_and_valid() {
        let plan = FaultPlan::storm();
        assert!(plan.is_active());
        plan.validate().unwrap();
    }

    #[test]
    fn backoff_doubles_up_to_the_cap() {
        let p = RetryPolicy { max_retries: 8, backoff_base: 16, exponential: true, backoff_cap: 100 };
        assert_eq!(p.backoff(0), 16);
        assert_eq!(p.backoff(1), 32);
        assert_eq!(p.backoff(2), 64);
        assert_eq!(p.backoff(3), 100, "capped");
        assert_eq!(p.backoff(63), 100, "no shift overflow");
    }

    #[test]
    fn fixed_backoff_ignores_the_attempt() {
        let p = RetryPolicy { exponential: false, ..RetryPolicy::default() };
        assert_eq!(p.backoff(0), p.backoff(9));
    }

    #[test]
    fn windows_cover_half_open_ranges() {
        let f = LinkFault { start: 10, duration: 5, capacity: 0.5 };
        assert!(!f.covers(9));
        assert!(f.covers(10));
        assert!(f.covers(14));
        assert!(!f.covers(15));
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let mut plan = FaultPlan::none();
        plan.nack.prob = 1.5;
        assert!(matches!(plan.validate(), Err(FaultPlanError::Invalid { field: "nack.prob", .. })));
    }

    #[test]
    fn validate_rejects_zero_capacity_links() {
        let mut plan = FaultPlan::none();
        plan.link_faults.push(LinkFault { start: 0, duration: 10, capacity: 0.0 });
        assert!(matches!(
            plan.validate(),
            Err(FaultPlanError::Invalid { field: "link_fault.capacity", .. })
        ));
    }

    #[test]
    fn validate_rejects_oversized_retry_budget() {
        let mut plan = FaultPlan::none();
        plan.nack.retry.max_retries = 65;
        assert!(plan.validate().is_err());
    }

    #[test]
    fn toml_round_trip_of_the_documented_dialect() {
        let text = r#"
            # a storm with everything in it
            [nack]
            prob = 0.05
            max_retries = 6
            backoff_base = 8
            backoff_cap = 512
            exponential = true

            [network]
            mean_hops = 1.7
            line_cycles = 4.0

            [[link_fault]]
            start = 100
            duration = 200
            capacity = 0.5

            [[link_fault]]
            start = 1000
            duration = 50
            capacity = 0.25

            [[mc_fault]]
            start = 300
            duration = 40
            extra_cycles = 25
        "#;
        let plan = FaultPlan::from_toml_str(text).unwrap();
        assert!((plan.nack.prob - 0.05).abs() < 1e-12);
        assert_eq!(plan.nack.retry.max_retries, 6);
        assert_eq!(plan.nack.retry.backoff_base, 8);
        assert_eq!(plan.nack.retry.backoff_cap, 512);
        assert!(plan.nack.retry.exponential);
        assert_eq!(plan.link_faults.len(), 2);
        assert_eq!(plan.link_faults[1].start, 1000);
        assert_eq!(plan.mc_faults, vec![McFault { start: 300, duration: 40, extra_cycles: 25 }]);
        assert!((plan.network.mean_hops - 1.7).abs() < 1e-12);
    }

    #[test]
    fn toml_rejects_unknown_tables_and_keys() {
        let err = FaultPlan::from_toml_str("[surprise]\nx = 1\n").unwrap_err();
        assert!(matches!(err, FaultPlanError::Parse { line: 1, .. }), "{err}");
        let err = FaultPlan::from_toml_str("[nack]\nprobability = 0.5\n").unwrap_err();
        assert!(matches!(err, FaultPlanError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn toml_rejects_type_mismatches() {
        let err = FaultPlan::from_toml_str("[nack]\nmax_retries = 0.5\n").unwrap_err();
        assert!(matches!(err, FaultPlanError::Parse { .. }), "{err}");
        let err = FaultPlan::from_toml_str("[nack]\nexponential = 3\n").unwrap_err();
        assert!(matches!(err, FaultPlanError::Parse { .. }), "{err}");
    }

    #[test]
    fn toml_validation_failures_surface_as_invalid() {
        let err = FaultPlan::from_toml_str("[nack]\nprob = 2.0\n").unwrap_err();
        assert!(matches!(err, FaultPlanError::Invalid { field: "nack.prob", .. }), "{err}");
    }

    #[test]
    fn errors_display_their_location() {
        let err = FaultPlan::from_toml_str("[nack]\nbogus = 1\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }
}
