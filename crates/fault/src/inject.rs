//! The fault injector: executes a [`FaultPlan`] deterministically.

use csim_noc::Contention;
use csim_trace::SimRng;

use crate::plan::FaultPlan;

/// Retry-traffic feedback horizon: `recent_retries` is halved every
/// this many directory transactions, so the utilization estimate tracks
/// the recent past instead of the whole run.
const FEEDBACK_WINDOW: u64 = 1024;

/// What kind of directory transaction is being injected into. The
/// kind decides which fault classes apply: memory-controller busy
/// periods hit fills serviced by a memory controller, link degradation
/// hits transactions that cross the interconnect, and NACK/retry
/// applies to every directory transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransactionKind {
    /// A fill from the requester's own home memory (no NoC crossing).
    LocalMemory,
    /// A 2-hop fill from a remote home's memory.
    RemoteClean,
    /// A 3-hop fill from dirty data in a remote cache (no memory
    /// controller on the critical path).
    RemoteDirty,
}

/// Everything the injector did during the measured window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Directory NACKs delivered (initial attempts and retries).
    pub nacks: u64,
    /// Retry attempts issued after a NACK.
    pub retries: u64,
    /// Cycles spent backing off before retries.
    pub backoff_cycles: u64,
    /// Total extra cycles charged by the NACK/retry path (backoff plus
    /// re-traversal, including contention inflation).
    pub retry_cycles: u64,
    /// Times the retry budget ran out and the livelock watchdog forced
    /// the transaction through.
    pub watchdog_trips: u64,
    /// Transactions inflated by a degraded link.
    pub degraded_txns: u64,
    /// Extra cycles charged by link degradation.
    pub degraded_extra_cycles: u64,
    /// Memory fills that hit a busy memory controller.
    pub mc_busy_txns: u64,
    /// Extra cycles charged by busy memory controllers.
    pub mc_extra_cycles: u64,
}

impl FaultStats {
    /// Total extra cycles the fault model charged.
    pub fn total_extra_cycles(&self) -> u64 {
        self.retry_cycles + self.degraded_extra_cycles + self.mc_extra_cycles
    }

    /// The component-wise change from `earlier` to `self`. The
    /// observability layer diffs counter snapshots with this to derive
    /// per-transaction and per-epoch fault activity; `earlier` must be
    /// an earlier snapshot of the same accumulator.
    pub fn delta(&self, earlier: &FaultStats) -> FaultStats {
        FaultStats {
            nacks: self.nacks - earlier.nacks,
            retries: self.retries - earlier.retries,
            backoff_cycles: self.backoff_cycles - earlier.backoff_cycles,
            retry_cycles: self.retry_cycles - earlier.retry_cycles,
            watchdog_trips: self.watchdog_trips - earlier.watchdog_trips,
            degraded_txns: self.degraded_txns - earlier.degraded_txns,
            degraded_extra_cycles: self.degraded_extra_cycles - earlier.degraded_extra_cycles,
            mc_busy_txns: self.mc_busy_txns - earlier.mc_busy_txns,
            mc_extra_cycles: self.mc_extra_cycles - earlier.mc_extra_cycles,
        }
    }

    /// Accumulates another set of counters.
    pub fn merge(&mut self, other: &FaultStats) {
        self.nacks += other.nacks;
        self.retries += other.retries;
        self.backoff_cycles += other.backoff_cycles;
        self.retry_cycles += other.retry_cycles;
        self.watchdog_trips += other.watchdog_trips;
        self.degraded_txns += other.degraded_txns;
        self.degraded_extra_cycles += other.degraded_extra_cycles;
        self.mc_busy_txns += other.mc_busy_txns;
        self.mc_extra_cycles += other.mc_extra_cycles;
    }
}

/// Deterministic executor of a [`FaultPlan`].
///
/// The injector owns its own [`SimRng`] stream: the same `(plan, seed)`
/// pair replays the same fault sequence regardless of the workload seed.
/// An injector whose plan [`FaultPlan::is_active`] is false never draws
/// from the RNG and never charges a cycle, so wiring one in is free.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    active: bool,
    rng: SimRng,
    contention: Contention,
    stats: FaultStats,
    /// Exponentially decayed count of recent retries (feedback source).
    recent_retries: u64,
    /// Transactions seen since the last feedback decay.
    window_txns: u64,
}

impl FaultInjector {
    /// Builds an injector for `plan`, validating it first.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FaultPlanError::Invalid`] when the plan fails
    /// [`FaultPlan::validate`].
    pub fn new(plan: FaultPlan, seed: u64) -> Result<Self, crate::FaultPlanError> {
        plan.validate()?;
        let active = plan.is_active();
        Ok(FaultInjector {
            plan,
            active,
            rng: SimRng::seed_from_u64(seed),
            contention: Contention::default(),
            stats: FaultStats::default(),
            recent_retries: 0,
            window_txns: 0,
        })
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether the plan can ever perturb a run.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Counters accumulated since construction or the last
    /// [`FaultInjector::reset_stats`].
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Clears the counters (the RNG stream and feedback state are
    /// deliberately kept: fault positions must not depend on when
    /// statistics were reset).
    pub fn reset_stats(&mut self) {
        self.stats = FaultStats::default();
    }

    /// The latency multiplier a degraded link imposes at reference
    /// index `now` (1.0 outside every window). Overlapping windows
    /// compound multiplicatively.
    pub(crate) fn link_multiplier(&self, now: u64) -> f64 {
        let mut m = 1.0;
        for f in &self.plan.link_faults {
            if f.covers(now) {
                m *= self.contention.degraded_inflation(self.retry_rho(), f.capacity);
            }
        }
        m
    }

    /// Extra cycles a busy memory controller adds at reference index
    /// `now` (0 outside every window). Overlapping windows add up.
    pub(crate) fn mc_extra(&self, now: u64) -> u64 {
        self.plan
            .mc_faults
            .iter()
            .filter(|f| f.covers(now))
            .map(|f| f.extra_cycles)
            .sum()
    }

    /// Applies the whole fault model to one directory transaction of
    /// `kind` with fault-free latency `base_cycles` at reference index
    /// `now`, returning the (possibly inflated) latency to charge.
    ///
    /// Inactive injectors return `base_cycles` unchanged without
    /// touching the RNG.
    pub fn transaction_latency(&mut self, now: u64, kind: TransactionKind, base_cycles: u64) -> u64 {
        if !self.active {
            return base_cycles;
        }
        let mut latency = base_cycles;

        // Link degradation: remote transactions cross the NoC.
        if kind != TransactionKind::LocalMemory {
            let m = self.link_multiplier(now);
            if m != 1.0 {
                let inflated = (latency as f64 * m).round() as u64;
                self.stats.degraded_txns += 1;
                self.stats.degraded_extra_cycles += inflated - latency;
                latency = inflated;
            }
        }

        // Memory-controller busy periods: fills serviced by a memory
        // controller (3-hop fills come from a remote cache instead).
        if kind != TransactionKind::RemoteDirty {
            let extra = self.mc_extra(now);
            if extra > 0 {
                self.stats.mc_busy_txns += 1;
                self.stats.mc_extra_cycles += extra;
                latency += extra;
            }
        }

        latency + self.nack_retry_extra(base_cycles)
    }

    /// Extra cycles a local memory fetch pays (memory-controller busy
    /// periods only — no directory transaction is involved, e.g. for
    /// OS-replicated instruction pages).
    pub fn memory_fetch_extra(&mut self, now: u64) -> u64 {
        if !self.active {
            return 0;
        }
        let extra = self.mc_extra(now);
        if extra > 0 {
            self.stats.mc_busy_txns += 1;
            self.stats.mc_extra_cycles += extra;
        }
        extra
    }

    /// Rolls the NACK dice for a fire-and-forget writeback message.
    /// Writebacks are off the processor's critical path, so a NACK here
    /// costs no core cycles but does add retry traffic to the feedback
    /// model.
    pub fn writeback(&mut self) {
        if !self.active || self.plan.nack.prob == 0.0 {
            return;
        }
        if self.rng.gen_bool(self.plan.nack.prob) {
            self.stats.nacks += 1;
            self.stats.retries += 1;
            self.recent_retries += 1;
        }
    }

    /// The *offered* link load the retry-feedback traffic currently
    /// implies, unclamped (see [`Contention::offered_utilization`]).
    /// An observability gauge: epoch time-series sample it to make
    /// retry storms visible as a curve, including how far past
    /// saturation they push.
    pub fn retry_utilization(&self) -> f64 {
        if !self.active {
            return 0.0;
        }
        let msgs_per_txn = self.recent_retries as f64 / FEEDBACK_WINDOW as f64;
        self.contention.offered_utilization(
            msgs_per_txn,
            self.plan.network.mean_hops,
            self.plan.network.line_cycles,
            1.0,
        )
    }

    /// Link utilization currently contributed by retry traffic: the
    /// feedback path that makes dense retry storms inflate each other.
    fn retry_rho(&self) -> f64 {
        let msgs_per_txn = self.recent_retries as f64 / FEEDBACK_WINDOW as f64;
        self.contention.utilization(
            msgs_per_txn,
            self.plan.network.mean_hops,
            self.plan.network.line_cycles,
            1.0,
        )
    }

    /// The NACK/retry/backoff state machine for one transaction.
    fn nack_retry_extra(&mut self, base_cycles: u64) -> u64 {
        if self.plan.nack.prob == 0.0 {
            return 0;
        }
        self.decay_feedback();
        if !self.rng.gen_bool(self.plan.nack.prob) {
            return 0; // accepted first try
        }
        self.stats.nacks += 1;
        let policy = self.plan.nack.retry;
        let mut extra = 0u64;
        let mut attempt = 0u32;
        loop {
            if attempt >= policy.max_retries {
                // Livelock watchdog: the retry budget is gone. Real
                // hardware escalates to a guaranteed-progress mode; we
                // model that as the transaction being forced through at
                // no further cost, recorded for the report.
                self.stats.watchdog_trips += 1;
                break;
            }
            let backoff = policy.backoff(attempt);
            self.stats.backoff_cycles += backoff;
            extra += backoff;
            // The retry re-traverses the network; recent retry traffic
            // inflates it through the contention model.
            let retry_cost = self.contention.inflate(base_cycles as f64, self.retry_rho());
            extra += retry_cost.round() as u64;
            self.stats.retries += 1;
            self.recent_retries += 1;
            attempt += 1;
            if !self.rng.gen_bool(self.plan.nack.prob) {
                break; // retry accepted
            }
            self.stats.nacks += 1;
        }
        self.stats.retry_cycles += extra;
        extra
    }

    fn decay_feedback(&mut self) {
        self.window_txns += 1;
        if self.window_txns >= FEEDBACK_WINDOW {
            self.window_txns = 0;
            self.recent_retries /= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{LinkFault, McFault, NackPlan, RetryPolicy};

    fn nack_only(prob: f64) -> FaultPlan {
        FaultPlan { nack: NackPlan { prob, retry: RetryPolicy::default() }, ..FaultPlan::none() }
    }

    #[test]
    fn inactive_injector_is_a_no_op() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 42).unwrap();
        assert!(!inj.is_active());
        for now in 0..100 {
            assert_eq!(inj.transaction_latency(now, TransactionKind::RemoteDirty, 200), 200);
            assert_eq!(inj.memory_fetch_extra(now), 0);
            inj.writeback();
        }
        assert_eq!(*inj.stats(), FaultStats::default());
        // The RNG was never advanced: a fresh injector's stream matches.
        let mut a = inj.rng.clone();
        let mut b = SimRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn stats_delta_inverts_merge() {
        let mut inj = FaultInjector::new(nack_only(0.5), 3).unwrap();
        for now in 0..500 {
            inj.transaction_latency(now, TransactionKind::RemoteClean, 175);
        }
        let mid = *inj.stats();
        for now in 500..1_000 {
            inj.transaction_latency(now, TransactionKind::RemoteClean, 175);
        }
        let end = *inj.stats();
        let second_half = end.delta(&mid);
        let mut recombined = mid;
        recombined.merge(&second_half);
        assert_eq!(recombined, end);
        assert!(second_half.nacks < end.nacks, "both halves saw NACKs at 50%");
    }

    #[test]
    fn retry_utilization_rises_under_a_storm_and_is_zero_when_inactive() {
        let mut idle = FaultInjector::new(FaultPlan::none(), 0).unwrap();
        idle.transaction_latency(0, TransactionKind::RemoteClean, 175);
        assert_eq!(idle.retry_utilization(), 0.0);

        let mut stormy = FaultInjector::new(nack_only(0.9), 11).unwrap();
        assert_eq!(stormy.retry_utilization(), 0.0, "no traffic yet");
        for now in 0..200 {
            stormy.transaction_latency(now, TransactionKind::RemoteClean, 175);
        }
        assert!(stormy.retry_utilization() > 0.0, "a 90% NACK storm generates retry load");
    }

    #[test]
    fn new_rejects_invalid_plans() {
        let plan = nack_only(2.0);
        assert!(FaultInjector::new(plan, 0).is_err());
    }

    #[test]
    fn same_plan_and_seed_replay_identically() {
        let run = || {
            let mut inj = FaultInjector::new(FaultPlan::storm(), 7).unwrap();
            let mut total = 0u64;
            for now in 0..30_000 {
                total += inj.transaction_latency(now, TransactionKind::RemoteClean, 175);
                inj.writeback();
            }
            (total, *inj.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_diverge() {
        let run = |seed| {
            let mut inj = FaultInjector::new(nack_only(0.2), seed).unwrap();
            (0..5_000)
                .map(|now| inj.transaction_latency(now, TransactionKind::RemoteClean, 175))
                .sum::<u64>()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn nacks_charge_backoff_and_retries() {
        let mut inj = FaultInjector::new(nack_only(1.0), 3).unwrap();
        // prob = 1.0: every attempt is NACKed until the budget runs out.
        let base = 100;
        let got = inj.transaction_latency(0, TransactionKind::RemoteClean, base);
        let s = *inj.stats();
        assert_eq!(s.watchdog_trips, 1, "budget must exhaust at prob 1");
        assert_eq!(s.retries, u64::from(RetryPolicy::default().max_retries));
        assert!(s.backoff_cycles > 0);
        assert!(got > base, "retries cost cycles: got {got}");
        assert_eq!(s.retry_cycles, got - base);
    }

    #[test]
    fn watchdog_guarantees_forward_progress() {
        // Even at prob 1.0 with a generous budget, a long run terminates
        // and every transaction completes (no hang, no panic).
        let plan = FaultPlan {
            nack: NackPlan {
                prob: 1.0,
                retry: RetryPolicy { max_retries: 64, ..RetryPolicy::default() },
            },
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 9).unwrap();
        for now in 0..1_000 {
            let _ = inj.transaction_latency(now, TransactionKind::LocalMemory, 70);
        }
        assert_eq!(inj.stats().watchdog_trips, 1_000);
    }

    #[test]
    fn link_windows_inflate_only_remote_transactions() {
        let plan = FaultPlan {
            link_faults: vec![LinkFault { start: 10, duration: 10, capacity: 0.5 }],
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 0).unwrap();
        assert_eq!(inj.transaction_latency(0, TransactionKind::RemoteClean, 100), 100);
        assert_eq!(inj.transaction_latency(15, TransactionKind::LocalMemory, 100), 100);
        let inflated = inj.transaction_latency(15, TransactionKind::RemoteClean, 100);
        assert_eq!(inflated, 200, "half capacity doubles an uncontended link");
        assert_eq!(inj.stats().degraded_txns, 1);
        assert_eq!(inj.stats().degraded_extra_cycles, 100);
        assert_eq!(inj.transaction_latency(25, TransactionKind::RemoteClean, 100), 100);
    }

    #[test]
    fn mc_windows_hit_memory_fills_but_not_dirty_fills() {
        let plan = FaultPlan {
            mc_faults: vec![McFault { start: 0, duration: 100, extra_cycles: 30 }],
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 0).unwrap();
        assert_eq!(inj.transaction_latency(5, TransactionKind::LocalMemory, 70), 100);
        assert_eq!(inj.transaction_latency(5, TransactionKind::RemoteClean, 175), 205);
        assert_eq!(inj.transaction_latency(5, TransactionKind::RemoteDirty, 200), 200);
        assert_eq!(inj.memory_fetch_extra(5), 30);
        assert_eq!(inj.memory_fetch_extra(500), 0);
        assert_eq!(inj.stats().mc_busy_txns, 3);
        assert_eq!(inj.stats().mc_extra_cycles, 90);
    }

    #[test]
    fn retry_storms_inflate_subsequent_retries() {
        // With heavy NACKs the feedback term grows, so late retries cost
        // more than early ones on average.
        let mut inj = FaultInjector::new(nack_only(0.9), 11).unwrap();
        let early: u64 =
            (0..200).map(|n| inj.transaction_latency(n, TransactionKind::RemoteClean, 175)).sum();
        // Saturate the feedback window.
        for n in 200..800 {
            let _ = inj.transaction_latency(n, TransactionKind::RemoteClean, 175);
        }
        let late: u64 =
            (800..1000).map(|n| inj.transaction_latency(n, TransactionKind::RemoteClean, 175)).sum();
        assert!(
            late > early,
            "retry feedback must compound: early {early}, late {late}"
        );
    }

    #[test]
    fn reset_stats_keeps_the_fault_sequence() {
        let seq = |reset_at: Option<u64>| {
            let mut inj = FaultInjector::new(nack_only(0.3), 5).unwrap();
            let mut out = Vec::new();
            for now in 0..2_000 {
                if reset_at == Some(now) {
                    inj.reset_stats();
                }
                out.push(inj.transaction_latency(now, TransactionKind::RemoteClean, 175));
            }
            out
        };
        assert_eq!(seq(None), seq(Some(1_000)), "resetting stats must not move faults");
    }

    #[test]
    fn stats_merge_and_total() {
        let mut a = FaultStats { nacks: 1, retries: 2, retry_cycles: 10, ..Default::default() };
        let b = FaultStats {
            mc_extra_cycles: 5,
            degraded_extra_cycles: 7,
            watchdog_trips: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.nacks, 1);
        assert_eq!(a.watchdog_trips, 1);
        assert_eq!(a.total_extra_cycles(), 22);
    }
}
