//! A deliberately small TOML subset: `[table]` / `[[table]]` headers and
//! `key = value` pairs where values are integers, floats or booleans.
//! That is all a fault plan needs, and it keeps the workspace free of
//! external dependencies.

use crate::plan::FaultPlanError;

/// A parsed scalar value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum TomlValue {
    Integer(u64),
    Float(f64),
    Bool(bool),
}

/// One `[table]` or `[[table]]` occurrence with its key/value entries
/// (each tagged with the 1-based source line for error reporting).
#[derive(Debug)]
pub(crate) struct TomlItem {
    pub table: String,
    pub line: usize,
    pub entries: Vec<(String, TomlValue, usize)>,
}

/// Parses the subset. Keys before any table header are rejected; so is
/// anything that does not look like a header or a `key = value` pair.
pub(crate) fn parse(input: &str) -> Result<Vec<TomlItem>, FaultPlanError> {
    let mut items: Vec<TomlItem> = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if let Some(name) = header(text) {
            items.push(TomlItem { table: name.to_string(), line, entries: Vec::new() });
            continue;
        }
        let Some((key, value)) = text.split_once('=') else {
            return Err(FaultPlanError::Parse {
                line,
                message: format!("expected '[table]' or 'key = value', found '{text}'"),
            });
        };
        let Some(item) = items.last_mut() else {
            return Err(FaultPlanError::Parse {
                line,
                message: "key/value pair before any [table] header".to_string(),
            });
        };
        item.entries.push((key.trim().to_string(), scalar(value.trim(), line)?, line));
    }
    Ok(items)
}

/// `[name]` and `[[name]]` both yield `name`; the distinction (single
/// table vs array element) is irrelevant to the plan loader, which keys
/// off the table name alone.
fn header(text: &str) -> Option<&str> {
    let inner = text.strip_prefix("[[").and_then(|t| t.strip_suffix("]]"));
    let inner = inner.or_else(|| text.strip_prefix('[').and_then(|t| t.strip_suffix(']')));
    let name = inner?.trim();
    (!name.is_empty() && !name.contains(['[', ']'])).then_some(name)
}

fn scalar(text: &str, line: usize) -> Result<TomlValue, FaultPlanError> {
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    if let Ok(v) = text.parse::<u64>() {
        return Ok(TomlValue::Integer(v));
    }
    if let Ok(v) = text.parse::<f64>() {
        if v.is_finite() {
            return Ok(TomlValue::Float(v));
        }
    }
    Err(FaultPlanError::Parse { line, message: format!("cannot parse value '{text}'") })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_headers_values_and_comments() {
        let items = parse("# intro\n[a]\nx = 1 # trailing\ny = 2.5\nz = true\n[[b]]\nw = 0\n")
            .unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].table, "a");
        assert_eq!(
            items[0].entries,
            vec![
                ("x".to_string(), TomlValue::Integer(1), 3),
                ("y".to_string(), TomlValue::Float(2.5), 4),
                ("z".to_string(), TomlValue::Bool(true), 5),
            ]
        );
        assert_eq!(items[1].table, "b");
    }

    #[test]
    fn rejects_orphan_keys() {
        let err = parse("x = 1\n").unwrap_err();
        assert!(err.to_string().contains("before any"), "{err}");
    }

    #[test]
    fn rejects_garbage_lines() {
        assert!(parse("[a]\nnot a pair\n").is_err());
        assert!(parse("[a]\nx = what\n").is_err());
        assert!(parse("[]\n").is_err());
    }
}
