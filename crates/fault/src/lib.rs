//! Deterministic fault injection for the chip-level-integration
//! simulator.
//!
//! The paper's machine is evaluated on a fault-free interconnect; this
//! crate supplies the machinery for robustness experiments that relax
//! that assumption. A [`FaultPlan`] describes *what* can go wrong:
//!
//! * **Directory NACKs** — a directory controller under load refuses a
//!   transaction with some probability; the requester backs off
//!   (bounded retries, optionally exponential) and retries, and the
//!   retry traffic feeds back into the [`csim_noc::Contention`]
//!   utilization model so that storms of retries slow each other down.
//! * **Link degradation** — transient windows during which NoC links
//!   run at a fraction of nominal bandwidth, inflating every remote
//!   transaction that crosses them.
//! * **Memory-controller busy periods** — windows during which fills
//!   serviced by a home memory controller pay extra cycles.
//!
//! A [`FaultInjector`] executes a plan deterministically: the same
//! `(plan, seed)` pair always produces the same fault sequence, so any
//! run — including a failing one — reproduces exactly. When the plan is
//! [`FaultPlan::none`] the injector draws no random numbers and charges
//! no cycles, guaranteeing a fault-free run is bit-identical to a run
//! without any injector wired in.
//!
//! Plans are built in code or loaded from a small TOML dialect (see
//! [`FaultPlan::from_toml_str`]); `examples/fault_storm.toml` in the
//! workspace root is a complete annotated example.

#![forbid(unsafe_code)]

mod inject;
mod plan;
mod toml;

pub use inject::{FaultInjector, FaultStats, TransactionKind};
pub use plan::{FaultPlan, FaultPlanError, LinkFault, McFault, NackPlan, NetworkParams, RetryPolicy};
