//! Property tests for the log-bucketed latency histogram, driven by the
//! workspace's deterministic RNG: across several synthetic latency
//! distributions, every reported quantile must sit within one bucket's
//! relative error (`2^-precision`) of the exact order statistic computed
//! from the sorted samples, and merging per-node histograms in any order
//! must equal recording the union of all samples.

use csim_obs::{LatencyHistogram, DEFAULT_PRECISION, REPORT_QUANTILES};
use csim_trace::SimRng;

/// Exact order statistic matching `LatencyHistogram::quantile`'s rank
/// convention: the `ceil(q * n)`-th smallest sample (1-indexed).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    if q >= 1.0 {
        return *sorted.last().unwrap();
    }
    let rank = ((q.max(0.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Asserts `est` is within one bucket of `exact`: never below it, and at
/// most `2^-precision` above in relative terms (exact for values small
/// enough to land in unit-width buckets).
fn assert_within_one_bucket(est: u64, exact: u64, q: f64, dist: &str) {
    assert!(est >= exact, "{dist} q={q}: estimate {est} below exact {exact}");
    let unit = 1u64 << DEFAULT_PRECISION;
    if exact < unit {
        assert_eq!(est, exact, "{dist} q={q}: sub-{unit} values have exact buckets");
    } else {
        let rel = (est - exact) as f64 / exact as f64;
        let bound = 1.0 / unit as f64;
        assert!(rel <= bound, "{dist} q={q}: estimate {est} vs exact {exact} (rel {rel:.4})");
    }
}

type Draw = Box<dyn FnMut(&mut SimRng) -> u64>;

/// The synthetic latency distributions: name + one draw.
fn distributions() -> Vec<(&'static str, Draw)> {
    vec![
        ("uniform-wide", Box::new(|r: &mut SimRng| r.gen_range(1..2_000_000))),
        ("uniform-narrow", Box::new(|r: &mut SimRng| r.gen_range(180..230))),
        // Roughly the simulator's miss-latency mix: a few fixed service
        // classes plus occasional NACK-inflated outliers.
        ("miss-mix", Box::new(|r: &mut SimRng| match r.gen_range(0..100) {
            0..=49 => 15,
            50..=79 => 75,
            80..=94 => 150,
            95..=98 => 200,
            _ => 200 + r.gen_range(0..40_000),
        })),
        // Heavy tail: latency = 2^k with k geometric-ish.
        ("power-of-two-tail", Box::new(|r: &mut SimRng| {
            let k = (r.next_u64().trailing_ones()).min(40);
            (1u64 << k) + r.gen_range(0..(1u64 << k))
        })),
        // Exponential via inverse CDF, scaled to cycles.
        ("exponential", Box::new(|r: &mut SimRng| {
            let u = r.gen_f64().max(1e-12);
            (-u.ln() * 300.0) as u64 + 1
        })),
    ]
}

#[test]
fn quantiles_are_within_one_bucket_of_exact_across_distributions() {
    for (seed, n) in [(1u64, 10_000usize), (42, 50_000), (7_777, 3_001)] {
        for (name, mut draw) in distributions() {
            let mut rng = SimRng::seed_from_u64(seed ^ name.len() as u64);
            let mut h = LatencyHistogram::new();
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                let v = draw(&mut rng);
                h.record(v);
                samples.push(v);
            }
            samples.sort_unstable();
            assert_eq!(h.count(), n as u64);
            assert_eq!(h.min(), samples[0]);
            assert_eq!(h.max(), *samples.last().unwrap());
            for &(_, q) in &REPORT_QUANTILES {
                assert_within_one_bucket(h.quantile(q), exact_quantile(&samples, q), q, name);
            }
            assert_eq!(h.quantile(1.0), h.max(), "{name}: q=1 is the exact maximum");
        }
    }
}

#[test]
fn quantiles_are_monotone_in_q() {
    let mut rng = SimRng::seed_from_u64(99);
    let mut h = LatencyHistogram::new();
    for _ in 0..20_000 {
        h.record(rng.gen_range(1..500_000));
    }
    let mut prev = 0u64;
    for i in 0..=100 {
        let q = i as f64 / 100.0;
        let v = h.quantile(q);
        assert!(v >= prev, "quantile not monotone at q={q}: {v} < {prev}");
        prev = v;
    }
}

#[test]
fn merging_per_node_histograms_in_any_order_equals_the_union() {
    const NODES: usize = 8;
    let mut rng = SimRng::seed_from_u64(2_024);
    let mut per_node = vec![LatencyHistogram::new(); NODES];
    let mut union = LatencyHistogram::new();
    for _ in 0..30_000 {
        let node = rng.gen_range_usize(0..NODES);
        let v = match rng.gen_range(0..3) {
            0 => rng.gen_range(1..64),
            1 => rng.gen_range(64..10_000),
            _ => rng.gen_range(10_000..5_000_000),
        };
        per_node[node].record(v);
        union.record(v);
    }

    // Left fold in node order.
    let mut forward = LatencyHistogram::new();
    for h in &per_node {
        forward.merge(h);
    }
    // Reverse order (commutativity across the whole fold).
    let mut backward = LatencyHistogram::new();
    for h in per_node.iter().rev() {
        backward.merge(h);
    }
    // Pairwise tree ((0+1)+(2+3))+((4+5)+(6+7)) (associativity).
    let mut pairs: Vec<LatencyHistogram> = per_node
        .chunks(2)
        .map(|c| {
            let mut m = c[0].clone();
            m.merge(&c[1]);
            m
        })
        .collect();
    while pairs.len() > 1 {
        pairs = pairs
            .chunks(2)
            .map(|c| {
                let mut m = c[0].clone();
                m.merge(&c[1]);
                m
            })
            .collect();
    }

    assert_eq!(forward, union, "node-order fold differs from the union histogram");
    assert_eq!(backward, union, "reverse fold differs from the union histogram");
    assert_eq!(pairs[0], union, "pairwise tree differs from the union histogram");
}

#[test]
fn merge_with_empty_is_identity() {
    let mut rng = SimRng::seed_from_u64(5);
    let mut h = LatencyHistogram::new();
    for _ in 0..1_000 {
        h.record(rng.gen_range(1..10_000));
    }
    let before = h.clone();
    h.merge(&LatencyHistogram::new());
    assert_eq!(h, before);
    let mut empty = LatencyHistogram::new();
    empty.merge(&before);
    assert_eq!(empty, before);
}
