//! Log-bucketed latency histograms with quantile extraction.
//!
//! The recorder is HDR-histogram-shaped but hand-rolled and
//! dependency-free: values up to `2^precision` land in exact unit-width
//! buckets, and every later octave is split into `2^precision`
//! sub-buckets, so the relative width of any bucket never exceeds
//! `2^-precision`. Recording is O(1) (a leading-zeros instruction and an
//! array increment), merging is element-wise addition (associative and
//! commutative, so per-node histograms can be combined in any order),
//! and quantile extraction walks the bucket array once.

/// Default sub-bucket precision: 5 bits = 32 sub-buckets per octave,
/// i.e. quantiles are exact to within ~3.1% relative error.
pub const DEFAULT_PRECISION: u32 = 5;

/// The quantiles every report extracts, in order.
pub const REPORT_QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

/// A log-bucketed histogram of `u64` latencies (cycles).
///
/// ```
/// use csim_obs::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in [10, 20, 20, 200, 5000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), 10);
/// assert_eq!(h.quantile(0.5), 20);
/// assert!(h.quantile(0.999) >= 5000);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    precision: u32,
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// A histogram at [`DEFAULT_PRECISION`].
    pub fn new() -> Self {
        Self::with_precision(DEFAULT_PRECISION)
    }

    /// A histogram with `2^precision` sub-buckets per octave
    /// (`precision` clamped to `[1, 12]`). Higher precision trades
    /// memory (one `u64` per bucket) for tighter quantiles.
    pub fn with_precision(precision: u32) -> Self {
        let precision = precision.clamp(1, 12);
        let m = 1usize << precision;
        // Octave 0 holds [0, 2^p) exactly; octaves 1..=(64-p) each hold
        // m sub-buckets, covering the full u64 range.
        let buckets = m + (64 - precision as usize) * m;
        LatencyHistogram {
            precision,
            counts: vec![0; buckets],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Sub-bucket precision in bits.
    pub fn precision(&self) -> u32 {
        self.precision
    }

    fn index_of(&self, value: u64) -> usize {
        let p = self.precision;
        let m = 1u64 << p;
        if value < m {
            return value as usize;
        }
        // 2^e <= value < 2^(e+1), e >= p. The top p bits after the MSB
        // select the sub-bucket.
        let e = 63 - value.leading_zeros();
        let sub = (value >> (e - p)) - m; // in [0, m)
        (m + (e - p) as u64 * m + sub) as usize
    }

    /// Lowest value mapping to bucket `i`.
    fn bucket_low(&self, i: usize) -> u64 {
        let p = self.precision;
        let m = 1u64 << p;
        if (i as u64) < m {
            return i as u64;
        }
        let k = (i as u64 - m) / m + 1; // octave, >= 1
        let sub = (i as u64 - m) % m;
        (m + sub) << (k - 1)
    }

    /// Highest value mapping to bucket `i`.
    fn bucket_high(&self, i: usize) -> u64 {
        let p = self.precision;
        let m = 1u64 << p;
        if (i as u64) < m {
            return i as u64;
        }
        let k = (i as u64 - m) / m + 1;
        let sub = (i as u64 - m) % m;
        // The topmost bucket's exclusive upper bound is 2^64: compute in
        // u128 and clamp.
        let hi = (u128::from(m + sub + 1) << (k - 1)) - 1;
        hi.min(u128::from(u64::MAX)) as u64
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let i = self.index_of(value);
        // analyze: total — index_of maps every u64 into the fixed bucket grid counts was allocated with
        self.counts[i] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values (not bucketed) — the
    /// reconciliation anchor for cycle-attribution: a profiler that
    /// splits the same latencies into components must produce per-class
    /// component sums equal to this, cycle for cycle.
    pub fn total(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 { 0 } else { self.min }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded values (exact, not bucketed;
    /// 0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the `ceil(q * count)`-th smallest sample, so
    /// the result is within one bucket's width (relative error
    /// `2^-precision`) of the exact order statistic. Returns 0 when
    /// empty; `q >= 1` returns the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q.max(0.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                return self.bucket_high(i).min(self.max);
            }
        }
        self.max // unreachable if counters are consistent
    }

    /// Accumulates `other` into `self`. Merging is element-wise, so it
    /// is associative and commutative and equals recording the union of
    /// both sample sets.
    ///
    /// # Panics
    ///
    /// Panics if the precisions differ (the bucket layouts would not
    /// line up).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(
            self.precision, other.precision,
            "cannot merge histograms of different precisions"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(low, high, count)` triples in ascending
    /// order — the compact form the JSON export uses.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_low(i), self.bucket_high(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32 {
            h.record(v);
        }
        // Under 2^5 every bucket is unit width: quantiles are exact.
        assert_eq!(h.quantile(1.0 / 32.0), 0);
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn buckets_partition_the_value_range() {
        let h = LatencyHistogram::with_precision(3);
        let mut prev_high: Option<u64> = None;
        for i in 0..h.counts.len() {
            let (lo, hi) = (h.bucket_low(i), h.bucket_high(i));
            assert!(lo <= hi, "bucket {i} inverted: [{lo}, {hi}]");
            if let Some(ph) = prev_high {
                assert_eq!(lo, ph + 1, "gap or overlap before bucket {i}");
            }
            prev_high = Some(hi);
        }
        assert_eq!(prev_high, Some(u64::MAX));
    }

    #[test]
    fn index_maps_values_into_their_own_bucket() {
        let h = LatencyHistogram::new();
        for v in [0, 1, 31, 32, 33, 100, 1023, 1024, 123_456_789, u64::MAX] {
            let i = h.index_of(v);
            assert!(h.bucket_low(i) <= v && v <= h.bucket_high(i), "value {v} bucket {i}");
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        let h = LatencyHistogram::new(); // p = 5
        for i in 0..h.counts.len() {
            let (lo, hi) = (h.bucket_low(i), h.bucket_high(i));
            if lo >= 32 {
                let width = hi - lo + 1;
                assert!(
                    (width as f64) <= lo as f64 / 32.0,
                    "bucket [{lo}, {hi}] wider than 2^-5 relative"
                );
            }
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 500u64), (0.9, 900), (0.99, 990), (0.999, 999)] {
            let est = h.quantile(q);
            let err = est.abs_diff(exact) as f64 / exact as f64;
            assert!(err <= 1.0 / 32.0, "q={q}: est {est} vs exact {exact}");
        }
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.min(), 1);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for v in [5u64, 80, 300] {
            a.record(v);
            all.record(v);
        }
        for v in [7u64, 80, 9000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.total(), 5 + 80 + 300 + 7 + 80 + 9000);
    }

    #[test]
    #[should_panic(expected = "different precisions")]
    fn merging_mismatched_precisions_panics() {
        let mut a = LatencyHistogram::with_precision(4);
        a.merge(&LatencyHistogram::with_precision(6));
    }

    #[test]
    fn nonzero_buckets_cover_all_samples() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 1, 1, 64, 64, 100_000] {
            h.record(v);
        }
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets.iter().map(|&(_, _, c)| c).sum::<u64>(), 6);
        assert_eq!(buckets[0], (1, 1, 3));
        assert!(buckets.windows(2).all(|w| w[0].1 < w[1].0), "ascending, disjoint");
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
