//! A dependency-free JSON document builder and validity checker.
//!
//! The workspace builds hermetically (no external crates), so this
//! module hand-rolls the two halves machine-readable reports need:
//!
//! * [`Json`] — an ordered document tree with a deterministic writer:
//!   object keys keep insertion order and numbers are formatted with
//!   Rust's shortest-round-trip `Display`, so identical inputs always
//!   produce byte-identical output (the export-determinism tests rely
//!   on this).
//! * [`validate`] / [`validate_jsonl`] — a minimal recursive-descent
//!   well-formedness checker used by the CI smoke run and the export
//!   tests. It checks syntax only; it does not build a tree.

/// An ordered JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters, latencies).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float; non-finite values serialize as `null` (JSON has no
    /// NaN/Infinity).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs (convenience constructor).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Appends a key/value pair to an object.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value)),
            // lint: allow(no-panic) — documented builder-misuse panic; a non-object receiver is a bug in the exporter itself
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // Rust's Display is shortest-round-trip and prints
                    // integral floats without a fraction ("2"), which is
                    // still a valid JSON number.
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes compactly (no whitespace), deterministically; this is
/// what `Json::to_string()` produces.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a document failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth the checker accepts (guards its own stack).
const MAX_DEPTH: usize = 128;

/// Checks that `text` is exactly one well-formed JSON value (plus
/// surrounding whitespace).
///
/// # Errors
///
/// A [`JsonError`] locating the first problem.
///
/// ```
/// use csim_obs::json::validate;
/// assert!(validate(r#"{"a":[1,2.5,null],"b":"x\n"}"#).is_ok());
/// assert!(validate("{\"a\":}").is_err());
/// ```
pub fn validate(text: &str) -> Result<(), JsonError> {
    let b = text.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos, 0)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(err(pos, "trailing characters after the document"));
    }
    Ok(())
}

/// Checks that every non-empty line of `text` is a well-formed JSON
/// value (the JSONL trace format).
///
/// # Errors
///
/// The first offending line's error, with the line number prepended.
pub fn validate_jsonl(text: &str) -> Result<(), JsonError> {
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate(line).map_err(|e| JsonError {
            at: e.at,
            message: format!("line {}: {}", i + 1, e.message),
        })?;
    }
    Ok(())
}

fn err(at: usize, message: impl Into<String>) -> JsonError {
    JsonError { at, message: message.into() }
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

/// Parses one value starting at `pos`, returning the position after it.
fn value(b: &[u8], pos: usize, depth: usize) -> Result<usize, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(pos, "nesting too deep"));
    }
    match b.get(pos) {
        None => Err(err(pos, "expected a value, found end of input")),
        Some(b'{') => {
            let mut pos = skip_ws(b, pos + 1);
            if b.get(pos) == Some(&b'}') {
                return Ok(pos + 1);
            }
            loop {
                if b.get(pos) != Some(&b'"') {
                    return Err(err(pos, "expected an object key string"));
                }
                pos = string(b, pos)?;
                pos = skip_ws(b, pos);
                if b.get(pos) != Some(&b':') {
                    return Err(err(pos, "expected ':' after object key"));
                }
                pos = value(b, skip_ws(b, pos + 1), depth + 1)?;
                pos = skip_ws(b, pos);
                match b.get(pos) {
                    Some(b',') => pos = skip_ws(b, pos + 1),
                    Some(b'}') => return Ok(pos + 1),
                    _ => return Err(err(pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(b'[') => {
            let mut pos = skip_ws(b, pos + 1);
            if b.get(pos) == Some(&b']') {
                return Ok(pos + 1);
            }
            loop {
                pos = value(b, pos, depth + 1)?;
                pos = skip_ws(b, pos);
                match b.get(pos) {
                    Some(b',') => pos = skip_ws(b, pos + 1),
                    Some(b']') => return Ok(pos + 1),
                    _ => return Err(err(pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(err(pos, format!("unexpected byte 0x{c:02x}"))),
    }
}

fn literal(b: &[u8], pos: usize, lit: &str) -> Result<usize, JsonError> {
    if b[pos..].starts_with(lit.as_bytes()) {
        Ok(pos + lit.len())
    } else {
        Err(err(pos, format!("expected '{lit}'")))
    }
}

fn string(b: &[u8], pos: usize) -> Result<usize, JsonError> {
    debug_assert_eq!(b[pos], b'"');
    let mut pos = pos + 1;
    while let Some(&c) = b.get(pos) {
        match c {
            b'"' => return Ok(pos + 1),
            b'\\' => match b.get(pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 2,
                Some(b'u') => {
                    let hex = b.get(pos + 2..pos + 6).ok_or_else(|| {
                        err(pos, "truncated \\u escape")
                    })?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(err(pos, "bad \\u escape"));
                    }
                    pos += 6;
                }
                _ => return Err(err(pos, "bad escape sequence")),
            },
            c if c < 0x20 => return Err(err(pos, "raw control character in string")),
            _ => pos += 1,
        }
    }
    Err(err(pos, "unterminated string"))
}

fn number(b: &[u8], pos: usize) -> Result<usize, JsonError> {
    let start = pos;
    let mut pos = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    let int_start = pos;
    while pos < b.len() && b[pos].is_ascii_digit() {
        pos += 1;
    }
    if pos == int_start {
        return Err(err(start, "malformed number"));
    }
    // No leading zeros (except "0" itself).
    if b[int_start] == b'0' && pos - int_start > 1 {
        return Err(err(start, "leading zero in number"));
    }
    if b.get(pos) == Some(&b'.') {
        pos += 1;
        let frac_start = pos;
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
        if pos == frac_start {
            return Err(err(start, "missing digits after decimal point"));
        }
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        let exp_start = pos;
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
        if pos == exp_start {
            return Err(err(start, "missing exponent digits"));
        }
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_validates() {
        let doc = Json::obj([
            ("name", Json::str("csim")),
            ("count", Json::UInt(42)),
            ("neg", Json::Int(-7)),
            ("pi", Json::Float(3.25)),
            ("nan", Json::Float(f64::NAN)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::UInt(1), Json::str("x\"y\n")])),
            ("nested", Json::obj([("k", Json::Arr(vec![]))])),
        ]);
        let s = doc.to_string();
        validate(&s).unwrap();
        assert!(s.contains("\"nan\":null"));
        assert!(s.contains("\"pi\":3.25"));
        assert!(s.contains("\"x\\\"y\\n\""));
    }

    #[test]
    fn writer_is_deterministic_and_order_preserving() {
        let mk = || {
            Json::obj([("b", Json::UInt(1)), ("a", Json::UInt(2))])
        };
        assert_eq!(mk().to_string(), "{\"b\":1,\"a\":2}");
        assert_eq!(mk().to_string(), mk().to_string());
    }

    #[test]
    fn integral_floats_are_valid_json() {
        let s = Json::Float(2.0).to_string();
        assert_eq!(s, "2");
        validate(&s).unwrap();
    }

    #[test]
    fn control_characters_are_escaped() {
        let s = Json::str("a\u{1}b").to_string();
        assert_eq!(s, "\"a\\u0001b\"");
        validate(&s).unwrap();
    }

    #[test]
    fn validator_accepts_standard_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e+3",
            "0",
            "[]",
            "{}",
            "  [1, 2, {\"a\": [null]}]  ",
            "\"\\u00e9\\t\"",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\\u12g4\"",
            "nulL",
            "[1] extra",
            "\"raw\u{1}\"",
        ] {
            assert!(validate(doc).is_err(), "accepted: {doc:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded_not_a_stack_overflow() {
        let deep = format!("{}1{}", "[".repeat(500), "]".repeat(500));
        let e = validate(&deep).unwrap_err();
        assert!(e.message.contains("deep"));
    }

    #[test]
    fn jsonl_checks_each_line() {
        validate_jsonl("{\"a\":1}\n{\"b\":2}\n\n").unwrap();
        let e = validate_jsonl("{\"a\":1}\n{oops}\n").unwrap_err();
        assert!(e.message.contains("line 2"));
    }

    #[test]
    fn push_extends_objects() {
        let mut o = Json::obj([("a", Json::UInt(1))]);
        o.push("b", Json::UInt(2));
        assert_eq!(o.to_string(), "{\"a\":1,\"b\":2}");
    }
}
