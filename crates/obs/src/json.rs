//! A dependency-free JSON document builder and validity checker.
//!
//! The workspace builds hermetically (no external crates), so this
//! module hand-rolls the two halves machine-readable reports need:
//!
//! * [`Json`] — an ordered document tree with a deterministic writer:
//!   object keys keep insertion order and numbers are formatted with
//!   Rust's shortest-round-trip `Display`, so identical inputs always
//!   produce byte-identical output (the export-determinism tests rely
//!   on this).
//! * [`validate`] / [`validate_jsonl`] — a minimal recursive-descent
//!   well-formedness checker used by the CI smoke run and the export
//!   tests. It checks syntax only; it does not build a tree.
//! * [`parse`] — a tree-building reader for documents this writer
//!   produced. For writer-canonical input (no whitespace, no exponent
//!   notation, shortest-round-trip floats, minimal escapes) the
//!   round-trip `parse(s)?.to_string() == s` holds byte-for-byte — the
//!   property the sweep shard-merge and checkpoint-resume paths rely
//!   on to reassemble reports that are indistinguishable from an
//!   uninterrupted single-process run.

/// An ordered JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters, latencies).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float; non-finite values serialize as `null` (JSON has no
    /// NaN/Infinity).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs (convenience constructor).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Appends a key/value pair to an object.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value)),
            // lint: allow(no-panic) — documented builder-misuse panic; a non-object receiver is a bug in the exporter itself
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Looks up `key` in an object. `None` for missing keys and for
    /// non-object receivers, so lookups chain without panicking.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The unsigned-integer payload, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // Rust's Display is shortest-round-trip and prints
                    // integral floats without a fraction ("2"), which is
                    // still a valid JSON number.
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes compactly (no whitespace), deterministically; this is
/// what `Json::to_string()` produces.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a document failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth the checker accepts (guards its own stack).
const MAX_DEPTH: usize = 128;

/// Checks that `text` is exactly one well-formed JSON value (plus
/// surrounding whitespace).
///
/// # Errors
///
/// A [`JsonError`] locating the first problem.
///
/// ```
/// use csim_obs::json::validate;
/// assert!(validate(r#"{"a":[1,2.5,null],"b":"x\n"}"#).is_ok());
/// assert!(validate("{\"a\":}").is_err());
/// ```
pub fn validate(text: &str) -> Result<(), JsonError> {
    let b = text.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos, 0)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(err(pos, "trailing characters after the document"));
    }
    Ok(())
}

/// Checks that every non-empty line of `text` is a well-formed JSON
/// value (the JSONL trace format).
///
/// # Errors
///
/// The first offending line's error, with the line number prepended.
pub fn validate_jsonl(text: &str) -> Result<(), JsonError> {
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate(line).map_err(|e| JsonError {
            at: e.at,
            message: format!("line {}: {}", i + 1, e.message),
        })?;
    }
    Ok(())
}

fn err(at: usize, message: impl Into<String>) -> JsonError {
    JsonError { at, message: message.into() }
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

/// Parses one value starting at `pos`, returning the position after it.
fn value(b: &[u8], pos: usize, depth: usize) -> Result<usize, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(pos, "nesting too deep"));
    }
    match b.get(pos) {
        None => Err(err(pos, "expected a value, found end of input")),
        Some(b'{') => {
            let mut pos = skip_ws(b, pos + 1);
            if b.get(pos) == Some(&b'}') {
                return Ok(pos + 1);
            }
            loop {
                if b.get(pos) != Some(&b'"') {
                    return Err(err(pos, "expected an object key string"));
                }
                pos = string(b, pos)?;
                pos = skip_ws(b, pos);
                if b.get(pos) != Some(&b':') {
                    return Err(err(pos, "expected ':' after object key"));
                }
                pos = value(b, skip_ws(b, pos + 1), depth + 1)?;
                pos = skip_ws(b, pos);
                match b.get(pos) {
                    Some(b',') => pos = skip_ws(b, pos + 1),
                    Some(b'}') => return Ok(pos + 1),
                    _ => return Err(err(pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(b'[') => {
            let mut pos = skip_ws(b, pos + 1);
            if b.get(pos) == Some(&b']') {
                return Ok(pos + 1);
            }
            loop {
                pos = value(b, pos, depth + 1)?;
                pos = skip_ws(b, pos);
                match b.get(pos) {
                    Some(b',') => pos = skip_ws(b, pos + 1),
                    Some(b']') => return Ok(pos + 1),
                    _ => return Err(err(pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(err(pos, format!("unexpected byte 0x{c:02x}"))),
    }
}

fn literal(b: &[u8], pos: usize, lit: &str) -> Result<usize, JsonError> {
    // analyze: total — pos <= b.len() is the parser cursor invariant and a start-bound slice at the end is empty, not out of range
    if b[pos..].starts_with(lit.as_bytes()) {
        Ok(pos + lit.len())
    } else {
        Err(err(pos, format!("expected '{lit}'")))
    }
}

fn string(b: &[u8], pos: usize) -> Result<usize, JsonError> {
    debug_assert_eq!(b[pos], b'"');
    let mut pos = pos + 1;
    while let Some(&c) = b.get(pos) {
        match c {
            b'"' => return Ok(pos + 1),
            b'\\' => match b.get(pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 2,
                Some(b'u') => {
                    let hex = b.get(pos + 2..pos + 6).ok_or_else(|| {
                        err(pos, "truncated \\u escape")
                    })?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(err(pos, "bad \\u escape"));
                    }
                    pos += 6;
                }
                _ => return Err(err(pos, "bad escape sequence")),
            },
            c if c < 0x20 => return Err(err(pos, "raw control character in string")),
            _ => pos += 1,
        }
    }
    Err(err(pos, "unterminated string"))
}

fn number(b: &[u8], pos: usize) -> Result<usize, JsonError> {
    let start = pos;
    let mut pos = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    let int_start = pos;
    while pos < b.len() && b[pos].is_ascii_digit() {
        pos += 1;
    }
    if pos == int_start {
        return Err(err(start, "malformed number"));
    }
    // No leading zeros (except "0" itself).
    // analyze: total — the digit loops only advance pos while in bounds, so int_start <= pos <= b.len() and both cuts are ASCII boundaries
    if b[int_start] == b'0' && pos - int_start > 1 {
        return Err(err(start, "leading zero in number"));
    }
    if b.get(pos) == Some(&b'.') {
        pos += 1;
        let frac_start = pos;
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
        if pos == frac_start {
            return Err(err(start, "missing digits after decimal point"));
        }
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        let exp_start = pos;
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
        if pos == exp_start {
            return Err(err(start, "missing exponent digits"));
        }
    }
    Ok(pos)
}

/// Parses `text` into a [`Json`] tree.
///
/// Accepts standard JSON. For documents produced by this module's
/// writer the parse is byte-faithful: `parse(s)?.to_string() == s`
/// (numbers are classified back into the writer's `UInt`/`Int`/`Float`
/// forms and strings re-escape identically). Foreign documents parse
/// too, but may re-serialize with different (canonical) bytes.
///
/// # Errors
///
/// A [`JsonError`] locating the first problem.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let b = text.as_bytes();
    let pos = skip_ws(b, 0);
    let (doc, pos) = parse_value(b, pos, 0)?;
    let pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(err(pos, "trailing characters after the document"));
    }
    Ok(doc)
}

fn parse_value(b: &[u8], pos: usize, depth: usize) -> Result<(Json, usize), JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(pos, "nesting too deep"));
    }
    match b.get(pos) {
        None => Err(err(pos, "expected a value, found end of input")),
        Some(b'{') => {
            let mut pairs = Vec::new();
            let mut pos = skip_ws(b, pos + 1);
            if b.get(pos) == Some(&b'}') {
                return Ok((Json::Obj(pairs), pos + 1));
            }
            loop {
                if b.get(pos) != Some(&b'"') {
                    return Err(err(pos, "expected an object key string"));
                }
                let (key, after_key) = parse_string(b, pos)?;
                pos = skip_ws(b, after_key);
                if b.get(pos) != Some(&b':') {
                    return Err(err(pos, "expected ':' after object key"));
                }
                let (val, after_val) = parse_value(b, skip_ws(b, pos + 1), depth + 1)?;
                pairs.push((key, val));
                pos = skip_ws(b, after_val);
                match b.get(pos) {
                    Some(b',') => pos = skip_ws(b, pos + 1),
                    Some(b'}') => return Ok((Json::Obj(pairs), pos + 1)),
                    _ => return Err(err(pos, "expected ',' or '}' in object")),
                }
            }
        }
        Some(b'[') => {
            let mut items = Vec::new();
            let mut pos = skip_ws(b, pos + 1);
            if b.get(pos) == Some(&b']') {
                return Ok((Json::Arr(items), pos + 1));
            }
            loop {
                let (val, after) = parse_value(b, pos, depth + 1)?;
                items.push(val);
                pos = skip_ws(b, after);
                match b.get(pos) {
                    Some(b',') => pos = skip_ws(b, pos + 1),
                    Some(b']') => return Ok((Json::Arr(items), pos + 1)),
                    _ => return Err(err(pos, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'"') => {
            let (s, after) = parse_string(b, pos)?;
            Ok((Json::Str(s), after))
        }
        Some(b't') => Ok((Json::Bool(true), literal(b, pos, "true")?)),
        Some(b'f') => Ok((Json::Bool(false), literal(b, pos, "false")?)),
        Some(b'n') => Ok((Json::Null, literal(b, pos, "null")?)),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let after = number(b, pos)?;
            // The number grammar only admits ASCII, so the slice is
            // valid UTF-8 by construction.
            // analyze: total — number() advanced the cursor over at least one in-bounds byte, so the slice ends within b
            let raw = std::str::from_utf8(&b[pos..after])
                .map_err(|_| err(pos, "malformed number"))?;
            Ok((classify_number(raw, pos)?, after))
        }
        Some(c) => Err(err(pos, format!("unexpected byte 0x{c:02x}"))),
    }
}

/// Maps a validated number token back onto the writer's variants:
/// plain non-negative integers are `UInt`, plain negative integers are
/// `Int`, anything fractional/exponential (or integral but too large)
/// is `Float` — exactly the classification the writer serializes from,
/// so writer output round-trips through the same variant.
fn classify_number(raw: &str, pos: usize) -> Result<Json, JsonError> {
    let plain_integer = !raw.contains(['.', 'e', 'E']);
    if plain_integer {
        if raw.starts_with('-') {
            if let Ok(i) = raw.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        } else if let Ok(u) = raw.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
    }
    raw.parse::<f64>().map(Json::Float).map_err(|_| err(pos, "malformed number"))
}

/// Decodes a string token starting at the opening quote, returning the
/// unescaped payload and the position after the closing quote.
fn parse_string(b: &[u8], pos: usize) -> Result<(String, usize), JsonError> {
    debug_assert_eq!(b.get(pos), Some(&b'"'));
    let mut out = Vec::new();
    let mut pos = pos + 1;
    loop {
        match b.get(pos) {
            None => return Err(err(pos, "unterminated string")),
            Some(b'"') => {
                let s = String::from_utf8(out)
                    .map_err(|_| err(pos, "string is not valid UTF-8"))?;
                return Ok((s, pos + 1));
            }
            Some(b'\\') => match b.get(pos + 1) {
                Some(b'"') => { out.push(b'"'); pos += 2; }
                Some(b'\\') => { out.push(b'\\'); pos += 2; }
                Some(b'/') => { out.push(b'/'); pos += 2; }
                Some(b'b') => { out.push(0x08); pos += 2; }
                Some(b'f') => { out.push(0x0C); pos += 2; }
                Some(b'n') => { out.push(b'\n'); pos += 2; }
                Some(b'r') => { out.push(b'\r'); pos += 2; }
                Some(b't') => { out.push(b'\t'); pos += 2; }
                Some(b'u') => {
                    let (c, after) = parse_unicode_escape(b, pos)?;
                    let mut buf = [0u8; 4];
                    out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    pos = after;
                }
                _ => return Err(err(pos, "bad escape sequence")),
            },
            Some(&c) if c < 0x20 => return Err(err(pos, "raw control character in string")),
            Some(&c) => { out.push(c); pos += 1; }
        }
    }
}

/// Decodes `\uXXXX` at `pos` (pointing at the backslash), combining a
/// trailing low surrogate when the unit is a high surrogate.
fn parse_unicode_escape(b: &[u8], pos: usize) -> Result<(char, usize), JsonError> {
    let unit = hex4(b, pos + 2).ok_or_else(|| err(pos, "truncated \\u escape"))?;
    if (0xD800..0xDC00).contains(&unit) {
        if b.get(pos + 6) != Some(&b'\\') || b.get(pos + 7) != Some(&b'u') {
            return Err(err(pos, "lone high surrogate"));
        }
        let low = hex4(b, pos + 8).ok_or_else(|| err(pos, "truncated \\u escape"))?;
        if !(0xDC00..0xE000).contains(&low) {
            return Err(err(pos, "invalid low surrogate"));
        }
        let scalar = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
        let c = char::from_u32(scalar).ok_or_else(|| err(pos, "bad \\u escape"))?;
        return Ok((c, pos + 12));
    }
    if (0xDC00..0xE000).contains(&unit) {
        return Err(err(pos, "lone low surrogate"));
    }
    let c = char::from_u32(unit).ok_or_else(|| err(pos, "bad \\u escape"))?;
    Ok((c, pos + 6))
}

fn hex4(b: &[u8], pos: usize) -> Option<u32> {
    let hex = b.get(pos..pos + 4)?;
    let mut v = 0u32;
    for &d in hex {
        v = (v << 4) | (d as char).to_digit(16)?;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_validates() {
        let doc = Json::obj([
            ("name", Json::str("csim")),
            ("count", Json::UInt(42)),
            ("neg", Json::Int(-7)),
            ("pi", Json::Float(3.25)),
            ("nan", Json::Float(f64::NAN)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::UInt(1), Json::str("x\"y\n")])),
            ("nested", Json::obj([("k", Json::Arr(vec![]))])),
        ]);
        let s = doc.to_string();
        validate(&s).unwrap();
        assert!(s.contains("\"nan\":null"));
        assert!(s.contains("\"pi\":3.25"));
        assert!(s.contains("\"x\\\"y\\n\""));
    }

    #[test]
    fn writer_is_deterministic_and_order_preserving() {
        let mk = || {
            Json::obj([("b", Json::UInt(1)), ("a", Json::UInt(2))])
        };
        assert_eq!(mk().to_string(), "{\"b\":1,\"a\":2}");
        assert_eq!(mk().to_string(), mk().to_string());
    }

    #[test]
    fn integral_floats_are_valid_json() {
        let s = Json::Float(2.0).to_string();
        assert_eq!(s, "2");
        validate(&s).unwrap();
    }

    #[test]
    fn control_characters_are_escaped() {
        let s = Json::str("a\u{1}b").to_string();
        assert_eq!(s, "\"a\\u0001b\"");
        validate(&s).unwrap();
    }

    #[test]
    fn validator_accepts_standard_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e+3",
            "0",
            "[]",
            "{}",
            "  [1, 2, {\"a\": [null]}]  ",
            "\"\\u00e9\\t\"",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\\u12g4\"",
            "nulL",
            "[1] extra",
            "\"raw\u{1}\"",
        ] {
            assert!(validate(doc).is_err(), "accepted: {doc:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded_not_a_stack_overflow() {
        let deep = format!("{}1{}", "[".repeat(500), "]".repeat(500));
        let e = validate(&deep).unwrap_err();
        assert!(e.message.contains("deep"));
    }

    #[test]
    fn jsonl_checks_each_line() {
        validate_jsonl("{\"a\":1}\n{\"b\":2}\n\n").unwrap();
        let e = validate_jsonl("{\"a\":1}\n{oops}\n").unwrap_err();
        assert!(e.message.contains("line 2"));
    }

    #[test]
    fn push_extends_objects() {
        let mut o = Json::obj([("a", Json::UInt(1))]);
        o.push("b", Json::UInt(2));
        assert_eq!(o.to_string(), "{\"a\":1,\"b\":2}");
    }

    #[test]
    fn accessors_navigate_without_panicking() {
        let doc = Json::obj([
            ("name", Json::str("x")),
            ("n", Json::UInt(7)),
            ("arr", Json::Arr(vec![Json::UInt(1)])),
        ]);
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("arr").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::UInt(1).get("k"), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(Json::Int(5).as_u64(), Some(5));
    }

    #[test]
    fn parse_round_trips_writer_output_byte_for_byte() {
        let doc = Json::obj([
            ("name", Json::str("csim \"quoted\"\n\ttab")),
            ("count", Json::UInt(u64::MAX)),
            ("neg", Json::Int(i64::MIN)),
            ("pi", Json::Float(3.25)),
            ("tiny", Json::Float(0.1)),
            ("nan", Json::Float(f64::NAN)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("ctrl", Json::str("a\u{1}b")),
            ("arr", Json::Arr(vec![Json::UInt(1), Json::Float(-2.5), Json::Arr(vec![])])),
            ("nested", Json::obj([("k", Json::obj([]))])),
        ]);
        let s = doc.to_string();
        let reparsed = parse(&s).unwrap();
        assert_eq!(reparsed.to_string(), s, "writer output must round-trip byte-for-byte");
    }

    #[test]
    fn parse_classifies_numbers_like_the_writer() {
        assert_eq!(parse("7").unwrap(), Json::UInt(7));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("7.5").unwrap(), Json::Float(7.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        // Too large for i64: falls back to float rather than erroring.
        assert!(matches!(parse("-99999999999999999999").unwrap(), Json::Float(_)));
        assert_eq!(parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
    }

    #[test]
    fn parse_decodes_escapes_and_surrogates() {
        assert_eq!(parse(r#""é\t\/""#).unwrap(), Json::str("é\t/"));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::str("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\ude00""#).is_err(), "lone low surrogate");
        assert!(parse(r#""\ud83dA""#).is_err(), "bad low surrogate");
    }

    #[test]
    fn parse_rejects_what_validate_rejects() {
        for doc in ["", "{", "[1,]", "{\"a\":}", "01", "1.", "nulL", "[1] extra"] {
            assert!(parse(doc).is_err(), "accepted: {doc:?}");
        }
        let deep = format!("{}1{}", "[".repeat(500), "]".repeat(500));
        assert!(parse(&deep).is_err(), "deep nesting must be bounded");
    }

    #[test]
    fn parse_accepts_whitespace_but_round_trip_is_canonical() {
        let doc = parse("  { \"a\" : [ 1 , 2 ] }  ").unwrap();
        assert_eq!(doc.to_string(), "{\"a\":[1,2]}");
    }
}
