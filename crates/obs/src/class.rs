//! The observability layer's vocabulary of latency classes.

use csim_proc::StallClass;

/// Latency classes the observer breaks distributions down by.
///
/// The first four mirror [`StallClass`] (the paper's execution-time
/// buckets); the last two separate events the aggregate buckets fold
/// away: ownership upgrades (charged as local or 2-hop stalls) and the
/// extra cycles the fault model's NACK/retry path adds on top of a
/// transaction's fault-free latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// An L1 miss serviced by the node's own L2.
    L2Hit,
    /// A miss serviced by local memory (including RAC hits).
    Local,
    /// A clean miss serviced by a remote home (2-hop).
    RemoteClean,
    /// A miss serviced by dirty data in a remote cache (3-hop).
    RemoteDirty,
    /// A store's ownership upgrade (invalidation round trip).
    Upgrade,
    /// Extra latency contributed by directory NACKs, backoff and
    /// retries (fault injection only).
    NackRetry,
}

impl MissClass {
    /// Every class, in display order. Histogram sets, JSON reports and
    /// trace filters all iterate in this order so exports are stable.
    pub const ALL: [MissClass; 6] = [
        MissClass::L2Hit,
        MissClass::Local,
        MissClass::RemoteClean,
        MissClass::RemoteDirty,
        MissClass::Upgrade,
        MissClass::NackRetry,
    ];

    /// Number of classes (array-index domain for per-class storage).
    pub const COUNT: usize = Self::ALL.len();

    /// A dense index in `0..COUNT`, matching the order of [`Self::ALL`].
    pub fn index(self) -> usize {
        match self {
            MissClass::L2Hit => 0,
            MissClass::Local => 1,
            MissClass::RemoteClean => 2,
            MissClass::RemoteDirty => 3,
            MissClass::Upgrade => 4,
            MissClass::NackRetry => 5,
        }
    }

    /// The stable machine-readable name used in JSON, JSONL and the
    /// `--trace-filter` CLI syntax.
    pub fn as_str(self) -> &'static str {
        match self {
            MissClass::L2Hit => "l2-hit",
            MissClass::Local => "local",
            MissClass::RemoteClean => "remote-clean",
            MissClass::RemoteDirty => "remote-dirty",
            MissClass::Upgrade => "upgrade",
            MissClass::NackRetry => "nack-retry",
        }
    }

    /// Parses a class name as written by [`Self::as_str`]
    /// (case-insensitive; `_` accepted for `-`).
    ///
    /// # Errors
    ///
    /// An error message listing the valid names.
    pub fn parse(s: &str) -> Result<MissClass, String> {
        let norm = s.trim().to_ascii_lowercase().replace('_', "-");
        Self::ALL
            .into_iter()
            .find(|c| c.as_str() == norm)
            .ok_or_else(|| {
                let names: Vec<&str> = Self::ALL.iter().map(|c| c.as_str()).collect();
                format!("unknown miss class '{s}' (expected one of: {})", names.join(", "))
            })
    }

    /// The class a stall bucket maps to (upgrades and NACK/retry extra
    /// are refinements the caller must supply explicitly).
    pub fn from_stall(class: StallClass) -> MissClass {
        match class {
            StallClass::L2Hit => MissClass::L2Hit,
            StallClass::Local => MissClass::Local,
            StallClass::RemoteClean => MissClass::RemoteClean,
            StallClass::RemoteDirty => MissClass::RemoteDirty,
        }
    }
}

impl std::fmt::Display for MissClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_are_dense_and_match_all_order() {
        for (i, c) in MissClass::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn names_round_trip() {
        for c in MissClass::ALL {
            assert_eq!(MissClass::parse(c.as_str()).unwrap(), c);
        }
        assert_eq!(MissClass::parse("REMOTE_DIRTY").unwrap(), MissClass::RemoteDirty);
        assert!(MissClass::parse("bogus").unwrap_err().contains("l2-hit"));
    }

    #[test]
    fn stall_classes_map_onto_the_first_four() {
        assert_eq!(MissClass::from_stall(StallClass::L2Hit), MissClass::L2Hit);
        assert_eq!(MissClass::from_stall(StallClass::Local), MissClass::Local);
        assert_eq!(MissClass::from_stall(StallClass::RemoteClean), MissClass::RemoteClean);
        assert_eq!(MissClass::from_stall(StallClass::RemoteDirty), MissClass::RemoteDirty);
    }
}
