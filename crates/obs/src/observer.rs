//! The observer: configuration and the recording façade the simulator
//! drives.
//!
//! # Zero-overhead contract
//!
//! The observer is strictly read-only with respect to the simulation:
//! it owns no simulated state, draws no random numbers, and never
//! feeds anything back into timing, so a run's `SimReport` is
//! bit-identical whether an observer is wired in, disabled, or absent.
//! A disabled observer ([`ObsConfig::off`]) additionally does no work
//! beyond an enabled-flag check per hook.

use crate::class::MissClass;
use crate::event::{Event, EventRing, TraceFilter};
use crate::hist::LatencyHistogram;
use crate::json::Json;
use crate::series::{EpochSample, EpochSeries, EpochSnapshot};

/// Event-trace configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity in events.
    pub capacity: usize,
    /// Record-time filter.
    pub filter: TraceFilter,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capacity: EventRing::DEFAULT_CAPACITY, filter: TraceFilter::default() }
    }
}

/// What to observe. Everything defaults to off.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record per-class latency histograms.
    pub histograms: bool,
    /// Close an epoch sample every this many references per node.
    pub epoch: Option<u64>,
    /// Record a structured event trace.
    pub trace: Option<TraceConfig>,
}

impl ObsConfig {
    /// The do-nothing configuration (also `Default`).
    pub fn off() -> Self {
        Self::default()
    }

    /// Whether nothing is enabled.
    pub fn is_off(&self) -> bool {
        !self.histograms && self.epoch.is_none() && self.trace.is_none()
    }
}

/// Everything one observed run produced (borrowed views live on
/// [`Observer`]; this is the owned export).
#[derive(Clone, Debug)]
pub struct Observation {
    /// Per-class latency histograms, in [`MissClass::ALL`] order
    /// (empty when histograms were off).
    pub histograms: Vec<(MissClass, LatencyHistogram)>,
    /// Closed epoch samples (empty when epochs were off).
    pub epochs: Vec<EpochSample>,
    /// Traced events, oldest first (empty when tracing was off).
    pub events: Vec<Event>,
    /// Events displaced from the full ring.
    pub events_dropped: u64,
}

/// The recording façade. The simulator calls the `record_*` hooks on
/// its hot paths; each returns immediately when the corresponding
/// channel is off.
#[derive(Clone, Debug)]
pub struct Observer {
    cfg: ObsConfig,
    /// Per-class histograms, indexed by [`MissClass::index`].
    hists: Option<Vec<LatencyHistogram>>,
    /// Cumulative per-class event counts (cheap; feeds epoch mixes).
    class_counts: [u64; MissClass::COUNT],
    epochs: Option<EpochSeries>,
    ring: Option<EventRing>,
}

impl Default for Observer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Observer {
    /// An observer recording what `cfg` asks for.
    pub fn new(cfg: ObsConfig) -> Self {
        let hists = cfg
            .histograms
            .then(|| (0..MissClass::COUNT).map(|_| LatencyHistogram::new()).collect());
        let epochs = cfg.epoch.map(EpochSeries::new);
        let ring = cfg.trace.as_ref().map(|t| EventRing::new(t.capacity, t.filter.clone()));
        Observer { cfg, hists, class_counts: [0; MissClass::COUNT], epochs, ring }
    }

    /// An observer that records nothing (the default).
    pub fn disabled() -> Self {
        Self::new(ObsConfig::off())
    }

    /// The configuration in force.
    pub fn config(&self) -> &ObsConfig {
        &self.cfg
    }

    /// Whether any channel is recording.
    pub fn is_enabled(&self) -> bool {
        !self.cfg.is_off()
    }

    /// Epoch length when epoch sampling is on (the simulator checks
    /// this each round).
    pub fn epoch_len(&self) -> Option<u64> {
        self.epochs.as_ref().map(EpochSeries::epoch_len)
    }

    /// Whether event tracing is on (lets the simulator skip building
    /// `Event` values entirely).
    pub fn wants_events(&self) -> bool {
        self.ring.is_some()
    }

    /// Records one serviced latency of `class` (histogram + class mix).
    #[inline]
    // analyze: total — MissClass::index() is the variant's position and the per-class arrays hold one slot per variant
    pub fn record_latency(&mut self, class: MissClass, latency: u64) {
        if !self.is_enabled() {
            return;
        }
        self.class_counts[class.index()] += 1;
        if let Some(hists) = &mut self.hists {
            hists[class.index()].record(latency);
        }
    }

    /// Records a structured event (dropped unless tracing is on and
    /// the filter keeps it).
    #[inline]
    pub fn record_event(&mut self, event: Event) {
        if let Some(ring) = &mut self.ring {
            ring.push(event);
        }
    }

    /// Closes an epoch from the simulator's cumulative snapshot.
    pub fn close_epoch(&mut self, snapshot: EpochSnapshot) {
        let counts = self.class_counts;
        if let Some(epochs) = &mut self.epochs {
            epochs.close_epoch(snapshot, counts);
        }
    }

    /// Clears everything recorded (stats-reset semantics; the
    /// configuration is kept).
    pub fn reset(&mut self) {
        if let Some(hists) = &mut self.hists {
            for h in hists {
                *h = LatencyHistogram::new();
            }
        }
        self.class_counts = [0; MissClass::COUNT];
        if let Some(epochs) = &mut self.epochs {
            epochs.reset();
        }
        if let Some(ring) = &mut self.ring {
            ring.reset();
        }
    }

    /// The per-class histogram, when histograms are on.
    pub fn histogram(&self, class: MissClass) -> Option<&LatencyHistogram> {
        // analyze: total — MissClass::index() is the variant's position and the per-class arrays hold one slot per variant
        self.hists.as_ref().map(|h| &h[class.index()])
    }

    /// Cumulative per-class event counts, indexed by
    /// [`MissClass::index`].
    pub fn class_counts(&self) -> [u64; MissClass::COUNT] {
        self.class_counts
    }

    /// Closed epoch samples (empty slice when epochs are off).
    pub fn epoch_samples(&self) -> &[EpochSample] {
        self.epochs.as_ref().map(|e| e.samples()).unwrap_or(&[])
    }

    /// The event ring, when tracing is on.
    pub fn events(&self) -> Option<&EventRing> {
        self.ring.as_ref()
    }

    /// The trace as JSONL (empty string when tracing is off).
    pub fn trace_jsonl(&self) -> String {
        self.ring.as_ref().map(EventRing::to_jsonl).unwrap_or_default()
    }

    /// An owned export of everything recorded.
    pub fn observation(&self) -> Observation {
        Observation {
            histograms: self
                .hists
                .as_ref()
                .map(|hs| {
                    MissClass::ALL.into_iter().map(|c| (c, hs[c.index()].clone())).collect()
                })
                .unwrap_or_default(),
            epochs: self.epoch_samples().to_vec(),
            events: self.ring.as_ref().map(|r| r.iter().copied().collect()).unwrap_or_default(),
            events_dropped: self.ring.as_ref().map_or(0, EventRing::dropped),
        }
    }

    /// The observation sections of the run report, as deterministic
    /// JSON: `histograms` (per class: count/min/max/mean/quantiles plus
    /// compact non-zero buckets) and `epochs` (one object per sample).
    /// Off channels serialize as `null` so a report always has the
    /// same shape.
    pub fn to_json(&self) -> Json {
        let histograms = match &self.hists {
            None => Json::Null,
            Some(hs) => Json::Obj(
                MissClass::ALL
                    .into_iter()
                    // analyze: total — MissClass::index() is the variant's position and the per-class arrays hold one slot per variant
                    .map(|c| (c.as_str().to_string(), histogram_json(&hs[c.index()])))
                    .collect(),
            ),
        };
        let epochs = match &self.epochs {
            None => Json::Null,
            Some(e) => Json::obj([
                ("epoch_len", Json::UInt(e.epoch_len())),
                ("samples", Json::Arr(e.samples().iter().map(epoch_json).collect())),
            ]),
        };
        let trace = match &self.ring {
            None => Json::Null,
            Some(r) => Json::obj([
                ("events_recorded", Json::UInt(r.len() as u64)),
                ("events_dropped", Json::UInt(r.dropped())),
                ("capacity", Json::UInt(r.capacity() as u64)),
            ]),
        };
        Json::obj([("histograms", histograms), ("epochs", epochs), ("trace", trace)])
    }
}

/// One histogram as JSON: summary statistics, report quantiles, and the
/// non-zero buckets as `[low, high, count]` triples.
fn histogram_json(h: &LatencyHistogram) -> Json {
    let mut o = Json::obj([
        ("count", Json::UInt(h.count())),
        ("min", Json::UInt(h.min())),
        ("max", Json::UInt(h.max())),
        ("mean", Json::Float(h.mean())),
    ]);
    for (name, q) in crate::hist::REPORT_QUANTILES {
        o.push(name, Json::UInt(h.quantile(q)));
    }
    o.push(
        "buckets",
        Json::Arr(
            h.nonzero_buckets()
                .map(|(lo, hi, c)| {
                    Json::Arr(vec![Json::UInt(lo), Json::UInt(hi), Json::UInt(c)])
                })
                .collect(),
        ),
    );
    o
}

fn epoch_json(s: &EpochSample) -> Json {
    let mut mix = Json::Obj(Vec::new());
    for c in MissClass::ALL {
        mix.push(c.as_str(), Json::UInt(s.class_counts[c.index()]));
    }
    Json::obj([
        ("index", Json::UInt(s.index)),
        ("end_ref", Json::UInt(s.end_ref)),
        ("instructions", Json::UInt(s.instructions)),
        ("cycles", Json::Float(s.cycles)),
        (
            "stall",
            Json::obj([
                ("busy", Json::Float(s.stall.busy_cycles)),
                ("l2_hit", Json::Float(s.stall.l2_hit_cycles)),
                ("local", Json::Float(s.stall.local_cycles)),
                ("remote_clean", Json::Float(s.stall.remote_clean_cycles)),
                ("remote_dirty", Json::Float(s.stall.remote_dirty_cycles)),
            ]),
        ),
        ("ipc", Json::Float(s.ipc)),
        ("mpki", Json::Float(s.mpki)),
        ("mix", mix),
        ("upgrades", Json::UInt(s.upgrades)),
        ("nacks", Json::UInt(s.nacks)),
        ("retries", Json::UInt(s.retries)),
        ("fault_extra_cycles", Json::UInt(s.fault_extra_cycles)),
        ("retry_rho", Json::Float(s.retry_rho)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::json::validate;

    fn full_cfg() -> ObsConfig {
        ObsConfig {
            histograms: true,
            epoch: Some(100),
            trace: Some(TraceConfig::default()),
        }
    }

    #[test]
    fn disabled_observer_records_nothing() {
        let mut o = Observer::disabled();
        assert!(!o.is_enabled());
        o.record_latency(MissClass::Local, 100);
        o.record_event(Event {
            at: 0,
            node: 0,
            core: 0,
            line: 0,
            kind: EventKind::Writeback,
        });
        o.close_epoch(EpochSnapshot::default());
        assert_eq!(o.class_counts(), [0; 6]);
        assert!(o.histogram(MissClass::Local).is_none());
        assert!(o.epoch_samples().is_empty());
        assert!(o.events().is_none());
        assert_eq!(o.trace_jsonl(), "");
    }

    #[test]
    fn enabled_observer_routes_each_channel() {
        let mut o = Observer::new(full_cfg());
        o.record_latency(MissClass::RemoteDirty, 250);
        o.record_latency(MissClass::RemoteDirty, 275);
        o.record_event(Event {
            at: 1,
            node: 0,
            core: 0,
            line: 0x40,
            kind: EventKind::Miss { class: MissClass::RemoteDirty, latency: 250 },
        });
        o.close_epoch(EpochSnapshot { refs_per_node: 100, ..Default::default() });
        let h = o.histogram(MissClass::RemoteDirty).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(o.epoch_samples().len(), 1);
        assert_eq!(o.epoch_samples()[0].class_counts[MissClass::RemoteDirty.index()], 2);
        assert_eq!(o.events().unwrap().len(), 1);
        let obs = o.observation();
        assert_eq!(obs.histograms.len(), MissClass::COUNT);
        assert_eq!(obs.events.len(), 1);
    }

    #[test]
    fn json_export_validates_in_all_modes() {
        let mut on = Observer::new(full_cfg());
        on.record_latency(MissClass::L2Hit, 25);
        on.close_epoch(EpochSnapshot { refs_per_node: 100, ..Default::default() });
        for o in [&Observer::disabled(), &on] {
            let s = o.to_json().to_string();
            validate(&s).unwrap();
        }
        let s = on.to_json().to_string();
        assert!(s.contains("\"l2-hit\":{\"count\":1"));
        assert!(s.contains("\"epoch_len\":100"));
        let off = Observer::disabled().to_json().to_string();
        assert!(off.contains("\"histograms\":null"));
    }

    #[test]
    fn reset_clears_recordings_but_keeps_config() {
        let mut o = Observer::new(full_cfg());
        o.record_latency(MissClass::Local, 10);
        o.record_event(Event {
            at: 0,
            node: 0,
            core: 0,
            line: 0,
            kind: EventKind::Downgrade,
        });
        o.close_epoch(EpochSnapshot { refs_per_node: 100, ..Default::default() });
        o.reset();
        assert!(o.is_enabled());
        assert_eq!(o.class_counts(), [0; 6]);
        assert_eq!(o.histogram(MissClass::Local).unwrap().count(), 0);
        assert!(o.epoch_samples().is_empty());
        assert_eq!(o.events().unwrap().len(), 0);
    }
}
