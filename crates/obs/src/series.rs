//! Epoch time-series: per-interval samples of the run's vital signs.
//!
//! An epoch is a fixed number of references per node. At each epoch
//! boundary the simulator hands the sampler a cumulative
//! [`EpochSnapshot`] of its counters; the sampler diffs it against the
//! previous snapshot and appends one [`EpochSample`], so warmup drift,
//! steady state and fault-storm windows become visible as curves
//! instead of being folded into end-of-run sums.

use csim_fault::FaultStats;
use csim_proc::ExecBreakdown;

use crate::class::MissClass;

/// Cumulative machine-wide counters at one instant, as the simulator
/// aggregates them. Plain data: the sampler owns the diffing.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EpochSnapshot {
    /// References processed per node so far.
    pub refs_per_node: u64,
    /// Execution-time breakdown summed over all nodes.
    pub breakdown: ExecBreakdown,
    /// Total L2 misses so far.
    pub misses: u64,
    /// Ownership upgrades so far.
    pub upgrades: u64,
    /// Directory NACKs so far.
    pub nacks: u64,
    /// Fault-injector counters so far.
    pub faults: FaultStats,
    /// The fault injector's current retry-feedback link utilization
    /// (an instantaneous gauge, not a counter).
    pub retry_rho: f64,
}

/// One closed epoch: everything is a delta over the epoch except
/// `retry_rho`, which is the gauge value at the epoch's end.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EpochSample {
    /// Epoch number, starting at 0 after the last stats reset.
    pub index: u64,
    /// References per node at the end of this epoch.
    pub end_ref: u64,
    /// Instructions retired during the epoch.
    pub instructions: u64,
    /// Cycles elapsed during the epoch (sum over nodes).
    pub cycles: f64,
    /// Where the epoch's cycles went, by execution-time component.
    pub stall: ExecBreakdown,
    /// Instructions per cycle over the epoch (0 when no cycles).
    pub ipc: f64,
    /// L2 misses per 1000 instructions over the epoch.
    pub mpki: f64,
    /// Latency-class event counts during the epoch, indexed by
    /// [`MissClass::index`].
    pub class_counts: [u64; MissClass::COUNT],
    /// Ownership upgrades during the epoch.
    pub upgrades: u64,
    /// Directory NACKs during the epoch.
    pub nacks: u64,
    /// Extra cycles the fault model charged during the epoch.
    pub fault_extra_cycles: u64,
    /// Retry attempts during the epoch.
    pub retries: u64,
    /// The injector's retry-feedback link utilization at epoch end.
    pub retry_rho: f64,
}

impl EpochSample {
    /// NACKs per 1000 references per node over the epoch.
    pub fn nack_rate_per_kref(&self, epoch_len: u64) -> f64 {
        if epoch_len == 0 {
            0.0
        } else {
            self.nacks as f64 * 1000.0 / epoch_len as f64
        }
    }
}

/// Collects [`EpochSample`]s from successive snapshots.
#[derive(Clone, Debug)]
pub struct EpochSeries {
    epoch_len: u64,
    prev: EpochSnapshot,
    prev_class_counts: [u64; MissClass::COUNT],
    samples: Vec<EpochSample>,
}

impl EpochSeries {
    /// A sampler closing one epoch every `epoch_len` references per
    /// node (clamped to at least 1).
    pub fn new(epoch_len: u64) -> Self {
        EpochSeries {
            epoch_len: epoch_len.max(1),
            prev: EpochSnapshot::default(),
            prev_class_counts: [0; MissClass::COUNT],
            samples: Vec::new(),
        }
    }

    /// The configured epoch length in references per node.
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// Closes one epoch: diffs `now` (and the observer's cumulative
    /// per-class counts) against the previous snapshot.
    pub fn close_epoch(&mut self, now: EpochSnapshot, class_counts: [u64; MissClass::COUNT]) {
        let stall = now.breakdown.delta(&self.prev.breakdown);
        let instructions = stall.instructions;
        let cycles = stall.total_cycles();
        let misses = now.misses - self.prev.misses;
        let mut deltas = [0u64; MissClass::COUNT];
        for (d, (a, b)) in deltas.iter_mut().zip(class_counts.iter().zip(&self.prev_class_counts))
        {
            *d = a - b;
        }
        self.samples.push(EpochSample {
            index: self.samples.len() as u64,
            end_ref: now.refs_per_node,
            instructions,
            cycles,
            stall,
            ipc: if cycles > 0.0 { instructions as f64 / cycles } else { 0.0 },
            mpki: if instructions > 0 {
                misses as f64 * 1000.0 / instructions as f64
            } else {
                0.0
            },
            class_counts: deltas,
            upgrades: now.upgrades - self.prev.upgrades,
            nacks: now.nacks - self.prev.nacks,
            fault_extra_cycles: now.faults.total_extra_cycles()
                - self.prev.faults.total_extra_cycles(),
            retries: now.faults.retries - self.prev.faults.retries,
            retry_rho: now.retry_rho,
        });
        self.prev = now;
        self.prev_class_counts = class_counts;
    }

    /// The closed epochs so far, oldest first. A trailing partial epoch
    /// (fewer than `epoch_len` references since the last boundary) is
    /// never emitted, so every sample covers the same interval.
    pub fn samples(&self) -> &[EpochSample] {
        &self.samples
    }

    /// Clears all samples and baselines (stats-reset semantics).
    pub fn reset(&mut self) {
        self.prev = EpochSnapshot::default();
        self.prev_class_counts = [0; MissClass::COUNT];
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(refs: u64, instr: u64, cycles: f64, misses: u64, nacks: u64) -> EpochSnapshot {
        EpochSnapshot {
            refs_per_node: refs,
            breakdown: ExecBreakdown {
                instructions: instr,
                busy_cycles: cycles,
                ..Default::default()
            },
            misses,
            nacks,
            ..Default::default()
        }
    }

    #[test]
    fn samples_are_deltas_not_cumulative() {
        let mut s = EpochSeries::new(100);
        s.close_epoch(snap(100, 1000, 2000.0, 10, 3), [10, 0, 0, 0, 0, 0]);
        s.close_epoch(snap(200, 1600, 2600.0, 40, 3), [15, 25, 0, 0, 0, 0]);
        let [a, b] = s.samples() else { panic!("two samples") };
        assert_eq!(a.instructions, 1000);
        assert_eq!(b.instructions, 600);
        assert_eq!(a.nacks, 3);
        assert_eq!(b.nacks, 0);
        assert_eq!(b.class_counts, [5, 25, 0, 0, 0, 0]);
        assert_eq!(b.index, 1);
        assert_eq!(b.end_ref, 200);
        assert!((a.ipc - 0.5).abs() < 1e-12);
        assert!((a.mpki - 10.0).abs() < 1e-12);
        assert!((b.mpki - 50.0).abs() < 1e-12);
    }

    #[test]
    fn empty_epochs_divide_safely() {
        let mut s = EpochSeries::new(10);
        s.close_epoch(EpochSnapshot { refs_per_node: 10, ..Default::default() }, [0; 6]);
        let sample = s.samples()[0];
        assert_eq!(sample.ipc, 0.0);
        assert_eq!(sample.mpki, 0.0);
        assert_eq!(sample.nack_rate_per_kref(10), 0.0);
    }

    #[test]
    fn reset_rebases_the_deltas() {
        let mut s = EpochSeries::new(100);
        s.close_epoch(snap(100, 500, 500.0, 5, 0), [5, 0, 0, 0, 0, 0]);
        s.reset();
        assert!(s.samples().is_empty());
        s.close_epoch(snap(100, 700, 700.0, 7, 0), [7, 0, 0, 0, 0, 0]);
        assert_eq!(s.samples()[0].instructions, 700, "baseline must restart at zero");
    }
}
