//! Run manifests and wall-clock self-profiling.
//!
//! A manifest makes a run report self-describing: which tool and
//! version produced it, the full configuration echo, and every seed, so
//! a report found on disk months later can be reproduced exactly. The
//! manifest is deterministic; the wall-clock [`PhaseProfile`] is not
//! (by nature) and is therefore kept separate, so determinism tests can
//! compare reports that simply omit it.

use std::time::Instant;

use crate::json::Json;

/// A git-describe-style version string: the crate version, optionally
/// extended with a source revision from the `CSIM_GIT_DESCRIBE`
/// environment variable (set by release tooling; absent in hermetic
/// builds, where the suffix is a stable placeholder).
pub fn version_string(pkg_version: &str) -> String {
    // lint: allow(taint-export) — provenance metadata by design: the suffix identifies the producing build and is a stable placeholder in hermetic runs; determinism tests compare reports from one build
    match std::env::var("CSIM_GIT_DESCRIBE") {
        Ok(desc) if !desc.trim().is_empty() => format!("{pkg_version}+{}", desc.trim()),
        _ => format!("{pkg_version}+unreleased"),
    }
}

/// Everything needed to reproduce and attribute a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunManifest {
    /// Producing tool, e.g. `"csim"`.
    pub tool: String,
    /// [`version_string`] of the producing tool.
    pub version: String,
    /// One-line configuration summary (`SystemConfig::summary`).
    pub config_summary: String,
    /// Full configuration echo as ordered key/value pairs.
    pub config: Vec<(String, String)>,
    /// Every seed the run consumed, by name (workload, fault, ...).
    pub seeds: Vec<(String, u64)>,
}

impl RunManifest {
    /// The manifest as a JSON object (deterministic).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("tool", Json::str(&self.tool)),
            ("version", Json::str(&self.version)),
            ("config_summary", Json::str(&self.config_summary)),
            (
                "config",
                Json::Obj(
                    self.config.iter().map(|(k, v)| (k.clone(), Json::str(v))).collect(),
                ),
            ),
            (
                "seeds",
                Json::Obj(
                    self.seeds.iter().map(|(k, v)| (k.clone(), Json::UInt(*v))).collect(),
                ),
            ),
        ])
    }
}

/// Wall-clock self-profile of a run's phases (build, warmup, measure,
/// export, ...). Milliseconds, monotonic clock; inherently
/// nondeterministic, so reports that must be byte-identical across
/// runs leave it out.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfile {
    phases: Vec<(String, f64)>,
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` and records it as phase `name`.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        // lint: allow(no-wallclock) — phase timings report host runtime to humans; they never feed simulation state
        // lint: allow(taint-export) — the profile is opt-in and documented nondeterministic; byte-stable reports omit it
        let start = Instant::now();
        let out = f();
        self.push(name, start.elapsed().as_secs_f64() * 1e3);
        out
    }

    /// Records a phase measured externally, in milliseconds.
    pub fn push(&mut self, name: &str, millis: f64) {
        self.phases.push((name.to_string(), millis));
    }

    /// The recorded phases, in order.
    pub fn phases(&self) -> &[(String, f64)] {
        &self.phases
    }

    /// Total wall-clock milliseconds across phases.
    pub fn total_millis(&self) -> f64 {
        self.phases.iter().map(|(_, ms)| ms).sum()
    }

    /// The profile as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|(name, ms)| {
                            Json::obj([
                                ("name", Json::str(name)),
                                ("millis", Json::Float(*ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("total_millis", Json::Float(self.total_millis())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn manifest_serializes_deterministically() {
        let m = RunManifest {
            tool: "csim".into(),
            version: version_string("0.1.0"),
            config_summary: "8p \"all\"".into(),
            config: vec![("nodes".into(), "8".into()), ("l2".into(), "2M8w".into())],
            seeds: vec![("workload".into(), 42), ("fault".into(), 7)],
        };
        let a = m.to_json().to_string();
        let b = m.to_json().to_string();
        assert_eq!(a, b);
        validate(&a).unwrap();
        assert!(a.contains("\"workload\":42"));
        assert!(a.contains("\\\"all\\\""));
    }

    #[test]
    fn version_string_has_a_suffix_either_way() {
        let v = version_string("0.1.0");
        assert!(v.starts_with("0.1.0+"), "{v}");
    }

    #[test]
    fn profile_times_phases_and_serializes() {
        let mut p = PhaseProfile::new();
        let out = p.time("warmup", || 7);
        assert_eq!(out, 7);
        p.push("export", 1.5);
        assert_eq!(p.phases().len(), 2);
        assert!(p.total_millis() >= 1.5);
        let s = p.to_json().to_string();
        validate(&s).unwrap();
        assert!(s.contains("\"warmup\""));
    }
}
