//! Structured event tracing: a bounded ring of typed simulation events.
//!
//! Events are recorded into a fixed-capacity ring buffer — when it
//! fills, the oldest events are overwritten and counted as dropped, so
//! tracing can stay on for arbitrarily long runs with bounded memory.
//! Per-class and per-node filters are applied at record time, so a
//! filtered trace keeps a full ring's worth of the events that matter.

use crate::class::MissClass;

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A reference was serviced beyond the L1s (an L2 hit or an L2
    /// miss) and the core was charged `latency` cycles.
    Miss {
        /// Which latency class serviced it.
        class: MissClass,
        /// The (possibly fault-inflated) cycles charged.
        latency: u64,
    },
    /// The directory NACKed transaction attempts (`count` refusals).
    Nack {
        /// NACKs delivered for this transaction.
        count: u32,
    },
    /// The requester retried after NACKs (`count` attempts).
    Retry {
        /// Retry attempts for this transaction.
        count: u32,
    },
    /// The retry budget ran out and the livelock watchdog forced the
    /// transaction through.
    Watchdog,
    /// A dirty line was written back to its home (directory state
    /// transition M -> Uncached at the home).
    Writeback,
    /// A remote read downgraded a dirty owner (M -> S).
    Downgrade,
    /// A write invalidated `targets` remote sharers (S -> M).
    Invalidation {
        /// Number of sharer nodes invalidated.
        targets: u32,
    },
}

impl EventKind {
    /// The stable machine-readable kind name used in JSONL.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::Miss { .. } => "miss",
            EventKind::Nack { .. } => "nack",
            EventKind::Retry { .. } => "retry",
            EventKind::Watchdog => "watchdog",
            EventKind::Writeback => "writeback",
            EventKind::Downgrade => "downgrade",
            EventKind::Invalidation { .. } => "invalidation",
        }
    }

    /// The latency class this event belongs to, for class filtering.
    /// NACK/retry/watchdog events belong to [`MissClass::NackRetry`];
    /// protocol housekeeping (writeback/downgrade/invalidation) carries
    /// no class.
    pub fn class(&self) -> Option<MissClass> {
        match self {
            EventKind::Miss { class, .. } => Some(*class),
            EventKind::Nack { .. } | EventKind::Retry { .. } | EventKind::Watchdog => {
                Some(MissClass::NackRetry)
            }
            EventKind::Writeback | EventKind::Downgrade | EventKind::Invalidation { .. } => None,
        }
    }
}

/// One simulation event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Logical time: references per node since the last stats reset.
    pub at: u64,
    /// Node (chip) the event happened at or was requested by.
    pub node: u16,
    /// Core within the node (0 for node-level events).
    pub core: u16,
    /// Cache-line address the event concerns.
    pub line: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Serializes the event as one compact JSON object (no trailing
    /// newline) — one line of the JSONL export.
    pub(crate) fn to_json_line(self) -> String {
        let mut s = format!(
            "{{\"at\":{},\"node\":{},\"core\":{},\"line\":{},\"kind\":\"{}\"",
            self.at,
            self.node,
            self.core,
            self.line,
            self.kind.as_str()
        );
        if let Some(class) = self.kind.class() {
            s.push_str(&format!(",\"class\":\"{class}\""));
        }
        match self.kind {
            EventKind::Miss { latency, .. } => s.push_str(&format!(",\"latency\":{latency}")),
            EventKind::Nack { count } | EventKind::Retry { count } => {
                s.push_str(&format!(",\"count\":{count}"));
            }
            EventKind::Invalidation { targets } => {
                s.push_str(&format!(",\"targets\":{targets}"));
            }
            EventKind::Watchdog | EventKind::Writeback | EventKind::Downgrade => {}
        }
        s.push('}');
        s
    }
}

/// Record-time filter: `None` means "keep everything".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceFilter {
    /// Keep only events of these classes. Class-less housekeeping
    /// events (writeback/downgrade/invalidation) are dropped when a
    /// class filter is set.
    pub classes: Option<Vec<MissClass>>,
    /// Keep only events at these nodes.
    pub nodes: Option<Vec<u16>>,
}

impl TraceFilter {
    /// Whether `event` passes the filter.
    pub(crate) fn keeps(&self, event: &Event) -> bool {
        if let Some(nodes) = &self.nodes {
            if !nodes.contains(&event.node) {
                return false;
            }
        }
        if let Some(classes) = &self.classes {
            match event.kind.class() {
                Some(c) => classes.contains(&c),
                None => false,
            }
        } else {
            true
        }
    }

    /// Parses the CLI `CLASS[,CLASS]` syntax into a class filter.
    ///
    /// # Errors
    ///
    /// The first unknown class name.
    pub fn parse_classes(spec: &str) -> Result<TraceFilter, String> {
        let classes = spec
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(MissClass::parse)
            .collect::<Result<Vec<_>, _>>()?;
        if classes.is_empty() {
            return Err(format!("empty trace filter '{spec}'"));
        }
        Ok(TraceFilter { classes: Some(classes), nodes: None })
    }
}

/// Bounded ring buffer of [`Event`]s.
#[derive(Clone, Debug)]
pub struct EventRing {
    capacity: usize,
    filter: TraceFilter,
    buf: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Events that passed the filter but displaced an older event.
    dropped: u64,
}

impl EventRing {
    /// Default ring capacity (events), chosen so a full ring is a few
    /// megabytes and a JSONL export stays shippable.
    pub(crate) const DEFAULT_CAPACITY: usize = 65_536;

    /// A ring holding at most `capacity` events (clamped to >= 1),
    /// keeping only events that pass `filter`.
    pub fn new(capacity: usize, filter: TraceFilter) -> Self {
        EventRing {
            capacity: capacity.max(1),
            filter,
            buf: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records an event (O(1)); the oldest event is displaced when the
    /// ring is full.
    pub fn push(&mut self, event: Event) {
        if !self.filter.keeps(&event) {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            // analyze: total — the displacing branch only runs once the ring is full, when head has been reduced modulo capacity == buf.len()
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        // analyze: total — head is 0 until the ring fills and afterwards stays reduced modulo capacity == buf.len(), and a start-bound slice at len is empty rather than out of range
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events displaced because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The whole ring as JSONL (one event object per line, oldest
    /// first, trailing newline after the last line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.iter() {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Clears all events (stats-reset semantics; capacity and filter
    /// are kept).
    pub fn reset(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(at: u64, node: u16, class: MissClass) -> Event {
        Event { at, node, core: 0, line: 0x40, kind: EventKind::Miss { class, latency: 100 } }
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut r = EventRing::new(3, TraceFilter::default());
        for at in 0..5 {
            r.push(miss(at, 0, MissClass::Local));
        }
        let ats: Vec<u64> = r.iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![2, 3, 4]);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn class_filter_drops_other_classes_and_classless_events() {
        let filter = TraceFilter::parse_classes("remote-dirty,nack-retry").unwrap();
        let mut r = EventRing::new(16, filter);
        r.push(miss(0, 0, MissClass::RemoteDirty));
        r.push(miss(1, 0, MissClass::Local));
        r.push(Event { at: 2, node: 0, core: 0, line: 0, kind: EventKind::Nack { count: 2 } });
        r.push(Event { at: 3, node: 0, core: 0, line: 0, kind: EventKind::Writeback });
        let kinds: Vec<&str> = r.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["miss", "nack"]);
    }

    #[test]
    fn node_filter_applies() {
        let filter = TraceFilter { classes: None, nodes: Some(vec![1]) };
        let mut r = EventRing::new(16, filter);
        r.push(miss(0, 0, MissClass::Local));
        r.push(miss(1, 1, MissClass::Local));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().node, 1);
    }

    #[test]
    fn jsonl_lines_carry_kind_specific_fields() {
        let mut r = EventRing::new(8, TraceFilter::default());
        r.push(miss(7, 2, MissClass::RemoteClean));
        r.push(Event {
            at: 8,
            node: 1,
            core: 0,
            line: 0x80,
            kind: EventKind::Invalidation { targets: 3 },
        });
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"miss\""));
        assert!(lines[0].contains("\"class\":\"remote-clean\""));
        assert!(lines[0].contains("\"latency\":100"));
        assert!(lines[1].contains("\"targets\":3"));
        assert!(!lines[1].contains("\"class\""));
    }

    #[test]
    fn bad_filter_specs_are_rejected() {
        assert!(TraceFilter::parse_classes("bogus").is_err());
        assert!(TraceFilter::parse_classes("").is_err());
        assert!(TraceFilter::parse_classes("local,").is_ok());
    }

    #[test]
    fn reset_empties_the_ring() {
        let mut r = EventRing::new(2, TraceFilter::default());
        r.push(miss(0, 0, MissClass::Local));
        r.push(miss(1, 0, MissClass::Local));
        r.push(miss(2, 0, MissClass::Local));
        r.reset();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.to_jsonl(), "");
    }
}
