//! Cycle-level observability for the chip-level-integration simulator.
//!
//! The paper's conclusions all hinge on *where cycles go* — L2-hit
//! latency dominating uniprocessor OLTP, remote-dirty 3-hop latency
//! dominating the multiprocessor case — yet an end-of-run `SimReport`
//! only exposes aggregate sums. This crate supplies the instruments
//! that make latency *distributions* and time-resolved behavior
//! visible:
//!
//! * [`LatencyHistogram`] — log-bucketed (HDR-style, dependency-free)
//!   latency recording per [`MissClass`], with p50/p90/p99/p999/max
//!   quantile extraction and associative cross-node merging.
//! * [`EpochSeries`] — per-interval samples of IPC, MPKI, miss-class
//!   mix, directory NACK rate and fault-injector activity, so warmup,
//!   steady state and fault-storm windows show up as curves.
//! * [`EventRing`] — a bounded ring of typed simulation events
//!   ([`Event`]/[`EventKind`]) with per-node/per-class record-time
//!   filtering and a compact JSONL exporter.
//! * [`json`] — a hand-rolled, dependency-free JSON document builder
//!   (deterministic output) and well-formedness checker, backing the
//!   machine-readable run reports.
//! * [`RunManifest`] / [`PhaseProfile`] — a reproducibility manifest
//!   (config echo, seeds, version string) and a wall-clock self-profile
//!   of the run's phases.
//!
//! Everything hangs off an [`Observer`] configured by an [`ObsConfig`]
//! that defaults to off. The observer is strictly read-only with
//! respect to the simulation: a disabled observer produces a report
//! bit-identical to a run with no observer wired in (the simulator's
//! test suite asserts this).
//!
//! # Example
//!
//! ```
//! use csim_obs::{MissClass, ObsConfig, Observer, TraceConfig};
//!
//! let mut obs = Observer::new(ObsConfig {
//!     histograms: true,
//!     epoch: Some(1000),
//!     trace: Some(TraceConfig::default()),
//! });
//! obs.record_latency(MissClass::RemoteDirty, 250);
//! let h = obs.histogram(MissClass::RemoteDirty).unwrap();
//! assert_eq!(h.count(), 1);
//! assert!(h.quantile(0.999) >= 250);
//! ```

#![forbid(unsafe_code)]

mod class;
mod event;
mod hist;
pub mod json;
mod manifest;
mod observer;
mod series;

pub use class::MissClass;
pub use event::{Event, EventKind, EventRing, TraceFilter};
pub use hist::{LatencyHistogram, DEFAULT_PRECISION, REPORT_QUANTILES};
pub use manifest::{version_string, PhaseProfile, RunManifest};
pub use observer::{ObsConfig, Observation, Observer, TraceConfig};
pub use series::{EpochSample, EpochSeries, EpochSnapshot};
