//! Property tests of the workload engine: determinism, address-space
//! discipline, and distribution sanity under parameter variation.

#![allow(clippy::field_reassign_with_default)]

use proptest::prelude::*;

use csim_trace::ReferenceStream;
use csim_workload::{AddressMap, OltpParams, OltpWorkload, Region, ZipfTable, ADDR_BITS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streams_stay_inside_the_physical_address_space(
        seed in any::<u64>(),
        nodes in 1usize..=4,
    ) {
        let mut params = OltpParams::default();
        params.seed = seed;
        let mut streams = OltpWorkload::build(params, nodes).unwrap();
        for s in &mut streams {
            for _ in 0..5_000 {
                let r = s.next_ref();
                prop_assert!(r.addr < 1 << ADDR_BITS, "address {:#x} out of range", r.addr);
            }
        }
    }

    #[test]
    fn identical_seeds_are_bitwise_deterministic(seed in any::<u64>()) {
        let run = || {
            let mut params = OltpParams::default();
            params.seed = seed;
            let mut streams = OltpWorkload::build(params, 2).unwrap();
            let mut collected = Vec::new();
            for _ in 0..2_000 {
                collected.push(streams[0].next_ref());
                collected.push(streams[1].next_ref());
            }
            collected
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn parameter_scaling_does_not_break_the_generator(
        db_instrs in 1_000u64..30_000,
        servers in 1usize..12,
        meta_lines in 256u64..8192,
    ) {
        let mut params = OltpParams::default();
        params.txn_db_instrs = db_instrs;
        params.servers_per_node = servers;
        params.meta_hot_lines = meta_lines;
        params.validate().unwrap();
        let mut streams = OltpWorkload::build(params, 1).unwrap();
        for _ in 0..20_000 {
            let _ = streams[0].next_ref();
        }
    }

    #[test]
    fn zipf_sampling_is_monotone_in_u(n in 1u64..5_000, s in 0.0f64..2.0) {
        let z = ZipfTable::new(n, s);
        let mut last = 0;
        for i in 0..=100 {
            let u = (i as f64 / 100.0).min(0.999_999);
            let idx = z.sample(u);
            prop_assert!(idx >= last, "sampling must be monotone in u");
            prop_assert!(idx < n);
            last = idx;
        }
    }

    #[test]
    fn address_map_regions_never_alias_within_a_region(
        seed in any::<u64>(),
        region_pages in 1u64..64,
    ) {
        // Within one region, distinct line indices map to distinct
        // physical addresses (pages may collide across regions with
        // vanishing probability, but never within one).
        let map = AddressMap::new(seed);
        let mut seen = std::collections::HashSet::new();
        for line in 0..region_pages * 128 {
            let addr = map.line_addr(Region::MetaHot, line);
            prop_assert!(seen.insert(addr), "line {line} aliased within MetaHot");
        }
    }
}
