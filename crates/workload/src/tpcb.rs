//! The TPC-B schema and its mapping onto database blocks.
//!
//! TPC-B models a bank: `branches`, 10 tellers per branch, 100 000
//! accounts per branch, and an append-only history table. Each transaction
//! updates one account, its teller and its branch, and appends a history
//! row. This module decides *where those rows live*: which block of which
//! table region, and which cache line within the block — the mapping that
//! turns schema-level activity into the paper's memory-system behavior
//! (40 ultra-hot migratory branch lines, 400 hot teller lines with false
//! sharing, and a cold random account stream).

use csim_trace::SimRng;

use crate::layout::{Region, LINE_BYTES};
use crate::params::OltpParams;
use crate::stream::prob_threshold;

/// Block header size in bytes (Oracle block overhead).
pub(crate) const BLOCK_HEADER_BYTES: u64 = 128;

/// A row's location: the line index within its table region, plus the
/// block number (used to derive the buffer-header address in the SGA).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RowRef {
    /// Line index within the table's region.
    pub row_line: u64,
    /// Block number within the table (for buffer-header lookup).
    pub block: u64,
}

/// Derived schema geometry and row-placement logic.
#[derive(Clone, Debug)]
pub struct Schema {
    branches: u64,
    tellers_per_branch: u64,
    accounts_per_branch: u64,
    /// TPC-B's home/remote rule in the integer domain of
    /// [`prob_threshold`]: a 53-bit draw below this picks a home-branch
    /// account, deciding exactly like `gen_f64() < home_fraction`.
    home_thresh: u64,
    rows_per_block: u64,
    lines_per_block: u64,
    row_bytes: u64,
    history_rows_per_block: u64,
}

impl Schema {
    /// Builds the schema geometry from workload parameters.
    pub fn new(params: &OltpParams) -> Self {
        let rows_per_block =
            ((params.block_bytes - BLOCK_HEADER_BYTES) / params.account_row_bytes).max(1);
        Schema {
            branches: params.branches,
            tellers_per_branch: params.tellers_per_branch,
            accounts_per_branch: params.accounts_per_branch,
            home_thresh: prob_threshold(params.home_account_fraction),
            rows_per_block,
            lines_per_block: params.block_bytes / LINE_BYTES,
            row_bytes: params.account_row_bytes,
            history_rows_per_block: params.history_rows_per_block,
        }
    }

    /// Number of branches.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Data rows per block (after the block header).
    pub fn rows_per_block(&self) -> u64 {
        self.rows_per_block
    }

    /// Draws a teller uniformly; the transaction's branch is the teller's.
    pub(crate) fn pick_teller(&self, rng: &mut SimRng) -> u64 {
        rng.gen_range(0..self.branches * self.tellers_per_branch)
    }

    /// The branch a teller belongs to.
    pub fn branch_of_teller(&self, teller: u64) -> u64 {
        teller / self.tellers_per_branch
    }

    /// Draws the account for a transaction at `branch`, following TPC-B's
    /// 85/15 home/remote rule. The draw `next_u64() >> 11` is exactly
    /// what `gen_f64` would consume, so the RNG stream and the decision
    /// are bit-identical to the float comparison.
    // analyze: hot
    pub fn pick_account(&self, rng: &mut SimRng, branch: u64) -> u64 {
        if rng.next_u64() >> 11 < self.home_thresh {
            branch * self.accounts_per_branch + rng.gen_range(0..self.accounts_per_branch)
        } else {
            rng.gen_range(0..self.branches * self.accounts_per_branch)
        }
    }

    fn packed_row(&self, row: u64) -> RowRef {
        let block = row / self.rows_per_block;
        let within = row % self.rows_per_block;
        let byte = BLOCK_HEADER_BYTES + within * self.row_bytes;
        RowRef { row_line: block * self.lines_per_block + byte / LINE_BYTES, block }
    }

    /// Location of an account row ([`Region::AccountBlocks`]): rows are
    /// packed ~19 per 2 KB block, so the 4 M accounts span a cold stream
    /// of hundreds of megabytes.
    pub fn account_row(&self, account: u64) -> RowRef {
        self.packed_row(account)
    }

    /// Location of a teller row ([`Region::TellerBlocks`]): packed like
    /// accounts, so nearby tellers *share lines* — deliberate false
    /// sharing, as in untuned row packing.
    pub fn teller_row(&self, teller: u64) -> RowRef {
        self.packed_row(teller)
    }

    /// Location of a branch row ([`Region::BranchBlocks`]): one row per
    /// block (padded, as tuned installs do), giving 40 ultra-hot migratory
    /// lines plus their headers.
    pub fn branch_row(&self, branch: u64) -> RowRef {
        RowRef {
            row_line: branch * self.lines_per_block + BLOCK_HEADER_BYTES / LINE_BYTES,
            block: branch,
        }
    }

    /// Location of the `seq`-th history row appended by a node
    /// ([`Region::HistoryBlocks`]); history rows are ~64 bytes so two
    /// share a line, and a fresh (cold) block starts every
    /// `history_rows_per_block` rows.
    pub fn history_row(&self, seq: u64) -> RowRef {
        let block = seq / self.history_rows_per_block;
        let within = seq % self.history_rows_per_block;
        RowRef {
            row_line: block * self.lines_per_block + BLOCK_HEADER_BYTES / LINE_BYTES + within / 2,
            block,
        }
    }

    /// The region holding a table's blocks.
    pub fn region_of(table: Table, node: u8) -> Region {
        match table {
            Table::Account => Region::AccountBlocks,
            Table::Teller => Region::TellerBlocks,
            Table::Branch => Region::BranchBlocks,
            Table::History => Region::HistoryBlocks { node },
        }
    }
}

/// The four TPC-B tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Table {
    /// 4 M rows, uniformly accessed: the cold stream.
    Account,
    /// 400 rows, hot and write-shared.
    Teller,
    /// 40 rows, ultra-hot and migratory.
    Branch,
    /// Append-only.
    History,
}

#[cfg(test)]
mod tests {
    use super::*;
    use csim_trace::SimRng;

    fn schema() -> Schema {
        Schema::new(&OltpParams::default())
    }

    #[test]
    fn rows_per_block_accounts_for_header() {
        // (2048 - 128) / 100 = 19 rows.
        assert_eq!(schema().rows_per_block(), 19);
    }

    #[test]
    fn teller_and_branch_relationship() {
        let s = schema();
        assert_eq!(s.branch_of_teller(0), 0);
        assert_eq!(s.branch_of_teller(9), 0);
        assert_eq!(s.branch_of_teller(10), 1);
        assert_eq!(s.branch_of_teller(399), 39);
    }

    #[test]
    fn home_rule_biases_account_choice() {
        let s = schema();
        let mut rng = SimRng::seed_from_u64(3);
        let branch = 7u64;
        let lo = branch * 100_000;
        let hi = lo + 100_000;
        let n = 10_000;
        let home =
            (0..n).filter(|_| (lo..hi).contains(&s.pick_account(&mut rng, branch))).count();
        let frac = home as f64 / n as f64;
        // 85% home plus 15% * (1/40) random hits ≈ 85.4%.
        assert!((0.82..0.89).contains(&frac), "home fraction {frac}");
    }

    #[test]
    fn account_rows_pack_into_blocks() {
        let s = schema();
        let r0 = s.account_row(0);
        let r18 = s.account_row(18);
        let r19 = s.account_row(19);
        assert_eq!(r0.block, 0);
        assert_eq!(r18.block, 0);
        assert_eq!(r19.block, 1);
        // First row starts after the 128-byte header: line 2 of the block.
        assert_eq!(r0.row_line, 2);
        // Block 1 starts 32 lines in.
        assert_eq!(r19.row_line, 34);
    }

    #[test]
    fn adjacent_tellers_share_lines() {
        let s = schema();
        // Rows are 100 bytes: tellers 0 and 1 both touch line 2/3 region.
        let a = s.teller_row(0);
        let b = s.teller_row(1);
        assert_eq!(a.block, b.block);
        assert!(b.row_line - a.row_line <= 1, "packed rows must be adjacent");
    }

    #[test]
    fn branch_rows_are_padded_one_per_block() {
        let s = schema();
        let a = s.branch_row(0);
        let b = s.branch_row(1);
        assert_eq!(a.block, 0);
        assert_eq!(b.block, 1);
        assert_eq!(b.row_line - a.row_line, 32, "one 2 KB block apart");
    }

    #[test]
    fn history_moves_to_fresh_blocks() {
        let s = schema();
        let first = s.history_row(0);
        let last_in_block = s.history_row(39);
        let next_block = s.history_row(40);
        assert_eq!(first.block, last_in_block.block);
        assert_eq!(next_block.block, 1);
        // Two rows per line.
        assert_eq!(s.history_row(0).row_line, s.history_row(1).row_line);
        assert_ne!(s.history_row(1).row_line, s.history_row(2).row_line);
    }

    #[test]
    fn tables_map_to_regions() {
        assert_eq!(Schema::region_of(Table::Account, 3), Region::AccountBlocks);
        assert_eq!(Schema::region_of(Table::History, 3), Region::HistoryBlocks { node: 3 });
    }
}
