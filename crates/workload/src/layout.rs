//! The simulated physical address space.
//!
//! Every data structure of the workload (code segments, SGA regions,
//! per-process private memory, database blocks) is a *region* addressed by
//! logical line index. Regions are laid out page-by-page at pseudo-random
//! (but deterministic) physical addresses, the way a long-running OS
//! scatters physical pages: consecutive lines within an 8 KB page stay
//! together (preserving spatial locality), while pages land at effectively
//! random cache indices and home nodes. This scatter is what produces
//! realistic conflict-miss statistics in direct-mapped caches and the
//! paper's "1-in-8 chance of local data" under page-interleaved homes.

use csim_trace::Addr;

/// Bytes per cache line.
pub const LINE_BYTES: u64 = 64;
/// Bytes per page (Alpha 8 KB pages).
pub const PAGE_BYTES: u64 = 8192;
/// Lines per page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;
/// Width of the simulated physical address space in bits.
pub const ADDR_BITS: u32 = 46;

/// A logical memory region of the workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// Database-engine text (shared, read-only, executed by all servers).
    DbCode,
    /// Kernel text (shared, read-only).
    KernelCode,
    /// Hot read-write SGA metadata: latches, buffer headers, list heads.
    MetaHot,
    /// Hot read-mostly SGA: dictionary cache, descriptors.
    SharedRead,
    /// The redo log buffer ring.
    LogRing,
    /// Account table blocks (the 400+ MB cold stream).
    AccountBlocks,
    /// Teller table blocks.
    TellerBlocks,
    /// Branch table blocks (40 extremely hot, write-shared lines).
    BranchBlocks,
    /// History table blocks being filled by one node.
    HistoryBlocks {
        /// The inserting node.
        node: u8,
    },
    /// Warm private work area of one server process (sort areas, cursor
    /// caches).
    WorkArea {
        /// Owning node.
        node: u8,
        /// Server index within the node.
        server: u16,
    },
    /// Private PGA/stack of one server process.
    Pga {
        /// Owning node.
        node: u8,
        /// Server index within the node.
        server: u16,
    },
    /// Kernel stack of one server process.
    KernelStack {
        /// Owning node.
        node: u8,
        /// Server index within the node.
        server: u16,
    },
    /// Per-node kernel data: run queues, pipe buffers.
    KernelNode {
        /// Owning node.
        node: u8,
    },
    /// Globally shared kernel data: file table, global locks.
    KernelShared,
    /// Disk I/O staging buffers of one node (cold, streaming).
    IoBuffer {
        /// Owning node.
        node: u8,
    },
}

impl Region {
    /// A stable 64-bit tag identifying the region in the scatter hash.
    fn tag(self) -> u64 {
        match self {
            Region::DbCode => 0x01,
            Region::KernelCode => 0x02,
            Region::MetaHot => 0x03,
            Region::SharedRead => 0x04,
            Region::LogRing => 0x05,
            Region::AccountBlocks => 0x06,
            Region::TellerBlocks => 0x07,
            Region::BranchBlocks => 0x08,
            Region::HistoryBlocks { node } => 0x100 | u64::from(node),
            Region::Pga { node, server } => 0x1_0000 | u64::from(node) << 8 | u64::from(server) << 20,
            Region::WorkArea { node, server } => {
                0x4_0000 | u64::from(node) << 8 | u64::from(server) << 20
            }
            Region::KernelStack { node, server } => {
                0x2_0000 | u64::from(node) << 8 | u64::from(server) << 20
            }
            Region::KernelNode { node } => 0x200 | u64::from(node),
            Region::KernelShared => 0x09,
            Region::IoBuffer { node } => 0x300 | u64::from(node),
        }
    }
}

/// SplitMix64 finalizer — a strong deterministic mixing function.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic region→physical address translation.
///
/// # Example
///
/// ```
/// use csim_workload::{AddressMap, Region};
/// let map = AddressMap::new(42);
/// let a = map.line_addr(Region::MetaHot, 0);
/// let b = map.line_addr(Region::MetaHot, 1);
/// // Lines 0 and 1 share a page: 64 bytes apart.
/// assert_eq!(b - a, 64);
/// // Same inputs always give the same address.
/// assert_eq!(a, AddressMap::new(42).line_addr(Region::MetaHot, 0));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AddressMap {
    seed: u64,
}

impl AddressMap {
    /// Creates a map for the given workload seed.
    pub fn new(seed: u64) -> Self {
        AddressMap { seed }
    }

    /// Precomputes the scatter base for one region. The inner
    /// `mix(region.tag())` of the page hash depends only on the region, so
    /// hot callers (the workload's background-reference generator) hoist it
    /// out of the per-reference path; [`RegionHandle::line_addr`] then
    /// produces addresses identical to [`AddressMap::line_addr`] at half
    /// the mixing cost.
    #[inline]
    pub fn handle(&self, region: Region) -> RegionHandle {
        RegionHandle { base: self.seed ^ mix(region.tag()) }
    }

    /// Physical byte address of the start of a page of a region.
    #[inline]
    pub fn page_base(&self, region: Region, page_idx: u64) -> Addr {
        self.handle(region).page_base(page_idx)
    }

    /// Physical byte address of the start of the `line_idx`-th line of a
    /// region.
    #[inline]
    pub fn line_addr(&self, region: Region, line_idx: u64) -> Addr {
        self.handle(region).line_addr(line_idx)
    }

    /// Physical address of the `byte_idx`-th byte of a region.
    #[inline]
    pub fn byte_addr(&self, region: Region, byte_idx: u64) -> Addr {
        self.line_addr(region, byte_idx / LINE_BYTES) + byte_idx % LINE_BYTES
    }
}

/// A region's precomputed scatter base (`seed ^ mix(tag)`), produced by
/// [`AddressMap::handle`]. Translating through a handle is bit-identical
/// to translating through the map with the region value.
#[derive(Clone, Copy, Debug)]
pub struct RegionHandle {
    base: u64,
}

impl RegionHandle {
    /// Physical byte address of the start of a page of this region.
    #[inline]
    pub fn page_base(&self, page_idx: u64) -> Addr {
        let h = mix(self.base ^ page_idx.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        h & ((1 << ADDR_BITS) - 1) & !(PAGE_BYTES - 1)
    }

    /// Physical byte address of the start of the `line_idx`-th line of
    /// this region.
    #[inline]
    pub fn line_addr(&self, line_idx: u64) -> Addr {
        let page = line_idx / LINES_PER_PAGE;
        let line_in_page = line_idx % LINES_PER_PAGE;
        self.page_base(page) + line_in_page * LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_are_aligned_and_in_range() {
        let map = AddressMap::new(7);
        for p in 0..1000 {
            let base = map.page_base(Region::DbCode, p);
            assert_eq!(base % PAGE_BYTES, 0);
            assert!(base < (1 << ADDR_BITS));
        }
    }

    #[test]
    fn lines_within_a_page_are_contiguous() {
        let map = AddressMap::new(7);
        let base = map.page_base(Region::SharedRead, 3);
        for l in 0..LINES_PER_PAGE {
            assert_eq!(map.line_addr(Region::SharedRead, 3 * LINES_PER_PAGE + l), base + l * 64);
        }
    }

    #[test]
    fn distinct_regions_get_distinct_pages() {
        let map = AddressMap::new(7);
        let a = map.page_base(Region::MetaHot, 0);
        let b = map.page_base(Region::LogRing, 0);
        let c = map.page_base(Region::Pga { node: 0, server: 0 }, 0);
        let d = map.page_base(Region::Pga { node: 0, server: 1 }, 0);
        let e = map.page_base(Region::Pga { node: 1, server: 0 }, 0);
        let all = [a, b, c, d, e];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j], "regions {i} and {j} collided");
            }
        }
    }

    #[test]
    fn different_seeds_relocate_regions() {
        let a = AddressMap::new(1).page_base(Region::MetaHot, 0);
        let b = AddressMap::new(2).page_base(Region::MetaHot, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn handle_matches_direct_translation() {
        let map = AddressMap::new(123);
        for region in [
            Region::MetaHot,
            Region::LogRing,
            Region::SharedRead,
            Region::Pga { node: 3, server: 7 },
            Region::KernelStack { node: 1, server: 2 },
            Region::HistoryBlocks { node: 5 },
        ] {
            let h = map.handle(region);
            for line in [0u64, 1, 127, 128, 5000, 1 << 30] {
                assert_eq!(h.line_addr(line), map.line_addr(region, line), "{region:?}/{line}");
            }
        }
    }

    #[test]
    fn byte_addr_tracks_line_and_offset() {
        let map = AddressMap::new(9);
        let b = map.byte_addr(Region::DbCode, 200);
        let line = map.line_addr(Region::DbCode, 3);
        assert_eq!(b, line + 8);
    }

    #[test]
    fn page_scatter_spreads_cache_indices() {
        // Pages of one region must not cluster in a direct-mapped cache:
        // check that 512 consecutive pages map to mostly distinct 8 MB
        // cache "page slots" (8 MB / 8 KB = 1024 slots).
        let map = AddressMap::new(11);
        let mut slots: Vec<u64> =
            (0..512).map(|p| (map.page_base(Region::DbCode, p) / PAGE_BYTES) % 1024).collect();
        slots.sort_unstable();
        slots.dedup();
        // Balls-in-bins: expect ~1024 * (1 - (1 - 1/1024)^512) ≈ 403.
        assert!(slots.len() > 330, "only {} distinct slots — scatter too clumpy", slots.len());
    }
}
