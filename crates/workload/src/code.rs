//! Instruction-stream generation.
//!
//! Code is modeled as a set of fixed-length functions laid out
//! consecutively in a code region. Execution runs straight-line through a
//! function's lines and then jumps to another function drawn from a Zipf
//! popularity distribution — a compact model that yields the two
//! properties the paper's workload exhibits: sequential fetch within basic
//! blocks (spatial locality inside a line/page) and a large overall hot
//! text footprint that overwhelms a 64 KB L1I.

use crate::layout::{AddressMap, Region};
use crate::zipf::ZipfTable;
use csim_trace::{Addr, SimRng};

/// A code segment: `n_funcs` functions of `func_lines` lines each.
#[derive(Clone, Debug)]
pub struct CodeRegion {
    region: Region,
    func_lines: u64,
    instrs_per_line: u64,
    popularity: ZipfTable,
}

impl CodeRegion {
    /// Builds a code region covering `total_lines` of text, split into
    /// functions of `func_lines` lines, with Zipf(`zipf_s`) function
    /// popularity.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        region: Region,
        total_lines: u64,
        func_lines: u64,
        instrs_per_line: u64,
        zipf_s: f64,
    ) -> Self {
        assert!(total_lines > 0 && func_lines > 0 && instrs_per_line > 0);
        let n_funcs = (total_lines / func_lines).max(1);
        CodeRegion {
            region,
            func_lines,
            instrs_per_line,
            popularity: ZipfTable::new(n_funcs, zipf_s),
        }
    }

    /// Number of functions.
    pub fn n_funcs(&self) -> u64 {
        self.popularity.len()
    }

    /// Total text lines covered.
    pub fn total_lines(&self) -> u64 {
        self.n_funcs() * self.func_lines
    }

    /// Starts execution at a popularity-sampled function.
    // analyze: hot
    #[inline]
    pub fn entry(&self, rng: &mut SimRng) -> CodeCursor {
        // Scramble the sampled popularity rank so that hot functions are
        // spread across the region rather than packed at its start —
        // otherwise the hot text would occupy one contiguous prefix and
        // dodge direct-mapped conflicts unrealistically. The sample is
        // drawn through the integer path: `next_u64() >> 11` is exactly
        // the draw `gen_f64` would consume, so the RNG stream and the
        // selected rank are bit-identical to the float sampler.
        let rank = self.popularity.sample_u53(rng.next_u64() >> 11);
        let func = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15 | 1) % self.n_funcs();
        CodeCursor { func, line: 0, instr: 0, base: 0 }
    }

    /// Advances the cursor by one instruction and returns that
    /// instruction's address. Jumps to a new function after the last
    /// instruction of the current one.
    #[inline]
    pub fn step(&self, cursor: &mut CodeCursor, rng: &mut SimRng, map: &AddressMap) -> Addr {
        // The line's base address is invariant for `instrs_per_line`
        // consecutive steps, so it is cached in the cursor instead of
        // re-deriving the address-map hash on every instruction. The
        // addresses produced are identical to recomputing each step.
        if cursor.instr == 0 {
            let line_idx = cursor.func * self.func_lines + cursor.line;
            cursor.base = map.line_addr(self.region, line_idx);
        }
        let addr = cursor.base + cursor.instr * 4;
        cursor.instr += 1;
        if cursor.instr == self.instrs_per_line {
            cursor.instr = 0;
            cursor.line += 1;
            if cursor.line == self.func_lines {
                *cursor = self.entry(rng);
            }
        }
        addr
    }
}

/// Execution position within a [`CodeRegion`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodeCursor {
    func: u64,
    line: u64,
    instr: u64,
    /// Cached base address of the current line; recomputed whenever
    /// `instr` wraps to 0 (new line or new function).
    base: Addr,
}

#[cfg(test)]
mod tests {
    use super::*;
    use csim_trace::SimRng;

    fn region() -> CodeRegion {
        CodeRegion::new(Region::DbCode, 1024, 8, 16, 0.8)
    }

    #[test]
    fn geometry_is_derived() {
        let r = region();
        assert_eq!(r.n_funcs(), 128);
        assert_eq!(r.total_lines(), 1024);
    }

    #[test]
    fn fetch_is_sequential_within_a_function() {
        let r = region();
        let map = AddressMap::new(1);
        let mut rng = SimRng::seed_from_u64(5);
        let mut cur = r.entry(&mut rng);
        let first = r.step(&mut cur, &mut rng, &map);
        let second = r.step(&mut cur, &mut rng, &map);
        assert_eq!(second, first + 4, "consecutive instructions are 4 bytes apart");
        // A full line of instructions stays within one line address.
        let mut cur2 = CodeCursor::default();
        let base = r.step(&mut cur2, &mut rng, &map);
        for i in 1..16 {
            let a = r.step(&mut cur2, &mut rng, &map);
            assert_eq!(a, base + 4 * i);
        }
    }

    #[test]
    fn execution_jumps_at_function_end() {
        let r = region();
        let map = AddressMap::new(1);
        let mut rng = SimRng::seed_from_u64(5);
        let mut cur = CodeCursor::default(); // function 0, start
        // Execute exactly one function: 8 lines * 16 instructions.
        for _ in 0..(8 * 16) {
            r.step(&mut cur, &mut rng, &map);
        }
        // The cursor has jumped somewhere fresh (line/instr reset).
        assert_eq!((cur.line, cur.instr), (0, 0));
    }

    #[test]
    fn popularity_makes_some_functions_hot() {
        let r = region();
        let mut rng = SimRng::seed_from_u64(5);
        let mut counts = vec![0u32; r.n_funcs() as usize];
        for _ in 0..20_000 {
            let c = r.entry(&mut rng);
            counts[c.func as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(max > 400, "hottest function should dominate, got {max}");
        assert!(nonzero > 64, "tail functions must still execute, got {nonzero}");
    }

    #[test]
    fn deterministic_given_seed() {
        let r = region();
        let map = AddressMap::new(1);
        let run = || {
            let mut rng = SimRng::seed_from_u64(9);
            let mut cur = r.entry(&mut rng);
            (0..1000).map(|_| r.step(&mut cur, &mut rng, &map)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
