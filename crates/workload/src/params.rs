//! Workload parameters.
//!
//! Every knob of the synthetic OLTP engine lives here. The defaults are
//! calibrated (see EXPERIMENTS.md) so that the reference streams reproduce
//! the memory-system signature the paper characterizes for TPC-B on Oracle
//! 7.3.2: L1-overwhelming instruction and data footprints, a hot set that
//! a 2 MB associative L2 captures, heavy read-write sharing of SGA
//! metadata in multiprocessor runs, and a cold stream (account rows,
//! history, log I/O) that no cache captures.

use std::error::Error;
use std::fmt;

/// An invalid combination of workload parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamsError(String);

impl ParamsError {
    pub(crate) fn from_msg(msg: &str) -> Self {
        ParamsError(msg.to_string())
    }
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload parameters: {}", self.0)
    }
}

impl Error for ParamsError {}

/// Parameters of the synthetic TPC-B / Oracle workload.
///
/// Plain data with public fields; call [`OltpParams::validate`] after
/// hand-editing, or rely on [`OltpParams::default`] which is always valid.
#[derive(Clone, Debug, PartialEq)]
pub struct OltpParams {
    /// Master RNG seed; every process stream derives from it.
    pub seed: u64,

    // --- TPC-B schema (scale: 40 branches, as in the paper) ---
    /// Number of branches.
    pub branches: u64,
    /// Tellers per branch (TPC-B: 10).
    pub tellers_per_branch: u64,
    /// Accounts per branch (TPC-B: 100 000).
    pub accounts_per_branch: u64,
    /// Fraction of transactions whose account belongs to the teller's own
    /// branch (TPC-B's 85/15 home/remote rule).
    pub home_account_fraction: f64,

    // --- process architecture ---
    /// Dedicated server processes per processor (the paper uses 8).
    pub servers_per_node: usize,

    // --- code footprint ---
    /// Hot database-engine text, in 64-byte lines (default 10240 = 640 KB).
    pub db_code_lines: u64,
    /// Hot kernel text, in lines (default 4096 = 256 KB).
    pub kernel_code_lines: u64,
    /// Zipf skew of function popularity (0 = uniform).
    pub code_zipf: f64,
    /// Lines per function (straight-line run before jumping).
    pub func_lines: u64,
    /// Instructions per 64-byte line (4-byte instructions = 16).
    pub instrs_per_line: u64,

    // --- transaction path lengths (instructions) ---
    /// Database-engine instructions per transaction (parse + execute).
    pub txn_db_instrs: u64,
    /// Kernel instructions for client/pipe handling per transaction.
    pub txn_pipe_instrs: u64,
    /// Mixed commit-path instructions per transaction (log syscall).
    pub txn_commit_instrs: u64,
    /// Kernel instructions per context switch.
    pub switch_instrs: u64,
    /// Log-writer burst length (instructions), run on node 0.
    pub lgwr_instrs: u64,
    /// Commits that accumulate before a log-writer burst.
    pub lgwr_batch: u64,
    /// Database-writer burst length (instructions).
    pub dbwr_instrs: u64,
    /// Scheduler rounds between database-writer bursts.
    pub dbwr_period: u64,

    // --- data reference mix (per instruction) ---
    /// Probability an instruction carries a load.
    pub p_load: f64,
    /// Probability an instruction carries a store.
    pub p_store: f64,
    /// Probability a background data reference re-touches one of the
    /// process's recently used lines instead of a fresh target (temporal
    /// locality of register spills, loop variables, cursor state).
    pub bg_reuse: f64,

    // --- data footprints (in 64-byte lines unless noted) ---
    /// Hot private PGA/stack lines per server process.
    pub pga_hot_lines: u64,
    /// Warm private work-area lines per server process (sort areas,
    /// cursor caches) — touched at a lower rate than the PGA but large
    /// enough to stress the L2.
    pub work_area_lines: u64,
    /// Hot shared SGA metadata lines (latches, buffer headers, list
    /// heads) — the communication-miss driver in multiprocessor runs.
    pub meta_hot_lines: u64,
    /// Zipf skew of metadata line popularity.
    pub meta_zipf: f64,
    /// Hot shared read-mostly SGA lines (dictionary cache, descriptors).
    pub shared_read_lines: u64,
    /// Zipf skew of read-mostly line popularity.
    pub shared_read_zipf: f64,
    /// Log-buffer ring size in lines (Oracle redo log buffer).
    pub log_ring_lines: u64,
    /// Hot kernel data lines per node (run queues, pipe structures).
    pub kernel_node_lines: u64,
    /// Globally shared kernel data lines (file table, global locks).
    pub kernel_shared_lines: u64,
    /// Kernel stack lines per server process.
    pub kernel_stack_lines: u64,

    // --- background mix weights (normalized internally) ---
    /// User loads: weight of private PGA/stack.
    pub w_uload_private: f64,
    /// User loads: weight of hot shared metadata.
    pub w_uload_meta: f64,
    /// User loads: weight of read-mostly shared SGA.
    pub w_uload_shared_read: f64,
    /// User loads: weight of the private work area.
    pub w_uload_work: f64,
    /// User stores: weight of private PGA/stack.
    pub w_ustore_private: f64,
    /// User stores: weight of hot shared metadata.
    pub w_ustore_meta: f64,
    /// User stores: weight of the private work area.
    pub w_ustore_work: f64,
    /// Kernel loads/stores: weight of per-process kernel stack.
    pub w_k_stack: f64,
    /// Kernel loads/stores: weight of per-node kernel data.
    pub w_k_node: f64,
    /// Kernel loads/stores: weight of globally shared kernel data.
    pub w_k_shared: f64,
    /// Fraction of kernel *stores* that go to the globally shared kernel
    /// region (the rest follow the load mix).
    pub k_shared_store_fraction: f64,

    // --- database block geometry ---
    /// Oracle data block size in bytes (2 KB in period installs).
    pub block_bytes: u64,
    /// Account row bytes (controls rows per block).
    pub account_row_bytes: u64,
    /// History rows per block before moving to a fresh block.
    pub history_rows_per_block: u64,
}

impl Default for OltpParams {
    fn default() -> Self {
        OltpParams {
            seed: 0xC0FF_EE00_2000,
            branches: 40,
            tellers_per_branch: 10,
            accounts_per_branch: 100_000,
            home_account_fraction: 0.85,
            servers_per_node: 8,
            db_code_lines: 10_240,
            kernel_code_lines: 4_096,
            code_zipf: 1.05,
            func_lines: 8,
            instrs_per_line: 16,
            txn_db_instrs: 12_000,
            txn_pipe_instrs: 1_200,
            txn_commit_instrs: 1_800,
            switch_instrs: 400,
            lgwr_instrs: 1_500,
            lgwr_batch: 4,
            dbwr_instrs: 2_000,
            dbwr_period: 24,
            p_load: 0.26,
            p_store: 0.13,
            bg_reuse: 0.65,
            pga_hot_lines: 96,
            work_area_lines: 768,
            meta_hot_lines: 3_072,
            meta_zipf: 0.92,
            shared_read_lines: 1_536,
            shared_read_zipf: 0.92,
            log_ring_lines: 2_048,
            kernel_node_lines: 1_024,
            kernel_shared_lines: 96,
            kernel_stack_lines: 64,
            w_uload_private: 0.60,
            w_uload_meta: 0.05,
            w_uload_shared_read: 0.18,
            w_uload_work: 0.33,
            w_ustore_private: 0.84,
            w_ustore_meta: 0.045,
            w_ustore_work: 0.12,
            w_k_stack: 0.45,
            w_k_node: 0.45,
            w_k_shared: 0.10,
            k_shared_store_fraction: 0.02,
            block_bytes: 2_048,
            account_row_bytes: 100,
            history_rows_per_block: 40,
        }
    }
}

impl OltpParams {
    /// Total accounts in the database.
    pub fn total_accounts(&self) -> u64 {
        self.branches * self.accounts_per_branch
    }

    /// Total tellers.
    pub fn total_tellers(&self) -> u64 {
        self.branches * self.tellers_per_branch
    }

    /// Account rows per database block, ignoring block-header overhead
    /// (the schema layer subtracts the 128-byte header; see
    /// [`crate::Schema::rows_per_block`]).
    pub fn account_rows_per_block(&self) -> u64 {
        (self.block_bytes / self.account_row_bytes).max(1)
    }

    /// Approximate instructions per transaction (excluding daemon and
    /// scheduler overhead).
    pub fn txn_instrs(&self) -> u64 {
        self.txn_db_instrs + self.txn_pipe_instrs + self.txn_commit_instrs
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] describing the first violated constraint:
    /// zero counts, probabilities outside [0, 1], `p_load + p_store > 1`,
    /// or non-positive mix weights.
    pub fn validate(&self) -> Result<(), ParamsError> {
        let err = |m: &str| Err(ParamsError(m.to_string()));
        if self.branches == 0 || self.tellers_per_branch == 0 || self.accounts_per_branch == 0 {
            return err("schema counts must be nonzero");
        }
        if self.servers_per_node == 0 {
            return err("at least one server process per node is required");
        }
        if self.db_code_lines == 0 || self.kernel_code_lines == 0 {
            return err("code footprints must be nonzero");
        }
        if self.func_lines == 0 || self.instrs_per_line == 0 {
            return err("function geometry must be nonzero");
        }
        if self.txn_db_instrs == 0 {
            return err("transactions must execute database code");
        }
        if !(0.0..=1.0).contains(&self.home_account_fraction) {
            return err("home_account_fraction must be in [0, 1]");
        }
        if self.p_load < 0.0 || self.p_store < 0.0 || self.p_load + self.p_store > 1.0 {
            return err("p_load/p_store must be nonnegative with sum <= 1");
        }
        if !(0.0..=1.0).contains(&self.bg_reuse) {
            return err("bg_reuse must be in [0, 1]");
        }
        let weights = [
            self.w_uload_private,
            self.w_uload_meta,
            self.w_uload_shared_read,
            self.w_uload_work,
            self.w_ustore_work,
            self.w_ustore_private,
            self.w_ustore_meta,
            self.w_k_stack,
            self.w_k_node,
            self.w_k_shared,
        ];
        if weights.iter().any(|w| *w < 0.0) || weights.iter().all(|w| *w == 0.0) {
            return err("mix weights must be nonnegative and not all zero");
        }
        if !(0.0..=1.0).contains(&self.k_shared_store_fraction) {
            return err("k_shared_store_fraction must be in [0, 1]");
        }
        if self.meta_hot_lines == 0
            || self.pga_hot_lines == 0
            || self.log_ring_lines == 0
            || self.shared_read_lines == 0
        {
            return err("data footprints must be nonzero");
        }
        if self.block_bytes == 0
            || self.account_row_bytes == 0
            || self.account_row_bytes > self.block_bytes
        {
            return err("block geometry is inconsistent");
        }
        if self.history_rows_per_block == 0 {
            return err("history_rows_per_block must be nonzero");
        }
        if self.lgwr_batch == 0 || self.dbwr_period == 0 {
            return err("daemon periods must be nonzero");
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    #[test]
    fn txn_instrs_sums_the_per_phase_budgets() {
        let p = super::OltpParams::default();
        assert_eq!(p.txn_instrs(), p.txn_db_instrs + p.txn_pipe_instrs + p.txn_commit_instrs);
        assert!(p.txn_instrs() > 0);
    }

    use super::*;

    #[test]
    fn defaults_are_valid_and_match_the_paper_scale() {
        let p = OltpParams::default();
        p.validate().expect("defaults must validate");
        assert_eq!(p.branches, 40);
        assert_eq!(p.total_accounts(), 4_000_000);
        assert_eq!(p.total_tellers(), 400);
        assert_eq!(p.servers_per_node, 8);
    }

    #[test]
    fn account_rows_per_block() {
        let p = OltpParams::default();
        assert_eq!(p.account_rows_per_block(), 20);
    }

    #[test]
    fn validation_rejects_zero_schema() {
        let mut p = OltpParams::default();
        p.branches = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_probabilities() {
        let mut p = OltpParams::default();
        p.p_load = 0.9;
        p.p_store = 0.2;
        assert!(p.validate().is_err());
        let mut p = OltpParams::default();
        p.home_account_fraction = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_negative_weights() {
        let mut p = OltpParams::default();
        p.w_uload_meta = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_row_bigger_than_block() {
        let mut p = OltpParams::default();
        p.account_row_bytes = 4096;
        assert!(p.validate().is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let mut p = OltpParams::default();
        p.servers_per_node = 0;
        let e = p.validate().unwrap_err();
        assert!(e.to_string().contains("server process"));
    }
}
