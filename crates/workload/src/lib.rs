//! Synthetic OLTP workload engine for the chip-level-integration study.
//!
//! The paper runs TPC-B on the Oracle 7.3.2 commercial database under
//! Tru64 Unix inside the SimOS-Alpha full-system simulator. Neither the
//! database nor the simulator is available, so this crate implements the
//! closest synthetic equivalent: a generator of per-processor memory
//! reference streams that structurally reproduces the workload's
//! memory-system signature (see DESIGN.md for the substitution argument):
//!
//! * **Process architecture** — 8 dedicated server processes per
//!   processor, a log writer (node 0) and a database writer (node 1),
//!   context-switched at transaction phase boundaries; kernel activity
//!   (pipes, scheduler, I/O) is ~25% of instructions as the paper reports.
//! * **Footprints** — hot database and kernel text far larger than the
//!   64 KB L1s; hot private PGA per server; hot shared SGA metadata and a
//!   read-mostly dictionary region; everything scattered page-by-page
//!   through physical memory so direct-mapped caches suffer realistic
//!   conflict misses.
//! * **Sharing** — TPC-B's 40 branch rows and their latches migrate
//!   between all nodes (3-hop misses); the redo-log tail is write-shared;
//!   packed teller rows false-share lines; the log writer and database
//!   writer read other nodes' dirty data.
//! * **Cold streams** — uniform account-row accesses over hundreds of
//!   megabytes, history appends, and I/O staging buffers that no cache
//!   holds.
//!
//! # Example
//!
//! ```
//! use csim_trace::ReferenceStream;
//! use csim_workload::{OltpParams, OltpWorkload};
//!
//! let mut nodes = OltpWorkload::build(OltpParams::default(), 2)?;
//! let r = nodes[0].next_ref();
//! assert!(r.addr < 1 << 46);
//! # Ok::<(), csim_workload::ParamsError>(())
//! ```

#![forbid(unsafe_code)]

mod code;
mod layout;
mod params;
mod sga;
mod stream;
mod tpcb;
mod zipf;

pub use code::{CodeCursor, CodeRegion};
pub use layout::{AddressMap, Region, ADDR_BITS, LINES_PER_PAGE, LINE_BYTES, PAGE_BYTES};
pub use params::{OltpParams, ParamsError};
pub use sga::{LockKind, Sga};
pub use stream::{NodeWorkload, OltpWorkload, SharedOltpState};
pub use tpcb::{RowRef, Schema, Table};
pub use zipf::ZipfTable;
