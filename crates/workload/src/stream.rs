//! The per-node OLTP reference stream.
//!
//! Each simulated processor runs the paper's process mix: 8 dedicated
//! Oracle server processes executing TPC-B transactions, the log writer
//! (on node 0), the database writer (on node 1, or node 0 in a
//! uniprocessor), and kernel activity (pipes, context switches, I/O) that
//! accounts for roughly a quarter of all instructions. A transaction is
//! three scheduling bursts — pipe receive (kernel), execute (database
//! engine), commit (database + kernel) — with a context switch between
//! bursts, so the 8 servers' footprints interleave in the caches exactly
//! the way time-sharing interleaves them on real hardware.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use csim_trace::{Access, Addr, ExecMode, MemRef, ReferenceStream, SimRng};

use crate::code::{CodeCursor, CodeRegion};
use crate::layout::{AddressMap, Region, RegionHandle};
use crate::params::{OltpParams, ParamsError};
use crate::sga::{LockKind, Sga};
use crate::tpcb::{Schema, Table};
use crate::zipf::ZipfTable;

/// Redo bytes generated per row update.
const REDO_BYTES_PER_UPDATE: u64 = 120;

/// Number of dirty block lines one database-writer burst flushes.
const DBWR_FLUSH_LINES: usize = 16;

/// State shared by every process on every node: the redo log tail, commit
/// accounting, and the recently-dirtied block lines the database writer
/// flushes.
#[derive(Debug, Default)]
pub struct SharedOltpState {
    log_tail_bytes: AtomicU64,
    pending_commits: AtomicU64,
    txns_completed: AtomicU64,
    recent_dirty: Mutex<VecDeque<Addr>>,
}

impl SharedOltpState {
    /// Transactions committed machine-wide so far.
    pub fn transactions_completed(&self) -> u64 {
        self.txns_completed.load(Relaxed)
    }

    // The dirty queue is a bounded ring of addresses with no cross-field
    // invariants, so a poisoned lock (another stream thread panicked while
    // holding it) leaves it perfectly usable: recover the guard instead of
    // propagating the panic into every surviving stream.
    fn push_dirty(&self, addr: Addr) {
        let mut q = self.recent_dirty.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= 256 {
            q.pop_front();
        }
        q.push_back(addr);
    }

    /// Moves up to `out.len()` recently dirtied lines into the caller's
    /// scratch and returns how many were written. Indexed writes into a
    /// fixed buffer — the database writer calls this on the hot burst
    /// path, which is allocation-free.
    fn pop_dirty_into(&self, out: &mut [Addr]) -> usize {
        let mut q = self.recent_dirty.lock().unwrap_or_else(|e| e.into_inner());
        let take = out.len().min(q.len());
        // analyze: total — take = out.len().min(q.len()) bounds the slice by out's own length
        for (slot, addr) in out[..take].iter_mut().zip(q.drain(..take)) {
            *slot = addr;
        }
        take
    }
}

/// The OLTP workload: builds one [`NodeWorkload`] stream per processor.
#[derive(Debug)]
pub struct OltpWorkload;

impl OltpWorkload {
    /// Validates `params` and builds the per-node streams. All streams
    /// share the redo log tail and commit bookkeeping, so they must be
    /// consumed by one simulation.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] when the parameters are inconsistent or
    /// `n_nodes` is 0 or exceeds 64 (the directory's presence-vector
    /// limit).
    pub fn build(params: OltpParams, n_nodes: usize) -> Result<Vec<NodeWorkload>, ParamsError> {
        params.validate()?;
        if n_nodes == 0 || n_nodes > 64 {
            return Err(ParamsError::from_msg("node count must be in 1..=64"));
        }
        let params = Arc::new(params);
        let shared = Arc::new(SharedOltpState::default());
        let schema = Arc::new(Schema::new(&params));
        let sga = Arc::new(Sga::new(params.meta_hot_lines, params.log_ring_lines));
        let db_code = Arc::new(CodeRegion::new(
            Region::DbCode,
            params.db_code_lines,
            params.func_lines,
            params.instrs_per_line,
            params.code_zipf,
        ));
        let kernel_code = Arc::new(CodeRegion::new(
            Region::KernelCode,
            params.kernel_code_lines,
            params.func_lines,
            params.instrs_per_line,
            params.code_zipf,
        ));
        let meta_zipf = Arc::new(ZipfTable::new(params.meta_hot_lines, params.meta_zipf));
        let shared_read_zipf =
            Arc::new(ZipfTable::new(params.shared_read_lines, params.shared_read_zipf));
        Ok((0..n_nodes as u8)
            .map(|node| {
                NodeWorkload::new(
                    node,
                    n_nodes as u8,
                    Arc::clone(&params),
                    Arc::clone(&shared),
                    Arc::clone(&schema),
                    Arc::clone(&sga),
                    Arc::clone(&db_code),
                    Arc::clone(&kernel_code),
                    Arc::clone(&meta_zipf),
                    Arc::clone(&shared_read_zipf),
                )
            })
            .collect())
    }
}

/// A server process's position in its transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Kernel: read the client's request from the pipe.
    Pipe,
    /// Database engine: parse and execute the TPC-B updates.
    Execute,
    /// Database + kernel: commit, write redo, signal the log writer.
    Commit,
}

/// Per-server-process state.
#[derive(Clone, Debug)]
struct ServerState {
    phase: Phase,
    db_cursor: CodeCursor,
    kernel_cursor: CodeCursor,
    teller: u64,
    branch: u64,
    account: u64,
    recent: RecentLines,
}

/// A tiny ring of recently touched background lines, giving background
/// references the short-term temporal locality real code exhibits.
#[derive(Clone, Copy, Debug, Default)]
struct RecentLines {
    lines: [Addr; 4],
    len: usize,
    pos: usize,
}

impl RecentLines {
    /// Records an address in the ring (fixed storage, indexed write).
    fn note(&mut self, addr: Addr) {
        // analyze: total — pos wraps modulo lines.len() after every write
        self.lines[self.pos] = addr;
        self.pos = (self.pos + 1) % self.lines.len();
        self.len = (self.len + 1).min(self.lines.len());
    }

    fn pick(&self, idx: usize) -> Option<Addr> {
        match self.len {
            0 => None,
            // `len` saturates at 4, so in steady state the reduction is a
            // mask instead of a hardware divide; `idx & 3 == idx % 4`.
            4 => Some(self.lines[idx & 3]),
            // analyze: total — len saturates at lines.len(), so idx % len stays inside the ring
            len => Some(self.lines[idx % len]),
        }
    }
}

/// The reference stream of one processor node.
///
/// Produced by [`OltpWorkload::build`]; consumed by the simulator via
/// [`ReferenceStream`].
#[derive(Debug)]
pub struct NodeWorkload {
    node: u8,
    params: Arc<OltpParams>,
    shared: Arc<SharedOltpState>,
    schema: Arc<Schema>,
    sga: Arc<Sga>,
    map: AddressMap,
    // Precomputed region scatter handles: address translation through a
    // handle skips half the page-hash mixing on every background data
    // reference (bit-identical addresses; see `AddressMap::handle`).
    h_meta: RegionHandle,
    h_log: RegionHandle,
    h_shared_read: RegionHandle,
    h_kernel_shared: RegionHandle,
    h_kernel_node: RegionHandle,
    h_pga: Vec<RegionHandle>,
    h_work: Vec<RegionHandle>,
    h_kstack: Vec<RegionHandle>,
    db_code: Arc<CodeRegion>,
    kernel_code: Arc<CodeRegion>,
    meta_zipf: Arc<ZipfTable>,
    shared_read_zipf: Arc<ZipfTable>,
    rng: SimRng,
    servers: Vec<ServerState>,
    cur_server: usize,
    rounds: u64,
    last_dbwr_round: u64,
    lgwr_flushed_bytes: u64,
    history_seq: u64,
    io_seq: u64,
    txns_local: u64,
    runs_lgwr: bool,
    runs_dbwr: bool,
    daemon_db_cursor: CodeCursor,
    daemon_kernel_cursor: CodeCursor,
    daemon_recent: RecentLines,
    /// The current scheduling burst, consumed by index. A preallocated
    /// flat buffer plus write/read cursors: the emit path is an indexed
    /// store and an increment — no capacity checks, no reallocation, no
    /// heap traffic after construction (`refill_burst` is `analyze: hot`
    /// and allocation-free). Entries are packed to one word each (see
    /// [`MemRef::pack`]): a burst is written once and read once, so
    /// halving its footprint halves the buffer's share of memory traffic
    /// on the simulator's hottest path. Sized in [`NodeWorkload::new`] for
    /// the largest burst any parameter set can emit.
    buf: Vec<u64>,
    /// One past the last valid word in `buf`.
    buf_len: usize,
    /// Next word of `buf` to hand out.
    buf_head: usize,
    // Precomputed mix thresholds, in the integer domain of
    // [`prob_threshold`]: a 53-bit draw `rng.next_u64() >> 11` compared
    // against a threshold decides exactly like `rng.gen_f64() < p`, with
    // no int→float conversion on the branch-feeding path.
    uload_private: u64,
    uload_meta: u64,
    uload_work: u64,
    ustore_private: u64,
    ustore_meta: u64,
    k_stack: u64,
    k_node: u64,
    t_load: u64,
    t_either: u64,
    t_reuse: u64,
    t_kshared: u64,
}

/// The integer threshold equivalent to `gen_f64() < p`.
///
/// `gen_f64` is `(next_u64() >> 11) as f64 * 2^-53`, so with `n` the
/// 53-bit draw, `n * 2^-53 < p  ⟺  n < p * 2^53  ⟺  n < ceil(p * 2^53)`
/// (for integer `p * 2^53` the strict compare is unchanged; otherwise
/// rounding up admits exactly the integers below the real bound). The
/// scaling by a power of two is exact in `f64`, so the decision — and
/// therefore every downstream draw — is bit-identical to the float form.
pub(crate) fn prob_threshold(p: f64) -> u64 {
    (p * (1u64 << 53) as f64).ceil() as u64
}

impl NodeWorkload {
    #[allow(clippy::too_many_arguments)]
    fn new(
        node: u8,
        n_nodes: u8,
        params: Arc<OltpParams>,
        shared: Arc<SharedOltpState>,
        schema: Arc<Schema>,
        sga: Arc<Sga>,
        db_code: Arc<CodeRegion>,
        kernel_code: Arc<CodeRegion>,
        meta_zipf: Arc<ZipfTable>,
        shared_read_zipf: Arc<ZipfTable>,
    ) -> Self {
        let seed = params
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(node).wrapping_mul(0xbf58_476d_1ce4_e5b9));
        let mut rng = SimRng::seed_from_u64(seed);
        let servers = (0..params.servers_per_node)
            .map(|_| ServerState {
                phase: Phase::Pipe,
                db_cursor: db_code.entry(&mut rng),
                kernel_cursor: kernel_code.entry(&mut rng),
                teller: 0,
                branch: 0,
                account: 0,
                recent: RecentLines::default(),
            })
            .collect();
        let uload_total = params.w_uload_private
            + params.w_uload_meta
            + params.w_uload_work
            + params.w_uload_shared_read;
        let ustore_total = params.w_ustore_private + params.w_ustore_meta + params.w_ustore_work;
        let k_total = params.w_k_stack + params.w_k_node + params.w_k_shared;
        let map = AddressMap::new(params.seed);
        let daemon_db_cursor = db_code.entry(&mut rng);
        let daemon_kernel_cursor = kernel_code.entry(&mut rng);
        let servers_per_node = params.servers_per_node;
        // Worst-case burst: `run_code(n)` emits at most 2 words per
        // instruction (fetch + optional data), a refill runs one phase
        // burst plus the context switch, and the scripted extras (locks,
        // redo lines, lgwr harvest, dbwr flush) stay well under the slack.
        let burst_cap = 2 * (params.txn_db_instrs
            + params.txn_pipe_instrs
            + params.txn_commit_instrs
            + params.lgwr_instrs
            + params.dbwr_instrs
            + params.switch_instrs) as usize
            + 2048;
        let per_server = |f: &dyn Fn(u16) -> Region| -> Vec<RegionHandle> {
            (0..servers_per_node).map(|s| map.handle(f(s as u16))).collect()
        };
        NodeWorkload {
            node,
            runs_lgwr: node == 0,
            runs_dbwr: node == if n_nodes > 1 { 1 } else { 0 },
            params: Arc::clone(&params),
            shared,
            schema,
            sga,
            h_meta: map.handle(Region::MetaHot),
            h_log: map.handle(Region::LogRing),
            h_shared_read: map.handle(Region::SharedRead),
            h_kernel_shared: map.handle(Region::KernelShared),
            h_kernel_node: map.handle(Region::KernelNode { node }),
            h_pga: per_server(&|server| Region::Pga { node, server }),
            h_work: per_server(&|server| Region::WorkArea { node, server }),
            h_kstack: per_server(&|server| Region::KernelStack { node, server }),
            map,
            db_code,
            kernel_code,
            meta_zipf,
            shared_read_zipf,
            rng,
            servers,
            cur_server: 0,
            rounds: 0,
            last_dbwr_round: 0,
            lgwr_flushed_bytes: 0,
            history_seq: 0,
            io_seq: 0,
            txns_local: 0,
            daemon_db_cursor,
            daemon_kernel_cursor,
            daemon_recent: RecentLines::default(),
            buf: vec![0; burst_cap],
            buf_len: 0,
            buf_head: 0,
            uload_private: prob_threshold(params.w_uload_private / uload_total),
            uload_meta: prob_threshold(
                (params.w_uload_private + params.w_uload_meta) / uload_total,
            ),
            uload_work: prob_threshold(
                (params.w_uload_private + params.w_uload_meta + params.w_uload_work) / uload_total,
            ),
            ustore_private: prob_threshold(params.w_ustore_private / ustore_total),
            ustore_meta: prob_threshold(
                (params.w_ustore_private + params.w_ustore_meta) / ustore_total,
            ),
            k_stack: prob_threshold(params.w_k_stack / k_total),
            k_node: prob_threshold((params.w_k_stack + params.w_k_node) / k_total),
            t_load: prob_threshold(params.p_load),
            t_either: prob_threshold(params.p_load + params.p_store),
            t_reuse: prob_threshold(params.bg_reuse),
            t_kshared: prob_threshold(params.k_shared_store_fraction),
        }
    }

    /// This stream's node id.
    pub fn node(&self) -> u8 {
        self.node
    }

    /// Transactions committed by this node's servers.
    pub fn node_transactions(&self) -> u64 {
        self.txns_local
    }

    /// The machine-wide shared workload state.
    pub fn shared(&self) -> &SharedOltpState {
        &self.shared
    }

    /// A cloneable handle to the shared workload state (e.g. for counting
    /// transactions from outside the stream).
    pub fn shared_handle(&self) -> Arc<SharedOltpState> {
        Arc::clone(&self.shared)
    }

    // ---- low-level emission helpers -------------------------------------

    /// Appends one packed word to the burst buffer: an indexed store into
    /// preallocated storage, so the whole refill cone stays heap-free.
    /// The buffer is sized for the largest possible burst, so the write
    /// can never run past the end (the bounds check enforces it).
    // analyze: hot
    #[inline]
    fn emit(&mut self, word: u64) {
        // analyze: total — each refill emits at most the buffer's capacity (the burst recipes are sized for it), so buf_len stays below buf.len() until the reset
        self.buf[self.buf_len] = word;
        self.buf_len += 1;
    }

    #[inline]
    fn emit_data(&mut self, addr: Addr, write: bool, mode: ExecMode) {
        let access = if write { Access::Store } else { Access::Load };
        self.emit(MemRef::new(addr, access, mode).pack());
    }

    #[inline]
    fn meta_addr(&self, line: u64) -> Addr {
        self.h_meta.line_addr(line)
    }

    /// Acquire-release style latch access: read then write the lock line.
    fn touch_lock(&mut self, kind: LockKind, id: u64) {
        let addr = self.meta_addr(self.sga.lock_line(kind, id));
        self.emit_data(addr, false, ExecMode::User);
        self.emit_data(addr, true, ExecMode::User);
    }

    /// Buffer-header lookup plus touch-count update.
    fn touch_header(&mut self, table: Table, block: u64) {
        let addr = self.meta_addr(self.sga.buffer_header_line(table, block));
        self.emit_data(addr, false, ExecMode::User);
        self.emit_data(addr, true, ExecMode::User);
    }

    /// Appends `bytes` of redo to the global log ring (write-shared tail).
    fn append_redo(&mut self, bytes: u64) {
        let start = self.shared.log_tail_bytes.fetch_add(bytes, Relaxed);
        let first = start / 64;
        let last = (start + bytes - 1) / 64;
        for line in first..=last {
            let ring_line = line % self.sga.log_ring_lines();
            let addr = self.h_log.line_addr(ring_line);
            self.emit_data(addr, true, ExecMode::User);
        }
    }

    /// Emits `n` instructions of straight-line-plus-jump code with the
    /// background data mix.
    fn run_code(&mut self, kernel: bool, server: u16, n: u64) {
        let mode = if kernel { ExecMode::Kernel } else { ExecMode::User };
        let code = if kernel { Arc::clone(&self.kernel_code) } else { Arc::clone(&self.db_code) };
        let (t_load, t_either) = (self.t_load, self.t_either);
        let mut cursor = self.cursor_for(kernel, server);
        for _ in 0..n {
            let addr = code.step(&mut cursor, &mut self.rng, &self.map);
            self.emit(MemRef::new(addr, Access::InstrFetch, mode).pack());
            let roll = self.rng.next_u64() >> 11;
            if roll < t_load {
                let a = self.background_target(kernel, server, false);
                self.emit_data(a, false, mode);
            } else if roll < t_either {
                let a = self.background_target(kernel, server, true);
                self.emit_data(a, true, mode);
            }
        }
        self.store_cursor(kernel, server, cursor);
    }

    // analyze: total — server ids other than the daemon sentinel are the round-robin cursor reduced modulo servers.len()
    fn cursor_for(&self, kernel: bool, server: u16) -> CodeCursor {
        if server == u16::MAX {
            if kernel {
                self.daemon_kernel_cursor
            } else {
                self.daemon_db_cursor
            }
        } else if kernel {
            self.servers[server as usize].kernel_cursor
        } else {
            self.servers[server as usize].db_cursor
        }
    }

    // analyze: total — server ids other than the daemon sentinel are the round-robin cursor reduced modulo servers.len()
    fn store_cursor(&mut self, kernel: bool, server: u16, cursor: CodeCursor) {
        if server == u16::MAX {
            if kernel {
                self.daemon_kernel_cursor = cursor;
            } else {
                self.daemon_db_cursor = cursor;
            }
        } else if kernel {
            self.servers[server as usize].kernel_cursor = cursor;
        } else {
            self.servers[server as usize].db_cursor = cursor;
        }
    }

    /// Picks the target of a background data reference, preferring a
    /// recently used line with probability `bg_reuse`.
    // analyze: total — server_idx is a modulo-reduced server id and the per-server home arrays (h_kstack, h_pga, h_work) hold one region per server
    fn background_target(&mut self, kernel: bool, server: u16, write: bool) -> Addr {
        if self.rng.next_u64() >> 11 < self.t_reuse {
            let idx = self.rng.gen_range_usize(0..4);
            let recent = if server == u16::MAX {
                &self.daemon_recent
            } else {
                &self.servers[server as usize].recent
            };
            if let Some(addr) = recent.pick(idx) {
                return addr;
            }
        }
        let addr = self.fresh_background_target(kernel, server, write);
        if server == u16::MAX {
            self.daemon_recent.note(addr);
        } else {
            self.servers[server as usize].recent.note(addr);
        }
        addr
    }

    /// Picks a fresh background target from the mode's region mix.
    // analyze: total — server_idx is a modulo-reduced server id and the per-server home arrays (h_kstack, h_pga, h_work) hold one region per server
    fn fresh_background_target(&mut self, kernel: bool, server: u16, write: bool) -> Addr {
        let server_idx = if server == u16::MAX { 0 } else { server };
        if kernel {
            if write && self.rng.next_u64() >> 11 < self.t_kshared {
                let line = self.rng.gen_range(0..self.params.kernel_shared_lines);
                return self.h_kernel_shared.line_addr(line);
            }
            let roll = self.rng.next_u64() >> 11;
            if roll < self.k_stack {
                let line = self.rng.gen_range(0..self.params.kernel_stack_lines);
                self.h_kstack[server_idx as usize].line_addr(line)
            } else if roll < self.k_node {
                let line = self.rng.gen_range(0..self.params.kernel_node_lines);
                self.h_kernel_node.line_addr(line)
            } else {
                let line = self.rng.gen_range(0..self.params.kernel_shared_lines);
                self.h_kernel_shared.line_addr(line)
            }
        } else if write {
            let roll = self.rng.next_u64() >> 11;
            if roll < self.ustore_private {
                let line = self.rng.gen_range(0..self.params.pga_hot_lines);
                self.h_pga[server_idx as usize].line_addr(line)
            } else if roll < self.ustore_meta {
                let n = self.rng.next_u64() >> 11;
                self.meta_addr(self.meta_zipf.sample_u53(n))
            } else {
                let line = self.rng.gen_range(0..self.params.work_area_lines);
                self.h_work[server_idx as usize].line_addr(line)
            }
        } else {
            let roll = self.rng.next_u64() >> 11;
            if roll < self.uload_private {
                let line = self.rng.gen_range(0..self.params.pga_hot_lines);
                self.h_pga[server_idx as usize].line_addr(line)
            } else if roll < self.uload_meta {
                let n = self.rng.next_u64() >> 11;
                self.meta_addr(self.meta_zipf.sample_u53(n))
            } else if roll < self.uload_work {
                let line = self.rng.gen_range(0..self.params.work_area_lines);
                self.h_work[server_idx as usize].line_addr(line)
            } else {
                let n = self.rng.next_u64() >> 11;
                let line = self.shared_read_zipf.sample_u53(n);
                self.h_shared_read.line_addr(line)
            }
        }
    }

    // ---- phase bursts ----------------------------------------------------

    /// Kernel burst: receive the client request over the pipe.
    fn burst_pipe(&mut self, s: u16) {
        self.run_code(true, s, self.params.txn_pipe_instrs);
        // Pipe buffer and wakeup touches in per-node kernel data.
        for _ in 0..2 {
            let line = self.rng.gen_range(0..self.params.kernel_node_lines);
            let addr = self.h_kernel_node.line_addr(line);
            self.emit_data(addr, false, ExecMode::Kernel);
            self.emit_data(addr, true, ExecMode::Kernel);
        }
        // Choose the transaction the client submitted.
        let teller = self.schema.pick_teller(&mut self.rng);
        let branch = self.schema.branch_of_teller(teller);
        let account = self.schema.pick_account(&mut self.rng, branch);
        // analyze: total — server ids other than the daemon sentinel are the round-robin cursor reduced modulo servers.len()
        let srv = &mut self.servers[s as usize];
        srv.teller = teller;
        srv.branch = branch;
        srv.account = account;
        srv.phase = Phase::Execute;
    }

    /// Database burst: the TPC-B updates.
    // analyze: total — server_idx is a modulo-reduced server id and the per-server home arrays (h_kstack, h_pga, h_work) hold one region per server
    fn burst_execute(&mut self, s: u16) {
        let (teller, branch, account) = {
            let srv = &self.servers[s as usize];
            (srv.teller, srv.branch, srv.account)
        };
        let chunk = (self.params.txn_db_instrs / 12).max(1);

        // Begin: transaction-table slot.
        self.run_code(false, s, chunk);
        let slot = self.meta_addr(self.sga.txn_slot_line(self.node, s));
        self.emit_data(slot, true, ExecMode::User);

        // Account update: lock, header, row read-modify-write, undo, redo.
        self.run_code(false, s, chunk);
        self.touch_lock(LockKind::Account, account);
        let arow = self.schema.account_row(account);
        self.touch_header(Table::Account, arow.block);
        self.run_code(false, s, 2 * chunk);
        let aaddr = self.map.line_addr(Region::AccountBlocks, arow.row_line);
        self.emit_data(aaddr, false, ExecMode::User);
        self.run_code(false, s, chunk);
        self.emit_data(aaddr, true, ExecMode::User);
        self.shared.push_dirty(aaddr);
        let undo = {
            let line = self.rng.gen_range(0..self.params.pga_hot_lines);
            self.h_pga[s as usize].line_addr(line)
        };
        self.emit_data(undo, true, ExecMode::User);
        self.append_redo(REDO_BYTES_PER_UPDATE);

        // Teller update.
        self.run_code(false, s, chunk);
        self.touch_lock(LockKind::Teller, teller);
        let trow = self.schema.teller_row(teller);
        self.touch_header(Table::Teller, trow.block);
        let taddr = self.map.line_addr(Region::TellerBlocks, trow.row_line);
        self.emit_data(taddr, false, ExecMode::User);
        self.emit_data(taddr, true, ExecMode::User);
        self.append_redo(REDO_BYTES_PER_UPDATE);

        // Branch update (the migratory hot spot).
        self.run_code(false, s, 2 * chunk);
        self.touch_lock(LockKind::Branch, branch);
        let brow = self.schema.branch_row(branch);
        self.touch_header(Table::Branch, brow.block);
        let baddr = self.map.line_addr(Region::BranchBlocks, brow.row_line);
        self.emit_data(baddr, false, ExecMode::User);
        self.emit_data(baddr, true, ExecMode::User);
        self.append_redo(REDO_BYTES_PER_UPDATE);

        // History append (cold stream) + LRU list maintenance.
        self.run_code(false, s, chunk);
        let hrow = self.schema.history_row(self.history_seq);
        self.history_seq += 1;
        self.touch_header(Table::History, hrow.block);
        let haddr = self.map.line_addr(Region::HistoryBlocks { node: self.node }, hrow.row_line);
        self.emit_data(haddr, true, ExecMode::User);
        self.touch_lock(LockKind::LruList, u64::from(self.node) & 0x3);
        self.append_redo(REDO_BYTES_PER_UPDATE);

        // Release locks, close out.
        self.run_code(false, s, 2 * chunk);
        self.touch_lock(LockKind::Account, account);
        self.touch_lock(LockKind::Teller, teller);
        self.touch_lock(LockKind::Branch, branch);
        self.run_code(false, s, chunk);
        self.emit_data(slot, true, ExecMode::User);

        self.servers[s as usize].phase = Phase::Commit;
    }

    /// Commit burst: redo commit record, log syscall.
    fn burst_commit(&mut self, s: u16) {
        let db_part = self.params.txn_commit_instrs / 3;
        self.run_code(false, s, db_part);
        self.append_redo(REDO_BYTES_PER_UPDATE / 2);
        self.touch_lock(LockKind::LogControl, 0);
        self.run_code(true, s, self.params.txn_commit_instrs - db_part);
        self.shared.pending_commits.fetch_add(1, Relaxed);
        self.shared.txns_completed.fetch_add(1, Relaxed);
        self.txns_local += 1;
        // analyze: total — server ids other than the daemon sentinel are the round-robin cursor reduced modulo servers.len()
        self.servers[s as usize].phase = Phase::Pipe;
    }

    /// Context-switch burst: scheduler code plus run-queue updates.
    fn burst_switch(&mut self) {
        let s = self.cur_server as u16;
        self.run_code(true, s, self.params.switch_instrs);
        let line = self.rng.gen_range(0..self.params.kernel_node_lines);
        let addr = self.h_kernel_node.line_addr(line);
        self.emit_data(addr, false, ExecMode::Kernel);
        self.emit_data(addr, true, ExecMode::Kernel);
    }

    /// Log-writer burst (node 0): harvest the redo written since the last
    /// flush — 3-hop reads of lines dirtied by every node — and stage it
    /// to cold I/O buffers.
    fn burst_lgwr(&mut self) {
        let half = self.params.lgwr_instrs / 2;
        self.run_code(false, u16::MAX, half);
        let tail = self.shared.log_tail_bytes.load(Relaxed);
        let first_line = self.lgwr_flushed_bytes / 64;
        let last_line = tail / 64;
        // Cap the harvest so a long backlog cannot stall the stream.
        let span = (last_line - first_line).min(64);
        for l in 0..span {
            let ring_line = (first_line + l) % self.sga.log_ring_lines();
            let addr = self.h_log.line_addr(ring_line);
            self.emit_data(addr, false, ExecMode::User);
        }
        self.lgwr_flushed_bytes = tail;
        self.run_code(true, u16::MAX, self.params.lgwr_instrs - half);
        for _ in 0..8 {
            let addr = self.map.line_addr(Region::IoBuffer { node: self.node }, self.io_seq);
            self.io_seq += 1;
            self.emit_data(addr, true, ExecMode::Kernel);
        }
        self.touch_lock(LockKind::LogControl, 0);
        // analyze: publish — commit-batch counter reset; peers only compare it against the batch threshold, so a stale read merely delays one lgwr burst
        self.shared.pending_commits.store(0, Relaxed);
    }

    /// Database-writer burst: scan buffer headers and flush recently
    /// dirtied block lines (3-hop reads of other nodes' stores).
    fn burst_dbwr(&mut self) {
        let half = self.params.dbwr_instrs / 2;
        self.run_code(false, u16::MAX, half);
        for _ in 0..40 {
            let n = self.rng.next_u64() >> 11;
            let addr = self.meta_addr(self.meta_zipf.sample_u53(n));
            self.emit_data(addr, false, ExecMode::User);
        }
        let mut victims = [0u64; DBWR_FLUSH_LINES];
        let flushed = self.shared.pop_dirty_into(&mut victims);
        // analyze: total — flushed <= victims.len() by pop_dirty_into's contract (it writes at most out.len() entries)
        for &addr in &victims[..flushed] {
            self.emit_data(addr, false, ExecMode::User);
        }
        self.run_code(true, u16::MAX, self.params.dbwr_instrs - half);
        for _ in 0..8 {
            let addr = self.map.line_addr(Region::IoBuffer { node: self.node }, self.io_seq);
            self.io_seq += 1;
            self.emit_data(addr, true, ExecMode::Kernel);
        }
    }

    /// Produces the next scheduling burst into the buffer. Cold relative
    /// to the per-reference pop in `next_ref` (a burst is thousands of
    /// references), so it is kept out of the consumer's inlined fast path.
    // analyze: cold — amortized burst refill: runs once per thousands of references and builds whole transaction blocks off the per-reference path
    #[cold]
    #[inline(never)]
    fn refill(&mut self) {
        // Publish the host profiler's burst-refill region for the
        // duration of the burst, restoring the enclosing region (the
        // advance loop, usually) on exit. Two relaxed stores per burst
        // of thousands of references.
        let enclosing = csim_trace::hostprof::current_region();
        csim_trace::hostprof::set_region(csim_trace::hostprof::Region::BurstRefill);
        self.refill_burst();
        csim_trace::hostprof::set_region(enclosing);
    }

    // Hot by measurement, not position: host profiling attributed ~28%
    // of simulator wall time to burst refill (ROADMAP item 1), so the
    // purity lint fences the whole cone: integer-only arithmetic
    // (fixed-point thresholds, `ZipfTable::sample_u53`) and preallocated
    // storage (`emit` into the fixed burst buffer, stack scratch for the
    // dbwr flush) — no allocation or float findings are deferred.
    // analyze: hot
    fn refill_burst(&mut self) {
        debug_assert_eq!(self.buf_len, 0, "refill into a non-empty burst buffer");
        if self.runs_lgwr
            && self.shared.pending_commits.load(Relaxed) >= self.params.lgwr_batch
        {
            self.burst_lgwr();
            self.burst_switch();
            return;
        }
        if self.runs_dbwr
            && self.rounds > 0
            && self.rounds - self.last_dbwr_round >= self.params.dbwr_period
        {
            self.last_dbwr_round = self.rounds;
            self.burst_dbwr();
            self.burst_switch();
            return;
        }
        let s = self.cur_server as u16;
        // analyze: total — server ids other than the daemon sentinel are the round-robin cursor reduced modulo servers.len()
        match self.servers[s as usize].phase {
            Phase::Pipe => self.burst_pipe(s),
            Phase::Execute => self.burst_execute(s),
            Phase::Commit => self.burst_commit(s),
        }
        self.burst_switch();
        self.cur_server = (self.cur_server + 1) % self.servers.len();
        self.rounds += 1;
    }
}

impl ReferenceStream for NodeWorkload {
    // analyze: hot
    #[inline]
    fn next_ref(&mut self) -> MemRef {
        loop {
            if self.buf_head < self.buf_len {
                // analyze: total — buf_head <= buf_len <= buf.len() is the burst-buffer invariant: refill resets both and each burst emits at most the buffer's capacity
                let word = self.buf[self.buf_head];
                self.buf_head += 1;
                return MemRef::unpack(word);
            }
            self.buf_len = 0;
            self.buf_head = 0;
            self.refill();
        }
    }

    /// Hands out the buffered burst as whole packed slices.
    ///
    /// Satisfies the [`ReferenceStream::next_burst`] contract by
    /// construction: a refill happens only when the buffer is empty —
    /// exactly when `next_ref` would refill — so generation (and every
    /// RNG draw and shared-state mutation inside it) occurs at the same
    /// stream positions under either consumption style, and the words
    /// handed out are the same bytes `next_ref` would unpack.
    // analyze: hot
    #[inline]
    fn next_burst(&mut self, out: &mut [u64]) -> usize {
        debug_assert!(!out.is_empty());
        while self.buf_head == self.buf_len {
            self.buf_len = 0;
            self.buf_head = 0;
            self.refill();
        }
        let n = (self.buf_len - self.buf_head).min(out.len());
        // analyze: total — buf_head <= buf_len <= buf.len() is the burst-buffer invariant: refill resets both and each burst emits at most the buffer's capacity
        out[..n].copy_from_slice(&self.buf[self.buf_head..self.buf_head + n]);
        self.buf_head += n;
        n
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use csim_trace::Access;

    fn one_node() -> NodeWorkload {
        OltpWorkload::build(OltpParams::default(), 1).unwrap().remove(0)
    }

    #[test]
    fn build_validates_node_count() {
        assert!(OltpWorkload::build(OltpParams::default(), 0).is_err());
        assert!(OltpWorkload::build(OltpParams::default(), 65).is_err());
        assert_eq!(OltpWorkload::build(OltpParams::default(), 8).unwrap().len(), 8);
    }

    #[test]
    fn build_validates_params() {
        let mut p = OltpParams::default();
        p.branches = 0;
        assert!(OltpWorkload::build(p, 1).is_err());
    }

    #[test]
    fn stream_produces_references_forever() {
        let mut w = one_node();
        for _ in 0..200_000 {
            let r = w.next_ref();
            assert!(r.addr < 1 << 46);
        }
    }

    #[test]
    fn kernel_share_is_roughly_a_quarter() {
        // The paper reports ~25% of execution in the kernel.
        let mut w = one_node();
        let mut kernel = 0u64;
        let n = 500_000;
        for _ in 0..n {
            if w.next_ref().mode == ExecMode::Kernel {
                kernel += 1;
            }
        }
        let frac = kernel as f64 / n as f64;
        assert!((0.15..0.40).contains(&frac), "kernel fraction {frac}");
    }

    #[test]
    fn data_mix_matches_probabilities() {
        let mut w = one_node();
        let (mut i, mut l, mut s) = (0u64, 0u64, 0u64);
        for _ in 0..500_000 {
            match w.next_ref().access {
                Access::InstrFetch => i += 1,
                Access::Load => l += 1,
                Access::Store => s += 1,
            }
        }
        let loads_per_instr = l as f64 / i as f64;
        let stores_per_instr = s as f64 / i as f64;
        // Background mix plus scripted references: rates sit at or a
        // little above the configured per-instruction probabilities.
        let p = OltpParams::default();
        assert!(
            (p.p_load..p.p_load + 0.10).contains(&loads_per_instr),
            "loads/instr {loads_per_instr}"
        );
        assert!(
            (p.p_store..p.p_store + 0.08).contains(&stores_per_instr),
            "stores/instr {stores_per_instr}"
        );
    }

    #[test]
    fn transactions_complete_and_are_counted() {
        let mut w = one_node();
        // One transaction is ~15k instructions across 3 bursts of 8
        // servers; run enough references for several commits.
        for _ in 0..2_000_000 {
            w.next_ref();
        }
        assert!(w.node_transactions() > 10, "txns {}", w.node_transactions());
        assert_eq!(w.shared().transactions_completed(), w.node_transactions());
    }

    #[test]
    fn streams_are_deterministic() {
        let collect = || {
            let mut w = one_node();
            (0..100_000).map(|_| w.next_ref()).collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn nodes_differ_but_share_the_log() {
        let mut nodes = OltpWorkload::build(OltpParams::default(), 2).unwrap();
        let mut b = nodes.pop().unwrap();
        let mut a = nodes.pop().unwrap();
        let ra: Vec<MemRef> = (0..50_000).map(|_| a.next_ref()).collect();
        let rb: Vec<MemRef> = (0..50_000).map(|_| b.next_ref()).collect();
        assert_ne!(ra, rb, "different nodes must produce different streams");
        // Both nodes committed into the same shared counter.
        assert_eq!(
            a.shared().transactions_completed(),
            b.shared().transactions_completed()
        );
    }

    #[test]
    fn daemons_run_on_their_nodes() {
        let nodes = OltpWorkload::build(OltpParams::default(), 4).unwrap();
        assert!(nodes[0].runs_lgwr);
        assert!(!nodes[1].runs_lgwr);
        assert!(nodes[1].runs_dbwr);
        assert!(!nodes[0].runs_dbwr);
        let uni = OltpWorkload::build(OltpParams::default(), 1).unwrap();
        assert!(uni[0].runs_lgwr && uni[0].runs_dbwr);
    }
}
