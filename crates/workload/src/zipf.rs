//! Zipf-distributed sampling.

/// A precomputed Zipf(s) distribution over `0..n`.
///
/// Item `i` is drawn with probability proportional to `1 / (i + 1)^s`.
/// `s = 0` degenerates to the uniform distribution. Sampling is a binary
/// search over the cumulative table — O(log n) with no floating-point
/// surprises, fast enough for the workload generator's hot path because
/// most references are produced in bursts.
///
/// # Example
///
/// ```
/// use csim_workload::ZipfTable;
/// let z = ZipfTable::new(100, 0.8);
/// // The most popular item is item 0.
/// let i = z.sample(0.0);
/// assert_eq!(i, 0);
/// assert!(z.sample(0.9999) < 100);
/// ```
#[derive(Clone, Debug)]
pub struct ZipfTable {
    cdf: Vec<f64>,
    /// `floor(cdf[i] * 2^53)`: the cdf rescaled into the integer domain
    /// of a 53-bit uniform draw (`SimRng::next_u64() >> 11`). Scaling by
    /// a power of two is exact in `f64`, and for a real `x` and integer
    /// `n`, `x < n ⟺ floor(x) < n`, so a partition search of this table
    /// against the raw draw returns exactly the index the float search
    /// returns for `u = n * 2^-53` — with no float arithmetic on the
    /// sampling path. The hot sampler ([`ZipfTable::sample_u53`]) uses
    /// only this table; the float `cdf` is retained as the construction
    /// source and the differential oracle ([`ZipfTable::sample`]).
    thresh: Vec<u64>,
    /// First-level search index: `coarse[k]` is the partition point of the
    /// cdf at threshold `k / COARSE_BINS`, so `sample(u)` only binary
    /// searches the narrow window `coarse[k] .. coarse[k + 1]` that is
    /// guaranteed to bracket the answer. Empty for tables too large to
    /// index with `u32` (none in practice); then sampling falls back to
    /// the full-table search.
    coarse: Vec<u32>,
}

/// Number of first-level bins. Must be a power of two: `u * COARSE_BINS`
/// is then exact in `f64` arithmetic, so the bin chosen for `u` provably
/// brackets the full-table partition point and the accelerated search
/// returns bit-identical results. The integer sampler picks the same bin
/// with a shift: `floor(u * 256) = floor(n * 2^-53 * 2^8) = n >> 45`.
const COARSE_BINS: usize = 256;

/// Shift mapping a 53-bit draw to its coarse bin: `53 - log2(COARSE_BINS)`.
const COARSE_SHIFT: u32 = 45;

impl ZipfTable {
    /// Builds the table for `n` items with skew `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative or not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "a Zipf distribution needs at least one item");
        assert!(s.is_finite() && s >= 0.0, "zipf skew must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        let coarse = if cdf.len() <= u32::MAX as usize {
            (0..=COARSE_BINS)
                .map(|k| {
                    let t = k as f64 / COARSE_BINS as f64;
                    cdf.partition_point(|&c| c < t) as u32
                })
                .collect()
        } else {
            Vec::new()
        };
        // Truncating cast = floor for non-negative values, and the final
        // cdf entry is exactly 1.0 (it is divided by itself), so every
        // threshold fits: floor(1.0 * 2^53) = 2^53 < u64::MAX.
        let scale = (1u64 << 53) as f64;
        let thresh = cdf.iter().map(|&c| (c * scale) as u64).collect();
        ZipfTable { cdf, thresh, coarse }
    }

    /// Number of items.
    pub fn len(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// `true` when the table is empty (never — construction requires
    /// `n > 0` — but provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Maps a uniform variate `u` in `[0, 1)` to an item index.
    ///
    /// Bit-identical to a binary search of the full cdf: the coarse index
    /// only narrows the window the search runs in (see [`COARSE_BINS`]).
    #[inline]
    pub fn sample(&self, u: f64) -> u64 {
        debug_assert!((0.0..=1.0).contains(&u));
        if self.coarse.is_empty() {
            return self.cdf.partition_point(|&c| c < u) as u64;
        }
        // Exact: COARSE_BINS is a power of two, so `u * 256` never rounds
        // and `k / COARSE_BINS <= u < (k + 1) / COARSE_BINS` holds exactly.
        let k = ((u * COARSE_BINS as f64) as usize).min(COARSE_BINS - 1);
        let lo = self.coarse[k] as usize;
        let hi = self.coarse[k + 1] as usize;
        (lo + self.cdf[lo..hi].partition_point(|&c| c < u)) as u64
    }

    /// Maps a 53-bit uniform draw (`SimRng::next_u64() >> 11`) to an item
    /// index using integer comparisons only.
    ///
    /// Bit-identical to `self.sample(n as f64 * 2^-53)`: for real `x` and
    /// integer `n`, `x < n ⟺ floor(x) < n`, so comparing `floor(c * 2^53)`
    /// against `n` decides `c < n * 2^-53` exactly — the float draw
    /// `n * 2^-53` is itself exact (`n` has at most 53 significant bits).
    // analyze: hot
    #[inline]
    // analyze: total — coarse holds COARSE_BINS+1 monotone offsets each <= thresh.len() and k is clamped to COARSE_BINS-1, so lo <= hi <= thresh.len()
    pub fn sample_u53(&self, n: u64) -> u64 {
        debug_assert!(n < (1 << 53));
        if self.coarse.is_empty() {
            return self.thresh.partition_point(|&t| t < n) as u64;
        }
        let k = ((n >> COARSE_SHIFT) as usize).min(COARSE_BINS - 1);
        let lo = self.coarse[k] as usize;
        let hi = self.coarse[k + 1] as usize;
        lo as u64 + branchless_partition(&self.thresh[lo..hi], n)
    }
}

/// `window.partition_point(|&t| t < n)`, computed with conditional moves
/// instead of a branch per probe. The comparison outcome inside a Zipf
/// search window is decided by the random draw, so a branchy search
/// mispredicts on roughly half its probes; the select below carries no
/// prediction at all. The result is the partition point by the loop
/// invariant (`base` never passes an element `>= n`, `base + size` never
/// trails one `< n`), so the caller's answer is identical to the
/// `partition_point` it replaces — only the instruction mix changes.
// analyze: hot
#[inline]
fn branchless_partition(window: &[u64], n: u64) -> u64 {
    let mut base = 0usize;
    let mut size = window.len();
    while size > 1 {
        let half = size / 2;
        // cmov, not a branch: both sides are computed, the select picks.
        // analyze: total — binary-search invariant: base + size <= window.len() and 1 <= half < size, so base + half - 1 is in range
        if window[base + half - 1] < n {
            base += half;
        }
        size -= half;
    }
    if let Some(&last) = window.get(base) {
        base += usize::from(last < n);
    }
    base as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_s_is_zero() {
        let z = ZipfTable::new(4, 0.0);
        assert_eq!(z.sample(0.1), 0);
        assert_eq!(z.sample(0.3), 1);
        assert_eq!(z.sample(0.6), 2);
        assert_eq!(z.sample(0.9), 3);
    }

    #[test]
    fn skew_concentrates_mass_on_early_items() {
        let z = ZipfTable::new(1000, 1.0);
        // With s=1 and n=1000, H(1000) ≈ 7.485; item 0 has mass ≈ 13.4%.
        assert_eq!(z.sample(0.10), 0);
        // The top 10 items carry ≈ 39% of the mass.
        assert!(z.sample(0.35) < 10);
        // The tail is still reachable.
        assert_eq!(z.sample(0.999999), 999);
    }

    #[test]
    fn all_samples_in_range() {
        let z = ZipfTable::new(17, 0.7);
        for i in 0..=100 {
            let u = i as f64 / 100.0;
            assert!(z.sample(u.min(0.999_999)) < 17);
        }
    }

    #[test]
    fn coarse_index_matches_full_search() {
        // The accelerated sampler must agree with a plain full-table
        // partition search on every variate, including bin boundaries.
        for &(n, s) in &[(1u64, 0.0), (17, 0.7), (1000, 1.0), (3072, 0.75), (10240, 0.6)] {
            let z = ZipfTable::new(n, s);
            let check = |u: f64| {
                let full = z.cdf.partition_point(|&c| c < u) as u64;
                assert_eq!(z.sample(u), full, "n={n} s={s} u={u}");
            };
            for k in 0..=256u32 {
                let edge = f64::from(k) / 256.0;
                check(edge.min(1.0));
                check((edge + 1e-12).min(1.0));
                check((edge - 1e-12).max(0.0));
            }
            let mut x = 0.012_345_678_9_f64;
            for _ in 0..10_000 {
                x = (x * 997.0 + 0.123_456_789).fract();
                check(x);
            }
        }
    }

    #[test]
    fn integer_sampler_matches_float_oracle() {
        // The hot integer sampler must agree with the float path on the
        // exact same draw — including coarse-bin edges, where a rounding
        // slip in the threshold table would first show.
        for &(n, s) in &[(1u64, 0.0), (17, 0.7), (1000, 1.0), (3072, 0.75), (10240, 0.6)] {
            let z = ZipfTable::new(n, s);
            let check = |draw: u64| {
                let u = draw as f64 * (1.0 / (1u64 << 53) as f64);
                assert_eq!(z.sample_u53(draw), z.sample(u), "n={n} s={s} draw={draw}");
            };
            for k in 0..256u64 {
                let edge = k << COARSE_SHIFT;
                check(edge);
                check(edge + 1);
                check(edge.saturating_sub(1));
            }
            check((1 << 53) - 1);
            // Deterministic pseudo-random sweep over the draw domain.
            let mut x = 0x9E37_79B9_7F4A_7C15u64;
            for _ in 0..20_000 {
                x = x.wrapping_mul(0xD120_2E4B_BDC6_4F69).wrapping_add(0x2545_F491_4F6C_DD1D);
                check(x >> 11);
            }
        }
    }

    #[test]
    fn integer_thresholds_decide_float_predicate() {
        // thresh[i] < n must hold exactly when cdf[i] < n * 2^-53 — the
        // invariant the bit-identity of sample_u53 rests on.
        let z = ZipfTable::new(1000, 0.9);
        let mut x = 0xC0FF_EE00_2000u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(0xD120_2E4B_BDC6_4F69).wrapping_add(0x2545_F491_4F6C_DD1D);
            let n = x >> 11;
            let u = n as f64 * (1.0 / (1u64 << 53) as f64);
            for i in (0..z.cdf.len()).step_by(97) {
                assert_eq!(z.thresh[i] < n, z.cdf[i] < u, "i={i} n={n}");
            }
        }
    }

    #[test]
    fn len_reports_item_count() {
        let z = ZipfTable::new(5, 0.5);
        assert_eq!(z.len(), 5);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_rejected() {
        let _ = ZipfTable::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_skew_rejected() {
        let _ = ZipfTable::new(4, -1.0);
    }
}
