//! Zipf-distributed sampling.

/// A precomputed Zipf(s) distribution over `0..n`.
///
/// Item `i` is drawn with probability proportional to `1 / (i + 1)^s`.
/// `s = 0` degenerates to the uniform distribution. Sampling is a binary
/// search over the cumulative table — O(log n) with no floating-point
/// surprises, fast enough for the workload generator's hot path because
/// most references are produced in bursts.
///
/// # Example
///
/// ```
/// use csim_workload::ZipfTable;
/// let z = ZipfTable::new(100, 0.8);
/// // The most popular item is item 0.
/// let i = z.sample(0.0);
/// assert_eq!(i, 0);
/// assert!(z.sample(0.9999) < 100);
/// ```
#[derive(Clone, Debug)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the table for `n` items with skew `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative or not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "a Zipf distribution needs at least one item");
        assert!(s.is_finite() && s >= 0.0, "zipf skew must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// `true` when the table is empty (never — construction requires
    /// `n > 0` — but provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Maps a uniform variate `u` in `[0, 1)` to an item index.
    #[inline]
    pub fn sample(&self, u: f64) -> u64 {
        debug_assert!((0.0..=1.0).contains(&u));
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_s_is_zero() {
        let z = ZipfTable::new(4, 0.0);
        assert_eq!(z.sample(0.1), 0);
        assert_eq!(z.sample(0.3), 1);
        assert_eq!(z.sample(0.6), 2);
        assert_eq!(z.sample(0.9), 3);
    }

    #[test]
    fn skew_concentrates_mass_on_early_items() {
        let z = ZipfTable::new(1000, 1.0);
        // With s=1 and n=1000, H(1000) ≈ 7.485; item 0 has mass ≈ 13.4%.
        assert_eq!(z.sample(0.10), 0);
        // The top 10 items carry ≈ 39% of the mass.
        assert!(z.sample(0.35) < 10);
        // The tail is still reachable.
        assert_eq!(z.sample(0.999999), 999);
    }

    #[test]
    fn all_samples_in_range() {
        let z = ZipfTable::new(17, 0.7);
        for i in 0..=100 {
            let u = i as f64 / 100.0;
            assert!(z.sample(u.min(0.999_999)) < 17);
        }
    }

    #[test]
    fn len_reports_item_count() {
        let z = ZipfTable::new(5, 0.5);
        assert_eq!(z.len(), 5);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_rejected() {
        let _ = ZipfTable::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_skew_rejected() {
        let _ = ZipfTable::new(4, -1.0);
    }
}
