//! SGA metadata addressing.
//!
//! Oracle's System Global Area has two parts the paper calls out: the
//! block buffer (modeled by the table regions in [`crate::tpcb`]) and the
//! metadata area — latches, buffer headers, transaction slots, LRU list
//! heads and the redo log buffer. This module maps those logical
//! structures to line indices inside [`Region::MetaHot`] and
//! [`Region::LogRing`](crate::Region::LogRing). The mapping is by hash, so
//! hot structures (the 40 branch locks, the hottest buffer headers) land
//! on stable, heavily write-shared lines — the communication-miss drivers
//! of multiprocessor OLTP.

use crate::layout::LINE_BYTES;
use crate::tpcb::Table;

/// Kinds of lock/latch structures in the metadata area.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// Row lock on an account.
    Account,
    /// Row lock on a teller.
    Teller,
    /// Row lock on a branch.
    Branch,
    /// A buffer-cache LRU list head (a handful of ultra-hot latches).
    LruList,
    /// Redo allocation / log control latch.
    LogControl,
}

impl LockKind {
    fn tag(self) -> u64 {
        match self {
            LockKind::Account => 0xA,
            LockKind::Teller => 0xB,
            LockKind::Branch => 0xC,
            LockKind::LruList => 0xD,
            LockKind::LogControl => 0xE,
        }
    }
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps logical SGA metadata structures to `MetaHot` / `LogRing` line
/// indices.
#[derive(Clone, Copy, Debug)]
pub struct Sga {
    meta_hot_lines: u64,
    log_ring_lines: u64,
}

impl Sga {
    /// Creates the mapper for the configured metadata and log-ring sizes.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(meta_hot_lines: u64, log_ring_lines: u64) -> Self {
        assert!(meta_hot_lines > 0 && log_ring_lines > 0);
        Sga { meta_hot_lines, log_ring_lines }
    }

    /// `MetaHot` line of a lock structure.
    pub fn lock_line(&self, kind: LockKind, id: u64) -> u64 {
        mix(kind.tag() ^ id.wrapping_mul(0xff51_afd7_ed55_8ccd)) % self.meta_hot_lines
    }

    /// `MetaHot` line of the buffer header for a table block.
    pub(crate) fn buffer_header_line(&self, table: Table, block: u64) -> u64 {
        let tag = match table {
            Table::Account => 0x51,
            Table::Teller => 0x52,
            Table::Branch => 0x53,
            Table::History => 0x54,
        };
        mix(tag ^ block.wrapping_mul(0xc4ce_b9fe_1a85_ec53)) % self.meta_hot_lines
    }

    /// `MetaHot` line of a server's transaction-table slot.
    pub fn txn_slot_line(&self, node: u8, server: u16) -> u64 {
        mix(0x77 ^ u64::from(node) << 32 ^ u64::from(server)) % self.meta_hot_lines
    }

    /// `LogRing` line holding byte `tail_bytes` of the redo stream (the
    /// ring wraps).
    pub fn log_line(&self, tail_bytes: u64) -> u64 {
        (tail_bytes / LINE_BYTES) % self.log_ring_lines
    }

    /// Number of lines in the log ring.
    pub fn log_ring_lines(&self) -> u64 {
        self.log_ring_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sga() -> Sga {
        Sga::new(4096, 2048)
    }

    #[test]
    fn lock_lines_are_stable_and_in_range() {
        let s = sga();
        for id in 0..40 {
            let l = s.lock_line(LockKind::Branch, id);
            assert!(l < 4096);
            assert_eq!(l, s.lock_line(LockKind::Branch, id), "mapping must be deterministic");
        }
    }

    #[test]
    fn different_kinds_map_differently() {
        let s = sga();
        // Not a guarantee per id, but across 40 ids the sets must differ.
        let branch: Vec<u64> = (0..40).map(|i| s.lock_line(LockKind::Branch, i)).collect();
        let teller: Vec<u64> = (0..40).map(|i| s.lock_line(LockKind::Teller, i)).collect();
        assert_ne!(branch, teller);
    }

    #[test]
    fn branch_locks_are_spread() {
        let s = sga();
        let mut lines: Vec<u64> = (0..40).map(|i| s.lock_line(LockKind::Branch, i)).collect();
        lines.sort_unstable();
        lines.dedup();
        assert!(lines.len() >= 38, "40 branch locks should rarely collide in 4096 lines");
    }

    #[test]
    fn log_ring_wraps() {
        let s = sga();
        assert_eq!(s.log_line(0), 0);
        assert_eq!(s.log_line(64), 1);
        assert_eq!(s.log_line(2048 * 64), 0);
        assert_eq!(s.log_line(2048 * 64 + 130), 2);
    }

    #[test]
    fn txn_slots_differ_per_server() {
        let s = sga();
        assert_ne!(s.txn_slot_line(0, 0), s.txn_slot_line(0, 1));
        assert_ne!(s.txn_slot_line(0, 0), s.txn_slot_line(1, 0));
    }

    #[test]
    #[should_panic]
    fn zero_sizes_rejected() {
        let _ = Sga::new(0, 10);
    }
}
