//! Property tests for the attribution accumulator, driven by the
//! workspace's deterministic RNG (mirrors `csim-obs`'s `hist_props.rs`):
//! across synthetic reference mixes, the per-reference split must be
//! exact (components sum to the charged cycles), and merging per-node
//! accumulators must be associative, commutative, and equal to
//! recording the union of all references — the algebra that lets
//! multi-node attribution be assembled in any order without drifting
//! from the observer's histogram totals.

use csim_obs::MissClass;
use csim_proc::StallClass;
use csim_prof::{Attribution, Component};
use csim_trace::SimRng;

/// One synthetic reference: a miss shape with a plausible base latency
/// and an actual latency that is sometimes fault-inflated, sometimes
/// injector-shortened, occasionally degenerate (0, 1).
fn draw_ref(rng: &mut SimRng) -> (StallClass, u64, u64) {
    let (shape, base) = match rng.gen_range(0..100) {
        0..=39 => (StallClass::L2Hit, 15 + rng.gen_range(0..20)),
        40..=69 => (StallClass::Local, 60 + rng.gen_range(0..120)),
        70..=89 => (StallClass::RemoteClean, 300 + rng.gen_range(0..300)),
        _ => (StallClass::RemoteDirty, 500 + rng.gen_range(0..400)),
    };
    let actual = match rng.gen_range(0..10) {
        0 => base + rng.gen_range(0..50_000), // NACK-backoff inflated
        1 => base / 2,                        // injector shortened
        2 => rng.gen_range(0..2),             // degenerate
        _ => base,
    };
    (shape, base, actual)
}

fn record_all(refs: &[(StallClass, u64, u64)], l2_hit: u64) -> Attribution {
    let mut attr = Attribution::new(l2_hit);
    for &(shape, base, actual) in refs {
        attr.record(MissClass::from_stall(shape), shape, base, actual);
    }
    attr
}

#[test]
fn every_split_is_exact_across_reference_mixes() {
    for seed in [3u64, 99, 20_260_808] {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut attr = Attribution::new(22);
        let mut expected_total: u128 = 0;
        let mut expected_count = 0u64;
        for _ in 0..20_000 {
            let (shape, base, actual) = draw_ref(&mut rng);
            attr.record(MissClass::from_stall(shape), shape, base, actual);
            expected_total += u128::from(actual);
            expected_count += 1;
        }
        assert_eq!(attr.total_cycles(), expected_total, "seed {seed}: cycles leaked");
        assert_eq!(
            MissClass::ALL.iter().map(|&c| attr.class_count(c)).sum::<u64>(),
            expected_count,
            "seed {seed}: counts leaked"
        );
        // Per-class totals are the component sums, so they inherit the
        // exactness reference by reference.
        for class in MissClass::ALL {
            let by_component: u128 =
                Component::ALL.iter().map(|&comp| attr.cell(class, comp)).sum();
            assert_eq!(by_component, attr.class_cycles(class), "seed {seed} class {class:?}");
        }
    }
}

#[test]
fn merge_is_associative_commutative_and_equals_the_union() {
    for seed in [11u64, 4242] {
        let mut rng = SimRng::seed_from_u64(seed);
        let refs: Vec<(StallClass, u64, u64)> = (0..6_000).map(|_| draw_ref(&mut rng)).collect();

        // Split the stream across three "nodes" round-robin.
        let node = |k: usize| -> Vec<(StallClass, u64, u64)> {
            refs.iter().copied().skip(k).step_by(3).collect()
        };
        let (a, b, c) = (record_all(&node(0), 22), record_all(&node(1), 22), record_all(&node(2), 22));
        let whole = record_all(&refs, 22);

        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut right_inner = b.clone();
        right_inner.merge(&c);
        let mut right = a.clone();
        right.merge(&right_inner);
        // c + b + a
        let mut reversed = c.clone();
        reversed.merge(&b);
        reversed.merge(&a);

        assert_eq!(left, whole, "seed {seed}: merge must equal recording the union");
        assert_eq!(left, right, "seed {seed}: merge must be associative");
        assert_eq!(left, reversed, "seed {seed}: merge must be commutative");
        assert_eq!(left.to_json().to_string(), whole.to_json().to_string());
    }
}

#[test]
fn merging_an_empty_accumulator_is_identity() {
    let mut rng = SimRng::seed_from_u64(8);
    let refs: Vec<(StallClass, u64, u64)> = (0..1_000).map(|_| draw_ref(&mut rng)).collect();
    let whole = record_all(&refs, 22);
    let mut merged = whole.clone();
    merged.merge(&Attribution::new(22));
    assert_eq!(merged, whole);
    // The split parameter is part of the accumulator's identity: merging
    // must carry it through untouched.
    assert_eq!(merged.l2_hit_latency(), 22);
    let mut from_empty = Attribution::new(22);
    from_empty.merge(&whole);
    assert_eq!(from_empty, whole);
}

#[test]
fn nack_cycles_stay_pure_fault_extra_under_merging() {
    let mut a = Attribution::new(22);
    let mut b = Attribution::new(22);
    let mut rng = SimRng::seed_from_u64(77);
    let mut total = 0u128;
    for _ in 0..500 {
        let cycles = rng.gen_range(1..10_000);
        if cycles.is_multiple_of(2) { a.record_nack(cycles) } else { b.record_nack(cycles) }
        total += u128::from(cycles);
    }
    a.merge(&b);
    assert_eq!(a.class_cycles(MissClass::NackRetry), total);
    assert_eq!(a.cell(MissClass::NackRetry, Component::FaultExtra), total);
    for comp in Component::ALL {
        if comp != Component::FaultExtra {
            assert_eq!(a.cell(MissClass::NackRetry, comp), 0, "{comp:?} must stay empty");
        }
    }
}
