//! The host-side sampling profiler.
//!
//! A watcher thread wakes `hz` times per second and snapshots the
//! region-marker stripes published by `csim_trace::hostprof`: every
//! stripe currently inside an instrumented region contributes one
//! sample to that region's tally, and a tick on which *no* stripe is
//! active counts as one idle sample (so "the process was mostly not in
//! a hot loop" is visible instead of silently dropped). The result is a
//! wall-time-by-region table — the measurement that answers *where the
//! host CPU spends its time*, e.g. how the packed-cache probe kernel
//! splits between RNG work and the probe itself.
//!
//! Everything here is wall-clock by nature and therefore explicitly
//! nondeterministic: region reports only ever ride in the run report's
//! `host_profile` section, never in byte-stable documents.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use csim_obs::json::Json;
use csim_trace::hostprof::{read_regions, Region, STRIPES};

/// A running sampler; call [`HostSampler::stop`] to join the watcher
/// and collect the tally.
pub struct HostSampler {
    stop: Arc<AtomicBool>,
    hz: u32,
    handle: thread::JoinHandle<RegionReport>,
}

impl HostSampler {
    /// Spawns the watcher thread sampling `hz` times per second
    /// (clamped to `[1, 100_000]`).
    pub fn start(hz: u32) -> HostSampler {
        let hz = hz.clamp(1, 100_000);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let period = Duration::from_nanos(1_000_000_000 / u64::from(hz));
        let handle = thread::spawn(move || {
            let mut counts = [0u64; Region::COUNT];
            let mut ticks = 0u64;
            let mut slots = [0u8; STRIPES];
            // lint: allow(no-wallclock) — the sampler measures host runtime by design; its output is quarantined in the nondeterministic host_profile section
            // lint: allow(taint-export) — region reports are documented nondeterministic and never enter byte-stable documents
            let started = Instant::now();
            while !stop_flag.load(Ordering::Relaxed) {
                read_regions(&mut slots);
                ticks += 1;
                let mut active = false;
                for &slot in slots.iter() {
                    let region = Region::from_u8(slot);
                    if region != Region::Idle {
                        counts[region as usize] += 1;
                        active = true;
                    }
                }
                if !active {
                    counts[Region::Idle as usize] += 1;
                }
                thread::sleep(period);
            }
            RegionReport { hz, ticks, counts, elapsed_ms: started.elapsed().as_secs_f64() * 1e3 }
        });
        HostSampler { stop, hz, handle }
    }

    /// Stops the watcher and returns its tally. If the watcher somehow
    /// died, an empty report is returned rather than propagating the
    /// panic into the caller.
    pub fn stop(self) -> RegionReport {
        // analyze: publish — stop flag for the watcher loop; the join below is the real synchronization, the flag only needs to become visible eventually
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.join() {
            Ok(report) => report,
            Err(_) => RegionReport { hz: self.hz, ticks: 0, counts: [0; Region::COUNT], elapsed_ms: 0.0 },
        }
    }
}

/// The sampler's tally: samples observed per region.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionReport {
    /// Configured sampling rate.
    pub hz: u32,
    /// Sampling ticks taken (≥ the per-region sample total when
    /// several threads publish concurrently).
    pub ticks: u64,
    counts: [u64; Region::COUNT],
    /// Wall-clock milliseconds the sampler ran for.
    pub elapsed_ms: f64,
}

impl RegionReport {
    /// Samples observed in `region`.
    pub fn samples(&self, region: Region) -> u64 {
        // analyze: total — Region discriminants index a counts array with one slot per Region variant
        self.counts[region as usize]
    }

    /// Total samples across all regions (including idle ticks).
    pub fn total_samples(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `region`'s share of all samples, in `[0, 1]` (0 when nothing was
    /// sampled).
    pub fn share(&self, region: Region) -> f64 {
        let total = self.total_samples();
        if total == 0 {
            0.0
        } else {
            self.samples(region) as f64 / total as f64
        }
    }

    /// The report as JSON — nondeterministic by nature, for the
    /// `host_profile` section only.
    pub fn to_json(&self) -> Json {
        let regions = Region::ALL
            .iter()
            .map(|&r| {
                (
                    r.as_str().to_string(),
                    Json::obj([
                        ("samples", Json::UInt(self.samples(r))),
                        ("share", Json::Float(self.share(r))),
                    ]),
                )
            })
            .collect();
        Json::obj([
            ("hz", Json::UInt(u64::from(self.hz))),
            ("ticks", Json::UInt(self.ticks)),
            ("elapsed_ms", Json::Float(self.elapsed_ms)),
            ("regions", Json::Obj(regions)),
        ])
    }

    /// A human-readable wall-time-by-region table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "host sampling profile ({} Hz, {} ticks, {:.0} ms)\n",
            self.hz, self.ticks, self.elapsed_ms
        );
        for region in Region::ALL {
            out.push_str(&format!(
                "  {:<16} {:>10} samples  {:>6.1}%\n",
                region.as_str(),
                self.samples(region),
                self.share(region) * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csim_trace::hostprof::set_region;

    #[test]
    fn sampler_observes_a_published_region() {
        let sampler = HostSampler::start(2000);
        set_region(Region::PackedProbe);
        // Busy-publish long enough for several ticks to land.
        let until = Instant::now() + Duration::from_millis(50);
        while Instant::now() < until {
            set_region(Region::PackedProbe);
        }
        set_region(Region::Idle);
        let report = sampler.stop();
        assert!(report.ticks > 0);
        assert!(
            report.samples(Region::PackedProbe) > 0,
            "expected packed-probe samples, got {report:?}"
        );
        assert!(report.share(Region::PackedProbe) > 0.0);
        assert!(report.total_samples() >= report.samples(Region::PackedProbe));
    }

    #[test]
    fn report_serializes_and_tabulates() {
        let report = RegionReport {
            hz: 997,
            ticks: 10,
            counts: [3, 7, 0, 0, 0, 0],
            elapsed_ms: 10.5,
        };
        let s = report.to_json().to_string();
        csim_obs::json::validate(&s).unwrap();
        assert!(s.contains("\"hz\":997"));
        assert!(s.contains("\"advance\":{\"samples\":7"));
        let table = report.to_table();
        assert!(table.contains("advance"));
        assert!(table.contains("70.0%"));
        assert_eq!(report.share(Region::Advance), 0.7);
    }

    #[test]
    fn empty_report_shares_are_zero() {
        let report =
            RegionReport { hz: 1, ticks: 0, counts: [0; Region::COUNT], elapsed_ms: 0.0 };
        assert_eq!(report.share(Region::Advance), 0.0);
        assert_eq!(report.total_samples(), 0);
    }
}
