//! Chrome trace-event (Perfetto-loadable) export.
//!
//! The [trace-event format] is the lingua franca of timeline viewers:
//! `chrome://tracing` and [ui.perfetto.dev] both open it directly. We
//! emit the JSON-object flavor with complete (`"ph":"X"`) duration
//! events and instant (`"ph":"i"`) markers, microsecond timestamps, one
//! process, and one track (`tid`) per worker thread.
//!
//! Timestamps arrive as wall-clock milliseconds (from [`PhaseProfile`]
//! or the sweep engine's point timings) and are converted with a
//! *monotone* rounding rule — `ts = round(start·1000)`,
//! `end = round((start+dur)·1000)`, `dur = end - ts` — so spans that
//! were sequential in f64 milliseconds can never overlap after integer
//! conversion. [`validate_trace`] checks exactly the invariants a
//! viewer relies on: global timestamp ordering and proper per-track
//! span nesting.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use csim_obs::json::{parse, Json};
use csim_obs::PhaseProfile;

/// One event on the timeline.
#[derive(Clone, Debug, PartialEq)]
struct TraceEvent {
    name: String,
    cat: String,
    /// `'X'` (complete span) or `'i'` (instant).
    ph: char,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
}

/// A trace-event document under construction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceDoc {
    events: Vec<TraceEvent>,
}

/// Converts wall-clock milliseconds to microsecond ticks. `round` is
/// monotone, so converting a sequence of non-overlapping millisecond
/// spans endpoint-by-endpoint preserves non-overlap.
fn to_us(ms: f64) -> u64 {
    let v = (ms * 1000.0).round();
    if v.is_finite() && v > 0.0 {
        v as u64
    } else {
        0
    }
}

impl TraceDoc {
    /// An empty document.
    pub fn new() -> TraceDoc {
        TraceDoc::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends a complete span given millisecond endpoints. The
    /// duration is derived from the rounded endpoints (never rounded
    /// independently), keeping sequential spans non-overlapping.
    pub fn push_span_ms(&mut self, name: &str, cat: &str, start_ms: f64, dur_ms: f64, tid: u64) {
        let ts_us = to_us(start_ms);
        let end_us = to_us(start_ms + dur_ms.max(0.0));
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            ts_us,
            dur_us: end_us.saturating_sub(ts_us),
            tid,
        });
    }

    /// Appends an instant marker at `at_ms`.
    pub fn push_instant_ms(&mut self, name: &str, cat: &str, at_ms: f64, tid: u64) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'i',
            ts_us: to_us(at_ms),
            dur_us: 0,
            tid,
        });
    }

    /// Builds the timeline of a single run from its phase profile: one
    /// enclosing span named `label` with each recorded phase laid out
    /// sequentially inside it — the nested shape viewers render as a
    /// two-level flame.
    pub fn from_phases(profile: &PhaseProfile, label: &str) -> TraceDoc {
        let mut doc = TraceDoc::new();
        doc.push_span_ms(label, "run", 0.0, profile.total_millis(), 0);
        let mut at = 0.0;
        for (name, ms) in profile.phases() {
            doc.push_span_ms(name, "phase", at, *ms, 0);
            at += *ms;
        }
        doc
    }

    /// The document as trace-event JSON. Events are sorted by
    /// timestamp (stable, so same-timestamp events keep insertion
    /// order — an enclosing span pushed first stays before the first
    /// phase it contains).
    pub fn to_json(&self) -> Json {
        let mut ordered: Vec<&TraceEvent> = self.events.iter().collect();
        ordered.sort_by_key(|e| e.ts_us);
        let events = ordered
            .into_iter()
            .map(|e| {
                let mut obj = Json::obj([
                    ("name", Json::str(&e.name)),
                    ("cat", Json::str(&e.cat)),
                    ("ph", Json::str(e.ph.to_string())),
                    ("ts", Json::UInt(e.ts_us)),
                ]);
                if e.ph == 'X' {
                    obj.push("dur", Json::UInt(e.dur_us));
                }
                obj.push("pid", Json::UInt(1));
                obj.push("tid", Json::UInt(e.tid));
                if e.ph == 'i' {
                    // Instant scope: thread-local marker.
                    obj.push("s", Json::str("t"));
                }
                obj
            })
            .collect();
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::str("ms")),
        ])
    }
}

/// Checks that `text` is a well-formed trace-event document satisfying
/// the invariants timeline viewers rely on:
///
/// 1. top level is an object with a `traceEvents` array;
/// 2. every event has `name`/`ph`/`ts`/`pid`/`tid`, and `"X"` events a
///    `dur`;
/// 3. timestamps are globally non-decreasing (the order this module
///    writes);
/// 4. on each `tid`, complete spans nest properly: a span starting
///    inside an open span must end at or before the open span's end.
///
/// # Errors
///
/// A message describing the first violation.
pub fn validate_trace(text: &str) -> Result<(), String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut last_ts: u64 = 0;
    // Per-tid stack of open-span end timestamps.
    let mut stacks: std::collections::BTreeMap<u64, Vec<u64>> = std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let field_u64 = |key: &str| {
            ev.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("event {i}: missing or non-integer `{key}`"))
        };
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: missing `name`"));
        }
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        let ts = field_u64("ts")?;
        field_u64("pid")?;
        let tid = field_u64("tid")?;
        if ts < last_ts {
            return Err(format!("event {i}: timestamp {ts} goes backwards (previous {last_ts})"));
        }
        last_ts = ts;
        match ph {
            "X" => {
                let dur = field_u64("dur")?;
                let end = ts.checked_add(dur).ok_or_else(|| {
                    format!("event {i}: ts + dur overflows")
                })?;
                let stack = stacks.entry(tid).or_default();
                while stack.last().is_some_and(|&open_end| open_end <= ts) {
                    stack.pop();
                }
                if let Some(&open_end) = stack.last() {
                    if end > open_end {
                        return Err(format!(
                            "event {i}: span [{ts}, {end}] on tid {tid} overlaps the \
                             enclosing span ending at {open_end} without nesting"
                        ));
                    }
                }
                stack.push(end);
            }
            "i" => {}
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_profile_becomes_a_nested_valid_trace() {
        let mut profile = PhaseProfile::new();
        profile.push("build", 1.25);
        profile.push("warmup", 10.0);
        profile.push("measure", 30.5);
        let doc = TraceDoc::from_phases(&profile, "csim");
        assert_eq!(doc.len(), 4);
        let s = doc.to_json().to_string();
        csim_obs::json::validate(&s).unwrap();
        validate_trace(&s).unwrap();
        assert!(s.contains("\"displayTimeUnit\":\"ms\""));
        assert!(s.contains("\"name\":\"csim\""));
        assert!(s.contains("\"name\":\"measure\""));
    }

    #[test]
    fn sequential_fractional_spans_never_overlap_after_rounding() {
        let mut doc = TraceDoc::new();
        // Adjacent spans whose f64 endpoints round in the same direction.
        let mut at = 0.0;
        for i in 0..50 {
            let dur = 0.0301 + (i as f64) * 0.0007;
            doc.push_span_ms("p", "seq", at, dur, 3);
            at += dur;
        }
        validate_trace(&doc.to_json().to_string()).unwrap();
    }

    #[test]
    fn overlap_without_nesting_is_rejected() {
        let s = r#"{"traceEvents":[
            {"name":"a","cat":"t","ph":"X","ts":0,"dur":100,"pid":1,"tid":1},
            {"name":"b","cat":"t","ph":"X","ts":50,"dur":100,"pid":1,"tid":1}
        ],"displayTimeUnit":"ms"}"#;
        let e = validate_trace(s).unwrap_err();
        assert!(e.contains("overlaps"), "{e}");
    }

    #[test]
    fn nested_and_sequential_spans_are_accepted() {
        let s = r#"{"traceEvents":[
            {"name":"outer","cat":"t","ph":"X","ts":0,"dur":100,"pid":1,"tid":1},
            {"name":"in1","cat":"t","ph":"X","ts":0,"dur":40,"pid":1,"tid":1},
            {"name":"in2","cat":"t","ph":"X","ts":40,"dur":60,"pid":1,"tid":1},
            {"name":"mark","cat":"t","ph":"i","ts":70,"pid":1,"tid":2,"s":"t"},
            {"name":"other","cat":"t","ph":"X","ts":120,"dur":10,"pid":1,"tid":2}
        ],"displayTimeUnit":"ms"}"#;
        validate_trace(s).unwrap();
    }

    #[test]
    fn backwards_timestamps_and_missing_fields_are_rejected() {
        let back = r#"{"traceEvents":[
            {"name":"a","cat":"t","ph":"i","ts":10,"pid":1,"tid":1},
            {"name":"b","cat":"t","ph":"i","ts":5,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_trace(back).unwrap_err().contains("backwards"));
        let no_dur = r#"{"traceEvents":[
            {"name":"a","cat":"t","ph":"X","ts":0,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_trace(no_dur).unwrap_err().contains("dur"));
        assert!(validate_trace("{}").unwrap_err().contains("traceEvents"));
        assert!(validate_trace("not json").is_err());
        let bad_ph = r#"{"traceEvents":[
            {"name":"a","cat":"t","ph":"Q","ts":0,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_trace(bad_ph).unwrap_err().contains("phase"));
    }

    #[test]
    fn instants_carry_thread_scope_and_no_dur() {
        let mut doc = TraceDoc::new();
        doc.push_instant_ms("resumed", "sweep", 2.0, 0);
        let s = doc.to_json().to_string();
        assert!(s.contains("\"s\":\"t\""));
        assert!(!s.contains("\"dur\""));
        assert!(!doc.is_empty());
        validate_trace(&s).unwrap();
    }
}
