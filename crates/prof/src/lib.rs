//! Two-sided profiling for the chip-level-integration simulator.
//!
//! The paper's analytical backbone is the breakdown figure — *where do
//! the cycles go?* — and this crate answers it on both clocks:
//!
//! * **Simulated time** — [`Attribution`] splits every charged latency
//!   into per-component contributions ([`Component`]: L1 probe, L2
//!   array, directory, NoC hops, MC queue, fault extra) per
//!   [`csim_obs::MissClass`], with an exactness invariant (components
//!   sum to the charged cycles) that makes the breakdown reconcile
//!   cycle-for-cycle with the observer's histograms.
//!   [`prof_report_json`] exports it as byte-stable
//!   `csim-prof-report/v1` JSON, and [`Attribution::to_bar`] feeds the
//!   paper-style stacked charts.
//! * **Host time** — [`HostSampler`] is a hand-rolled, `unsafe`-free
//!   sampling profiler over the region markers in
//!   `csim_trace::hostprof`, yielding a wall-time-by-region
//!   [`RegionReport`]; [`chrome::TraceDoc`] exports run/sweep phase
//!   timelines as Chrome trace-event JSON for `chrome://tracing` and
//!   Perfetto.
//!
//! The two sides obey different determinism contracts, and the type
//! structure keeps them apart: everything derived from simulation state
//! is byte-stable; everything wall-clock rides in [`HostProfile`], the
//! explicitly nondeterministic `host_profile` section of the run
//! report.

#![forbid(unsafe_code)]

mod attr;
pub mod chrome;
mod report;
mod sampler;

pub use attr::{Attribution, Component};
pub use report::{prof_report_json, PROF_REPORT_SCHEMA};
pub use sampler::{HostSampler, RegionReport};

use csim_obs::json::Json;
use csim_obs::PhaseProfile;

/// Everything a run measured about the *host*: wall-clock phase
/// timings, and (when sampling was enabled) the region profile. This is
/// the payload of the run report's `host_profile` section — explicitly
/// nondeterministic, excluded from every byte-identity comparison.
#[derive(Clone, Debug, Default)]
pub struct HostProfile {
    /// Wall-clock phase timings (build, warmup, measure, ...).
    pub phases: PhaseProfile,
    /// The sampling profiler's tally, when `--prof-sample-hz` ran one.
    pub regions: Option<RegionReport>,
}

impl HostProfile {
    /// A host profile carrying only phase timings.
    pub fn from_phases(phases: PhaseProfile) -> HostProfile {
        HostProfile { phases, regions: None }
    }

    /// The section as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("phases", self.phases.to_json()),
            (
                "regions",
                self.regions.as_ref().map(RegionReport::to_json).unwrap_or(Json::Null),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_profile_serializes_with_and_without_regions() {
        let mut phases = PhaseProfile::new();
        phases.push("measure", 12.0);
        let bare = HostProfile::from_phases(phases.clone());
        let s = bare.to_json().to_string();
        csim_obs::json::validate(&s).unwrap();
        assert!(s.contains("\"regions\":null"));

        let sampler = HostSampler::start(5000);
        let with_regions =
            HostProfile { phases, regions: Some(sampler.stop()) };
        let s = with_regions.to_json().to_string();
        csim_obs::json::validate(&s).unwrap();
        assert!(s.contains("\"regions\":{"));
        assert!(s.contains("\"measure\""));
    }
}
