//! The machine-readable attribution report.
//!
//! Everything in a prof report is a function of the simulation's
//! deterministic state: same seeds, same bytes. Host-side measurements
//! (the sampling profiler, phase timings) are deliberately *not* part
//! of this document — they ride in the run report's explicitly
//! nondeterministic `host_profile` section instead.

use csim_obs::json::Json;
use csim_obs::RunManifest;

use crate::attr::Attribution;

/// Schema tag written into every attribution report, bumped on breaking
/// layout changes so downstream readers can dispatch.
pub const PROF_REPORT_SCHEMA: &str = "csim-prof-report/v1";

/// Assembles the attribution report document: schema tag, reproduction
/// manifest, and the per-class component breakdown. Byte-stable across
/// reruns of the same seeds.
pub fn prof_report_json(attr: &Attribution, manifest: &RunManifest) -> Json {
    Json::obj([
        ("schema", Json::str(PROF_REPORT_SCHEMA)),
        ("manifest", manifest.to_json()),
        ("attribution", attr.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use csim_obs::json::validate;
    use csim_obs::MissClass;
    use csim_proc::StallClass;

    #[test]
    fn report_validates_and_is_byte_stable() {
        let mut attr = Attribution::new(22);
        attr.record(MissClass::RemoteDirty, StallClass::RemoteDirty, 660, 700);
        let manifest = RunManifest {
            tool: "csim".into(),
            version: "0.0.0+test".into(),
            config_summary: "8p".into(),
            config: vec![("nodes".into(), "8".into())],
            seeds: vec![("workload".into(), 42)],
        };
        let a = prof_report_json(&attr, &manifest).to_string();
        let b = prof_report_json(&attr, &manifest).to_string();
        assert_eq!(a, b);
        validate(&a).unwrap();
        for section in ["\"schema\":\"csim-prof-report/v1\"", "\"manifest\"", "\"attribution\""] {
            assert!(a.contains(section), "missing {section}");
        }
    }

    #[test]
    fn schema_constant_is_live() {
        assert!(PROF_REPORT_SCHEMA.ends_with("/v1"));
    }
}
