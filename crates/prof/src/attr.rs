//! Exact attribution of simulated cycles to hardware components.
//!
//! The paper's figures decompose OLTP execution time into stall
//! components per integration level; the simulator's latency tables are
//! end-to-end numbers (an L2 hit costs 15ns total, a remote dirty miss
//! costs one 3-hop round trip total). This module splits every charged
//! latency into per-component contributions using a fixed, documented
//! model (see DESIGN.md §14), with one invariant that makes the split
//! trustworthy: **the components of a reference always sum to exactly
//! the cycles charged for it**, so per-class attribution totals
//! reconcile cycle-for-cycle with the observer's latency histograms.
//!
//! The split of a latency `actual` charged with fault-free base `base`
//! against miss shape `shape`:
//!
//! 1. `attributable = min(base, actual)` — the fault-free portion.
//! 2. L1 probe: the first 2 cycles (every miss first probed L1).
//! 3. L2 array: for an L2 hit, the whole remainder; otherwise the L2
//!    lookup that missed, `min(l2_hit - l1, remainder)`.
//! 4. The rest is the memory-system trip, split by shape: directory
//!    occupancy gets 1/5; NoC hops get 0/5 (local), 2/5 (2-hop clean)
//!    or 3/5 (3-hop dirty); the MC queue gets the exact remainder, so
//!    integer division can never leak cycles.
//! 5. Anything above `base` (retry backoff, injected degradation) is
//!    fault extra: `actual - attributable`.

use csim_obs::json::Json;
use csim_obs::MissClass;
use csim_proc::StallClass;
use csim_stats::Bar;

/// The hardware components simulated cycles are attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Component {
    /// The L1 probe that missed (fixed 2-cycle cost).
    L1Probe,
    /// The L2 array lookup (hit service, or the lookup that missed).
    L2Array,
    /// Directory lookup and occupancy at the home node.
    Directory,
    /// Network-on-chip/board hop traversal (2-hop clean, 3-hop dirty).
    NocHops,
    /// Memory-controller queueing and DRAM access.
    McQueue,
    /// Cycles above the fault-free base: NACK backoff, retries,
    /// injected link/MC degradation.
    FaultExtra,
}

impl Component {
    /// Every component, in display order. JSON exports, stacked bars
    /// and tables all iterate in this order so output is stable.
    pub const ALL: [Component; 6] = [
        Component::L1Probe,
        Component::L2Array,
        Component::Directory,
        Component::NocHops,
        Component::McQueue,
        Component::FaultExtra,
    ];

    /// Number of components (array-index domain for accumulators).
    pub const COUNT: usize = Self::ALL.len();

    /// A dense index in `0..COUNT`, matching the order of [`Self::ALL`].
    pub fn index(self) -> usize {
        match self {
            Component::L1Probe => 0,
            Component::L2Array => 1,
            Component::Directory => 2,
            Component::NocHops => 3,
            Component::McQueue => 4,
            Component::FaultExtra => 5,
        }
    }

    /// The stable machine-readable name used in JSON and legends.
    pub fn as_str(self) -> &'static str {
        match self {
            Component::L1Probe => "l1-probe",
            Component::L2Array => "l2-array",
            Component::Directory => "directory",
            Component::NocHops => "noc-hops",
            Component::McQueue => "mc-queue",
            Component::FaultExtra => "fault-extra",
        }
    }
}

/// Cycles the L1 probe preceding every recorded latency accounts for.
const L1_PROBE_CYCLES: u64 = 2;

/// Per-miss-class, per-component cycle accumulator.
///
/// Cells are `u128` so the reconciliation against
/// [`csim_obs::LatencyHistogram`]'s exact `u128` sums can never be
/// broken by overflow, no matter how long the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribution {
    /// The configuration's end-to-end L2 hit latency, used to size the
    /// L2-array share of misses.
    l2_hit: u64,
    cells: [[u128; Component::COUNT]; MissClass::COUNT],
    counts: [u64; MissClass::COUNT],
}

impl Attribution {
    /// An empty accumulator for a configuration whose end-to-end L2 hit
    /// latency is `l2_hit` cycles.
    pub fn new(l2_hit: u64) -> Self {
        Attribution {
            l2_hit,
            cells: [[0; Component::COUNT]; MissClass::COUNT],
            counts: [0; MissClass::COUNT],
        }
    }

    /// The L2 hit latency this accumulator splits against.
    pub fn l2_hit_latency(&self) -> u64 {
        self.l2_hit
    }

    /// Records one charged reference: `actual` cycles charged, with
    /// fault-free base `base`, recorded under histogram row `class`,
    /// split according to miss shape `shape`. The component shares sum
    /// to exactly `actual`.
    // analyze: hot
    #[inline]
    // analyze: total — Component::index()/MissClass::index() are variant positions and the cells matrix is sized COMPONENTS x CLASSES at construction
    pub fn record(&mut self, class: MissClass, shape: StallClass, base: u64, actual: u64) {
        let attributable = base.min(actual);
        let l1 = L1_PROBE_CYCLES.min(attributable);
        let after_l1 = attributable - l1;
        let l2 = match shape {
            StallClass::L2Hit => after_l1,
            _ => self.l2_hit.saturating_sub(l1).min(after_l1),
        };
        let trip = after_l1 - l2;
        let dir = trip / 5;
        let noc = match shape {
            StallClass::L2Hit | StallClass::Local => 0,
            StallClass::RemoteClean => 2 * (trip / 5),
            StallClass::RemoteDirty => 3 * (trip / 5),
        };
        let mc = trip - dir - noc;
        let fault = actual - attributable;
        let row = &mut self.cells[class.index()];
        row[Component::L1Probe.index()] += u128::from(l1);
        row[Component::L2Array.index()] += u128::from(l2);
        row[Component::Directory.index()] += u128::from(dir);
        row[Component::NocHops.index()] += u128::from(noc);
        row[Component::McQueue.index()] += u128::from(mc);
        row[Component::FaultExtra.index()] += u128::from(fault);
        self.counts[class.index()] += 1;
    }

    /// Records NACK/retry backoff cycles: pure fault overhead with no
    /// fault-free base, so the whole latency lands in
    /// [`Component::FaultExtra`] under [`MissClass::NackRetry`].
    // analyze: hot
    #[inline]
    // analyze: total — Component::index()/MissClass::index() are variant positions and the cells matrix is sized COMPONENTS x CLASSES at construction
    pub fn record_nack(&mut self, cycles: u64) {
        self.cells[MissClass::NackRetry.index()][Component::FaultExtra.index()] +=
            u128::from(cycles);
        self.counts[MissClass::NackRetry.index()] += 1;
    }

    /// Cycles attributed to `component` under `class`.
    pub fn cell(&self, class: MissClass, component: Component) -> u128 {
        // analyze: total — Component::index()/MissClass::index() are variant positions and the cells matrix is sized COMPONENTS x CLASSES at construction
        self.cells[class.index()][component.index()]
    }

    /// References recorded under `class`.
    pub fn class_count(&self, class: MissClass) -> u64 {
        // analyze: total — Component::index()/MissClass::index() are variant positions and the cells matrix is sized COMPONENTS x CLASSES at construction
        self.counts[class.index()]
    }

    /// Total cycles recorded under `class` (sum over components) —
    /// exactly the observer histogram's sum for the same class.
    pub fn class_cycles(&self, class: MissClass) -> u128 {
        // analyze: total — Component::index()/MissClass::index() are variant positions and the cells matrix is sized COMPONENTS x CLASSES at construction
        self.cells[class.index()].iter().sum()
    }

    /// Total cycles attributed to `component` across all classes.
    pub fn component_cycles(&self, component: Component) -> u128 {
        // analyze: total — Component::index()/MissClass::index() are variant positions and the cells matrix is sized COMPONENTS x CLASSES at construction
        self.cells.iter().map(|row| row[component.index()]).sum()
    }

    /// Total cycles recorded, across every class and component.
    pub fn total_cycles(&self) -> u128 {
        self.cells.iter().flatten().sum()
    }

    /// Accumulates `other` into `self` (element-wise, so merging is
    /// associative and commutative and equals recording the union of
    /// both reference sets).
    ///
    /// # Panics
    ///
    /// Panics if the accumulators were built against different L2 hit
    /// latencies (their splits would not be comparable).
    pub fn merge(&mut self, other: &Attribution) {
        assert_eq!(
            self.l2_hit, other.l2_hit,
            "cannot merge attributions split against different L2 hit latencies"
        );
        for (mine, theirs) in self.cells.iter_mut().zip(other.cells.iter()) {
            for (a, b) in mine.iter_mut().zip(theirs.iter()) {
                *a += b;
            }
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// The accumulator as one stacked bar labeled `label`: one segment
    /// per component, in cycles. Feed several of these (one per
    /// integration level) to a `BarChart` + `normalized_to_first` for
    /// the paper's figure style.
    pub fn to_bar(&self, label: &str) -> Bar {
        let mut bar = Bar::new(label);
        for comp in Component::ALL {
            bar = bar.with(comp.as_str(), u128_to_f64(self.component_cycles(comp)));
        }
        bar
    }

    /// Deterministic JSON: per-class counts and component cycles plus
    /// cross-class totals, iterated in `ALL` order.
    pub fn to_json(&self) -> Json {
        let classes = MissClass::ALL
            .iter()
            .map(|&class| {
                let comps = Component::ALL
                    .iter()
                    .map(|&c| (c.as_str().to_string(), uint128(self.cell(class, c))))
                    .collect();
                (
                    class.as_str().to_string(),
                    Json::obj([
                        ("count", Json::UInt(self.class_count(class))),
                        ("cycles", Json::Obj(comps)),
                        ("total_cycles", uint128(self.class_cycles(class))),
                    ]),
                )
            })
            .collect();
        let totals = Component::ALL
            .iter()
            .map(|&c| (c.as_str().to_string(), uint128(self.component_cycles(c))))
            .collect();
        Json::obj([
            ("l2_hit_latency", Json::UInt(self.l2_hit)),
            ("classes", Json::Obj(classes)),
            ("component_totals", Json::Obj(totals)),
            ("total_cycles", uint128(self.total_cycles())),
        ])
    }
}

/// Narrows an exact `u128` cycle total for JSON. Saturates at
/// `u64::MAX` — unreachable in practice (5.8 million years at 100k
/// cycles per nanosecond-class reference).
fn uint128(v: u128) -> Json {
    Json::UInt(v.min(u128::from(u64::MAX)) as u64)
}

fn u128_to_f64(v: u128) -> f64 {
    v as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_sum_exactly_to_the_charged_latency() {
        let mut a = Attribution::new(22);
        for (shape, base, actual) in [
            (StallClass::L2Hit, 22u64, 22u64),
            (StallClass::Local, 120, 120),
            (StallClass::RemoteClean, 400, 463),
            (StallClass::RemoteDirty, 671, 671),
            (StallClass::Local, 1, 1),
            (StallClass::RemoteDirty, 0, 0),
            (StallClass::RemoteClean, 500, 380), // injector shortened
        ] {
            let before = a.total_cycles();
            a.record(MissClass::from_stall(shape), shape, base, actual);
            assert_eq!(
                a.total_cycles() - before,
                u128::from(actual),
                "split must be exact for base={base} actual={actual} shape={shape:?}"
            );
        }
    }

    #[test]
    fn l2_hits_land_in_probe_and_array_only() {
        let mut a = Attribution::new(22);
        a.record(MissClass::L2Hit, StallClass::L2Hit, 22, 22);
        assert_eq!(a.cell(MissClass::L2Hit, Component::L1Probe), 2);
        assert_eq!(a.cell(MissClass::L2Hit, Component::L2Array), 20);
        assert_eq!(a.cell(MissClass::L2Hit, Component::Directory), 0);
        assert_eq!(a.class_cycles(MissClass::L2Hit), 22);
        assert_eq!(a.class_count(MissClass::L2Hit), 1);
    }

    #[test]
    fn remote_dirty_trip_weights_noc_heaviest() {
        let mut a = Attribution::new(22);
        a.record(MissClass::RemoteDirty, StallClass::RemoteDirty, 672, 672);
        // attributable 672, l1 2, l2 20, trip 650: dir 130, noc 390, mc 130.
        assert_eq!(a.cell(MissClass::RemoteDirty, Component::Directory), 130);
        assert_eq!(a.cell(MissClass::RemoteDirty, Component::NocHops), 390);
        assert_eq!(a.cell(MissClass::RemoteDirty, Component::McQueue), 130);
        assert!(
            a.cell(MissClass::RemoteDirty, Component::NocHops)
                > a.cell(MissClass::RemoteDirty, Component::Directory)
        );
    }

    #[test]
    fn cycles_above_base_are_fault_extra() {
        let mut a = Attribution::new(22);
        a.record(MissClass::Local, StallClass::Local, 100, 160);
        assert_eq!(a.cell(MissClass::Local, Component::FaultExtra), 60);
        assert_eq!(a.class_cycles(MissClass::Local), 160);
        a.record_nack(75);
        assert_eq!(a.cell(MissClass::NackRetry, Component::FaultExtra), 75);
        assert_eq!(a.class_count(MissClass::NackRetry), 1);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let mut left = Attribution::new(22);
        let mut right = Attribution::new(22);
        let mut whole = Attribution::new(22);
        for (i, (shape, lat)) in [
            (StallClass::L2Hit, 22u64),
            (StallClass::Local, 133),
            (StallClass::RemoteDirty, 700),
        ]
        .into_iter()
        .enumerate()
        {
            let class = MissClass::from_stall(shape);
            if i % 2 == 0 {
                left.record(class, shape, lat, lat);
            } else {
                right.record(class, shape, lat, lat);
            }
            whole.record(class, shape, lat, lat);
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    #[should_panic(expected = "different L2 hit latencies")]
    fn merging_mismatched_l2_hit_panics() {
        let mut a = Attribution::new(22);
        a.merge(&Attribution::new(30));
    }

    #[test]
    fn json_is_deterministic_and_carries_every_class() {
        let mut a = Attribution::new(22);
        a.record(MissClass::L2Hit, StallClass::L2Hit, 22, 22);
        a.record_nack(9);
        let s = a.to_json().to_string();
        assert_eq!(s, a.to_json().to_string());
        csim_obs::json::validate(&s).unwrap();
        for class in MissClass::ALL {
            assert!(s.contains(&format!("\"{}\"", class.as_str())), "missing {class}");
        }
        assert!(s.contains("\"total_cycles\":31"));
    }

    #[test]
    fn bar_segments_follow_component_order() {
        let mut a = Attribution::new(22);
        a.record(MissClass::RemoteClean, StallClass::RemoteClean, 500, 500);
        let bar = a.to_bar("On-chip L2");
        assert_eq!(bar.components().len(), Component::COUNT);
        assert_eq!(bar.components()[0].0, "l1-probe");
        assert!((bar.total() - 500.0).abs() < 1e-9);
    }
}
