//! Property tests for the torus topology and latency derivation.

use proptest::prelude::*;

use csim_config::IntegrationLevel;
use csim_noc::{derive_latency_table, Contention, TechParams, Torus2D};

proptest! {
    #[test]
    fn hops_form_a_metric(w in 1usize..8, h in 1usize..8) {
        let t = Torus2D::new(w, h);
        let n = t.nodes();
        for a in 0..n {
            prop_assert_eq!(t.hops(a, a), 0);
            for b in 0..n {
                prop_assert_eq!(t.hops(a, b), t.hops(b, a));
                // Triangle inequality through an arbitrary midpoint.
                for c in [0, n / 2, n - 1] {
                    prop_assert!(t.hops(a, b) <= t.hops(a, c) + t.hops(c, b));
                }
            }
        }
    }

    #[test]
    fn mean_hops_bounded_by_diameter(w in 1usize..10, h in 1usize..10) {
        let t = Torus2D::new(w, h);
        prop_assert!(t.mean_hops() <= t.diameter() as f64 + 1e-12);
        if t.nodes() > 1 {
            prop_assert!(t.mean_hops() >= 1.0 - 1e-12, "nearest other node is 1 hop away");
        }
    }

    #[test]
    fn for_nodes_always_covers_n(n in 1usize..200) {
        let t = Torus2D::for_nodes(n);
        prop_assert_eq!(t.nodes(), n);
    }

    #[test]
    fn derived_latencies_order_correctly(w in 1usize..6, h in 1usize..6) {
        // For any topology, the physical ordering must hold: hit < local
        // < remote clean < remote dirty.
        let tech = TechParams::paper_018um();
        let net = Torus2D::new(w, h);
        for level in [
            IntegrationLevel::Base,
            IntegrationLevel::L2Integrated,
            IntegrationLevel::FullyIntegrated,
        ] {
            let lat = derive_latency_table(level, &tech, &net);
            prop_assert!(lat.l2_hit < lat.local);
            prop_assert!(lat.local < lat.remote_clean);
            prop_assert!(lat.remote_clean < lat.remote_dirty);
            prop_assert!(lat.remote_dirty < lat.remote_dirty_in_rac);
        }
    }

    #[test]
    fn contention_inflation_is_monotone(a in 0.0f64..0.9, b in 0.0f64..0.9) {
        let c = Contention::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(c.inflation(lo) <= c.inflation(hi));
        prop_assert!(c.inflation(lo) >= 1.0);
    }
}
