//! Randomized property tests for the torus topology and latency
//! derivation (deterministic [`SimRng`]-driven cases; no external crates).

use csim_config::IntegrationLevel;
use csim_noc::{derive_latency_table, Contention, TechParams, Torus2D};
use csim_trace::SimRng;

#[test]
fn hops_form_a_metric() {
    for w in 1usize..8 {
        for h in 1usize..8 {
            let t = Torus2D::new(w, h);
            let n = t.nodes();
            for a in 0..n {
                assert_eq!(t.hops(a, a), 0);
                for b in 0..n {
                    assert_eq!(t.hops(a, b), t.hops(b, a));
                    // Triangle inequality through an arbitrary midpoint.
                    for c in [0, n / 2, n - 1] {
                        assert!(t.hops(a, b) <= t.hops(a, c) + t.hops(c, b));
                    }
                }
            }
        }
    }
}

#[test]
fn mean_hops_bounded_by_diameter() {
    for w in 1usize..10 {
        for h in 1usize..10 {
            let t = Torus2D::new(w, h);
            assert!(t.mean_hops() <= t.diameter() as f64 + 1e-12);
            if t.nodes() > 1 {
                assert!(t.mean_hops() >= 1.0 - 1e-12, "nearest other node is 1 hop away");
            }
        }
    }
}

#[test]
fn for_nodes_always_covers_n() {
    for n in 1usize..200 {
        let t = Torus2D::for_nodes(n);
        assert_eq!(t.nodes(), n);
    }
}

#[test]
fn derived_latencies_order_correctly() {
    // For any topology, the physical ordering must hold: hit < local
    // < remote clean < remote dirty.
    let tech = TechParams::paper_018um();
    for w in 1usize..6 {
        for h in 1usize..6 {
            let net = Torus2D::new(w, h);
            for level in [
                IntegrationLevel::Base,
                IntegrationLevel::L2Integrated,
                IntegrationLevel::FullyIntegrated,
            ] {
                let lat = derive_latency_table(level, &tech, &net);
                assert!(lat.l2_hit < lat.local);
                assert!(lat.local < lat.remote_clean);
                assert!(lat.remote_clean < lat.remote_dirty);
                assert!(lat.remote_dirty < lat.remote_dirty_in_rac);
            }
        }
    }
}

#[test]
fn contention_inflation_is_monotone() {
    let c = Contention::default();
    let mut rng = SimRng::seed_from_u64(0x10C);
    for _ in 0..1000 {
        let a = rng.gen_f64() * 0.9;
        let b = rng.gen_f64() * 0.9;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(c.inflation(lo) <= c.inflation(hi));
        assert!(c.inflation(lo) >= 1.0);
    }
}
