//! Technology and router timing parameters.

/// Per-hop router/link timing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouterParams {
    /// Router pipeline occupancy per hop (cycles).
    pub router_cycles: f64,
    /// Link traversal per hop (cycles) — the paper assumes direct-Rambus
    /// style signaling at >4 GB/s per link pair.
    pub link_cycles: f64,
    /// Network-interface entry + exit processing per one-way transit.
    pub ni_cycles: f64,
}

/// The full 0.18um technology assumption set behind the paper's Figure 3
/// (IBM SA-27E class process, 1 GHz core, direct-Rambus memory).
///
/// All values are in 1 GHz cycles (= ns). These are plain data so
/// sensitivity studies can perturb individual entries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TechParams {
    /// Crossing one chip boundary (driver + pad + board trace), one way.
    pub chip_crossing: f64,
    /// On-chip L2 tag lookup.
    pub l2_tag: f64,
    /// On-chip SRAM data array access.
    pub sram_array_on_chip: f64,
    /// On-chip embedded-DRAM data array access.
    pub dram_array_on_chip: f64,
    /// Off-chip SRAM data access (wave-pipelined, direct-mapped).
    pub sram_array_off_chip: f64,
    /// External set selection penalty for associative off-chip arrays.
    pub external_set_select: f64,
    /// L2 miss detection before the memory system is engaged.
    pub l2_miss_detect: f64,
    /// Memory-controller processing.
    pub mc_processing: f64,
    /// RDRAM row access.
    pub rdram_access: f64,
    /// Transferring a 64-byte line over the memory channel.
    pub line_transfer: f64,
    /// System-bus arbitration + transfer when the MC is off-chip.
    pub system_bus: f64,
    /// Directory lookup at the home (directory state in memory/ECC bits).
    pub directory_lookup: f64,
    /// Owner-side intervention: CC probe + L2 array read at the owner.
    pub owner_probe: f64,
    /// Sharing-writeback and acknowledgment coordination on 3-hop
    /// transactions (the home's copy is updated as part of the reply).
    pub dirty_coordination: f64,
    /// Extra cost per off-chip coherence-controller traversal (request
    /// must exit over the system bus to reach the CC).
    pub off_chip_cc_penalty: f64,
    /// Detour when an off-chip CC must fetch memory data through the
    /// processor's integrated MC (the paper's Section 4 pathology).
    pub cc_to_mc_detour: f64,
    /// Additional slack of the unoptimized "Conservative Base" design,
    /// applied to local and remote paths.
    pub conservative_overhead: f64,
    /// Router/link timing.
    pub router: RouterParams,
}

impl TechParams {
    /// The calibration matching the paper's stated 0.18um assumptions.
    pub fn paper_018um() -> Self {
        TechParams {
            chip_crossing: 5.0,
            l2_tag: 5.0,
            sram_array_on_chip: 10.0,
            dram_array_on_chip: 20.0,
            sram_array_off_chip: 10.0,
            external_set_select: 5.0,
            l2_miss_detect: 10.0,
            mc_processing: 10.0,
            rdram_access: 45.0,
            line_transfer: 10.0,
            system_bus: 15.0,
            directory_lookup: 10.0,
            owner_probe: 25.0,
            dirty_coordination: 40.0,
            off_chip_cc_penalty: 25.0,
            cc_to_mc_detour: 50.0,
            conservative_overhead: 50.0,
            router: RouterParams { router_cycles: 8.0, link_cycles: 8.0, ni_cycles: 10.0 },
        }
    }

    /// One-way network transit time for the given hop count.
    pub fn transit(&self, hops: f64) -> f64 {
        self.router.ni_cycles + hops * (self.router.router_cycles + self.router.link_cycles)
    }

    /// Raw DRAM access through the (integrated) memory controller.
    pub fn memory_access(&self) -> f64 {
        self.mc_processing + self.rdram_access + self.line_transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_compose_the_integrated_local_latency() {
        let t = TechParams::paper_018um();
        // 10 (miss detect) + 10 (MC) + 45 (RDRAM) + 10 (transfer) = 75,
        // the paper's fully-integrated local latency.
        assert_eq!(t.l2_miss_detect + t.memory_access(), 75.0);
    }

    #[test]
    fn transit_scales_with_hops() {
        let t = TechParams::paper_018um();
        assert_eq!(t.transit(0.0), 10.0);
        assert_eq!(t.transit(2.0), 10.0 + 32.0);
    }
}
