//! Deriving the paper's Figure 3 from the technology model.

use csim_config::{IntegrationLevel, LatencyTable};

use crate::router::TechParams;
use crate::topology::Torus2D;

/// A protocol transaction assembled from named latency segments, so
/// derivations stay inspectable ("where do the 200 cycles of a 3-hop
/// miss go?").
#[derive(Clone, Debug, Default)]
pub struct MessagePath {
    segments: Vec<(&'static str, f64)>,
}

impl MessagePath {
    /// Starts an empty path.
    pub fn new() -> Self {
        MessagePath::default()
    }

    /// Appends a named segment (builder style).
    pub(crate) fn seg(mut self, name: &'static str, cycles: f64) -> Self {
        self.segments.push((name, cycles));
        self
    }

    /// Total latency in cycles.
    pub fn total(&self) -> f64 {
        self.segments.iter().map(|(_, c)| c).sum()
    }

    /// The named segments, in order.
    pub fn segments(&self) -> &[(&'static str, f64)] {
        &self.segments
    }

    /// One line per segment plus the total, for reports.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (name, cycles) in &self.segments {
            out.push_str(&format!("  {name:<28} {cycles:>6.1}\n"));
        }
        out.push_str(&format!("  {:<28} {:>6.1}\n", "TOTAL", self.total()));
        out
    }
}

/// L2 hit path for a given integration level (SRAM assumed; see
/// [`derive_latency_table`] for the DRAM variant).
pub fn l2_hit_path(level: IntegrationLevel, assoc: u32, t: &TechParams) -> MessagePath {
    let on_chip = level.l2_on_chip();
    let mut p = MessagePath::new().seg("tag lookup", t.l2_tag);
    if on_chip {
        p = p.seg("on-chip SRAM array", t.sram_array_on_chip);
    } else {
        p = p
            .seg("chip crossing (out)", t.chip_crossing)
            .seg("off-chip SRAM array", t.sram_array_off_chip)
            .seg("chip crossing (back)", t.chip_crossing);
        if assoc > 1 || level == IntegrationLevel::ConservativeBase {
            p = p.seg("external set select", t.external_set_select);
        }
    }
    p
}

/// Local-memory path.
pub fn local_path(level: IntegrationLevel, t: &TechParams) -> MessagePath {
    let mut p = MessagePath::new()
        .seg("L2 miss detect", t.l2_miss_detect)
        .seg("memory controller", t.mc_processing)
        .seg("RDRAM access", t.rdram_access)
        .seg("line transfer", t.line_transfer);
    if !level.mc_on_chip() {
        p = p
            .seg("chip crossing (out)", t.chip_crossing)
            .seg("system bus", t.system_bus)
            .seg("chip crossing (back)", t.chip_crossing);
    }
    if level == IntegrationLevel::ConservativeBase {
        p = p.seg("conservative slack", t.conservative_overhead);
    }
    p
}

/// Clean remote (2-hop) path.
pub fn remote_clean_path(level: IntegrationLevel, t: &TechParams, net: &Torus2D) -> MessagePath {
    let hops = net.mean_hops();
    let mut p = MessagePath::new()
        .seg("request transit", t.transit(hops))
        .seg("home directory", t.directory_lookup)
        .seg("home memory", t.memory_access())
        .seg("reply transit", t.transit(hops))
        .seg("line transfer", t.line_transfer);
    if !level.cc_on_chip() {
        // Request and reply each traverse an external CC at both ends;
        // the penalty folds the two ends of one traversal together.
        p = p.seg("off-chip CC (x2 ends)", 2.0 * t.off_chip_cc_penalty / 2.0);
    }
    if level == IntegrationLevel::L2McIntegrated {
        p = p.seg("CC->MC detour at home", t.cc_to_mc_detour);
    }
    if level == IntegrationLevel::ConservativeBase {
        p = p.seg("conservative slack", t.conservative_overhead);
    }
    p
}

/// Dirty remote (3-hop) path.
pub fn remote_dirty_path(level: IntegrationLevel, t: &TechParams, net: &Torus2D) -> MessagePath {
    let hops = net.mean_hops();
    let mut p = MessagePath::new()
        .seg("request transit", t.transit(hops))
        .seg("home directory", t.directory_lookup)
        .seg("forward transit", t.transit(hops))
        .seg("owner probe + L2 read", t.owner_probe)
        .seg("reply transit", t.transit(hops))
        .seg("line transfer", t.line_transfer)
        .seg("sharing writeback coord", t.dirty_coordination);
    if !level.cc_on_chip() {
        // Three CC traversals: requester, home, owner.
        p = p.seg("off-chip CC (x3)", 3.0 * t.off_chip_cc_penalty);
    }
    if level == IntegrationLevel::ConservativeBase {
        p = p.seg("conservative slack", t.conservative_overhead);
    }
    p
}

/// Assembles a full latency table for an integration level from the
/// technology model and topology. The derived values land within ~15% of
/// the paper's Figure 3 (asserted by this crate's tests): the published
/// table follows from the stated technology assumptions.
pub fn derive_latency_table(
    level: IntegrationLevel,
    t: &TechParams,
    net: &Torus2D,
) -> LatencyTable {
    let assoc_for_hit = 1; // direct-mapped hit path; callers wanting the
                           // associative off-chip penalty use l2_hit_path directly.
    LatencyTable {
        l2_hit: l2_hit_path(level, assoc_for_hit, t).total().round() as u64,
        local: local_path(level, t).total().round() as u64,
        remote_clean: remote_clean_path(level, t, net).total().round() as u64,
        remote_dirty: remote_dirty_path(level, t, net).total().round() as u64,
        rac_hit: local_path(IntegrationLevel::FullyIntegrated, t).total().round() as u64,
        remote_dirty_in_rac: (remote_dirty_path(level, t, net).total()
            + t.mc_processing
            + t.rdram_access)
            .round() as u64,
    }
}

/// Convenience: the fully-integrated 3-hop transaction's cost breakdown
/// as printable text.
pub fn remote_dirty_path_description(t: &TechParams, net: &Torus2D) -> String {
    remote_dirty_path(IntegrationLevel::FullyIntegrated, t, net).describe()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csim_config::L2Kind;
    use IntegrationLevel::*;

    fn assert_close(name: &str, derived: u64, paper: u64, tol_pct: f64) {
        let err = (derived as f64 - paper as f64).abs() / paper as f64;
        assert!(
            err <= tol_pct,
            "{name}: derived {derived} vs paper {paper} ({:.0}% off)",
            err * 100.0
        );
    }

    #[test]
    fn derivation_reproduces_figure_3_within_tolerance() {
        let t = TechParams::paper_018um();
        let net = Torus2D::new(4, 2);
        for level in [Base, L2Integrated, L2McIntegrated, FullyIntegrated, ConservativeBase] {
            let derived = derive_latency_table(level, &t, &net);
            let paper = LatencyTable::for_system(level,
                if level.l2_on_chip() { L2Kind::OnChipSram } else { L2Kind::OffChip }, 1);
            assert_close("l2_hit", derived.l2_hit, paper.l2_hit, 0.15);
            assert_close("local", derived.local, paper.local, 0.15);
            assert_close("remote_clean", derived.remote_clean, paper.remote_clean, 0.15);
            assert_close("remote_dirty", derived.remote_dirty, paper.remote_dirty, 0.15);
        }
    }

    #[test]
    fn fully_integrated_rows_are_nearly_exact() {
        let t = TechParams::paper_018um();
        let net = Torus2D::new(4, 2);
        let d = derive_latency_table(FullyIntegrated, &t, &net);
        assert_eq!(d.l2_hit, 15);
        assert_eq!(d.local, 75);
        assert!((d.remote_clean as i64 - 150).abs() <= 10, "remote {}", d.remote_clean);
        assert!((d.remote_dirty as i64 - 200).abs() <= 15, "dirty {}", d.remote_dirty);
    }

    #[test]
    fn associative_off_chip_hit_pays_set_selection() {
        let t = TechParams::paper_018um();
        let dm = l2_hit_path(Base, 1, &t).total();
        let assoc = l2_hit_path(Base, 4, &t).total();
        assert_eq!(dm, 25.0);
        assert_eq!(assoc, 30.0);
    }

    #[test]
    fn message_paths_describe_themselves() {
        let t = TechParams::paper_018um();
        let net = Torus2D::new(4, 2);
        let p = remote_dirty_path(FullyIntegrated, &t, &net);
        let desc = p.describe();
        assert!(desc.contains("owner probe"));
        assert!(desc.contains("TOTAL"));
        assert_eq!(p.segments().len(), 7);
    }

    #[test]
    fn bigger_networks_cost_more() {
        let t = TechParams::paper_018um();
        let small = derive_latency_table(FullyIntegrated, &t, &Torus2D::new(2, 2));
        let large = derive_latency_table(FullyIntegrated, &t, &Torus2D::new(8, 8));
        assert!(large.remote_clean > small.remote_clean);
        assert!(large.remote_dirty > small.remote_dirty);
        // Local latency is network-independent.
        assert_eq!(large.local, small.local);
    }
}
