//! Interconnect substrate: where the paper's latency numbers come from.
//!
//! The paper takes its memory latencies (Figure 3) as given — they are
//! projections for a 0.18um Alpha 21364-class part whose coherence
//! traffic crosses a 2D torus of point-to-point links (Figure 1B shows
//! twelve 21364s in a 4x3 arrangement). This crate rebuilds that bottom
//! layer:
//!
//! * [`Torus2D`] — the 21364-style torus: coordinates, wraparound
//!   routing distance, average hop counts.
//! * [`RouterParams`] / [`TechParams`] — per-hop router and link timing,
//!   chip-crossing costs, SRAM/DRAM access times.
//! * [`MessagePath`] — compose protocol transactions (request, forward,
//!   data reply) into end-to-end latencies.
//! * [`derive_latency_table`] — assemble the paper's Figure 3 rows from
//!   those first principles. A unit test asserts every derived entry is
//!   within ~15% of the paper's published number, demonstrating the
//!   published table is the physically sensible consequence of the
//!   stated technology assumptions.
//! * [`Contention`] — an M/M/1-style inflation factor for loaded links,
//!   for sensitivity studies beyond the paper's fixed-latency model.
//!
//! # Example
//!
//! ```
//! use csim_config::IntegrationLevel;
//! use csim_noc::{derive_latency_table, TechParams, Torus2D};
//!
//! let torus = Torus2D::new(4, 2); // 8 nodes as in the paper's MP runs
//! let derived = derive_latency_table(
//!     IntegrationLevel::FullyIntegrated, &TechParams::paper_018um(), &torus);
//! // The paper's row is (15, 75, 150, 200); the derivation lands close.
//! assert!((derived.l2_hit as i64 - 15).abs() <= 3);
//! assert!((derived.remote_dirty as i64 - 200).abs() <= 30);
//! ```

#![forbid(unsafe_code)]

mod contention;
mod derive;
mod router;
mod topology;

pub use contention::Contention;
pub use derive::{
    derive_latency_table, l2_hit_path, local_path, remote_clean_path, remote_dirty_path,
    remote_dirty_path_description, MessagePath,
};
pub use router::{RouterParams, TechParams};
pub use topology::Torus2D;
