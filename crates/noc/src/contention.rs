//! Link-contention inflation.
//!
//! The paper uses fixed latencies (an uncontended network); this helper
//! supports sensitivity studies that relax the assumption. Each link is
//! treated as an M/M/1 server: at utilization `rho` the expected
//! residence time inflates by `1 / (1 - rho)`.

/// M/M/1-style contention model for one link class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Contention {
    /// Utilization cap beyond which the model saturates (queueing theory
    /// diverges at 1.0; real routers back-pressure first).
    pub max_utilization: f64,
}

impl Default for Contention {
    fn default() -> Self {
        Contention { max_utilization: 0.95 }
    }
}

impl Contention {
    /// The latency inflation factor at link utilization `rho` (clamped
    /// to `[0, max_utilization]`).
    ///
    /// ```
    /// let c = csim_noc::Contention::default();
    /// assert_eq!(c.inflation(0.0), 1.0);
    /// assert!((c.inflation(0.5) - 2.0).abs() < 1e-12);
    /// ```
    pub fn inflation(&self, rho: f64) -> f64 {
        let rho = rho.clamp(0.0, self.max_utilization);
        1.0 / (1.0 - rho)
    }

    /// Inflates a base network latency for the given utilization.
    pub fn inflate(&self, base_cycles: f64, rho: f64) -> f64 {
        base_cycles * self.inflation(rho)
    }

    /// The inflation factor across a link degraded to `capacity_fraction`
    /// of its nominal bandwidth (a transient fault, a failed lane, a
    /// throttled SerDes): service time stretches by `1 / capacity` and
    /// the offered load drives effective utilization to `rho / capacity`.
    ///
    /// At full capacity this reduces to [`Contention::inflation`]; an
    /// idle link at full capacity inflates by exactly 1.0.
    ///
    /// ```
    /// let c = csim_noc::Contention::default();
    /// assert_eq!(c.degraded_inflation(0.0, 1.0), 1.0);
    /// assert_eq!(c.degraded_inflation(0.0, 0.5), 2.0);
    /// ```
    pub fn degraded_inflation(&self, rho: f64, capacity_fraction: f64) -> f64 {
        let capacity = capacity_fraction.clamp(0.01, 1.0);
        self.inflation(rho / capacity) / capacity
    }

    /// The *offered* load of a per-node miss stream: like
    /// [`Contention::utilization`] but unclamped. The clamped value is
    /// what the latency model uses; this one is for observability — a
    /// retry storm can offer a load well past saturation, and the
    /// clamp would hide how far past it went.
    pub fn offered_utilization(
        &self,
        misses_per_cycle: f64,
        mean_hops: f64,
        line_cycles: f64,
        links_per_node: f64,
    ) -> f64 {
        (misses_per_cycle * mean_hops * line_cycles / links_per_node.max(1.0)).max(0.0)
    }

    /// Link utilization implied by a per-node miss stream: `misses_per
    /// _cycle` line-sized messages crossing `mean_hops` links of
    /// `line_cycles` occupancy each, spread over `links_per_node` links.
    pub fn utilization(
        &self,
        misses_per_cycle: f64,
        mean_hops: f64,
        line_cycles: f64,
        links_per_node: f64,
    ) -> f64 {
        (misses_per_cycle * mean_hops * line_cycles / links_per_node.max(1.0))
            .clamp(0.0, self.max_utilization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_links_add_nothing() {
        let c = Contention::default();
        assert_eq!(c.inflate(100.0, 0.0), 100.0);
    }

    #[test]
    fn inflation_grows_convexly() {
        let c = Contention::default();
        let low = c.inflation(0.2);
        let mid = c.inflation(0.5);
        let high = c.inflation(0.8);
        assert!(mid - low < high - mid, "M/M/1 queueing is convex");
    }

    #[test]
    fn saturates_at_cap_instead_of_diverging() {
        let c = Contention::default();
        assert!(c.inflation(0.99).is_finite());
        assert_eq!(c.inflation(2.0), c.inflation(0.95));
    }

    #[test]
    fn degraded_links_inflate_even_when_idle() {
        let c = Contention::default();
        assert_eq!(c.degraded_inflation(0.0, 1.0), 1.0);
        assert_eq!(c.degraded_inflation(0.0, 0.25), 4.0);
        // Load and degradation compound: worse than either alone.
        let both = c.degraded_inflation(0.3, 0.5);
        assert!(both > c.degraded_inflation(0.0, 0.5));
        assert!(both > c.inflation(0.3));
        // Saturation still applies instead of diverging.
        assert!(c.degraded_inflation(0.9, 0.1).is_finite());
    }

    #[test]
    fn utilization_from_miss_stream() {
        let c = Contention::default();
        // 10 misses per 1000 cycles, 1.7 hops, 4-cycle lines, 4 links.
        let rho = c.utilization(0.01, 1.7, 4.0, 4.0);
        assert!((rho - 0.017).abs() < 1e-12);
    }

    #[test]
    fn offered_utilization_is_not_clamped() {
        let c = Contention::default();
        // An overload the clamped model saturates at 0.95.
        let offered = c.offered_utilization(1.0, 2.0, 4.0, 1.0);
        assert!((offered - 8.0).abs() < 1e-12);
        assert_eq!(c.utilization(1.0, 2.0, 4.0, 1.0), c.max_utilization);
        // Below saturation the two agree.
        assert_eq!(c.offered_utilization(0.01, 1.7, 4.0, 4.0), c.utilization(0.01, 1.7, 4.0, 4.0));
    }
}
