//! 2D torus topology (the Alpha 21364 interconnect).

/// A `width x height` 2D torus of nodes, each connected to four
/// neighbours with wraparound (the 21364's network; Figure 1B of the
/// paper shows a 4x3 instance).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Torus2D {
    width: usize,
    height: usize,
}

impl Torus2D {
    /// Creates a torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "torus dimensions must be nonzero");
        Torus2D { width, height }
    }

    /// A torus shaped for `n` nodes: the most square `w x h` factoring.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn for_nodes(n: usize) -> Self {
        assert!(n > 0, "need at least one node");
        let mut best = (n, 1);
        let mut w = 1;
        while w * w <= n {
            if n.is_multiple_of(w) {
                best = (n / w, w);
            }
            w += 1;
        }
        Torus2D::new(best.0, best.1)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Grid coordinates of a node id (row-major).
    pub fn coords(&self, node: usize) -> (usize, usize) {
        assert!(node < self.nodes(), "node {node} out of range");
        (node % self.width, node / self.width)
    }

    fn ring_distance(a: usize, b: usize, len: usize) -> usize {
        let d = a.abs_diff(b);
        d.min(len - d)
    }

    /// Minimal hop count between two nodes (dimension-ordered routing
    /// with wraparound).
    pub fn hops(&self, from: usize, to: usize) -> usize {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        Self::ring_distance(fx, tx, self.width) + Self::ring_distance(fy, ty, self.height)
    }

    /// Network diameter (worst-case hop count).
    pub fn diameter(&self) -> usize {
        self.width / 2 + self.height / 2
    }

    /// Average hop count from a node to a *different* node chosen
    /// uniformly — the expected routing distance for interleaved homes.
    pub fn mean_hops(&self) -> f64 {
        let n = self.nodes();
        if n == 1 {
            return 0.0;
        }
        let total: usize = (0..n).map(|to| self.hops(0, to)).sum();
        total as f64 / (n - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let t = Torus2D::new(4, 3);
        assert_eq!(t.nodes(), 12);
        assert_eq!(t.coords(0), (0, 0));
        assert_eq!(t.coords(5), (1, 1));
        assert_eq!(t.coords(11), (3, 2));
    }

    #[test]
    fn wraparound_shortens_paths() {
        let t = Torus2D::new(4, 1);
        // 0 -> 3 is one hop backwards around the ring, not three forward.
        assert_eq!(t.hops(0, 3), 1);
        assert_eq!(t.hops(0, 2), 2);
    }

    #[test]
    fn hops_are_symmetric_and_zero_on_self() {
        let t = Torus2D::new(4, 2);
        for a in 0..8 {
            assert_eq!(t.hops(a, a), 0);
            for b in 0..8 {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    fn mean_hops_for_the_paper_machine() {
        // 8 nodes as a 4x2 torus: destinations from node 0 have hop
        // counts 1,2,1 (x-ring) + 1 (y) each shifted: total 12 over 7
        // neighbours.
        let t = Torus2D::new(4, 2);
        assert!((t.mean_hops() - 12.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn for_nodes_prefers_square_shapes() {
        assert_eq!(Torus2D::for_nodes(8), Torus2D::new(4, 2));
        assert_eq!(Torus2D::for_nodes(12), Torus2D::new(4, 3));
        assert_eq!(Torus2D::for_nodes(16), Torus2D::new(4, 4));
        assert_eq!(Torus2D::for_nodes(7), Torus2D::new(7, 1));
    }

    #[test]
    fn diameter_bounds_hops() {
        let t = Torus2D::new(4, 3);
        for a in 0..12 {
            for b in 0..12 {
                assert!(t.hops(a, b) <= t.diameter());
            }
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_rejected() {
        let _ = Torus2D::new(0, 3);
    }
}
