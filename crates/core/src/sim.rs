//! The simulation engine.

use std::sync::Arc;

use csim_cache::Cache;
use csim_check::Sanitizer;
use csim_coherence::{Directory, FillSource, LineState, NodeId, NodeSet};
use csim_config::{LatencyTable, SystemConfig, LINE_SIZE, PAGE_SIZE};
use csim_fault::{FaultInjector, FaultStats, TransactionKind};
use csim_obs::{EpochSnapshot, Event, EventKind, MissClass, Observer};
use csim_proc::{ExecBreakdown, StallClass, Timing, TimingModel};
use csim_prof::Attribution;
use csim_trace::hostprof::{self, Region};
use csim_trace::{MemRef, ReferenceStream, PACKED_ACCESS_SHIFT, PACKED_ADDR_MASK};
use csim_workload::{NodeWorkload, OltpParams, OltpWorkload, SharedOltpState};

use crate::error::{CoherenceViolation, SimError};
use crate::report::{MissBreakdown, RacStats, SimReport};

/// The directory's node-set representation caps the machine size.
const MAX_NODES: usize = 64;

/// One processor core: private L1s, a timing model, and its share of the
/// execution-time breakdown.
#[derive(Debug)]
struct Core {
    l1i: Cache,
    l1d: Cache,
    timing: Timing,
    bd: ExecBreakdown,
    /// The line of the most recent instruction fetch, valid only while it
    /// is still resident at the MRU position of its L1I set (every L1I
    /// mutation either retargets or clears it). Straight-line code fetches
    /// the same line many times in a row, so this memo resolves the common
    /// fetch with one compare instead of a set probe; see
    /// [`Cache::record_repeat_read_hit`] for why the outcome is identical.
    last_ifetch_line: u64,
}

/// `last_ifetch_line` value meaning "no memoized fetch": larger than any
/// line index (addresses are 46-bit, lines 40-bit).
const NO_IFETCH_MEMO: u64 = u64::MAX;

/// Column depth of the batched dispatch: how many packed references are
/// gathered from a stream per [`ReferenceStream::next_burst`] call, so
/// per-burst dispatch overhead (virtual call, buffer bounds checks,
/// stats flushes, loop setup) amortizes across the column. Sized a few
/// multiples above the workload's scheduling bursts — deeper columns
/// also let the repeat-fetch run scanner see whole runs instead of
/// splitting them at column boundaries (measured ~1% end-to-end over a
/// 64-deep column; flat beyond this depth).
const BURST_COLS: usize = 512;

/// Per-node (per-chip) simulation state: the cores, the shared L2/RAC,
/// and miss counters. With `cores_per_node = 1` this is exactly the
/// paper's machine; more cores model the chip multiprocessor its
/// conclusion suggests.
#[derive(Debug)]
struct Node {
    cores: Vec<Core>,
    l2: Cache,
    rac: Option<Cache>,
    misses: MissBreakdown,
    rac_stats: RacStats,
    upgrades: u64,
}

/// The full-system simulator: one cache hierarchy per node, a shared
/// directory, and the latency table of the configuration under test.
///
/// Generic over the reference stream so unit tests can drive it with
/// hand-built traces; experiments use [`Simulation::with_oltp`].
pub struct Simulation<S = NodeWorkload> {
    summary: String,
    latencies: LatencyTable,
    replicate_instructions: bool,
    /// Stream index → (node, core), precomputed so the per-reference loop
    /// in [`Simulation::advance`] avoids a 64-bit div/mod pair per access.
    placement: Vec<(u32, u32)>,
    nodes: Vec<Node>,
    streams: Vec<S>,
    dir: Directory,
    refs_run: u64,
    txn_source: Option<Arc<SharedOltpState>>,
    txn_baseline: u64,
    injector: Option<FaultInjector>,
    observer: Observer,
    /// Cycle attribution (`--prof`), off by default. Like the observer
    /// it is strictly read-only with respect to the simulation: every
    /// latency the observer records is also split into per-component
    /// contributions here, and nothing ever reads the split back into
    /// simulated state — a run with attribution on is bit-identical to
    /// one without.
    attr: Option<Box<Attribution>>,
    sanitizer: Option<Box<Sanitizer>>,
    /// True for single-node machines. In a uniprocessor no remote read
    /// can ever downgrade (clean) an L2 line, so "dirty in the L1" proves
    /// "dirty in the L2" and a store that hits an already-dirty L1 line
    /// skips the ownership walk — see [`Simulation::access`].
    uni: bool,
    /// Batched reference dispatch (the default): streams are drained in
    /// [`BURST_COLS`]-deep packed columns instead of one `MemRef` at a
    /// time. Bit-identical to single-step dispatch by the
    /// [`ReferenceStream::next_burst`] contract;
    /// `tests/batch_identity.rs` proves it differentially. The
    /// single-step path is retained as the oracle.
    batched: bool,
    /// Per-stream gathered columns (`streams.len() * BURST_COLS` packed
    /// words), preallocated so the hot dispatch loop never touches the
    /// heap. Empty (head == len per stream) between `advance` calls.
    batch_cols: Vec<u64>,
    /// One past the last valid word of each stream's column.
    batch_len: Vec<u32>,
    /// Next word of each stream's column to dispatch.
    batch_head: Vec<u32>,
}

impl Simulation<NodeWorkload> {
    /// Builds a simulation of `cfg` running the synthetic OLTP workload.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Params`] when the workload parameters are
    /// invalid and [`SimError::TooManyNodes`] when the configuration
    /// exceeds the directory's machine-size limit.
    pub fn with_oltp(cfg: &SystemConfig, params: OltpParams) -> Result<Self, SimError> {
        let streams = OltpWorkload::build(params, cfg.total_cores())?;
        // A zero-core config can't reach here (try_new rejects it), but
        // the handle lookup stays total regardless.
        let shared = streams.first().map(|s| s.shared_handle());
        let mut sim = Simulation::try_new(cfg, streams)?;
        sim.txn_source = shared;
        Ok(sim)
    }
}

impl<S: ReferenceStream> Simulation<S> {
    /// Builds a simulation of `cfg` fed by the given per-node streams,
    /// reporting invalid combinations as values instead of panicking.
    ///
    /// # Errors
    ///
    /// [`SimError::StreamCountMismatch`] unless `streams.len() ==
    /// cfg.total_cores()`; [`SimError::TooManyNodes`] beyond the
    /// directory's 64-node limit.
    pub fn try_new(cfg: &SystemConfig, streams: Vec<S>) -> Result<Self, SimError> {
        if streams.len() != cfg.total_cores() {
            return Err(SimError::StreamCountMismatch {
                streams: streams.len(),
                cores: cfg.total_cores(),
            });
        }
        if cfg.n_nodes() > MAX_NODES {
            return Err(SimError::TooManyNodes { nodes: cfg.n_nodes(), max: MAX_NODES });
        }
        let nodes = (0..cfg.n_nodes())
            .map(|_| Node {
                cores: (0..cfg.cores_per_node())
                    .map(|_| Core {
                        l1i: Cache::new(cfg.l1i()),
                        l1d: Cache::new(cfg.l1d()),
                        timing: Timing::for_model(cfg.processor()),
                        bd: ExecBreakdown::default(),
                        last_ifetch_line: NO_IFETCH_MEMO,
                    })
                    .collect(),
                l2: Cache::new(cfg.l2().geometry),
                rac: cfg.rac().map(|r| Cache::new(r.geometry)),
                misses: MissBreakdown::default(),
                rac_stats: RacStats::default(),
                upgrades: 0,
            })
            .collect();
        let cores_per_node = cfg.cores_per_node();
        let placement = (0..streams.len())
            .map(|s| ((s / cores_per_node) as u32, (s % cores_per_node) as u32))
            .collect();
        let n_streams = streams.len();
        Ok(Simulation {
            summary: cfg.summary(),
            latencies: cfg.latencies(),
            replicate_instructions: cfg.replicate_instructions(),
            placement,
            nodes,
            streams,
            dir: Directory::new(cfg.n_nodes() as u8, LINE_SIZE, PAGE_SIZE),
            refs_run: 0,
            txn_source: None,
            txn_baseline: 0,
            injector: None,
            observer: Observer::disabled(),
            attr: None,
            sanitizer: None,
            uni: cfg.n_nodes() == 1,
            batched: true,
            batch_cols: vec![0; n_streams * BURST_COLS],
            batch_len: vec![0; n_streams],
            batch_head: vec![0; n_streams],
        })
    }

    /// Selects between batched reference dispatch (the default) and the
    /// single-step oracle path. Both deliver bit-identical reports; the
    /// switch exists so differential tests can drive one against the
    /// other and so regressions can be bisected to the dispatch layer.
    pub fn set_batched_dispatch(&mut self, on: bool) {
        self.batched = on;
    }

    /// Wires a fault injector into the simulation (builder style). An
    /// injector whose plan is [`csim_fault::FaultPlan::none`] never
    /// perturbs the run: the reports are bit-identical to a simulation
    /// without one.
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Wires a fault injector into an existing simulation.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Fault counters accumulated so far, when an injector is wired in.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.injector.as_ref().map(FaultInjector::stats)
    }

    /// Wires an observer into the simulation (builder style). The
    /// observer is strictly read-only with respect to the simulation:
    /// wiring one in — enabled or not — leaves every [`SimReport`]
    /// bit-identical to a run without it.
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Wires an observer into an existing simulation.
    pub fn set_observer(&mut self, observer: Observer) {
        self.observer = observer;
    }

    /// Enables cycle attribution (builder style): every latency charged
    /// from here on is split into per-component contributions (L1
    /// probe, L2 array, directory, NoC hops, MC queue, fault extra) per
    /// miss class. Same contract as the observer: purely read-only, so
    /// reports stay bit-identical to a run without it.
    pub fn with_attribution(mut self) -> Self {
        self.set_attribution(true);
        self
    }

    /// Enables or disables cycle attribution on an existing simulation.
    /// Enabling resets any previous accumulation.
    pub fn set_attribution(&mut self, on: bool) {
        self.attr =
            if on { Some(Box::new(Attribution::new(self.latencies.l2_hit))) } else { None };
    }

    /// The accumulated cycle attribution, when enabled.
    pub fn attribution(&self) -> Option<&Attribution> {
        self.attr.as_deref()
    }

    /// Enables the runtime coherence sanitizer (builder style): every
    /// directory transition is cross-checked against an independent
    /// executable spec of the protocol, on a shadow copy of the
    /// directory. Enable it *before* the first reference runs — the
    /// shadow can only vouch for histories it has seen from reset.
    ///
    /// Zero-overhead contract: with the sanitizer off (the default),
    /// every [`SimReport`] is bit-identical to a build that never heard
    /// of it; on, the simulated machine is unchanged and only host time
    /// is spent.
    pub fn with_sanitizer(mut self) -> Self {
        self.set_sanitize(true);
        self
    }

    /// Enables or disables the sanitizer on an existing simulation.
    /// Turning it on mid-run discards nothing but starts a fresh shadow,
    /// which is only sound at reset; prefer enabling it at construction.
    pub fn set_sanitize(&mut self, on: bool) {
        self.sanitizer = if on { Some(Box::new(Sanitizer::new())) } else { None };
    }

    /// Number of directory transitions the sanitizer has cross-checked,
    /// when it is enabled.
    pub fn sanitizer_checks(&self) -> Option<u64> {
        self.sanitizer.as_deref().map(Sanitizer::checks)
    }

    /// Audits the sanitizer's verdict: the first latched per-transition
    /// divergence if any, then a full shadow-vs-live directory sweep.
    /// `Ok(())` when the sanitizer is disabled.
    ///
    /// # Errors
    ///
    /// [`SimError::Sanitizer`] describing the first divergence.
    pub fn verify_sanitizer(&self) -> Result<(), SimError> {
        match self.sanitizer.as_deref() {
            None => Ok(()),
            Some(sz) => sz.verify_shadow(&self.dir).map_err(SimError::from),
        }
    }

    /// The observer (disabled by default), for reading back what it
    /// recorded.
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// Number of simulated nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Runs `refs_per_node` references per node to populate caches and
    /// directory state, then clears all statistics.
    pub fn warm_up(&mut self, refs_per_node: u64) {
        self.advance(refs_per_node);
        self.reset_stats();
    }

    /// Runs `refs_per_node` references per node (round-robin, one
    /// reference per node per step) and reports what happened.
    pub fn run(&mut self, refs_per_node: u64) -> SimReport {
        self.advance(refs_per_node);
        self.report(refs_per_node)
    }

    /// Strict mode: like [`Simulation::run`], but re-checks the
    /// machine-wide coherence invariants every `check_every` references
    /// per node (and once at the end), so a protocol bug is caught near
    /// the reference that introduced it instead of at the end of a long
    /// run. `check_every` is clamped to at least 1.
    ///
    /// # Errors
    ///
    /// The first [`CoherenceViolation`] found, wrapped in
    /// [`SimError::Coherence`].
    pub fn run_verified(
        &mut self,
        refs_per_node: u64,
        check_every: u64,
    ) -> Result<SimReport, SimError> {
        let every = check_every.max(1);
        let mut remaining = refs_per_node;
        while remaining > 0 {
            let chunk = remaining.min(every);
            self.advance(chunk);
            self.verify_coherence()?;
            self.verify_sanitizer()?;
            remaining -= chunk;
        }
        self.verify_coherence()?;
        self.verify_sanitizer()?;
        Ok(self.report(refs_per_node))
    }

    /// Clears every statistic (breakdowns, miss counts, cache and
    /// directory counters) without touching simulated state.
    pub fn reset_stats(&mut self) {
        for node in &mut self.nodes {
            for core in &mut node.cores {
                core.bd = ExecBreakdown::default();
                core.l1i.reset_stats();
                core.l1d.reset_stats();
            }
            node.misses = MissBreakdown::default();
            node.rac_stats = RacStats::default();
            node.upgrades = 0;
            node.l2.reset_stats();
            if let Some(rac) = &mut node.rac {
                rac.reset_stats();
            }
        }
        self.dir.reset_stats();
        if let Some(inj) = &mut self.injector {
            inj.reset_stats();
        }
        self.observer.reset();
        if let Some(attr) = &mut self.attr {
            **attr = Attribution::new(self.latencies.l2_hit);
        }
        self.refs_run = 0;
        self.txn_baseline =
            self.txn_source.as_ref().map_or(0, |s| s.transactions_completed());
    }

    // analyze: hot
    fn advance(&mut self, refs_per_node: u64) {
        // Publish the host profiler's region once per advance call (one
        // relaxed store, amortized over `refs_per_node` references).
        hostprof::set_region(Region::Advance);
        if !self.batched {
            self.advance_single_step(refs_per_node);
        } else if self.streams.len() == 1 {
            self.advance_batched_single(refs_per_node);
        } else {
            self.advance_batched_multi(refs_per_node);
        }
        hostprof::set_region(Region::Idle);
    }

    /// Single-step dispatch: one `next_ref` virtual call per reference.
    /// Retained as the oracle the batched paths are differentially
    /// tested against ([`Simulation::set_batched_dispatch`]).
    // analyze: hot
    // analyze: total — placement and streams have one entry per core: try_new checks streams.len() against the config's core total and placement is built from the same enumeration
    fn advance_single_step(&mut self, refs_per_node: u64) {
        // The epoch check is hoisted into two loop bodies so the common
        // no-epochs configuration never tests it per round.
        match self.observer.epoch_len() {
            None => {
                for _ in 0..refs_per_node {
                    for s in 0..self.streams.len() {
                        let r = self.streams[s].next_ref();
                        let (n, c) = self.placement[s];
                        self.access(n as usize, c as usize, r);
                    }
                    // `refs_run` doubles as the fault model's logical
                    // clock, so it advances per round, not per batch.
                    self.refs_run += 1;
                }
            }
            Some(e) => {
                for _ in 0..refs_per_node {
                    for s in 0..self.streams.len() {
                        let r = self.streams[s].next_ref();
                        let (n, c) = self.placement[s];
                        self.access(n as usize, c as usize, r);
                    }
                    self.refs_run += 1;
                    if self.refs_run.is_multiple_of(e) {
                        self.close_epoch();
                    }
                }
            }
        }
    }

    /// Batched dispatch for the one-stream machine: drains the stream in
    /// [`BURST_COLS`]-deep packed columns on a stack buffer, so the
    /// per-reference cost is one slice copy and one [`dispatch_word`]
    /// call instead of a virtual `next_ref` plus struct moves.
    ///
    /// [`dispatch_word`]: Simulation::dispatch_word
    // analyze: hot
    // analyze: total — the single-stream fast path: try_new rejects zero-core configs so streams[0]/placement[0] exist, and next_burst returns got <= col.len() by its trait contract
    fn advance_batched_single(&mut self, refs_per_node: u64) {
        let (n, c) = self.placement[0];
        let (n, c) = (n as usize, c as usize);
        let mut col = [0u64; BURST_COLS];
        let mut remaining = refs_per_node;
        // `refs_run` may be flushed once per burst exactly when nothing
        // observes it mid-burst: it is read between references only by
        // the epoch close, the fault injector's logical clock and event
        // timestamps. With all three off, deferring the increment is
        // invisible.
        if self.observer.epoch_len().is_none()
            && self.injector.is_none()
            && !self.observer.wants_events()
        {
            while remaining > 0 {
                let want = remaining.min(BURST_COLS as u64) as usize;
                let got = self.streams[0].next_burst(&mut col[..want]);
                let mut i = 0;
                while i < got {
                    let word = col[i];
                    // Straight-line code fetches back-to-back words of
                    // one line; `word >> 6` (line, access kind and mode
                    // together) being equal proves the whole run would
                    // take `dispatch_word`'s repeat-fetch lane, so the
                    // run retires as one batched call. Exactness of the
                    // batch is the documented contract of
                    // `retire_instructions` / `record_repeat_read_hits`.
                    if word >> PACKED_ACCESS_SHIFT & 0x3 == 0 {
                        let line = (word & PACKED_ADDR_MASK) / LINE_SIZE;
                        if line == self.nodes[n].cores[c].last_ifetch_line {
                            let key = word >> 6;
                            let mut k = 1;
                            while i + k < got && col[i + k] >> 6 == key {
                                k += 1;
                            }
                            self.retire_ifetch_run(n, c, k as u64);
                            i += k;
                            continue;
                        }
                    }
                    self.access_packed(n, c, word);
                    i += 1;
                }
                self.refs_run += got as u64;
                remaining -= got as u64;
            }
        } else {
            let epoch = self.observer.epoch_len();
            while remaining > 0 {
                let want = remaining.min(BURST_COLS as u64) as usize;
                let got = self.streams[0].next_burst(&mut col[..want]);
                for &word in &col[..got] {
                    self.dispatch_word(n, c, word);
                    self.refs_run += 1;
                    if let Some(e) = epoch {
                        if self.refs_run.is_multiple_of(e) {
                            self.close_epoch();
                        }
                    }
                }
                remaining -= got as u64;
            }
        }
    }

    /// Batched dispatch for multi-stream machines. Rounds stay strictly
    /// interleaved (stream 0, 1, ... per round, exactly as single-step
    /// dispatch orders them) but each stream's references are gathered a
    /// column at a time into the preallocated `batch_cols` scratch, so
    /// the virtual-call and buffer-management cost amortizes over the
    /// column depth.
    // analyze: hot
    // analyze: total — cols holds streams.len()*BURST_COLS words with one window per stream, and next_burst keeps got <= BURST_COLS by its trait contract
    fn advance_batched_multi(&mut self, refs_per_node: u64) {
        let epoch = self.observer.epoch_len();
        for r in 0..refs_per_node {
            // Refills are capped at the references left in this call so
            // every gathered word is consumed before returning — the
            // scratch holds no state between `advance` calls.
            let cap = (refs_per_node - r).min(BURST_COLS as u64) as usize;
            for s in 0..self.streams.len() {
                if self.batch_head[s] == self.batch_len[s] {
                    let base = s * BURST_COLS;
                    let got = self.streams[s].next_burst(&mut self.batch_cols[base..base + cap]);
                    self.batch_len[s] = got as u32;
                    self.batch_head[s] = 0;
                }
                let word = self.batch_cols[s * BURST_COLS + self.batch_head[s] as usize];
                self.batch_head[s] += 1;
                let (n, c) = self.placement[s];
                self.dispatch_word(n as usize, c as usize, word);
            }
            // `refs_run` doubles as the fault model's logical clock, so
            // it advances per round, not per batch.
            self.refs_run += 1;
            if let Some(e) = epoch {
                if self.refs_run.is_multiple_of(e) {
                    self.close_epoch();
                }
            }
        }
    }

    /// Dispatches one packed reference word into the hierarchy. The
    /// repeat-ifetch fast lane resolves straight-line refetches of the
    /// memoized line (the dominant reference class) on the packed word
    /// alone — no unpack, no `MemRef` construction — mirroring the memo
    /// check at the top of [`Simulation::access_line`].
    // analyze: cold — per-reference entry into the float-CPI timing model (retire_instruction); same boundary, for the same documented reason, as `access`
    #[inline]
    fn dispatch_word(&mut self, n: usize, c: usize, word: u64) {
        if word >> PACKED_ACCESS_SHIFT & 0x3 == 0 {
            let line = (word & PACKED_ADDR_MASK) / LINE_SIZE;
            // analyze: total — node and core ids come from placement entries validated against the node grid in try_new
            let core = &mut self.nodes[n].cores[c];
            if line == core.last_ifetch_line {
                core.timing.retire_instruction(&mut core.bd);
                core.l1i.record_repeat_read_hit();
                return;
            }
        }
        self.access_packed(n, c, word);
    }

    /// Hands the observer a cumulative snapshot of the machine-wide
    /// counters at an epoch boundary. O(nodes x cores): cheap relative
    /// to the epoch of work it closes.
    // analyze: cold — epoch-boundary bookkeeping: snapshots machine-wide counters once per epoch (thousands of references), never per reference
    fn close_epoch(&mut self) {
        let mut breakdown = ExecBreakdown::default();
        let mut misses = 0;
        let mut upgrades = 0;
        for node in &self.nodes {
            for core in &node.cores {
                breakdown.merge(&core.bd);
            }
            misses += node.misses.total();
            upgrades += node.upgrades;
        }
        self.observer.close_epoch(EpochSnapshot {
            refs_per_node: self.refs_run,
            breakdown,
            misses,
            upgrades,
            nacks: self.dir.stats().nacks,
            faults: self.injector.as_ref().map(|i| *i.stats()).unwrap_or_default(),
            retry_rho: self.injector.as_ref().map_or(0.0, FaultInjector::retry_utilization),
        });
    }

    fn report(&self, refs_per_node: u64) -> SimReport {
        let mut breakdown = ExecBreakdown::default();
        let mut misses = MissBreakdown::default();
        let mut rac = RacStats::default();
        let mut upgrades = 0;
        let mut l1i = csim_cache::CacheStats::default();
        let mut l1d = csim_cache::CacheStats::default();
        let mut per_node = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let mut node_bd = ExecBreakdown::default();
            for core in &node.cores {
                node_bd.merge(&core.bd);
                l1i.merge(core.l1i.stats());
                l1d.merge(core.l1d.stats());
            }
            per_node.push(node_bd);
            breakdown.merge(&node_bd);
            misses.merge(&node.misses);
            rac.merge(&node.rac_stats);
            upgrades += node.upgrades;
        }
        let transactions = self
            .txn_source
            .as_ref()
            .map_or(0, |s| s.transactions_completed() - self.txn_baseline);
        SimReport {
            config_summary: self.summary.clone(),
            breakdown,
            per_node,
            misses,
            directory: *self.dir.stats(),
            l1i,
            l1d,
            rac,
            upgrades,
            transactions,
            refs_per_node,
            faults: self.injector.as_ref().map(|i| *i.stats()).unwrap_or_default(),
        }
    }

    // ---- the per-reference pipeline --------------------------------------

    /// Charges one directory/memory transaction to a core, routing the
    /// fault-free latency through the fault injector (NACK/retry, link
    /// degradation, memory-controller busy periods) when one is wired
    /// in. Pure L2 hits never come through here — they involve neither
    /// the directory nor a memory controller.
    fn charge(&mut self, n: usize, c: usize, class: StallClass, base: u64, obs: MissClass, line: u64) {
        let (latency, faults) = match &mut self.injector {
            None => (base, None),
            Some(inj) => {
                let kind = match class {
                    StallClass::L2Hit | StallClass::Local => TransactionKind::LocalMemory,
                    StallClass::RemoteClean => TransactionKind::RemoteClean,
                    StallClass::RemoteDirty => TransactionKind::RemoteDirty,
                };
                let before = *inj.stats();
                let latency = inj.transaction_latency(self.refs_run, kind, base);
                (latency, Some(inj.stats().delta(&before)))
            }
        };
        if let Some(d) = &faults {
            if d.nacks > 0 {
                // NACK outcomes are protocol events: surface them in
                // the directory counters alongside the rest.
                self.dir.record_nacks(d.nacks);
            }
            self.note_fault_outcomes(n, c, line, d);
        }
        self.observer.record_latency(obs, latency);
        if let Some(attr) = &mut self.attr {
            attr.record(obs, class, base, latency);
        }
        if self.observer.wants_events() {
            self.observer.record_event(Event {
                at: self.refs_run,
                node: n as u16,
                core: c as u16,
                line,
                kind: EventKind::Miss { class: obs, latency },
            });
        }
        // analyze: total — node and core ids come from placement entries validated against the node grid in try_new
        let core = &mut self.nodes[n].cores[c];
        core.timing.stall(class, latency, &mut core.bd);
    }

    /// Surfaces what the fault injector did to one transaction in the
    /// observer: the NACK/retry extra cycles feed the
    /// [`MissClass::NackRetry`] histogram, and each outcome becomes a
    /// traced event.
    fn note_fault_outcomes(&mut self, n: usize, c: usize, line: u64, d: &FaultStats) {
        if d.nacks == 0 && d.watchdog_trips == 0 {
            return;
        }
        if d.nacks > 0 {
            self.observer.record_latency(MissClass::NackRetry, d.retry_cycles);
            if let Some(attr) = &mut self.attr {
                attr.record_nack(d.retry_cycles);
            }
        }
        if !self.observer.wants_events() {
            return;
        }
        let (at, node, core) = (self.refs_run, n as u16, c as u16);
        if d.nacks > 0 {
            self.observer.record_event(Event {
                at,
                node,
                core,
                line,
                kind: EventKind::Nack { count: d.nacks as u32 },
            });
        }
        if d.retries > 0 {
            self.observer.record_event(Event {
                at,
                node,
                core,
                line,
                kind: EventKind::Retry { count: d.retries as u32 },
            });
        }
        if d.watchdog_trips > 0 {
            self.observer.record_event(Event { at, node, core, line, kind: EventKind::Watchdog });
        }
    }

    /// A dirty line leaves node `n` for its home: directory writeback,
    /// the fault model's NACK dice for the fire-and-forget message
    /// (NACKs surface in the directory counters), and a traced
    /// writeback event.
    fn writeback(&mut self, n: usize, line: u64) {
        let wb = self.dir.writeback(line, n as NodeId);
        debug_assert!(wb.is_ok(), "simulator issued an illegal writeback: {wb:?}");
        if let Some(sz) = self.sanitizer.as_deref_mut() {
            sz.on_writeback(&self.dir, line, n as NodeId, wb);
        }
        if let Some(inj) = &mut self.injector {
            let nacks_before = inj.stats().nacks;
            inj.writeback();
            let nacked = inj.stats().nacks - nacks_before;
            if nacked > 0 {
                self.dir.record_nacks(nacked);
                if self.observer.wants_events() {
                    self.observer.record_event(Event {
                        at: self.refs_run,
                        node: n as u16,
                        core: 0,
                        line,
                        kind: EventKind::Nack { count: nacked as u32 },
                    });
                }
            }
        }
        if self.observer.wants_events() {
            self.observer.record_event(Event {
                at: self.refs_run,
                node: n as u16,
                core: 0,
                line,
                kind: EventKind::Writeback,
            });
        }
    }

    /// [`Simulation::access_line`] for a `MemRef` (the single-step oracle
    /// path's currency).
    // analyze: cold — the per-reference timing model is float CPI arithmetic by design (the paper's analytical overlap model); reproducibility is guarded by the bit-identity tests, not by integer-only arithmetic
    #[inline]
    fn access(&mut self, n: usize, c: usize, r: MemRef) {
        let line = r.line_addr(LINE_SIZE);
        let is_ifetch = r.access.is_instruction();
        let write = r.access.is_write();
        self.access_line(n, c, line, is_ifetch, write);
    }

    /// [`Simulation::access_line`] for a packed word (the batched path's
    /// currency): the access class reads straight out of the word's high
    /// bits, skipping the `MemRef` enum round-trip the hierarchy never
    /// looks at.
    // analyze: cold — same per-reference timing boundary as `access`
    #[inline]
    fn access_packed(&mut self, n: usize, c: usize, word: u64) {
        let line = (word & PACKED_ADDR_MASK) / LINE_SIZE;
        let class = word >> PACKED_ACCESS_SHIFT & 0x3;
        self.access_line(n, c, line, class == 0, class == 2);
    }

    /// Retires a detected run of `k` back-to-back repeat fetches of the
    /// memoized instruction line: one batched timing call and one batched
    /// L1I hit-counter bump, bit-identical to `k` trips through
    /// `dispatch_word`'s repeat-fetch lane (the documented contracts of
    /// [`TimingModel::retire_instructions`] and
    /// [`Cache::record_repeat_read_hits`](csim_cache::Cache)).
    // analyze: cold — same per-reference timing boundary as `access`; the closed-form retire's float exactness is proven at `InOrderTiming::retire_instructions`
    #[inline]
    fn retire_ifetch_run(&mut self, n: usize, c: usize, k: u64) {
        // analyze: total — node and core ids come from placement entries validated against the node grid in try_new
        let core = &mut self.nodes[n].cores[c];
        // analyze: exact — the batched retire feeds the closed form an integer run length
        core.timing.retire_instructions(k, &mut core.bd);
        core.l1i.record_repeat_read_hits(k);
    }

    /// Runs one reference (already reduced to its line, fetch kind and
    /// write-ness — everything the hierarchy observes) through the
    /// memory system. Split for inlining: this front half — the retire,
    /// the fetch memo and the L1 probe, which together resolve the vast
    /// majority of references — inlines into the dispatch loops, while
    /// everything past the L1 (ownership walks, the L2 and the miss
    /// machinery) stays behind the [`Simulation::access_below_l1`] call
    /// so the loop body keeps only the code that usually runs.
    // analyze: cold — the per-reference timing model is float CPI arithmetic by design (the paper's analytical overlap model); reproducibility is guarded by the bit-identity tests, not by integer-only arithmetic
    fn access_line(&mut self, n: usize, c: usize, line: u64, is_ifetch: bool, write: bool) {
        // Retire + L1 probe share one bounds-checked core borrow: this
        // runs once per reference, so the double index was measurable.
        let (l1_hit, owned) = {
            // analyze: total — node and core ids come from placement entries validated against the node grid in try_new
            let core = &mut self.nodes[n].cores[c];
            if is_ifetch {
                core.timing.retire_instruction(&mut core.bd);
                // Consecutive fetches of one line resolve on the memo;
                // see the `last_ifetch_line` field docs.
                if line == core.last_ifetch_line {
                    core.l1i.record_repeat_read_hit();
                    return;
                }
            }
            let l1 = if is_ifetch { &mut core.l1i } else { &mut core.l1d };
            // Uniprocessor stores that hit an already-dirty L1 line need
            // no ownership walk: nothing in a single-node machine ever
            // cleans an L2 line (downgrades require a remote reader), so
            // L1-dirty proves L2-dirty and `ensure_ownership` would
            // return immediately — at the price of a probe into the much
            // larger L2 slot array. The dirty-before read is fused into
            // the store's own probe so the set is walked once.
            if write && self.uni {
                let (outcome, owned) = l1.access_store_was_dirty(line);
                (outcome.is_hit(), owned)
            } else {
                let hit = l1.access(line, write).is_hit();
                if is_ifetch && hit {
                    core.last_ifetch_line = line;
                }
                (hit, false)
            }
        };
        if l1_hit && (!write || owned) {
            return;
        }
        self.access_below_l1(n, c, line, is_ifetch, write, l1_hit);
    }

    /// The slow back half of [`Simulation::access_line`]: an L1 write
    /// hit still needing the ownership walk, or an L1 miss heading into
    /// the L2 and the coherence machinery.
    // analyze: cold — the per-reference timing model is float CPI arithmetic by design (the paper's analytical overlap model); reproducibility is guarded by the bit-identity tests, not by integer-only arithmetic
    // analyze: total — node ids are validated placement entries (try_new) or directory-reported homes/owners/sharers, which the directory reduces modulo the node count
    fn access_below_l1(
        &mut self,
        n: usize,
        c: usize,
        line: u64,
        is_ifetch: bool,
        write: bool,
        l1_hit: bool,
    ) {
        if l1_hit {
            self.ensure_ownership(n, c, line);
            return;
        }

        // L2 (presence/recency only; dirtiness is managed by the
        // coherence flow below).
        let l2_hit = self.nodes[n].l2.access(line, false).is_hit();
        if l2_hit {
            if write {
                self.ensure_ownership(n, c, line);
            }
            let latency = self.latencies.l2_hit;
            self.observer.record_latency(MissClass::L2Hit, latency);
            if let Some(attr) = &mut self.attr {
                attr.record(MissClass::L2Hit, StallClass::L2Hit, latency, latency);
            }
            if self.observer.wants_events() {
                self.observer.record_event(Event {
                    at: self.refs_run,
                    node: n as u16,
                    core: c as u16,
                    line,
                    kind: EventKind::Miss { class: MissClass::L2Hit, latency },
                });
            }
            let core = &mut self.nodes[n].cores[c];
            core.timing.stall(StallClass::L2Hit, latency, &mut core.bd);
            let l1 = if is_ifetch { &mut core.l1i } else { &mut core.l1d };
            let _ = l1.insert(line, write);
            if is_ifetch {
                core.last_ifetch_line = line;
            }
            return;
        }

        self.l2_miss(n, c, line, is_ifetch, write);
    }

    /// A store touched a line the node caches: if the L2 copy is not
    /// modified, obtain ownership (invalidate other sharers).
    ///
    /// Cost model: a purely local ownership update (home here, nobody to
    /// invalidate) is free; otherwise the store stalls for a local or
    /// 2-hop directory transaction. Upgrades are counted separately from
    /// L2 misses, as in the paper.
    // analyze: total — node ids are validated placement entries (try_new) or directory-reported homes/owners/sharers, which the directory reduces modulo the node count
    fn ensure_ownership(&mut self, n: usize, c: usize, line: u64) {
        if self.nodes[n].l2.is_dirty(line) {
            return;
        }
        let out = self.dir.write_miss(line, n as NodeId);
        debug_assert!(
            out.previous_owner.is_none(),
            "a cached line cannot be modified elsewhere (line {line:#x})"
        );
        if let Some(sz) = self.sanitizer.as_deref_mut() {
            sz.on_write_miss(&self.dir, line, n as NodeId, &out);
        }
        self.invalidate_nodes(n, out.invalidate, line);
        let node = &mut self.nodes[n];
        node.l2.mark_dirty(line);
        node.upgrades += 1;
        let local = out.home == n as NodeId;
        if local && out.invalidate.is_empty() {
            // Purely local ownership update: free, so it is invisible to
            // the latency observer too (no MissClass::Upgrade record).
            return;
        }
        let (class, latency) = if local {
            (StallClass::Local, self.latencies.local)
        } else {
            (StallClass::RemoteClean, self.latencies.remote_clean)
        };
        self.charge(n, c, class, latency, MissClass::Upgrade, line);
    }

    // analyze: total — node ids are validated placement entries (try_new) or directory-reported homes/owners/sharers, which the directory reduces modulo the node count
    fn l2_miss(&mut self, n: usize, c: usize, line: u64, is_ifetch: bool, write: bool) {
        // OS-replicated instruction pages: every node has a private local
        // copy; no coherence involvement, so only the local memory
        // controller (never the directory) can slow the fetch down.
        if is_ifetch && self.replicate_instructions {
            let mut latency = self.latencies.local;
            if let Some(inj) = &mut self.injector {
                latency += inj.memory_fetch_extra(self.refs_run);
            }
            self.observer.record_latency(MissClass::Local, latency);
            if let Some(attr) = &mut self.attr {
                // Anything the injector added beyond the fault-free
                // local latency is attributed as fault extra.
                attr.record(MissClass::Local, StallClass::Local, self.latencies.local, latency);
            }
            if self.observer.wants_events() {
                self.observer.record_event(Event {
                    at: self.refs_run,
                    node: n as u16,
                    core: c as u16,
                    line,
                    kind: EventKind::Miss { class: MissClass::Local, latency },
                });
            }
            let node = &mut self.nodes[n];
            let core = &mut node.cores[c];
            core.timing.stall(StallClass::Local, latency, &mut core.bd);
            node.misses.instr_local += 1;
            self.fill(n, c, line, false, is_ifetch, write);
            return;
        }

        let home = self.dir.home(line);
        let remote_home = home != n as NodeId;

        // Remote access cache: probed for remote lines after an L2 miss.
        if remote_home {
            if let Some(rac) = self.nodes[n].rac.as_mut() {
                if rac.access(line, false).is_hit() {
                    self.rac_hit(n, c, line, is_ifetch, write);
                    return;
                }
                self.nodes[n].rac_stats.misses += 1;
            }
        }

        // Directory transaction.
        let (source, cold, downgraded, invalidate, previous_owner) = if write {
            let out = self.dir.write_miss(line, n as NodeId);
            if let Some(sz) = self.sanitizer.as_deref_mut() {
                sz.on_write_miss(&self.dir, line, n as NodeId, &out);
            }
            (out.source, out.cold, None, out.invalidate, out.previous_owner)
        } else {
            let out = self.dir.read_miss(line, n as NodeId);
            if let Some(sz) = self.sanitizer.as_deref_mut() {
                sz.on_read_miss(&self.dir, line, n as NodeId, &out);
            }
            (out.source, out.cold, out.downgraded_owner, NodeSet::empty(), None)
        };

        // Remote-side actions.
        if let Some(owner) = downgraded {
            self.downgrade_owner(owner, line, source);
        }
        if let Some(owner) = previous_owner {
            self.invalidate_all_at(owner as usize, line);
        }
        self.invalidate_nodes(n, invalidate, line);

        // Classify, charge, count.
        let (class, latency) = match source {
            FillSource::OwnerCache { in_rac, .. } => (
                StallClass::RemoteDirty,
                if in_rac { self.latencies.remote_dirty_in_rac } else { self.latencies.remote_dirty },
            ),
            FillSource::Home => {
                if remote_home {
                    (StallClass::RemoteClean, self.latencies.remote_clean)
                } else {
                    (StallClass::Local, self.latencies.local)
                }
            }
        };
        self.charge(n, c, class, latency, MissClass::from_stall(class), line);
        {
            let node = &mut self.nodes[n];
            match (is_ifetch, class) {
                (true, StallClass::Local) => node.misses.instr_local += 1,
                (true, _) => node.misses.instr_remote += 1,
                (false, StallClass::Local) => node.misses.data_local += 1,
                (false, StallClass::RemoteClean) => node.misses.data_remote_clean += 1,
                (false, _) => node.misses.data_remote_dirty += 1,
            }
            if cold {
                node.misses.cold += 1;
            }
        }

        self.fill(n, c, line, write, is_ifetch, write);

        // Fill-on-fetch into the RAC for remote lines (clean copy; a later
        // dirty L2 eviction refreshes it).
        if remote_home && self.nodes[n].rac.is_some() && !write {
            self.rac_fill(n, line);
        }
    }

    /// Service an L2 miss from the node's own RAC (data lives in local
    /// memory: local-latency, counted as a local miss).
    // analyze: total — node ids are validated placement entries (try_new) or directory-reported homes/owners/sharers, which the directory reduces modulo the node count
    fn rac_hit(&mut self, n: usize, c: usize, line: u64, is_ifetch: bool, write: bool) {
        let parked_dirty = matches!(
            self.dir.state(line),
            LineState::Modified { owner, in_rac: true } if owner == n as NodeId
        );
        {
            let node = &mut self.nodes[n];
            node.rac_stats.hits += 1;
            if is_ifetch {
                node.misses.instr_local += 1;
            } else {
                node.misses.data_local += 1;
            }
        }
        if parked_dirty {
            // Our own modified line comes back from the RAC into the L2.
            let refetched = self.dir.owner_refetched_from_rac(line, n as NodeId);
            debug_assert!(refetched.is_ok(), "illegal RAC refetch: {refetched:?}");
            if let Some(sz) = self.sanitizer.as_deref_mut() {
                sz.on_rac_refetch(&self.dir, line, n as NodeId, refetched);
            }
            if let Some(rac) = self.nodes[n].rac.as_mut() {
                rac.invalidate(line);
            }
            self.charge(n, c, StallClass::Local, self.latencies.rac_hit, MissClass::Local, line);
            self.fill(n, c, line, true, is_ifetch, write);
            return;
        }
        if write {
            // Clean RAC copy but the store needs ownership: 2-hop upgrade
            // at the (remote) home, data supplied locally by the RAC.
            let out = self.dir.write_miss(line, n as NodeId);
            debug_assert!(out.previous_owner.is_none(), "valid RAC copy excludes a remote owner");
            if let Some(sz) = self.sanitizer.as_deref_mut() {
                sz.on_write_miss(&self.dir, line, n as NodeId, &out);
            }
            self.invalidate_nodes(n, out.invalidate, line);
            self.nodes[n].upgrades += 1;
            let latency = self.latencies.remote_clean;
            self.charge(n, c, StallClass::RemoteClean, latency, MissClass::Upgrade, line);
            self.fill(n, c, line, true, is_ifetch, write);
            return;
        }
        self.charge(n, c, StallClass::Local, self.latencies.rac_hit, MissClass::Local, line);
        self.fill(n, c, line, false, is_ifetch, write);
    }

    /// Install a line into the L2 (and requesting L1), handling the L2
    /// victim: inclusion invalidations, dirty writeback or RAC parking.
    // analyze: total — node ids are validated placement entries (try_new) or directory-reported homes/owners/sharers, which the directory reduces modulo the node count
    fn fill(&mut self, n: usize, c: usize, line: u64, dirty: bool, is_ifetch: bool, write: bool) {
        let victim = self.nodes[n].l2.insert(line, dirty);
        if let Some(v) = victim {
            for core in &mut self.nodes[n].cores {
                core.l1i.invalidate(v.line);
                core.l1d.invalidate(v.line);
                if core.last_ifetch_line == v.line {
                    core.last_ifetch_line = NO_IFETCH_MEMO;
                }
            }
            if v.dirty {
                let victim_home = self.dir.home(v.line);
                let parkable = victim_home != n as NodeId;
                match self.nodes[n].rac.as_mut() {
                    Some(rac) if parkable => {
                        // Park the dirty victim in the RAC; a full RAC set
                        // first writes back its own dirty victim.
                        let displaced = if rac.mark_dirty(v.line) {
                            None
                        } else {
                            rac.insert(v.line, true)
                        };
                        let parked = self.dir.owner_moved_to_rac(v.line, n as NodeId);
                        debug_assert!(parked.is_ok(), "illegal RAC park: {parked:?}");
                        if let Some(sz) = self.sanitizer.as_deref_mut() {
                            sz.on_rac_park(&self.dir, v.line, n as NodeId, parked);
                        }
                        if let Some(rv) = displaced {
                            if rv.dirty {
                                self.writeback(n, rv.line);
                            }
                        }
                    }
                    _ => self.writeback(n, v.line),
                }
            }
        }
        let core = &mut self.nodes[n].cores[c];
        let l1 = if is_ifetch { &mut core.l1i } else { &mut core.l1d };
        let _ = l1.insert(line, write);
        if is_ifetch {
            core.last_ifetch_line = line;
        }
    }

    /// Install a clean copy of a freshly fetched remote line into the RAC.
    fn rac_fill(&mut self, n: usize, line: u64) {
        // analyze: total — node ids are validated placement entries (try_new) or directory-reported homes/owners/sharers, which the directory reduces modulo the node count
        let Some(rac) = self.nodes[n].rac.as_mut() else { return };
        if rac.contains(line) {
            return;
        }
        if let Some(rv) = rac.insert(line, false) {
            if rv.dirty {
                self.writeback(n, rv.line);
            }
        }
    }

    /// A remote read found this node's dirty copy: downgrade M -> S (the
    /// protocol writes the data back to the home as part of the 3-hop
    /// transaction).
    fn downgrade_owner(&mut self, owner: NodeId, line: u64, source: FillSource) {
        let in_rac = matches!(source, FillSource::OwnerCache { in_rac: true, .. });
        // analyze: total — node ids are validated placement entries (try_new) or directory-reported homes/owners/sharers, which the directory reduces modulo the node count
        let node = &mut self.nodes[owner as usize];
        if in_rac {
            let cleaned = node.rac.as_mut().map(|r| r.clean(line)).unwrap_or(false);
            debug_assert!(cleaned, "directory said the owner's copy is in its RAC");
        } else {
            let cleaned = node.l2.clean(line);
            debug_assert!(cleaned, "directory said the owner's copy is in its L2");
        }
        if self.observer.wants_events() {
            self.observer.record_event(Event {
                at: self.refs_run,
                node: owner as u16,
                core: 0,
                line,
                kind: EventKind::Downgrade,
            });
        }
    }

    /// Checks the coherence invariants of the whole machine, returning
    /// the first violation found as a typed [`CoherenceViolation`]. Used
    /// by property tests and strict mode ([`Simulation::run_verified`]);
    /// O(total cache capacity + directory size).
    ///
    /// Invariants:
    /// 1. `Modified{owner, in_rac: false}` ⇒ the owner's L2 holds the
    ///    line dirty.
    /// 2. `Modified{owner, in_rac: true}` ⇒ the owner's RAC holds the
    ///    line dirty.
    /// 3. A line not `Modified` is dirty in no L2 and no RAC.
    /// 4. L1 contents are a subset of the L2 (inclusion).
    ///
    /// # Errors
    ///
    /// The first violated invariant, with the line and location.
    // analyze: total — node ids are validated placement entries (try_new) or directory-reported homes/owners/sharers, which the directory reduces modulo the node count
    pub fn verify_coherence(&self) -> Result<(), CoherenceViolation> {
        for (line, state) in self.dir.iter() {
            match state {
                LineState::Modified { owner, in_rac: false } => {
                    if !self.nodes[owner as usize].l2.is_dirty(line) {
                        return Err(CoherenceViolation::NotDirtyInOwnerL2 { line, owner });
                    }
                }
                LineState::Modified { owner, in_rac: true } => {
                    let ok = self.nodes[owner as usize]
                        .rac
                        .as_ref()
                        .map(|r| r.is_dirty(line))
                        .unwrap_or(false);
                    if !ok {
                        return Err(CoherenceViolation::NotDirtyInOwnerRac { line, owner });
                    }
                }
                LineState::Shared(_) | LineState::Uncached => {
                    for (n, node) in self.nodes.iter().enumerate() {
                        if node.l2.is_dirty(line) {
                            return Err(CoherenceViolation::DirtyWithoutOwnership {
                                line,
                                node: n,
                                structure: "L2",
                            });
                        }
                        if node.rac.as_ref().map(|r| r.is_dirty(line)).unwrap_or(false) {
                            return Err(CoherenceViolation::DirtyWithoutOwnership {
                                line,
                                node: n,
                                structure: "RAC",
                            });
                        }
                    }
                }
            }
        }
        for (n, node) in self.nodes.iter().enumerate() {
            for core in &node.cores {
                for line in core.l1i.resident_lines().chain(core.l1d.resident_lines()) {
                    if !node.l2.contains(line) {
                        return Err(CoherenceViolation::InclusionViolated { line, node: n });
                    }
                }
            }
        }
        Ok(())
    }

    /// Invalidates `line` at every node in `set` on behalf of writer
    /// `requester`, tracing one invalidation event covering the batch.
    fn invalidate_nodes(&mut self, requester: usize, set: NodeSet, line: u64) {
        for m in set {
            self.invalidate_all_at(m as usize, line);
        }
        if !set.is_empty() && self.observer.wants_events() {
            self.observer.record_event(Event {
                at: self.refs_run,
                node: requester as u16,
                core: 0,
                line,
                kind: EventKind::Invalidation { targets: set.len() },
            });
        }
    }

    fn invalidate_all_at(&mut self, m: usize, line: u64) {
        // analyze: total — node ids are validated placement entries (try_new) or directory-reported homes/owners/sharers, which the directory reduces modulo the node count
        let node = &mut self.nodes[m];
        for core in &mut node.cores {
            core.l1i.invalidate(line);
            core.l1d.invalidate(line);
            if core.last_ifetch_line == line {
                core.last_ifetch_line = NO_IFETCH_MEMO;
            }
        }
        node.l2.invalidate(line);
        if let Some(rac) = &mut node.rac {
            rac.invalidate(line);
        }
    }
}

impl<S> std::fmt::Debug for Simulation<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("summary", &self.summary)
            .field("nodes", &self.nodes.len())
            .field("refs_run", &self.refs_run)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csim_config::{CacheGeometry, IntegrationLevel, RacConfig, SystemConfig};
    use csim_trace::{ExecMode, MemRef, SliceStream};

    const LPP: u64 = PAGE_SIZE / LINE_SIZE; // lines per page = 128

    /// Test shorthand for the fallible constructor: every fixture here
    /// pairs a config with a matching stream count.
    fn sim_new<S: ReferenceStream>(cfg: &SystemConfig, streams: Vec<S>) -> Simulation<S> {
        Simulation::try_new(cfg, streams).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Byte address of a line homed at `home` (given `n` nodes) with a
    /// distinguishing index `i`.
    fn addr_homed(home: u64, i: u64, n_nodes: u64) -> u64 {
        ((i * n_nodes + home) * LPP) * LINE_SIZE
    }

    fn tiny_cfg(n: usize) -> SystemConfig {
        // Small caches so tests can force evictions: 1 KB 1-way L1s,
        // 8 KB 2-way off-chip L2.
        let l1 = CacheGeometry::new(1024, 1, 64).unwrap();
        let mut b = SystemConfig::builder();
        b.nodes(n).l1(l1).l2_off_chip(8192, 2);
        b.build().unwrap()
    }

    fn load(a: u64) -> MemRef {
        MemRef::load(a, ExecMode::User)
    }
    fn store(a: u64) -> MemRef {
        MemRef::store(a, ExecMode::User)
    }
    fn ifetch(a: u64) -> MemRef {
        MemRef::ifetch(a, ExecMode::User)
    }

    #[test]
    fn uniprocessor_load_miss_then_hits() {
        let cfg = tiny_cfg(1);
        let mut sim = sim_new(&cfg, vec![SliceStream::cycle(&[load(0)])]);
        let rep = sim.run(10);
        // First access misses to local memory; the rest hit in L1.
        assert_eq!(rep.misses.total(), 1);
        assert_eq!(rep.misses.data_local, 1);
        assert_eq!(rep.misses.cold, 1);
        assert_eq!(rep.breakdown.local_cycles, cfg.latencies().local as f64);
        assert_eq!(rep.breakdown.l2_hit_cycles, 0.0);
    }

    #[test]
    fn l1_conflict_produces_l2_hits() {
        let cfg = tiny_cfg(1);
        // Two lines that conflict in a 1 KB direct-mapped L1 (16 sets)
        // but coexist in the 2-way L2.
        let a = 0u64;
        let b = 16 * 64;
        let mut sim = sim_new(&cfg, vec![SliceStream::cycle(&[load(a), load(b)])]);
        sim.warm_up(4);
        let rep = sim.run(10);
        assert_eq!(rep.misses.total(), 0, "both lines live in the L2");
        // Every access after warmup alternates and hits L2, not L1.
        assert_eq!(rep.breakdown.l2_hit_cycles, 10.0 * cfg.latencies().l2_hit as f64);
    }

    #[test]
    fn instructions_count_busy_cycles() {
        let cfg = tiny_cfg(1);
        let mut sim = sim_new(&cfg, vec![SliceStream::cycle(&[ifetch(0)])]);
        let rep = sim.run(100);
        assert_eq!(rep.breakdown.instructions, 100);
        assert_eq!(rep.breakdown.busy_cycles, 100.0);
        assert_eq!(rep.misses.instr_local, 1);
    }

    #[test]
    fn producer_consumer_is_a_three_hop_miss() {
        let cfg = tiny_cfg(2);
        let a = addr_homed(0, 1, 2); // homed at node 0
        // Node 0 writes the line, node 1 reads it.
        let s0 = SliceStream::cycle(&[store(a)]);
        let s1 = SliceStream::cycle(&[load(a)]);
        let mut sim = sim_new(&cfg, vec![s0, s1]);
        let rep = sim.run(1);
        // Node 0: cold write miss to its local home. Node 1: 3-hop dirty.
        assert_eq!(rep.per_node[0].local_cycles, cfg.latencies().local as f64);
        assert_eq!(rep.per_node[1].remote_dirty_cycles, cfg.latencies().remote_dirty as f64);
        assert_eq!(rep.misses.data_remote_dirty, 1);
        assert_eq!(rep.directory.three_hop_fills, 1);
        assert_eq!(rep.directory.downgrades, 1);
    }

    #[test]
    fn migratory_line_ping_pongs_as_dirty_misses() {
        let cfg = tiny_cfg(2);
        let a = addr_homed(0, 3, 2);
        let s0 = SliceStream::cycle(&[store(a)]);
        let s1 = SliceStream::cycle(&[store(a)]);
        let mut sim = sim_new(&cfg, vec![s0, s1]);
        sim.warm_up(1);
        let rep = sim.run(10);
        // Every store misses and finds the other node's dirty copy.
        assert_eq!(rep.misses.data_remote_dirty, 20);
        assert_eq!(rep.misses.total(), 20);
    }

    #[test]
    fn read_shared_line_hits_everywhere_after_first_fetch() {
        let cfg = tiny_cfg(4);
        let a = addr_homed(2, 1, 4);
        let streams: Vec<_> = (0..4).map(|_| SliceStream::cycle(&[load(a)])).collect();
        let mut sim = sim_new(&cfg, vec![
            streams[0].clone(),
            streams[1].clone(),
            streams[2].clone(),
            streams[3].clone(),
        ]);
        sim.warm_up(1);
        let rep = sim.run(50);
        assert_eq!(rep.misses.total(), 0, "read sharing costs nothing after the fetch");
    }

    #[test]
    fn store_to_shared_line_upgrades_and_invalidates() {
        let cfg = tiny_cfg(2);
        let a = addr_homed(0, 1, 2);
        let s0 = SliceStream::cycle(&[load(a), store(a)]);
        let s1 = SliceStream::cycle(&[load(a), load(a)]);
        let mut sim = sim_new(&cfg, vec![s0, s1]);
        let rep = sim.run(2);
        // Node 0 read (cold, local), node 1 read (2-hop), node 0 store
        // (upgrade invalidating node 1).
        assert_eq!(rep.upgrades, 1);
        assert_eq!(rep.directory.invalidations_sent, 1);
        // The upgrade is not counted as an L2 miss...
        assert_eq!(rep.misses.total(), 3, "two initial reads + node 1 re-read after inval");
    }

    #[test]
    fn local_upgrade_with_no_sharers_is_free() {
        let cfg = tiny_cfg(1);
        let mut sim = sim_new(&cfg, vec![SliceStream::cycle(&[load(0), store(0)])]);
        let rep = sim.run(5);
        assert_eq!(rep.upgrades, 1, "first store upgrades; later stores own the line");
        // No stall was charged for the upgrade: only the initial cold
        // fetch contributes.
        assert_eq!(rep.breakdown.local_cycles, cfg.latencies().local as f64);
    }

    #[test]
    fn writeback_turns_dirty_misses_into_clean_misses() {
        let cfg = tiny_cfg(2);
        // Node 0 dirties a line homed at node 1, then streams enough
        // conflicting lines through its tiny L2 to evict it (writeback).
        let a = addr_homed(1, 0, 2);
        let mut refs0 = vec![store(a)];
        // 8 KB 2-way L2 = 64 sets; lines a+64*sets*k conflict with a.
        for k in 1..=4 {
            refs0.push(load(a + 64 * 64 * k));
        }
        refs0.push(load(addr_homed(0, 50, 2))); // idle filler
        let s0 = SliceStream::cycle(&refs0);
        let s1 = SliceStream::cycle(&[load(addr_homed(1, 60, 2))]);
        let mut sim = sim_new(&cfg, vec![s0, s1]);
        sim.run(6);
        // After node 0's eviction, the line is clean at its home: node 1
        // reading it now is a 2-hop (here: local-home for node 1) miss,
        // not a 3-hop.
        let s1b = SliceStream::cycle(&[load(a)]);
        let mut streams = vec![SliceStream::cycle(&[load(addr_homed(0, 50, 2))]), s1b];
        let _ = &mut streams;
        // Drive node 1's read through the same simulation by swapping its
        // stream is not supported; instead check directory state directly.
        assert_eq!(sim.dir.state(a / 64), LineState::Uncached, "dirty eviction wrote back home");
        assert!(sim.dir.stats().writebacks >= 1);
    }

    #[test]
    fn l2_eviction_invalidates_l1_inclusion() {
        let cfg = tiny_cfg(1);
        // Fill one L2 set (2-way, 64 sets) with 3 conflicting lines.
        let a = 0u64;
        let b = 64 * 64;
        let c = 2 * 64 * 64;
        let refs = [load(a), load(b), load(c), load(a)];
        let mut sim = sim_new(&cfg, vec![SliceStream::cycle(&refs)]);
        let rep = sim.run(4);
        // `a` was evicted from L2 by `c` (LRU), so the final load of `a`
        // must miss again even though the L1 could still have held it.
        assert_eq!(rep.misses.total(), 4);
    }

    #[test]
    fn replication_makes_instruction_misses_local() {
        let l1 = CacheGeometry::new(1024, 1, 64).unwrap();
        let mut b = SystemConfig::builder();
        b.nodes(2).l1(l1).l2_off_chip(8192, 2).replicate_instructions(true);
        let cfg = b.build().unwrap();
        // An instruction line homed at node 0, fetched by node 1.
        let a = addr_homed(0, 1, 2);
        let s0 = SliceStream::cycle(&[load(addr_homed(0, 9, 2))]);
        let s1 = SliceStream::cycle(&[ifetch(a)]);
        let mut sim = sim_new(&cfg, vec![s0, s1]);
        let rep = sim.run(1);
        assert_eq!(rep.misses.instr_local, 1);
        assert_eq!(rep.misses.instr_remote, 0);
        assert_eq!(rep.per_node[1].local_cycles, cfg.latencies().local as f64);
    }

    #[test]
    fn without_replication_remote_instructions_are_two_hop() {
        let cfg = tiny_cfg(2);
        let a = addr_homed(0, 1, 2);
        let s0 = SliceStream::cycle(&[load(addr_homed(0, 9, 2))]);
        let s1 = SliceStream::cycle(&[ifetch(a)]);
        let mut sim = sim_new(&cfg, vec![s0, s1]);
        let rep = sim.run(1);
        assert_eq!(rep.misses.instr_remote, 1);
    }

    fn rac_cfg() -> SystemConfig {
        let l1 = CacheGeometry::new(1024, 1, 64).unwrap();
        let rac = RacConfig { geometry: CacheGeometry::new(16384, 2, 64).unwrap() };
        let mut b = SystemConfig::builder();
        b.nodes(2)
            .l1(l1)
            .integration(IntegrationLevel::FullyIntegrated)
            .l2_sram(8192, 2)
            .rac(rac);
        b.build().unwrap()
    }

    #[test]
    fn rac_turns_refetches_of_remote_lines_local() {
        let cfg = rac_cfg();
        // Node 0 reads a remote line, then four conflicting lines (also
        // remote) to evict it from its 8 KB L2, then re-reads it.
        let a = addr_homed(1, 0, 2);
        let mut refs = vec![load(a)];
        for k in 1..=2 {
            refs.push(load(a + 64 * 64 * k)); // same L2 set, also homed remotely
        }
        refs.push(load(a));
        let s0 = SliceStream::cycle(&refs);
        let s1 = SliceStream::cycle(&[load(addr_homed(1, 70, 2))]);
        let mut sim = sim_new(&cfg, vec![s0, s1]);
        let rep = sim.run(4);
        // The re-read hit the RAC: counted local, charged rac_hit.
        assert_eq!(rep.rac.hits, 1);
        assert!(rep.per_node[0].local_cycles >= cfg.latencies().rac_hit as f64);
    }

    #[test]
    fn dirty_lines_park_in_the_rac_and_stay_owned() {
        let cfg = rac_cfg();
        let a = addr_homed(1, 0, 2);
        // Node 0 dirties the remote line, then evicts it via conflicts.
        let mut refs = vec![store(a)];
        for k in 1..=2 {
            refs.push(load(a + 64 * 64 * k));
        }
        let s0 = SliceStream::cycle(&refs);
        let s1 = SliceStream::cycle(&[load(addr_homed(1, 70, 2))]);
        let mut sim = sim_new(&cfg, vec![s0, s1]);
        sim.run(3);
        assert_eq!(
            sim.dir.state(a / 64),
            LineState::Modified { owner: 0, in_rac: true },
            "dirty victim parks in the RAC instead of writing back"
        );
        assert!(sim.dir.stats().writebacks == 0);
    }

    #[test]
    fn remote_read_of_rac_parked_line_costs_rac_dirty_latency() {
        let cfg = rac_cfg();
        let a = addr_homed(0, 1, 2); // homed at node 0, so node 1 parks it
        let mut refs1 = vec![store(a)];
        for k in 1..=2 {
            refs1.push(load(a + 64 * 64 * k + 64 * 128)); // remote-homed conflicts
        }
        refs1.push(load(addr_homed(1, 90, 2)));
        let s1 = SliceStream::cycle(&refs1);
        let s0 = SliceStream::cycle(&[
            load(addr_homed(0, 80, 2)),
            load(addr_homed(0, 80, 2)),
            load(addr_homed(0, 80, 2)),
            load(a),
        ]);
        let mut sim = sim_new(&cfg, vec![s0, s1]);
        let rep = sim.run(4);
        assert_eq!(
            rep.per_node[0].remote_dirty_cycles,
            cfg.latencies().remote_dirty_in_rac as f64,
            "dirty data in a remote RAC costs 250 ns, not 200 ns"
        );
    }

    #[test]
    fn reset_stats_clears_counts_but_keeps_cache_contents() {
        let cfg = tiny_cfg(1);
        let mut sim = sim_new(&cfg, vec![SliceStream::cycle(&[load(0)])]);
        sim.warm_up(5);
        let rep = sim.run(5);
        assert_eq!(rep.misses.total(), 0, "warmup kept the line resident");
        assert_eq!(rep.breakdown.total_cycles(), 0.0, "pure L1 hits cost nothing");
    }

    #[test]
    fn report_aggregates_per_node() {
        let cfg = tiny_cfg(2);
        let s0 = SliceStream::cycle(&[ifetch(addr_homed(0, 5, 2))]);
        let s1 = SliceStream::cycle(&[ifetch(addr_homed(1, 6, 2))]);
        let mut sim = sim_new(&cfg, vec![s0, s1]);
        let rep = sim.run(10);
        assert_eq!(rep.per_node.len(), 2);
        assert_eq!(rep.breakdown.instructions, 20);
        assert_eq!(
            rep.breakdown.busy_cycles,
            rep.per_node[0].busy_cycles + rep.per_node[1].busy_cycles
        );
    }

    #[test]
    #[should_panic(expected = "one reference stream per core")]
    fn stream_count_mismatch_panics() {
        let cfg = tiny_cfg(2);
        let _ = sim_new(&cfg, vec![SliceStream::cycle(&[load(0)])]);
    }

    #[test]
    fn cmp_cores_share_the_chip_l2() {
        // Two cores on one chip: core 0 writes a line, core 1 reads it.
        // The read misses core 1's L1 but hits the shared L2 — no
        // coherence traffic, no remote miss.
        let l1 = CacheGeometry::new(1024, 1, 64).unwrap();
        let mut b = SystemConfig::builder();
        b.nodes(1).cores_per_node(2).l1(l1).l2_off_chip(8192, 2);
        let cfg = b.build().unwrap();
        let s0 = SliceStream::cycle(&[store(0)]);
        let s1 = SliceStream::cycle(&[load(0)]);
        let mut sim = sim_new(&cfg, vec![s0, s1]);
        let rep = sim.run(4);
        // One cold write miss by core 0; core 1's first read is an L2 hit.
        assert_eq!(rep.misses.total(), 1);
        assert_eq!(rep.per_node.len(), 1);
        assert!(rep.breakdown.l2_hit_cycles > 0.0, "core 1 must hit the shared L2");
        assert_eq!(rep.breakdown.remote_cycles(), 0.0);
        sim.verify_coherence().unwrap();
    }

    #[test]
    fn cmp_cross_chip_sharing_is_still_three_hop() {
        let l1 = CacheGeometry::new(1024, 1, 64).unwrap();
        let mut b = SystemConfig::builder();
        b.nodes(2).cores_per_node(2).l1(l1).l2_off_chip(8192, 2);
        let cfg = b.build().unwrap();
        let a = addr_homed(0, 1, 2);
        // Chip 0 (cores 0,1) writes; chip 1 (cores 2,3) reads.
        let streams = vec![
            SliceStream::cycle(&[store(a)]),
            SliceStream::cycle(&[load(addr_homed(0, 9, 2))]),
            SliceStream::cycle(&[load(a)]),
            SliceStream::cycle(&[load(addr_homed(1, 9, 2))]),
        ];
        let mut sim = sim_new(&cfg, streams);
        let rep = sim.run(1);
        assert_eq!(rep.misses.data_remote_dirty, 1, "cross-chip read finds dirty data");
        sim.verify_coherence().unwrap();
    }

    #[test]
    fn cmp_l2_eviction_invalidates_all_cores_l1s() {
        let l1 = CacheGeometry::new(1024, 1, 64).unwrap();
        let mut b = SystemConfig::builder();
        b.nodes(1).cores_per_node(2).l1(l1).l2_off_chip(8192, 2);
        let cfg = b.build().unwrap();
        // Both cores load line a; then core 0 streams conflicting lines
        // through the shared L2 set until a is evicted; core 1's re-read
        // of a must then miss (its L1 copy was invalidated by inclusion).
        let a = 0u64;
        let s0 = SliceStream::cycle(&[load(a), load(64 * 64), load(2 * 64 * 64), load(3 * 64 * 64)]);
        let s1 = SliceStream::cycle(&[load(a)]);
        let mut sim = sim_new(&cfg, vec![s0, s1]);
        let rep = sim.run(4);
        // a was evicted by the third conflicting line; the 4th round's
        // core-1 load of a misses again.
        assert!(rep.misses.total() >= 5);
        sim.verify_coherence().unwrap();
    }

    #[test]
    fn cmp_oltp_runs_and_stays_coherent() {
        let mut b = SystemConfig::builder();
        b.nodes(2)
            .cores_per_node(2)
            .integration(IntegrationLevel::FullyIntegrated)
            .l2_sram(2 << 20, 8);
        let cfg = b.build().unwrap();
        let mut sim = Simulation::with_oltp(&cfg, OltpParams::default()).unwrap();
        sim.warm_up(30_000);
        let rep = sim.run(30_000);
        assert_eq!(rep.per_node.len(), 2);
        assert!(rep.breakdown.instructions > 50_000, "four cores retire instructions");
        sim.verify_coherence().unwrap();
    }

    #[test]
    fn store_hitting_a_clean_rac_copy_upgrades_through_the_home() {
        let cfg = rac_cfg();
        let a = addr_homed(1, 0, 2); // remote line for node 0
        // Node 0 reads `a` (fills L2 + RAC), evicts it from L2 via
        // conflicts, then STORES it: the RAC supplies the data but
        // ownership needs a 2-hop upgrade.
        let mut refs = vec![load(a)];
        for k in 1..=2 {
            refs.push(load(a + 64 * 64 * k));
        }
        refs.push(store(a));
        let s0 = SliceStream::cycle(&refs);
        let s1 = SliceStream::cycle(&[load(addr_homed(1, 70, 2))]);
        let mut sim = sim_new(&cfg, vec![s0, s1]);
        let rep = sim.run(4);
        assert_eq!(rep.rac.hits, 1, "the store's data came from the RAC");
        assert_eq!(rep.upgrades, 1, "ownership required an upgrade");
        assert_eq!(
            sim.dir.state(a / 64),
            LineState::Modified { owner: 0, in_rac: false },
            "after the store the L2 holds the modified line"
        );
        sim.verify_coherence().unwrap();
    }

    #[test]
    fn ooo_model_runs_inside_the_full_simulator() {
        use csim_config::OooParams;
        let l1 = CacheGeometry::new(1024, 1, 64).unwrap();
        let mut b = SystemConfig::builder();
        b.l1(l1).l2_off_chip(8192, 2).out_of_order(OooParams::paper());
        let cfg = b.build().unwrap();
        let mut sim = sim_new(&cfg, vec![SliceStream::cycle(&[ifetch(0)])]);
        let rep = sim.run(100);
        assert_eq!(rep.breakdown.instructions, 100);
        assert!(
            rep.breakdown.busy_cycles < 100.0,
            "a 4-wide core must retire at better than CPI 1"
        );
    }

    #[test]
    fn remote_instruction_misses_count_as_i_rem() {
        let cfg = tiny_cfg(2);
        let a = addr_homed(1, 1, 2); // homed at node 1
        let s0 = SliceStream::cycle(&[ifetch(a)]);
        let s1 = SliceStream::cycle(&[load(addr_homed(1, 50, 2))]);
        let mut sim = sim_new(&cfg, vec![s0, s1]);
        let rep = sim.run(1);
        assert_eq!(rep.misses.instr_remote, 1);
        assert_eq!(rep.misses.instr_local, 0);
        assert_eq!(
            rep.per_node[0].remote_clean_cycles,
            cfg.latencies().remote_clean as f64
        );
    }

    #[test]
    fn l2_mc_level_charges_higher_remote_clean_latency() {
        // The Section 4 pathology: MC on-chip without the CC makes 2-hop
        // misses slower (225 vs 175).
        let l1 = CacheGeometry::new(1024, 1, 64).unwrap();
        let mk = |level: IntegrationLevel| {
            let mut b = SystemConfig::builder();
            b.nodes(2).l1(l1).integration(level).l2_sram(8192, 2);
            b.build().unwrap()
        };
        let a = addr_homed(1, 1, 2);
        let run_one = |cfg: &SystemConfig| {
            let s0 = SliceStream::cycle(&[load(a)]);
            let s1 = SliceStream::cycle(&[load(addr_homed(1, 50, 2))]);
            let mut sim = sim_new(cfg, vec![s0, s1]);
            sim.run(1).per_node[0].remote_clean_cycles
        };
        let l2_only = run_one(&mk(IntegrationLevel::L2Integrated));
        let l2_mc = run_one(&mk(IntegrationLevel::L2McIntegrated));
        assert_eq!(l2_only, 175.0);
        assert_eq!(l2_mc, 225.0);
    }

    #[test]
    fn report_carries_config_summary_and_refs() {
        let cfg = tiny_cfg(1);
        let mut sim = sim_new(&cfg, vec![SliceStream::cycle(&[load(0)])]);
        let rep = sim.run(7);
        assert!(rep.config_summary.contains("1p"));
        assert_eq!(rep.refs_per_node, 7);
        assert_eq!(rep.transactions, 0, "no OLTP txn source for slice streams");
    }

    #[test]
    fn rac_with_replication_and_cmp_stays_coherent() {
        let mut b = SystemConfig::builder();
        b.nodes(2)
            .cores_per_node(2)
            .integration(IntegrationLevel::FullyIntegrated)
            .l2_sram(256 << 10, 4)
            .rac(csim_config::RacConfig::paper())
            .replicate_instructions(true);
        let cfg = b.build().unwrap();
        let mut sim = Simulation::with_oltp(&cfg, OltpParams::default()).unwrap();
        sim.run(60_000);
        sim.verify_coherence().unwrap();
    }

    #[test]
    fn try_new_reports_mismatches_as_values() {
        let cfg = tiny_cfg(2);
        let err = Simulation::try_new(&cfg, vec![SliceStream::cycle(&[load(0)])]).unwrap_err();
        assert_eq!(err, crate::SimError::StreamCountMismatch { streams: 1, cores: 2 });
    }

    #[test]
    fn run_verified_matches_run_on_a_healthy_machine() {
        let cfg = tiny_cfg(2);
        let mk = || {
            let s0 = SliceStream::cycle(&[store(addr_homed(0, 1, 2)), load(addr_homed(1, 2, 2))]);
            let s1 = SliceStream::cycle(&[load(addr_homed(0, 1, 2)), store(addr_homed(1, 3, 2))]);
            sim_new(&cfg, vec![s0, s1])
        };
        let plain = mk().run(500);
        let verified = mk().run_verified(500, 50).expect("coherent");
        assert_eq!(plain, verified, "strict mode must not perturb the simulation");
    }

    #[test]
    fn inert_fault_injector_is_bit_identical_to_none() {
        use csim_fault::{FaultInjector, FaultPlan};
        let cfg = rac_cfg();
        let streams = || {
            vec![
                SliceStream::cycle(&[store(addr_homed(1, 0, 2)), load(addr_homed(0, 4, 2))]),
                SliceStream::cycle(&[load(addr_homed(1, 0, 2)), store(addr_homed(0, 7, 2))]),
            ]
        };
        let mut bare = sim_new(&cfg, streams());
        let mut wired = sim_new(&cfg, streams())
            .with_fault_injector(FaultInjector::new(FaultPlan::none(), 42).unwrap());
        bare.warm_up(200);
        wired.warm_up(200);
        assert_eq!(bare.run(1_000), wired.run(1_000));
    }

    #[test]
    fn sanitizer_on_is_bit_identical_to_off() {
        let cfg = rac_cfg();
        let streams = || {
            vec![
                SliceStream::cycle(&[store(addr_homed(1, 0, 2)), load(addr_homed(0, 4, 2))]),
                SliceStream::cycle(&[load(addr_homed(1, 0, 2)), store(addr_homed(0, 7, 2))]),
            ]
        };
        let mut bare = sim_new(&cfg, streams());
        let mut sane = sim_new(&cfg, streams()).with_sanitizer();
        bare.warm_up(200);
        sane.warm_up(200);
        assert_eq!(bare.run(1_000), sane.run(1_000));
        sane.verify_sanitizer().expect("clean run cross-checks clean");
        assert!(sane.sanitizer_checks().is_some_and(|c| c > 0), "the sanitizer actually ran");
        assert_eq!(bare.sanitizer_checks(), None);
    }

    #[test]
    fn sanitizer_vouches_for_a_full_oltp_run() {
        let mut b = SystemConfig::builder();
        b.nodes(2)
            .integration(IntegrationLevel::FullyIntegrated)
            .l2_sram(256 << 10, 4)
            .rac(csim_config::RacConfig::paper());
        let cfg = b.build().unwrap();
        let mut sim =
            Simulation::with_oltp(&cfg, OltpParams::default()).unwrap().with_sanitizer();
        let rep = sim.run_verified(30_000, 5_000).expect("coherent and spec-conformant");
        assert!(rep.refs_per_node == 30_000);
        // An OLTP run on a small L2 exercises every transition kind the
        // sanitizer hooks: misses, upgrades, writebacks, RAC parking.
        assert!(sim.sanitizer_checks().is_some_and(|c| c > 1_000), "{:?}", sim.sanitizer_checks());
    }

    #[test]
    fn fault_storm_slows_the_machine_and_fills_the_counters() {
        use csim_fault::{FaultInjector, FaultPlan};
        let cfg = tiny_cfg(2);
        let streams = || {
            vec![
                SliceStream::cycle(&[store(addr_homed(0, 1, 2)), load(addr_homed(1, 2, 2))]),
                SliceStream::cycle(&[store(addr_homed(0, 1, 2)), load(addr_homed(1, 5, 2))]),
            ]
        };
        let mut plan = FaultPlan::storm();
        // Start the windows at 0 so the short test run sees them.
        plan.link_faults[0].start = 0;
        plan.mc_faults[0].start = 0;
        let clean = sim_new(&cfg, streams()).run(2_000);
        let mut sim = sim_new(&cfg, streams())
            .with_fault_injector(FaultInjector::new(plan, 7).unwrap());
        let faulty = sim.run(2_000);
        assert!(faulty.faults.nacks > 0, "5% NACKs over thousands of txns must fire");
        assert_eq!(
            faulty.directory.nacks, faulty.faults.nacks,
            "NACK outcomes surface in the directory counters too"
        );
        assert!(faulty.faults.retries > 0);
        assert!(faulty.faults.degraded_txns > 0);
        assert!(faulty.faults.mc_busy_txns > 0);
        assert!(
            faulty.breakdown.total_cycles() > clean.breakdown.total_cycles(),
            "faults must cost cycles"
        );
        assert_eq!(
            faulty.misses, clean.misses,
            "faults change timing, never the reference stream or miss classification"
        );
        sim.verify_coherence().expect("fault injection must not corrupt coherence");
    }

    #[test]
    fn fault_runs_are_deterministic_per_seed() {
        use csim_fault::{FaultInjector, FaultPlan};
        let cfg = tiny_cfg(2);
        let run = |seed| {
            let streams = vec![
                SliceStream::cycle(&[store(addr_homed(0, 1, 2)), load(addr_homed(1, 2, 2))]),
                SliceStream::cycle(&[load(addr_homed(0, 1, 2))]),
            ];
            let mut sim = sim_new(&cfg, streams)
                .with_fault_injector(FaultInjector::new(FaultPlan::storm(), seed).unwrap());
            sim.run(3_000)
        };
        assert_eq!(run(9), run(9), "same (plan, seed) must reproduce the report");
        assert_ne!(run(9), run(10), "different fault seeds must diverge");
    }

    #[test]
    fn oltp_simulation_smoke() {
        let cfg = SystemConfig::paper_base_uni();
        let mut sim = Simulation::with_oltp(&cfg, OltpParams::default()).unwrap();
        sim.warm_up(20_000);
        let rep = sim.run(20_000);
        assert!(rep.breakdown.instructions > 10_000);
        assert!(rep.breakdown.total_cycles() > 0.0);
        assert!(rep.misses.total() > 0);
        assert_eq!(rep.misses.remote(), 0, "uniprocessor misses are all local");
    }
}
