//! Typed errors for the simulation core.
//!
//! The simulator's failure modes fall into two families: *construction*
//! problems (mismatched stream counts, unsupported machine sizes,
//! invalid workload parameters) and *invariant* problems (the coherence
//! checker found an inconsistent machine state). Both are ordinary
//! values here — nothing in the library panics on user-reachable input.

use std::error::Error;
use std::fmt;

use csim_check::SanitizerError;
use csim_coherence::NodeId;
use csim_fault::FaultPlanError;
use csim_workload::ParamsError;

/// A violated machine-wide coherence invariant, as found by
/// [`crate::Simulation::verify_coherence`]. Each variant names the line
/// and location so a failing property test reproduces precisely.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoherenceViolation {
    /// The directory says `Modified{owner, in_rac: false}` but the
    /// owner's L2 copy is not dirty.
    NotDirtyInOwnerL2 {
        /// The inconsistent line (line address, not byte address).
        line: u64,
        /// The node the directory believes owns the line.
        owner: NodeId,
    },
    /// The directory says `Modified{owner, in_rac: true}` but the
    /// owner's RAC copy is not dirty (or the owner has no RAC).
    NotDirtyInOwnerRac {
        /// The inconsistent line.
        line: u64,
        /// The node the directory believes owns the line.
        owner: NodeId,
    },
    /// A line the directory considers Shared or Uncached is dirty in
    /// some node's L2 or RAC.
    DirtyWithoutOwnership {
        /// The inconsistent line.
        line: u64,
        /// The node holding the unexpected dirty copy.
        node: usize,
        /// Which structure holds it: `"L2"` or `"RAC"`.
        structure: &'static str,
    },
    /// A line present in an L1 is absent from that node's L2
    /// (multi-level inclusion violated).
    InclusionViolated {
        /// The inconsistent line.
        line: u64,
        /// The node whose L1 holds the orphaned line.
        node: usize,
    },
}

impl fmt::Display for CoherenceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoherenceViolation::NotDirtyInOwnerL2 { line, owner } => write!(
                f,
                "line {line:#x}: directory says M at node {owner} (L2) but L2 copy is not dirty"
            ),
            CoherenceViolation::NotDirtyInOwnerRac { line, owner } => write!(
                f,
                "line {line:#x}: directory says M at node {owner} (RAC) but RAC copy is not dirty"
            ),
            CoherenceViolation::DirtyWithoutOwnership { line, node, structure } => write!(
                f,
                "line {line:#x}: not Modified in directory but dirty in node {node}'s {structure}"
            ),
            CoherenceViolation::InclusionViolated { line, node } => write!(
                f,
                "line {line:#x}: present in node {node}'s L1 but not its L2 (inclusion violated)"
            ),
        }
    }
}

impl Error for CoherenceViolation {}

/// Everything that can go wrong constructing or running a
/// [`crate::Simulation`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The number of reference streams does not match the machine's
    /// core count.
    StreamCountMismatch {
        /// Streams supplied.
        streams: usize,
        /// Cores the configuration has (one stream required per core).
        cores: usize,
    },
    /// The configuration asks for more nodes than the directory's
    /// node-set representation supports.
    TooManyNodes {
        /// Nodes requested.
        nodes: usize,
        /// The supported maximum.
        max: usize,
    },
    /// The OLTP workload parameters are invalid.
    Params(ParamsError),
    /// The fault plan is invalid.
    FaultPlan(FaultPlanError),
    /// A strict-mode run found a coherence violation.
    Coherence(CoherenceViolation),
    /// The runtime sanitizer found a directory transition that diverges
    /// from the executable protocol spec.
    Sanitizer(SanitizerError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::StreamCountMismatch { streams, cores } => write!(
                f,
                "need exactly one reference stream per core: got {streams} streams for {cores} cores"
            ),
            SimError::TooManyNodes { nodes, max } => {
                write!(f, "directory supports at most {max} nodes, configuration has {nodes}")
            }
            SimError::Params(e) => write!(f, "invalid workload parameters: {e}"),
            SimError::FaultPlan(e) => write!(f, "{e}"),
            SimError::Coherence(v) => write!(f, "coherence violated: {v}"),
            SimError::Sanitizer(e) => write!(f, "protocol spec divergence: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Params(e) => Some(e),
            SimError::FaultPlan(e) => Some(e),
            SimError::Coherence(v) => Some(v),
            SimError::Sanitizer(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamsError> for SimError {
    fn from(e: ParamsError) -> Self {
        SimError::Params(e)
    }
}

impl From<FaultPlanError> for SimError {
    fn from(e: FaultPlanError) -> Self {
        SimError::FaultPlan(e)
    }
}

impl From<CoherenceViolation> for SimError {
    fn from(v: CoherenceViolation) -> Self {
        SimError::Coherence(v)
    }
}

impl From<SanitizerError> for SimError {
    fn from(e: SanitizerError) -> Self {
        SimError::Sanitizer(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let v = CoherenceViolation::InclusionViolated { line: 0x40, node: 3 };
        assert!(v.to_string().contains("0x40"));
        assert!(v.to_string().contains("node 3"));
        let e = SimError::StreamCountMismatch { streams: 1, cores: 4 };
        assert!(e.to_string().contains("one reference stream per core"));
        let e = SimError::TooManyNodes { nodes: 65, max: 64 };
        assert!(e.to_string().contains("65"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error as _;
        let v = CoherenceViolation::NotDirtyInOwnerL2 { line: 1, owner: 0 };
        let e = SimError::Coherence(v.clone());
        assert_eq!(e.source().unwrap().to_string(), v.to_string());
        assert!(SimError::TooManyNodes { nodes: 65, max: 64 }.source().is_none());
    }

    #[test]
    fn conversions_wrap() {
        let v = CoherenceViolation::NotDirtyInOwnerRac { line: 2, owner: 1 };
        assert_eq!(SimError::from(v.clone()), SimError::Coherence(v));
    }
}
