//! Simulation reports: miss breakdowns and figure-ready bars.

use csim_cache::CacheStats;
use csim_coherence::DirectoryStats;
use csim_fault::FaultStats;
use csim_obs::json::Json;
use csim_proc::ExecBreakdown;
use csim_stats::Bar;

/// L2 misses classified the way the paper's miss figures are drawn:
/// instruction vs data, by where the miss was serviced.
///
/// Hits in a node's own remote access cache count as *local* (the RAC's
/// data lives in local memory), mirroring the paper's Figure 11 where the
/// RAC converts remote misses into local ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MissBreakdown {
    /// Instruction misses serviced locally (local home or RAC hit).
    pub instr_local: u64,
    /// Instruction misses serviced by a remote home (2-hop). Instructions
    /// are never dirty, so there is no 3-hop instruction category.
    pub instr_remote: u64,
    /// Data misses serviced locally (local home or RAC hit).
    pub data_local: u64,
    /// Data misses serviced clean by a remote home (2-hop).
    pub data_remote_clean: u64,
    /// Data misses serviced by dirty data in a remote cache (3-hop).
    pub data_remote_dirty: u64,
    /// Of the above, misses that touched their line for the first time
    /// machine-wide (cold misses).
    pub cold: u64,
}

impl MissBreakdown {
    /// Total L2 misses.
    pub fn total(&self) -> u64 {
        self.instr_local
            + self.instr_remote
            + self.data_local
            + self.data_remote_clean
            + self.data_remote_dirty
    }

    /// Total instruction misses.
    pub fn instr(&self) -> u64 {
        self.instr_local + self.instr_remote
    }

    /// Total data misses.
    pub fn data(&self) -> u64 {
        self.data_local + self.data_remote_clean + self.data_remote_dirty
    }

    /// Misses serviced by remote nodes (2-hop + 3-hop).
    pub fn remote(&self) -> u64 {
        self.instr_remote + self.data_remote_clean + self.data_remote_dirty
    }

    /// Accumulates another breakdown.
    pub fn merge(&mut self, other: &MissBreakdown) {
        self.instr_local += other.instr_local;
        self.instr_remote += other.instr_remote;
        self.data_local += other.data_local;
        self.data_remote_clean += other.data_remote_clean;
        self.data_remote_dirty += other.data_remote_dirty;
        self.cold += other.cold;
    }
}

/// Remote-access-cache effectiveness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RacStats {
    /// L2 misses satisfied by the node's own RAC.
    pub hits: u64,
    /// L2 misses to remote lines that also missed the RAC.
    pub misses: u64,
}

impl RacStats {
    /// RAC hit rate over remote-line L2 misses; zero when never probed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another set of counters.
    pub fn merge(&mut self, other: &RacStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Everything one simulation run produced.
///
/// `PartialEq` is field-by-field (floats included): two reports compare
/// equal only when the runs were bit-identical, which is exactly what
/// the determinism and zero-overhead regression tests assert.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// One-line description of the simulated configuration.
    pub config_summary: String,
    /// Execution time aggregated over all nodes.
    pub breakdown: ExecBreakdown,
    /// Execution time per node.
    pub per_node: Vec<ExecBreakdown>,
    /// L2 misses aggregated over all nodes.
    pub misses: MissBreakdown,
    /// Coherence-protocol counters.
    pub directory: DirectoryStats,
    /// Aggregated L1 instruction-cache counters.
    pub l1i: CacheStats,
    /// Aggregated L1 data-cache counters.
    pub l1d: CacheStats,
    /// RAC counters (all zero when no RAC is configured).
    pub rac: RacStats,
    /// Ownership upgrades (stores to shared lines); not counted as L2
    /// misses.
    pub upgrades: u64,
    /// Transactions committed during the measured window.
    pub transactions: u64,
    /// References processed per node during the measured window.
    pub refs_per_node: u64,
    /// Fault-injection counters (all zero when no injector is wired in
    /// or its plan is [`csim_fault::FaultPlan::none`]).
    pub faults: FaultStats,
}

impl SimReport {
    /// The paper's execution-time bar for this run: CPU, L2Hit, LocStall,
    /// RemStall (remote = 2-hop + 3-hop).
    pub fn exec_bar(&self, label: impl Into<String>) -> Bar {
        Bar::new(label)
            .with("CPU", self.breakdown.busy_cycles)
            .with("L2Hit", self.breakdown.l2_hit_cycles)
            .with("LocStall", self.breakdown.local_cycles)
            .with("RemStall", self.breakdown.remote_cycles())
    }

    /// The paper's miss bar for this run: I-Loc, I-Rem, D-Loc, D-RemClean,
    /// D-RemDirty.
    pub fn miss_bar(&self, label: impl Into<String>) -> Bar {
        Bar::new(label)
            .with("I-Loc", self.misses.instr_local as f64)
            .with("I-Rem", self.misses.instr_remote as f64)
            .with("D-Loc", self.misses.data_local as f64)
            .with("D-RemClean", self.misses.data_remote_clean as f64)
            .with("D-RemDirty", self.misses.data_remote_dirty as f64)
    }

    /// L2 misses per 1000 instructions.
    pub fn mpki(&self) -> f64 {
        if self.breakdown.instructions == 0 {
            0.0
        } else {
            self.misses.total() as f64 * 1000.0 / self.breakdown.instructions as f64
        }
    }

    /// The whole report as deterministic JSON: same report, same bytes.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("config_summary", Json::str(&self.config_summary)),
            ("refs_per_node", Json::UInt(self.refs_per_node)),
            ("transactions", Json::UInt(self.transactions)),
            ("upgrades", Json::UInt(self.upgrades)),
            ("mpki", Json::Float(self.mpki())),
            ("breakdown", breakdown_json(&self.breakdown)),
            ("per_node", Json::Arr(self.per_node.iter().map(breakdown_json).collect())),
            ("misses", misses_json(&self.misses)),
            ("directory", directory_json(&self.directory)),
            ("l1i", cache_json(&self.l1i)),
            ("l1d", cache_json(&self.l1d)),
            (
                "rac",
                Json::obj([
                    ("hits", Json::UInt(self.rac.hits)),
                    ("misses", Json::UInt(self.rac.misses)),
                    ("hit_rate", Json::Float(self.rac.hit_rate())),
                ]),
            ),
            ("faults", faults_json(&self.faults)),
        ])
    }
}

fn breakdown_json(bd: &ExecBreakdown) -> Json {
    Json::obj([
        ("instructions", Json::UInt(bd.instructions)),
        ("busy_cycles", Json::Float(bd.busy_cycles)),
        ("l2_hit_cycles", Json::Float(bd.l2_hit_cycles)),
        ("local_cycles", Json::Float(bd.local_cycles)),
        ("remote_clean_cycles", Json::Float(bd.remote_clean_cycles)),
        ("remote_dirty_cycles", Json::Float(bd.remote_dirty_cycles)),
        ("total_cycles", Json::Float(bd.total_cycles())),
        ("cpi", Json::Float(bd.cpi())),
        ("cpu_utilization", Json::Float(bd.cpu_utilization())),
    ])
}

fn misses_json(m: &MissBreakdown) -> Json {
    Json::obj([
        ("instr_local", Json::UInt(m.instr_local)),
        ("instr_remote", Json::UInt(m.instr_remote)),
        ("data_local", Json::UInt(m.data_local)),
        ("data_remote_clean", Json::UInt(m.data_remote_clean)),
        ("data_remote_dirty", Json::UInt(m.data_remote_dirty)),
        ("cold", Json::UInt(m.cold)),
        ("total", Json::UInt(m.total())),
    ])
}

fn directory_json(d: &DirectoryStats) -> Json {
    Json::obj([
        ("read_misses", Json::UInt(d.read_misses)),
        ("write_misses", Json::UInt(d.write_misses)),
        ("invalidating_writes", Json::UInt(d.invalidating_writes)),
        ("invalidations_sent", Json::UInt(d.invalidations_sent)),
        ("three_hop_fills", Json::UInt(d.three_hop_fills)),
        ("writebacks", Json::UInt(d.writebacks)),
        ("downgrades", Json::UInt(d.downgrades)),
        ("nacks", Json::UInt(d.nacks)),
    ])
}

fn cache_json(c: &CacheStats) -> Json {
    Json::obj([
        ("hits", Json::UInt(c.hits)),
        ("misses", Json::UInt(c.misses)),
        ("write_hits", Json::UInt(c.write_hits)),
        ("write_misses", Json::UInt(c.write_misses)),
        ("evictions", Json::UInt(c.evictions)),
        ("dirty_evictions", Json::UInt(c.dirty_evictions)),
        ("invalidations", Json::UInt(c.invalidations)),
    ])
}

fn faults_json(f: &FaultStats) -> Json {
    Json::obj([
        ("nacks", Json::UInt(f.nacks)),
        ("retries", Json::UInt(f.retries)),
        ("backoff_cycles", Json::UInt(f.backoff_cycles)),
        ("retry_cycles", Json::UInt(f.retry_cycles)),
        ("watchdog_trips", Json::UInt(f.watchdog_trips)),
        ("degraded_txns", Json::UInt(f.degraded_txns)),
        ("degraded_extra_cycles", Json::UInt(f.degraded_extra_cycles)),
        ("mc_busy_txns", Json::UInt(f.mc_busy_txns)),
        ("mc_extra_cycles", Json::UInt(f.mc_extra_cycles)),
        ("total_extra_cycles", Json::UInt(f.total_extra_cycles())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss_breakdown() -> MissBreakdown {
        MissBreakdown {
            instr_local: 1,
            instr_remote: 2,
            data_local: 3,
            data_remote_clean: 4,
            data_remote_dirty: 5,
            cold: 2,
        }
    }

    #[test]
    fn totals_and_splits() {
        let m = miss_breakdown();
        assert_eq!(m.total(), 15);
        assert_eq!(m.instr(), 3);
        assert_eq!(m.data(), 12);
        assert_eq!(m.remote(), 11);
    }

    #[test]
    fn merge_is_componentwise() {
        let mut a = miss_breakdown();
        a.merge(&miss_breakdown());
        assert_eq!(a.total(), 30);
        assert_eq!(a.cold, 4);
    }

    #[test]
    fn rac_hit_rate() {
        let r = RacStats { hits: 42, misses: 58 };
        assert!((r.hit_rate() - 0.42).abs() < 1e-12);
        assert_eq!(RacStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn bars_carry_all_components() {
        let report = SimReport {
            config_summary: "test".into(),
            breakdown: ExecBreakdown {
                instructions: 1000,
                busy_cycles: 10.0,
                l2_hit_cycles: 20.0,
                local_cycles: 30.0,
                remote_clean_cycles: 5.0,
                remote_dirty_cycles: 15.0,
            },
            per_node: vec![],
            misses: miss_breakdown(),
            directory: Default::default(),
            l1i: Default::default(),
            l1d: Default::default(),
            rac: Default::default(),
            upgrades: 0,
            transactions: 0,
            refs_per_node: 0,
            faults: Default::default(),
        };
        let eb = report.exec_bar("x");
        assert_eq!(eb.component("RemStall"), Some(20.0));
        assert_eq!(eb.total(), 80.0);
        let mb = report.miss_bar("x");
        assert_eq!(mb.total(), 15.0);
        assert_eq!(report.mpki(), 15.0);
    }
}
