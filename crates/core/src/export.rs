//! Machine-readable run reports.
//!
//! A run report bundles everything a single run produced into one JSON
//! document: the reproduction manifest, the [`SimReport`] counters, the
//! observer's histograms/epochs/trace summary, and (optionally) the
//! host profile. Everything except the host profile is deterministic:
//! the same run exports the same bytes.

use csim_obs::json::Json;
use csim_obs::{Observer, RunManifest};
use csim_prof::HostProfile;

use crate::report::SimReport;

/// Schema tag written into every run report, bumped on breaking layout
/// changes so downstream readers can dispatch.
pub const RUN_REPORT_SCHEMA: &str = "csim-run-report/v1";

/// Assembles the full run-report document.
///
/// The `host_profile` section is the only nondeterministic part
/// (wall-clock phase timings and, when sampling ran, the host region
/// profile); pass `None` to get a report that is byte-identical across
/// reruns of the same seeds. Determinism gates therefore compare
/// reports produced without a host profile.
pub fn run_report_json(
    report: &SimReport,
    observer: &Observer,
    manifest: &RunManifest,
    host_profile: Option<&HostProfile>,
) -> Json {
    Json::obj([
        ("schema", Json::str(RUN_REPORT_SCHEMA)),
        ("manifest", manifest.to_json()),
        ("report", report.to_json()),
        ("observations", observer.to_json()),
        (
            "host_profile",
            host_profile.map(HostProfile::to_json).unwrap_or(Json::Null),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use csim_config::SystemConfig;
    use csim_obs::json::validate;
    use csim_obs::{ObsConfig, PhaseProfile, TraceConfig};
    use csim_workload::OltpParams;

    use crate::Simulation;

    fn observed_run() -> (SimReport, Observer) {
        let cfg = SystemConfig::paper_base_uni();
        let mut sim = Simulation::with_oltp(&cfg, OltpParams::default())
            .unwrap()
            .with_observer(csim_obs::Observer::new(ObsConfig {
                histograms: true,
                epoch: Some(1_000),
                trace: Some(TraceConfig::default()),
            }));
        let report = sim.run(5_000);
        let observer = sim.observer().clone();
        (report, observer)
    }

    #[test]
    fn run_report_validates_and_carries_every_section() {
        let (report, observer) = observed_run();
        let manifest = RunManifest {
            tool: "csim".into(),
            version: "0.0.0+test".into(),
            config_summary: report.config_summary.clone(),
            config: vec![("nodes".into(), "1".into())],
            seeds: vec![("workload".into(), 42)],
        };
        let mut phases = PhaseProfile::new();
        phases.push("measure", 12.5);
        let host = HostProfile::from_phases(phases);
        let s = run_report_json(&report, &observer, &manifest, Some(&host)).to_string();
        validate(&s).unwrap();
        for section in ["\"schema\":\"csim-run-report/v1\"", "\"manifest\"", "\"report\"", "\"observations\"", "\"host_profile\""]
        {
            assert!(s.contains(section), "missing {section}");
        }
        assert!(s.contains("\"epoch_len\":1000"));
        assert!(s.contains("\"regions\":null"), "no sampler ran");
    }

    #[test]
    fn deterministic_without_a_host_profile() {
        let (report_a, obs_a) = observed_run();
        let (report_b, obs_b) = observed_run();
        let manifest = RunManifest::default();
        let a = run_report_json(&report_a, &obs_a, &manifest, None).to_string();
        let b = run_report_json(&report_b, &obs_b, &manifest, None).to_string();
        assert_eq!(a, b, "same seeds must export the same bytes");
        assert!(a.contains("\"host_profile\":null"));
    }
}
