//! The full-system memory simulator.
//!
//! This crate is the equivalent of the paper's SimOS-Alpha memory-system
//! study harness: it drives per-node reference streams (normally the
//! synthetic OLTP workload from `csim-workload`) through each node's
//! L1I/L1D/L2 hierarchy (plus an optional remote access cache), maintains
//! coherence through the full-map directory of `csim-coherence`, charges
//! the latencies of the configuration's row in the paper's Figure 3, and
//! accumulates the two outputs every figure of the paper is built from:
//!
//! * an execution-time breakdown (CPU / L2Hit / LocalStall / RemoteStall),
//! * an L2 miss breakdown (instruction vs data × local / 2-hop / 3-hop).
//!
//! # Example
//!
//! ```
//! use csim_config::SystemConfig;
//! use csim_core::Simulation;
//! use csim_workload::OltpParams;
//!
//! let cfg = SystemConfig::paper_base_uni();
//! let mut sim = Simulation::with_oltp(&cfg, OltpParams::default())?;
//! sim.warm_up(100_000);
//! let report = sim.run(100_000);
//! assert!(report.breakdown.total_cycles() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod error;
mod export;
mod report;
mod sim;

pub use error::{CoherenceViolation, SimError};
pub use export::{run_report_json, RUN_REPORT_SCHEMA};
pub use report::{MissBreakdown, RacStats, SimReport};
pub use sim::Simulation;
