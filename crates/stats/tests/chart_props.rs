//! Randomized property tests for the reporting layer (deterministic
//! [`SimRng`]-driven cases; no external crates).

use csim_stats::{Bar, BarChart, TextTable};
use csim_trace::SimRng;

/// 1..=5 components of (short lowercase name, value in [0, 1e6)).
fn random_components(rng: &mut SimRng) -> Vec<(String, f64)> {
    let n = rng.gen_range_usize(1..6);
    (0..n)
        .map(|_| {
            let len = rng.gen_range_usize(1..9);
            let name: String =
                (0..len).map(|_| (b'a' + rng.gen_range(0..26) as u8) as char).collect();
            (name, rng.gen_f64() * 1e6)
        })
        .collect()
}

fn random_chart(rng: &mut SimRng, title: &str, label_prefix: &str, max_bars: usize) -> BarChart {
    let n_bars = rng.gen_range_usize(1..max_bars + 1);
    let mut chart = BarChart::new(title);
    for i in 0..n_bars {
        let mut bar = Bar::new(format!("{label_prefix}{i}"));
        for (name, value) in random_components(rng) {
            bar = bar.with(name, value);
        }
        chart.push(bar);
    }
    chart
}

#[test]
fn normalization_sets_first_bar_to_100() {
    let mut rng = SimRng::seed_from_u64(0xBA5);
    for _ in 0..200 {
        let chart = random_chart(&mut rng, "t", "b", 8);
        let norm = chart.normalized_to_first();
        let first_total = chart.bars()[0].total();
        if first_total > 0.0 {
            assert!((norm.bars()[0].total() - 100.0).abs() < 1e-6);
            // Ratios between bars are preserved.
            for (orig, normed) in chart.bars().iter().zip(norm.bars()) {
                let expected = orig.total() / first_total * 100.0;
                assert!((normed.total() - expected).abs() < 1e-6);
            }
        } else {
            assert_eq!(norm, chart);
        }
    }
}

#[test]
fn render_never_panics_and_shows_every_label() {
    let mut rng = SimRng::seed_from_u64(0x4E4D);
    for _ in 0..100 {
        let chart = random_chart(&mut rng, "render", "label", 6);
        let width = rng.gen_range_usize(1..120);
        let s = chart.render(width);
        for i in 0..chart.bars().len() {
            let label = format!("label{i}");
            assert!(s.contains(&label), "missing {label}");
        }
    }
}

#[test]
fn csv_has_one_row_per_component() {
    let mut rng = SimRng::seed_from_u64(0xC57);
    for _ in 0..200 {
        let chart = random_chart(&mut rng, "csv", "b", 6);
        let component_count: usize = chart.bars().iter().map(|b| b.components().len()).sum();
        let csv = chart.to_csv();
        assert_eq!(csv.lines().count(), component_count + 1);
    }
}

#[test]
fn tables_render_rectangularly() {
    let mut rng = SimRng::seed_from_u64(0x7AB);
    for _ in 0..100 {
        let n_rows = rng.gen_range_usize(0..10);
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        for _ in 0..n_rows {
            let row: Vec<String> = (0..3)
                .map(|_| {
                    let len = rng.gen_range_usize(0..11);
                    (0..len).map(|_| (b'a' + rng.gen_range(0..26) as u8) as char).collect()
                })
                .collect();
            t.row(row);
        }
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), n_rows + 2);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }
}
