//! Property tests for the reporting layer.

use proptest::prelude::*;

use csim_stats::{Bar, BarChart, TextTable};

fn bar_strategy() -> impl Strategy<Value = Vec<(String, f64)>> {
    prop::collection::vec(("[a-z]{1,8}", 0.0f64..1e6), 1..6)
}

proptest! {
    #[test]
    fn normalization_sets_first_bar_to_100(
        bars in prop::collection::vec(bar_strategy(), 1..8),
    ) {
        let mut chart = BarChart::new("t");
        for (i, components) in bars.iter().enumerate() {
            let mut bar = Bar::new(format!("b{i}"));
            for (name, value) in components {
                bar = bar.with(name.clone(), *value);
            }
            chart.push(bar);
        }
        let norm = chart.normalized_to_first();
        let first_total = chart.bars()[0].total();
        if first_total > 0.0 {
            prop_assert!((norm.bars()[0].total() - 100.0).abs() < 1e-6);
            // Ratios between bars are preserved.
            for (orig, normed) in chart.bars().iter().zip(norm.bars()) {
                let expected = orig.total() / first_total * 100.0;
                prop_assert!((normed.total() - expected).abs() < 1e-6);
            }
        } else {
            prop_assert_eq!(norm, chart);
        }
    }

    #[test]
    fn render_never_panics_and_shows_every_label(
        bars in prop::collection::vec(bar_strategy(), 1..6),
        width in 1usize..120,
    ) {
        let mut chart = BarChart::new("render");
        for (i, components) in bars.iter().enumerate() {
            let mut bar = Bar::new(format!("label{i}"));
            for (name, value) in components {
                bar = bar.with(name.clone(), *value);
            }
            chart.push(bar);
        }
        let s = chart.render(width);
        for i in 0..bars.len() {
            let label = format!("label{i}");
            prop_assert!(s.contains(&label), "missing {}", label);
        }
    }

    #[test]
    fn csv_has_one_row_per_component(
        bars in prop::collection::vec(bar_strategy(), 1..6),
    ) {
        let mut chart = BarChart::new("csv");
        let mut component_count = 0;
        for (i, components) in bars.iter().enumerate() {
            let mut bar = Bar::new(format!("b{i}"));
            for (name, value) in components {
                bar = bar.with(name.clone(), *value);
                component_count += 1;
            }
            chart.push(bar);
        }
        let csv = chart.to_csv();
        prop_assert_eq!(csv.lines().count(), component_count + 1);
    }

    #[test]
    fn tables_render_rectangularly(
        rows in prop::collection::vec(
            prop::collection::vec("[a-z0-9]{0,10}", 3..=3), 0..10),
    ) {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        for row in &rows {
            t.row(row.clone());
        }
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        prop_assert_eq!(lines.len(), rows.len() + 2);
        prop_assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }
}
