//! Line charts for time-series (epoch) data.
//!
//! The bar charts reproduce the paper's figures; line charts serve the
//! observability layer: one [`LineChart`] plots a handful of named
//! [`Series`] (IPC per epoch, NACK rate per epoch, ...) over a shared
//! x-axis, rendered by [`crate::svg::render_lines`].

/// One named polyline: ordered `(x, y)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series { name: name.into(), points: Vec::new() }
    }

    /// Appends a point (builder style).
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is not finite.
    pub fn with(mut self, x: f64, y: f64) -> Self {
        self.push(x, y);
        self
    }

    /// Appends a point in place.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is not finite.
    pub fn push(&mut self, x: f64, y: f64) {
        assert!(x.is_finite() && y.is_finite(), "line-chart points must be finite");
        self.points.push((x, y));
    }

    /// The series name (legend label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The points, in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// A chart of one or more line series over a shared pair of axes.
#[derive(Clone, Debug, PartialEq)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

impl LineChart {
    /// Creates an empty chart.
    pub fn new(title: impl Into<String>) -> Self {
        LineChart {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            series: Vec::new(),
        }
    }

    /// Sets the axis labels (builder style).
    pub fn with_axes(mut self, x_label: impl Into<String>, y_label: impl Into<String>) -> Self {
        self.x_label = x_label.into();
        self.y_label = y_label.into();
        self
    }

    /// Appends a series (builder style).
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Appends a series in place.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// The chart title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The x-axis label.
    pub fn x_label(&self) -> &str {
        &self.x_label
    }

    /// The y-axis label.
    pub fn y_label(&self) -> &str {
        &self.y_label
    }

    /// The series, in insertion order.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// The `[min, max]` ranges over every point of every series, or
    /// `None` when the chart holds no points. Degenerate ranges (a
    /// single x or a constant y) are widened so callers can always
    /// divide by the span.
    pub fn ranges(&self) -> Option<((f64, f64), (f64, f64))> {
        let mut pts = self.series.iter().flat_map(|s| s.points.iter().copied());
        let first = pts.next()?;
        let mut r = ((first.0, first.0), (first.1, first.1));
        for (x, y) in pts {
            r.0 .0 = r.0 .0.min(x);
            r.0 .1 = r.0 .1.max(x);
            r.1 .0 = r.1 .0.min(y);
            r.1 .1 = r.1 .1.max(y);
        }
        if r.0 .1 - r.0 .0 == 0.0 {
            r.0 .1 += 1.0;
        }
        if r.1 .1 - r.1 .0 == 0.0 {
            r.1 .1 += 1.0;
        }
        // A y-axis that starts at zero reads better for rates/counts;
        // keep the data's floor only when it is negative.
        if r.1 .0 > 0.0 {
            r.1 .0 = 0.0;
        }
        Some(r)
    }

    /// Emits the chart as CSV: `series,x,y` rows with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for (x, y) in &s.points {
                out.push_str(&format!("{},{},{}\n", s.name, x, y));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> LineChart {
        LineChart::new("ipc")
            .with_axes("epoch", "IPC")
            .with_series(Series::new("node0").with(0.0, 0.5).with(1.0, 0.7))
            .with_series(Series::new("node1").with(0.0, 0.4).with(1.0, 0.9))
    }

    #[test]
    fn ranges_cover_all_series_and_pin_y_to_zero() {
        let ((x0, x1), (y0, y1)) = chart().ranges().unwrap();
        assert_eq!((x0, x1), (0.0, 1.0));
        assert_eq!(y0, 0.0, "positive data still plots from zero");
        assert_eq!(y1, 0.9);
    }

    #[test]
    fn empty_chart_has_no_ranges() {
        assert!(LineChart::new("e").ranges().is_none());
        assert!(LineChart::new("e").with_series(Series::new("s")).ranges().is_none());
    }

    #[test]
    fn degenerate_ranges_are_widened() {
        let c = LineChart::new("one").with_series(Series::new("s").with(5.0, 2.0));
        let ((x0, x1), (y0, y1)) = c.ranges().unwrap();
        assert!(x1 > x0);
        assert!(y1 > y0);
    }

    #[test]
    fn negative_floors_are_kept() {
        let c = LineChart::new("neg").with_series(Series::new("s").with(0.0, -2.0).with(1.0, 3.0));
        let ((_, _), (y0, _)) = c.ranges().unwrap();
        assert_eq!(y0, -2.0);
    }

    #[test]
    fn csv_lists_every_point() {
        let csv = chart().to_csv();
        assert!(csv.starts_with("series,x,y\n"));
        assert!(csv.contains("node0,0,0.5\n"));
        assert!(csv.contains("node1,1,0.9\n"));
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_points_rejected() {
        let _ = Series::new("bad").with(0.0, f64::NAN);
    }
}
