//! SVG rendering of stacked bar charts and line charts.
//!
//! The ASCII charts are for terminals; this renderer writes the same
//! [`BarChart`] (and the observability layer's [`LineChart`]) as
//! self-contained SVG files for papers and READMEs. No external
//! dependencies: the SVG is assembled by hand.

use crate::chart::BarChart;
use crate::line::LineChart;

/// Palette for stacked components (colorblind-safe Okabe-Ito subset).
const COLORS: [&str; 8] =
    ["#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9", "#F0E442", "#999999"];

const BAR_HEIGHT: f64 = 22.0;
const BAR_GAP: f64 = 8.0;
const LABEL_WIDTH: f64 = 130.0;
const VALUE_WIDTH: f64 = 60.0;
const PLOT_WIDTH: f64 = 420.0;
const TOP: f64 = 40.0;
const LEGEND_HEIGHT: f64 = 26.0;

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders a chart as a standalone SVG document.
///
/// # Example
///
/// ```
/// use csim_stats::{svg, Bar, BarChart};
/// let chart = BarChart::new("demo")
///     .with_bar(Bar::new("Base").with("CPU", 30.0).with("Stall", 70.0));
/// let doc = svg::render(&chart);
/// assert!(doc.starts_with("<svg"));
/// assert!(doc.contains("Base"));
/// ```
pub fn render(chart: &BarChart) -> String {
    let bars = chart.bars();
    let max_total = bars.iter().map(|b| b.total()).fold(0.0_f64, f64::max).max(1e-12);
    let height = TOP + bars.len() as f64 * (BAR_HEIGHT + BAR_GAP) + LEGEND_HEIGHT + 10.0;
    let width = LABEL_WIDTH + PLOT_WIDTH + VALUE_WIDTH + 20.0;

    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\" font-family=\"sans-serif\" font-size=\"12\">\n"
    );
    out.push_str(&format!(
        "  <text x=\"10\" y=\"20\" font-size=\"14\" font-weight=\"bold\">{}</text>\n",
        escape(chart.title())
    ));

    for (i, bar) in bars.iter().enumerate() {
        let y = TOP + i as f64 * (BAR_HEIGHT + BAR_GAP);
        out.push_str(&format!(
            "  <text x=\"{:.0}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
            LABEL_WIDTH - 6.0,
            y + BAR_HEIGHT * 0.72,
            escape(bar.label())
        ));
        let mut x = LABEL_WIDTH;
        for (idx, (name, value)) in bar.components().iter().enumerate() {
            let w = value / max_total * PLOT_WIDTH;
            if w > 0.0 {
                out.push_str(&format!(
                    "  <rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{BAR_HEIGHT:.0}\" \
                     fill=\"{}\"><title>{}: {:.1}</title></rect>\n",
                    COLORS[idx % COLORS.len()],
                    escape(name),
                    value
                ));
            }
            x += w;
        }
        out.push_str(&format!(
            "  <text x=\"{:.1}\" y=\"{:.1}\">{:.1}</text>\n",
            x + 6.0,
            y + BAR_HEIGHT * 0.72,
            bar.total()
        ));
    }

    if let Some(first) = bars.first() {
        let y = TOP + bars.len() as f64 * (BAR_HEIGHT + BAR_GAP) + 14.0;
        let mut x = LABEL_WIDTH;
        for (idx, (name, _)) in first.components().iter().enumerate() {
            out.push_str(&format!(
                "  <rect x=\"{x:.1}\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"{}\"/>\n",
                y - 9.0,
                COLORS[idx % COLORS.len()]
            ));
            out.push_str(&format!(
                "  <text x=\"{:.1}\" y=\"{y:.1}\">{}</text>\n",
                x + 14.0,
                escape(name)
            ));
            x += 14.0 + 7.0 * name.len() as f64 + 18.0;
        }
    }

    out.push_str("</svg>\n");
    out
}

/// Renders the chart to a file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_file(chart: &BarChart, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, render(chart))
}

const LINE_PLOT_W: f64 = 520.0;
const LINE_PLOT_H: f64 = 220.0;
const LINE_LEFT: f64 = 64.0;
const LINE_TOP: f64 = 36.0;
const LINE_BOTTOM: f64 = 46.0;
const TICKS: usize = 5;

/// A tick label: enough digits to tell ticks apart, no trailing noise.
fn tick_label(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e9 {
        format!("{v:.0}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Renders a line chart as a standalone SVG document: one polyline per
/// series in the shared Okabe-Ito palette, x/y axes with ticks and grid
/// lines, and a legend.
///
/// # Example
///
/// ```
/// use csim_stats::{svg, LineChart, Series};
/// let chart = LineChart::new("IPC per epoch")
///     .with_axes("epoch", "IPC")
///     .with_series(Series::new("ipc").with(0.0, 0.4).with(1.0, 0.6));
/// let doc = svg::render_lines(&chart);
/// assert!(doc.starts_with("<svg"));
/// assert!(doc.contains("polyline"));
/// ```
pub fn render_lines(chart: &LineChart) -> String {
    let width = LINE_LEFT + LINE_PLOT_W + 24.0;
    let height = LINE_TOP + LINE_PLOT_H + LINE_BOTTOM + 18.0 * chart.series().len() as f64;
    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\" font-family=\"sans-serif\" font-size=\"11\">\n"
    );
    out.push_str(&format!(
        "  <text x=\"10\" y=\"20\" font-size=\"14\" font-weight=\"bold\">{}</text>\n",
        escape(chart.title())
    ));
    let Some(((x0, x1), (y0, y1))) = chart.ranges() else {
        out.push_str("  <text x=\"10\" y=\"40\">(no data)</text>\n</svg>\n");
        return out;
    };
    let sx = |x: f64| LINE_LEFT + (x - x0) / (x1 - x0) * LINE_PLOT_W;
    let sy = |y: f64| LINE_TOP + LINE_PLOT_H - (y - y0) / (y1 - y0) * LINE_PLOT_H;

    // Axes, ticks and horizontal grid lines.
    out.push_str(&format!(
        "  <rect x=\"{LINE_LEFT}\" y=\"{LINE_TOP}\" width=\"{LINE_PLOT_W}\" \
         height=\"{LINE_PLOT_H}\" fill=\"none\" stroke=\"#333333\"/>\n"
    ));
    for t in 0..=TICKS {
        let frac = t as f64 / TICKS as f64;
        let (xv, yv) = (x0 + frac * (x1 - x0), y0 + frac * (y1 - y0));
        let (px, py) = (sx(xv), sy(yv));
        if t > 0 && t < TICKS {
            out.push_str(&format!(
                "  <line x1=\"{LINE_LEFT}\" y1=\"{py:.1}\" x2=\"{:.1}\" y2=\"{py:.1}\" \
                 stroke=\"#dddddd\"/>\n",
                LINE_LEFT + LINE_PLOT_W
            ));
        }
        out.push_str(&format!(
            "  <text x=\"{px:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n",
            LINE_TOP + LINE_PLOT_H + 16.0,
            tick_label(xv)
        ));
        out.push_str(&format!(
            "  <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
            LINE_LEFT - 6.0,
            py + 4.0,
            tick_label(yv)
        ));
    }
    if !chart.x_label().is_empty() {
        out.push_str(&format!(
            "  <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n",
            LINE_LEFT + LINE_PLOT_W / 2.0,
            LINE_TOP + LINE_PLOT_H + 34.0,
            escape(chart.x_label())
        ));
    }
    if !chart.y_label().is_empty() {
        out.push_str(&format!(
            "  <text x=\"14\" y=\"{:.1}\" text-anchor=\"middle\" \
             transform=\"rotate(-90 14 {:.1})\">{}</text>\n",
            LINE_TOP + LINE_PLOT_H / 2.0,
            LINE_TOP + LINE_PLOT_H / 2.0,
            escape(chart.y_label())
        ));
    }

    // One polyline per series, plus a legend row each.
    for (idx, series) in chart.series().iter().enumerate() {
        let color = COLORS[idx % COLORS.len()];
        if !series.points().is_empty() {
            let pts: Vec<String> = series
                .points()
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                .collect();
            out.push_str(&format!(
                "  <polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" \
                 stroke-width=\"1.6\"/>\n",
                pts.join(" ")
            ));
        }
        let ly = LINE_TOP + LINE_PLOT_H + LINE_BOTTOM + 18.0 * idx as f64;
        out.push_str(&format!(
            "  <line x1=\"{LINE_LEFT}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" \
             stroke=\"{color}\" stroke-width=\"3\"/>\n",
            ly - 4.0,
            LINE_LEFT + 18.0,
            ly - 4.0
        ));
        out.push_str(&format!(
            "  <text x=\"{:.1}\" y=\"{ly:.1}\">{}</text>\n",
            LINE_LEFT + 24.0,
            escape(series.name())
        ));
    }

    out.push_str("</svg>\n");
    out
}

/// Renders a line chart to a file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_lines_file(
    chart: &LineChart,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    std::fs::write(path, render_lines(chart))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::Bar;

    fn chart() -> BarChart {
        BarChart::new("t <1>")
            .with_bar(Bar::new("a&b").with("CPU", 25.0).with("Stall", 75.0))
            .with_bar(Bar::new("c").with("CPU", 25.0).with("Stall", 25.0))
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let doc = render(&chart());
        assert!(doc.starts_with("<svg"));
        assert!(doc.trim_end().ends_with("</svg>"));
        assert_eq!(doc.matches("<rect").count(), 4 + 2); // 4 segments + 2 legend swatches
    }

    #[test]
    fn special_characters_are_escaped() {
        let doc = render(&chart());
        assert!(doc.contains("t &lt;1&gt;"));
        assert!(doc.contains("a&amp;b"));
        assert!(!doc.contains("a&b<"));
    }

    #[test]
    fn widths_are_proportional() {
        let doc = render(&chart());
        // First bar total 100 spans the full plot width; second bar's
        // stall segment is a quarter of it.
        assert!(doc.contains("width=\"105.0\"")); // 25/100 * 420
        assert!(doc.contains("width=\"315.0\"")); // 75/100 * 420
    }

    #[test]
    fn empty_chart_renders_without_panic() {
        let doc = render(&BarChart::new("empty"));
        assert!(doc.contains("empty"));
    }

    fn line_chart() -> LineChart {
        use crate::line::Series;
        LineChart::new("ipc <t>")
            .with_axes("epoch", "IPC")
            .with_series(Series::new("a&b").with(0.0, 0.2).with(1.0, 0.8).with(2.0, 0.5))
            .with_series(Series::new("flat").with(0.0, 0.4).with(2.0, 0.4))
    }

    #[test]
    fn line_svg_draws_one_polyline_per_series() {
        let doc = render_lines(&line_chart());
        assert!(doc.starts_with("<svg"));
        assert!(doc.trim_end().ends_with("</svg>"));
        assert_eq!(doc.matches("<polyline").count(), 2);
        assert!(doc.contains("ipc &lt;t&gt;"));
        assert!(doc.contains("a&amp;b"));
        assert!(doc.contains(">epoch</text>"));
        assert!(doc.contains(">IPC</text>"));
    }

    #[test]
    fn line_svg_scales_points_into_the_plot_box() {
        let doc = render_lines(&line_chart());
        // y max 0.8 maps to the plot top, y floor 0 to the bottom.
        assert!(doc.contains("324.0,36.0"), "peak point must touch the top: {doc}");
        // x max 2.0 maps to the right edge (64 + 520).
        assert!(doc.contains("584.0,"), "last point must touch the right edge");
    }

    #[test]
    fn empty_line_chart_renders_placeholder() {
        let doc = render_lines(&LineChart::new("empty"));
        assert!(doc.contains("(no data)"));
        assert!(doc.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn line_write_file_round_trips() {
        let dir = std::env::temp_dir().join("csim_svg_line_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lines.svg");
        write_lines_file(&line_chart(), &path).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("polyline"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn write_file_round_trips(){
        let dir = std::env::temp_dir().join("csim_svg_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chart.svg");
        write_file(&chart(), &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("</svg>"));
        std::fs::remove_file(path).ok();
    }
}
