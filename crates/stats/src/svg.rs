//! SVG rendering of stacked bar charts.
//!
//! The ASCII charts are for terminals; this renderer writes the same
//! [`BarChart`] as a self-contained SVG file for papers and READMEs. No
//! external dependencies: the SVG is assembled by hand.

use crate::chart::BarChart;

/// Palette for stacked components (colorblind-safe Okabe-Ito subset).
const COLORS: [&str; 8] =
    ["#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9", "#F0E442", "#999999"];

const BAR_HEIGHT: f64 = 22.0;
const BAR_GAP: f64 = 8.0;
const LABEL_WIDTH: f64 = 130.0;
const VALUE_WIDTH: f64 = 60.0;
const PLOT_WIDTH: f64 = 420.0;
const TOP: f64 = 40.0;
const LEGEND_HEIGHT: f64 = 26.0;

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders a chart as a standalone SVG document.
///
/// # Example
///
/// ```
/// use csim_stats::{svg, Bar, BarChart};
/// let chart = BarChart::new("demo")
///     .with_bar(Bar::new("Base").with("CPU", 30.0).with("Stall", 70.0));
/// let doc = svg::render(&chart);
/// assert!(doc.starts_with("<svg"));
/// assert!(doc.contains("Base"));
/// ```
pub fn render(chart: &BarChart) -> String {
    let bars = chart.bars();
    let max_total = bars.iter().map(|b| b.total()).fold(0.0_f64, f64::max).max(1e-12);
    let height = TOP + bars.len() as f64 * (BAR_HEIGHT + BAR_GAP) + LEGEND_HEIGHT + 10.0;
    let width = LABEL_WIDTH + PLOT_WIDTH + VALUE_WIDTH + 20.0;

    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\" font-family=\"sans-serif\" font-size=\"12\">\n"
    );
    out.push_str(&format!(
        "  <text x=\"10\" y=\"20\" font-size=\"14\" font-weight=\"bold\">{}</text>\n",
        escape(chart.title())
    ));

    for (i, bar) in bars.iter().enumerate() {
        let y = TOP + i as f64 * (BAR_HEIGHT + BAR_GAP);
        out.push_str(&format!(
            "  <text x=\"{:.0}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
            LABEL_WIDTH - 6.0,
            y + BAR_HEIGHT * 0.72,
            escape(bar.label())
        ));
        let mut x = LABEL_WIDTH;
        for (idx, (name, value)) in bar.components().iter().enumerate() {
            let w = value / max_total * PLOT_WIDTH;
            if w > 0.0 {
                out.push_str(&format!(
                    "  <rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{w:.1}\" height=\"{BAR_HEIGHT:.0}\" \
                     fill=\"{}\"><title>{}: {:.1}</title></rect>\n",
                    COLORS[idx % COLORS.len()],
                    escape(name),
                    value
                ));
            }
            x += w;
        }
        out.push_str(&format!(
            "  <text x=\"{:.1}\" y=\"{:.1}\">{:.1}</text>\n",
            x + 6.0,
            y + BAR_HEIGHT * 0.72,
            bar.total()
        ));
    }

    if let Some(first) = bars.first() {
        let y = TOP + bars.len() as f64 * (BAR_HEIGHT + BAR_GAP) + 14.0;
        let mut x = LABEL_WIDTH;
        for (idx, (name, _)) in first.components().iter().enumerate() {
            out.push_str(&format!(
                "  <rect x=\"{x:.1}\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"{}\"/>\n",
                y - 9.0,
                COLORS[idx % COLORS.len()]
            ));
            out.push_str(&format!(
                "  <text x=\"{:.1}\" y=\"{y:.1}\">{}</text>\n",
                x + 14.0,
                escape(name)
            ));
            x += 14.0 + 7.0 * name.len() as f64 + 18.0;
        }
    }

    out.push_str("</svg>\n");
    out
}

/// Renders the chart to a file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_file(chart: &BarChart, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, render(chart))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::Bar;

    fn chart() -> BarChart {
        BarChart::new("t <1>")
            .with_bar(Bar::new("a&b").with("CPU", 25.0).with("Stall", 75.0))
            .with_bar(Bar::new("c").with("CPU", 25.0).with("Stall", 25.0))
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let doc = render(&chart());
        assert!(doc.starts_with("<svg"));
        assert!(doc.trim_end().ends_with("</svg>"));
        assert_eq!(doc.matches("<rect").count(), 4 + 2); // 4 segments + 2 legend swatches
    }

    #[test]
    fn special_characters_are_escaped() {
        let doc = render(&chart());
        assert!(doc.contains("t &lt;1&gt;"));
        assert!(doc.contains("a&amp;b"));
        assert!(!doc.contains("a&b<"));
    }

    #[test]
    fn widths_are_proportional() {
        let doc = render(&chart());
        // First bar total 100 spans the full plot width; second bar's
        // stall segment is a quarter of it.
        assert!(doc.contains("width=\"105.0\"")); // 25/100 * 420
        assert!(doc.contains("width=\"315.0\"")); // 75/100 * 420
    }

    #[test]
    fn empty_chart_renders_without_panic() {
        let doc = render(&BarChart::new("empty"));
        assert!(doc.contains("empty"));
    }

    #[test]
    fn write_file_round_trips(){
        let dir = std::env::temp_dir().join("csim_svg_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chart.svg");
        write_file(&chart(), &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("</svg>"));
        std::fs::remove_file(path).ok();
    }
}
