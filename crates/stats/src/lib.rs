//! Reporting utilities for the chip-level-integration study.
//!
//! The paper presents its results as stacked bar charts of *normalized
//! execution time* (components: CPU, L2Hit, LocalStall, RemoteStall) and
//! *normalized L2 misses* (components: instruction/data by service class),
//! always scaled so the leftmost bar is 100. This crate provides the
//! presentation layer used by the experiment harnesses:
//!
//! * [`Bar`] / [`BarChart`] — stacked bars with named components,
//!   normalization and ASCII rendering.
//! * [`TextTable`] — aligned text tables for paper-vs-measured summaries.
//! * CSV emission for downstream plotting.
//!
//! # Example
//!
//! ```
//! use csim_stats::{Bar, BarChart};
//!
//! let chart = BarChart::new("execution time")
//!     .with_bar(Bar::new("Base").with("CPU", 30.0).with("Stall", 70.0))
//!     .with_bar(Bar::new("All").with("CPU", 30.0).with("Stall", 40.0));
//! let norm = chart.normalized_to_first();
//! assert_eq!(norm.bars()[0].total(), 100.0);
//! assert!((norm.bars()[1].total() - 70.0).abs() < 1e-9);
//! println!("{}", norm.render(50));
//! ```

#![forbid(unsafe_code)]

mod chart;
mod line;
pub mod svg;
mod table;

pub use chart::{Bar, BarChart};
pub use line::{LineChart, Series};
pub use table::TextTable;
