//! Stacked bar charts in the paper's style.

/// One stacked bar: a label plus named, ordered components.
#[derive(Clone, Debug, PartialEq)]
pub struct Bar {
    label: String,
    components: Vec<(String, f64)>,
}

impl Bar {
    /// Creates an empty bar.
    pub fn new(label: impl Into<String>) -> Self {
        Bar { label: label.into(), components: Vec::new() }
    }

    /// Appends a component (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn with(mut self, name: impl Into<String>, value: f64) -> Self {
        assert!(value.is_finite() && value >= 0.0, "component values must be finite and >= 0");
        self.components.push((name.into(), value));
        self
    }

    /// The bar's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The ordered components.
    pub fn components(&self) -> &[(String, f64)] {
        &self.components
    }

    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.components.iter().map(|(_, v)| v).sum()
    }

    /// Returns the value of the named component, if present.
    pub fn component(&self, name: &str) -> Option<f64> {
        self.components.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    fn scaled(&self, factor: f64) -> Bar {
        Bar {
            label: self.label.clone(),
            components: self.components.iter().map(|(n, v)| (n.clone(), v * factor)).collect(),
        }
    }
}

/// A chart of stacked bars, rendered the way the paper prints its figures:
/// the first bar is typically normalized to 100.
#[derive(Clone, Debug, PartialEq)]
pub struct BarChart {
    title: String,
    bars: Vec<Bar>,
}

impl BarChart {
    /// Creates an empty chart.
    pub fn new(title: impl Into<String>) -> Self {
        BarChart { title: title.into(), bars: Vec::new() }
    }

    /// Appends a bar (builder style).
    pub fn with_bar(mut self, bar: Bar) -> Self {
        self.bars.push(bar);
        self
    }

    /// Appends a bar in place.
    pub fn push(&mut self, bar: Bar) {
        self.bars.push(bar);
    }

    /// The chart title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The bars, in insertion order.
    pub fn bars(&self) -> &[Bar] {
        &self.bars
    }

    /// A copy rescaled so the *first* bar totals 100 (the paper's
    /// convention). A chart whose first bar totals zero is returned
    /// unchanged.
    pub fn normalized_to_first(&self) -> BarChart {
        let Some(first) = self.bars.first() else { return self.clone() };
        let total = first.total();
        if total == 0.0 {
            return self.clone();
        }
        let factor = 100.0 / total;
        BarChart {
            title: self.title.clone(),
            bars: self.bars.iter().map(|b| b.scaled(factor)).collect(),
        }
    }

    /// The symbols used to draw stacked components, by component position.
    const PALETTE: [char; 8] = ['#', '=', '+', '-', 'o', 'x', '*', '~'];

    /// Renders horizontal stacked bars as ASCII art. `width` is the
    /// character width corresponding to the largest bar total.
    ///
    /// Each component position is drawn with a symbol from a fixed
    /// palette; a legend line follows the chart.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn render(&self, width: usize) -> String {
        assert!(width > 0, "chart width must be nonzero");
        let max_total = self.bars.iter().map(Bar::total).fold(0.0_f64, f64::max);
        let label_w = self.bars.iter().map(|b| b.label.len()).max().unwrap_or(0).max(5);
        let mut out = format!("== {} ==\n", self.title);
        for bar in &self.bars {
            let mut row = String::new();
            for (idx, (_, value)) in bar.components.iter().enumerate() {
                let ch = Self::PALETTE[idx % Self::PALETTE.len()];
                let cells = if max_total > 0.0 {
                    (value / max_total * width as f64).round() as usize
                } else {
                    0
                };
                row.extend(std::iter::repeat_n(ch, cells));
            }
            out.push_str(&format!("{:<label_w$} |{:<width$}| {:7.1}\n", bar.label, row, bar.total()));
        }
        if let Some(bar) = self.bars.first() {
            let legend: Vec<String> = bar
                .components
                .iter()
                .enumerate()
                .map(|(idx, (n, _))| format!("{}={}", Self::PALETTE[idx % Self::PALETTE.len()], n))
                .collect();
            out.push_str(&format!("legend: {}\n", legend.join(" ")));
        }
        out
    }

    /// Emits the chart as CSV: `label,component,value` rows with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,component,value\n");
        for bar in &self.bars {
            for (name, value) in &bar.components {
                out.push_str(&format!("{},{},{}\n", bar.label, name, value));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        BarChart::new("t")
            .with_bar(Bar::new("a").with("CPU", 20.0).with("Stall", 30.0))
            .with_bar(Bar::new("b").with("CPU", 20.0).with("Stall", 5.0))
    }

    #[test]
    fn totals_sum_components() {
        let c = chart();
        assert_eq!(c.bars()[0].total(), 50.0);
        assert_eq!(c.bars()[1].total(), 25.0);
    }

    #[test]
    fn normalization_scales_all_bars_by_first() {
        let n = chart().normalized_to_first();
        assert_eq!(n.bars()[0].total(), 100.0);
        assert_eq!(n.bars()[1].total(), 50.0);
        assert_eq!(n.bars()[1].component("CPU"), Some(40.0));
    }

    #[test]
    fn normalizing_empty_or_zero_chart_is_identity() {
        let empty = BarChart::new("e");
        assert_eq!(empty.normalized_to_first(), empty);
        let zero = BarChart::new("z").with_bar(Bar::new("a").with("x", 0.0));
        assert_eq!(zero.normalized_to_first(), zero);
    }

    #[test]
    fn component_lookup() {
        let b = Bar::new("x").with("CPU", 1.0).with("L2Hit", 2.0);
        assert_eq!(b.component("L2Hit"), Some(2.0));
        assert_eq!(b.component("nope"), None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_component_rejected() {
        let _ = Bar::new("x").with("CPU", -1.0);
    }

    #[test]
    fn render_contains_labels_and_totals() {
        let s = chart().render(40);
        assert!(s.contains("== t =="));
        assert!(s.contains("a "));
        assert!(s.contains("50.0"));
        assert!(s.contains("legend: #=CPU ==Stall"));
    }

    #[test]
    fn render_bar_lengths_are_proportional() {
        let s = chart().render(40);
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str, ch: char| l.chars().filter(|&c| c == ch).count();
        // Bar "a": 20/50 and 30/50 of 40 cells.
        assert_eq!(count(lines[1], '#'), 16);
        assert_eq!(count(lines[1], '='), 24);
        // Bar "b" is half the size.
        assert_eq!(count(lines[2], '#'), 16);
        assert_eq!(count(lines[2], '='), 4);
    }

    #[test]
    fn csv_round_trips_values() {
        let csv = chart().to_csv();
        assert!(csv.starts_with("label,component,value\n"));
        assert!(csv.contains("a,CPU,20\n"));
        assert!(csv.contains("b,Stall,5\n"));
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    fn push_appends_like_with_bar() {
        let mut c = BarChart::new("t");
        c.push(Bar::new("only").with("x", 1.0));
        assert_eq!(c.bars().len(), 1);
    }
}
