//! Aligned text tables.

/// A simple aligned text table used by the experiment harnesses for
/// paper-vs-measured summaries.
///
/// # Example
///
/// ```
/// use csim_stats::TextTable;
/// let mut t = TextTable::new(vec!["config", "paper", "measured"]);
/// t.row(vec!["Base".into(), "100".into(), "100.0".into()]);
/// t.row(vec!["All".into(), "70".into(), "71.3".into()]);
/// let s = t.render();
/// assert!(s.contains("config"));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<&str>) -> Self {
        TextTable { header: header.into_iter().map(String::from).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different number of cells than the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with each column padded to its widest cell. The first
    /// column is left-aligned, the rest right-aligned (numeric style).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<w$}", cell, w = *w));
                } else {
                    line.push_str(&format!("{:>w$}", cell, w = *w));
                }
            }
            line.push('\n');
            line
        };
        let mut out = fmt_row(&self.header);
        out.push_str(&format!("{}\n", "-".repeat(widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1))));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Emits the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TextTable {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22.5".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = table().render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
    }

    #[test]
    fn numbers_right_align() {
        let s = table().render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].ends_with("   1"));
        assert!(lines[3].ends_with("22.5"));
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_output() {
        let csv = table().to_csv();
        assert_eq!(csv, "name,value\nalpha,1\nb,22.5\n");
    }

    #[test]
    fn len_and_is_empty() {
        assert!(TextTable::new(vec!["x"]).is_empty());
        assert_eq!(table().len(), 2);
    }
}
