//! The bounded abstract model the checker enumerates.
//!
//! A model state is the directory's view of every line, every node's
//! private cache state for every line, and at most one in-flight request
//! per node (with a bounded NACK/retry budget). That is deliberately
//! coarser than the simulator — no L1/L2 split, no timing, no capacity —
//! because the protocol's correctness argument does not depend on any of
//! those: it depends only on which transitions are taken in which states.
//! `DESIGN.md` §10 records what the abstraction keeps and what it drops.
//!
//! Every transition is executed twice: once against the pure spec in
//! [`crate::spec`], and once against a real [`Directory`] materialized
//! from the pre-state via [`Directory::seed_state`]. Any divergence —
//! in the successor state of *any* line, or in the reported outcome — is
//! a [`Invariant::SpecConformance`](crate::invariants::Invariant)
//! violation with the full evidence in the detail string.

use std::fmt;

use csim_coherence::{Directory, LineState, NodeId, NodeSet};

use crate::invariants::{Invariant, Violation};
use crate::spec;

/// Geometry the model shares with the simulator: 64-byte lines in
/// 8192-byte pages, so consecutive *model* lines are placed on
/// consecutive pages (and therefore consecutive home nodes) by spacing
/// their addresses one page apart.
pub const LINE_SIZE: u64 = 64;
/// See [`LINE_SIZE`].
pub const PAGE_SIZE: u64 = 8192;
const LINES_PER_PAGE: u64 = PAGE_SIZE / LINE_SIZE;

/// The real line address a model line index stands for. Model line `l`
/// lives on page `l`, so its home node is `l % n_nodes` — every home
/// relationship (local, 2-hop, 3-hop) is reachable with ≥2 lines.
pub fn line_addr(line: u8) -> u64 {
    u64::from(line) * LINES_PER_PAGE
}

/// Bounds of one exhaustive exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckConfig {
    /// Node count (2..=4; the state encoding packs owner ids in 2 bits).
    pub nodes: u8,
    /// Distinct cache lines (1..=4), each on its own page/home.
    pub lines: u8,
    /// Whether RAC park/refetch transitions are part of the model.
    pub rac: bool,
    /// NACK/retry budget per in-flight request (0..=7). Each pending
    /// request can be NACKed at most this many times before it must be
    /// serviced, which is how the model bounds retry loops.
    pub max_nacks: u8,
    /// Exploration cap: the checker stops (and reports `truncated`)
    /// after this many distinct states.
    pub max_states: usize,
}

impl CheckConfig {
    /// The smallest interesting machine: 2 nodes, 1 line, RAC on.
    pub fn small() -> Self {
        CheckConfig { nodes: 2, lines: 1, rac: true, max_nacks: 1, max_states: 4_000_000 }
    }

    /// The CI workhorse: 3 nodes, 2 lines, RAC on — large enough to
    /// exercise 3-hop transfers, cross-line interference, and every
    /// home-distance combination.
    pub fn medium() -> Self {
        CheckConfig { nodes: 3, lines: 2, rac: true, max_nacks: 1, max_states: 4_000_000 }
    }

    /// Validates the bounds the state encoding relies on.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first bound violated.
    pub fn validate(&self) -> Result<(), String> {
        if !(2..=4).contains(&self.nodes) {
            return Err(format!("nodes must be 2..=4, got {}", self.nodes));
        }
        if !(1..=4).contains(&self.lines) {
            return Err(format!("lines must be 1..=4, got {}", self.lines));
        }
        if self.max_nacks > 7 {
            return Err(format!("max_nacks must be 0..=7, got {}", self.max_nacks));
        }
        if self.max_states == 0 {
            return Err("max_states must be positive".to_string());
        }
        Ok(())
    }
}

/// A node's private view of one line. There is deliberately no L1/L2
/// distinction: L1⊆L2 inclusion is a cache-hierarchy property, not a
/// directory-protocol property, and is checked at runtime by the
/// simulator's own `verify_coherence` instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheState {
    /// The node holds no copy.
    Invalid,
    /// A read-only copy.
    Shared,
    /// The (unique) dirty copy, resident in the node's L2.
    ModifiedL2,
    /// The dirty copy, parked in the node's RAC.
    ModifiedRac,
}

impl CacheState {
    fn code(self) -> u128 {
        match self {
            CacheState::Invalid => 0,
            CacheState::Shared => 1,
            CacheState::ModifiedL2 => 2,
            CacheState::ModifiedRac => 3,
        }
    }

    fn from_code(code: u128) -> CacheState {
        match code & 0b11 {
            0 => CacheState::Invalid,
            1 => CacheState::Shared,
            2 => CacheState::ModifiedL2,
            _ => CacheState::ModifiedRac,
        }
    }

    /// Whether this is either dirty residence.
    pub(crate) fn is_modified(self) -> bool {
        matches!(self, CacheState::ModifiedL2 | CacheState::ModifiedRac)
    }
}

/// An in-flight miss: the node has asked the directory and is waiting.
/// `nacks_left` is the remaining retry budget; a NACK consumes one, so
/// retry chains terminate by construction and the checker verifies the
/// request is serviceable in every state where it is pending.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Pending {
    /// The requested model line.
    pub line: u8,
    /// Write (or upgrade) rather than read.
    pub write: bool,
    /// Remaining NACKs the fault model may inject.
    pub nacks_left: u8,
}

/// One vertex of the explored state graph.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ModelState {
    /// Directory state per model line.
    pub dir: Vec<LineState>,
    /// Cache state, node-major: `cache[node * lines + line]`.
    pub cache: Vec<CacheState>,
    /// At most one in-flight request per node.
    pub pending: Vec<Option<Pending>>,
}

impl ModelState {
    /// The reset state: everything uncached, every cache empty, nothing
    /// in flight.
    pub fn initial(config: &CheckConfig) -> ModelState {
        ModelState {
            dir: vec![LineState::Uncached; config.lines as usize],
            cache: vec![CacheState::Invalid; config.nodes as usize * config.lines as usize],
            pending: vec![None; config.nodes as usize],
        }
    }

    /// Cache state of `node` for `line`.
    pub fn cache_of(&self, config: &CheckConfig, node: u8, line: u8) -> CacheState {
        self.cache[node as usize * config.lines as usize + line as usize]
    }

    fn set_cache(&mut self, config: &CheckConfig, node: u8, line: u8, s: CacheState) {
        self.cache[node as usize * config.lines as usize + line as usize] = s;
    }

    /// One-line human-readable summary, used in counterexample traces.
    pub(crate) fn summarize(&self, config: &CheckConfig) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (l, d) in self.dir.iter().enumerate() {
            let _ = write!(out, "L{l}:");
            match d {
                LineState::Uncached => out.push('U'),
                LineState::Shared(s) => {
                    out.push_str("S{");
                    for (i, n) in s.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{n}");
                    }
                    out.push('}');
                }
                LineState::Modified { owner, in_rac } => {
                    let _ = write!(out, "M{owner}{}", if *in_rac { "r" } else { "" });
                }
            }
            out.push_str(" [");
            for n in 0..config.nodes {
                let c = match self.cache_of(config, n, l as u8) {
                    CacheState::Invalid => '-',
                    CacheState::Shared => 's',
                    CacheState::ModifiedL2 => 'M',
                    CacheState::ModifiedRac => 'R',
                };
                out.push(c);
            }
            out.push_str("]  ");
        }
        out.push_str("pending:");
        for (n, p) in self.pending.iter().enumerate() {
            match p {
                None => {
                    let _ = write!(out, " n{n}:·");
                }
                Some(p) => {
                    let _ = write!(
                        out,
                        " n{n}:{}L{}({} nacks)",
                        if p.write { "W" } else { "R" },
                        p.line,
                        p.nacks_left
                    );
                }
            }
        }
        out
    }
}

/// Packs a state into a unique 128-bit key for the visited set.
///
/// Layout (low to high): 8 bits per line of directory state (2-bit tag,
/// then sharer bitmap / owner+rac), 2 bits per (node, line) cache state,
/// 8 bits per node of pending state. With the bounds in
/// [`CheckConfig::validate`] this uses at most 4·8 + 16·2 + 4·8 = 96
/// bits. The config parameter keeps the signature symmetric with
/// [`decode`], which needs it to know the field counts.
pub fn encode(_config: &CheckConfig, state: &ModelState) -> u128 {
    let mut bits: u128 = 0;
    let mut off = 0u32;
    let mut push = |bits: &mut u128, value: u128, width: u32| {
        *bits |= value << off;
        off += width;
    };
    for d in &state.dir {
        let field = match *d {
            LineState::Uncached => 0u128,
            LineState::Shared(s) => 0b01 | (u128::from(s.bits()) << 2),
            LineState::Modified { owner, in_rac } => {
                0b10 | (u128::from(owner) << 2) | (u128::from(in_rac) << 4)
            }
        };
        push(&mut bits, field, 8);
    }
    for c in &state.cache {
        push(&mut bits, c.code(), 2);
    }
    for p in &state.pending {
        let field = match p {
            None => 0u128,
            Some(p) => {
                1 | (u128::from(p.write) << 1)
                    | (u128::from(p.line) << 2)
                    | (u128::from(p.nacks_left) << 4)
            }
        };
        push(&mut bits, field, 8);
    }
    bits
}

/// Inverse of [`encode`]; the explorer stores only keys and rebuilds
/// states on demand.
pub fn decode(config: &CheckConfig, mut bits: u128) -> ModelState {
    let pull = |bits: &mut u128, width: u32| -> u128 {
        let v = *bits & ((1u128 << width) - 1);
        *bits >>= width;
        v
    };
    let mut dir = Vec::with_capacity(config.lines as usize);
    for _ in 0..config.lines {
        let field = pull(&mut bits, 8);
        dir.push(match field & 0b11 {
            0 => LineState::Uncached,
            1 => LineState::Shared(NodeSet::from_bits((field >> 2) as u64)),
            _ => LineState::Modified {
                owner: ((field >> 2) & 0b11) as NodeId,
                in_rac: (field >> 4) & 1 == 1,
            },
        });
    }
    let mut cache = Vec::with_capacity(config.nodes as usize * config.lines as usize);
    for _ in 0..config.nodes as usize * config.lines as usize {
        cache.push(CacheState::from_code(pull(&mut bits, 2)));
    }
    let mut pending = Vec::with_capacity(config.nodes as usize);
    for _ in 0..config.nodes {
        let field = pull(&mut bits, 8);
        pending.push(if field & 1 == 0 {
            None
        } else {
            Some(Pending {
                write: (field >> 1) & 1 == 1,
                line: ((field >> 2) & 0b11) as u8,
                nacks_left: ((field >> 4) & 0b111) as u8,
            })
        });
    }
    ModelState { dir, cache, pending }
}

/// One protocol event the environment may perform in a given state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// `node` takes a miss on `line` and sends the request to the home.
    Issue {
        /// The requesting node.
        node: u8,
        /// The requested model line.
        line: u8,
        /// Write (or upgrade) rather than read.
        write: bool,
    },
    /// The directory NACKs `node`'s in-flight request; the requester
    /// backs off and will retry (budget permitting).
    Nack {
        /// The NACKed requester.
        node: u8,
    },
    /// The directory services `node`'s in-flight request atomically.
    Service {
        /// The serviced requester.
        node: u8,
    },
    /// `node` evicts its clean copy of `line` without telling the home
    /// (legal; leaves a stale presence bit).
    SilentDrop {
        /// The evicting node.
        node: u8,
        /// The evicted model line.
        line: u8,
    },
    /// `node` evicts its clean copy of `line` and notifies the home.
    NotifyDrop {
        /// The evicting node.
        node: u8,
        /// The evicted model line.
        line: u8,
    },
    /// The owner evicts its dirty copy of `line` and writes it home.
    Writeback {
        /// The owning node.
        node: u8,
        /// The written-back model line.
        line: u8,
    },
    /// The owner parks its dirty L2 victim of `line` in its RAC.
    ParkInRac {
        /// The owning node.
        node: u8,
        /// The parked model line.
        line: u8,
    },
    /// The owner pulls `line` back from its RAC into its L2.
    RefetchFromRac {
        /// The owning node.
        node: u8,
        /// The refetched model line.
        line: u8,
    },
}

impl Action {
    /// Two-byte wire form for replay seeds: opcode, then `node<<4|line`.
    pub fn encode(self) -> [u8; 2] {
        match self {
            Action::Issue { node, line, write: false } => [0, node << 4 | line],
            Action::Issue { node, line, write: true } => [1, node << 4 | line],
            Action::Nack { node } => [2, node << 4],
            Action::Service { node } => [3, node << 4],
            Action::SilentDrop { node, line } => [4, node << 4 | line],
            Action::NotifyDrop { node, line } => [5, node << 4 | line],
            Action::Writeback { node, line } => [6, node << 4 | line],
            Action::ParkInRac { node, line } => [7, node << 4 | line],
            Action::RefetchFromRac { node, line } => [8, node << 4 | line],
        }
    }

    /// Inverse of [`Action::encode`]. `None` for an unknown opcode.
    pub fn decode(bytes: [u8; 2]) -> Option<Action> {
        let node = bytes[1] >> 4;
        let line = bytes[1] & 0xF;
        Some(match bytes[0] {
            0 => Action::Issue { node, line, write: false },
            1 => Action::Issue { node, line, write: true },
            2 => Action::Nack { node },
            3 => Action::Service { node },
            4 => Action::SilentDrop { node, line },
            5 => Action::NotifyDrop { node, line },
            6 => Action::Writeback { node, line },
            7 => Action::ParkInRac { node, line },
            8 => Action::RefetchFromRac { node, line },
            _ => return None,
        })
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Issue { node, line, write: false } => {
                write!(f, "node {node} issues READ miss on line {line}")
            }
            Action::Issue { node, line, write: true } => {
                write!(f, "node {node} issues WRITE miss on line {line}")
            }
            Action::Nack { node } => write!(f, "directory NACKs node {node}'s request"),
            Action::Service { node } => write!(f, "directory services node {node}'s request"),
            Action::SilentDrop { node, line } => {
                write!(f, "node {node} silently drops clean line {line}")
            }
            Action::NotifyDrop { node, line } => {
                write!(f, "node {node} drops clean line {line} and notifies home")
            }
            Action::Writeback { node, line } => {
                write!(f, "node {node} writes back dirty line {line}")
            }
            Action::ParkInRac { node, line } => {
                write!(f, "node {node} parks dirty line {line} in its RAC")
            }
            Action::RefetchFromRac { node, line } => {
                write!(f, "node {node} refetches line {line} from its RAC to L2")
            }
        }
    }
}

/// Every action enabled in `state`, in a fixed deterministic order (node
/// outer, line inner), so exploration order — and therefore replay seeds
/// and counterexamples — is reproducible run to run.
pub fn enabled_actions(config: &CheckConfig, state: &ModelState) -> Vec<Action> {
    let mut out = Vec::new();
    for node in 0..config.nodes {
        match state.pending[node as usize] {
            Some(p) => {
                if p.nacks_left > 0 {
                    out.push(Action::Nack { node });
                }
                out.push(Action::Service { node });
            }
            None => {
                for line in 0..config.lines {
                    match state.cache_of(config, node, line) {
                        CacheState::Invalid => {
                            out.push(Action::Issue { node, line, write: false });
                            out.push(Action::Issue { node, line, write: true });
                        }
                        CacheState::Shared => {
                            out.push(Action::Issue { node, line, write: true });
                            out.push(Action::SilentDrop { node, line });
                            out.push(Action::NotifyDrop { node, line });
                        }
                        CacheState::ModifiedL2 => {
                            out.push(Action::Writeback { node, line });
                            if config.rac {
                                out.push(Action::ParkInRac { node, line });
                            }
                        }
                        CacheState::ModifiedRac => {
                            out.push(Action::Writeback { node, line });
                            if config.rac {
                                out.push(Action::RefetchFromRac { node, line });
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Materializes a real [`Directory`] holding exactly the model's
/// directory state (Uncached lines become tombstones, as a writeback
/// would leave them).
fn materialize(config: &CheckConfig, state: &ModelState) -> Result<Directory, Violation> {
    let mut dir = Directory::new(config.nodes, LINE_SIZE, PAGE_SIZE);
    for (l, d) in state.dir.iter().enumerate() {
        dir.seed_state(line_addr(l as u8), *d).map_err(|e| Violation {
            invariant: Invariant::SpecConformance,
            detail: format!("cannot materialize model state into a real Directory: {e}"),
        })?;
    }
    Ok(dir)
}

/// Compares the real directory's post-state for every line against the
/// spec-predicted model successor.
fn conformance(
    config: &CheckConfig,
    dir: &Directory,
    next: &ModelState,
    action: Action,
) -> Result<(), Violation> {
    for l in 0..config.lines {
        let real = dir.state(line_addr(l));
        let predicted = next.dir[l as usize];
        if real != predicted {
            return Err(Violation {
                invariant: Invariant::SpecConformance,
                detail: format!(
                    "after `{action}`, real Directory has line {l} in {real:?} but the spec \
                     predicts {predicted:?}"
                ),
            });
        }
    }
    Ok(())
}

fn mismatch(action: Action, what: &str, real: impl fmt::Debug, want: impl fmt::Debug) -> Violation {
    Violation {
        invariant: Invariant::SpecConformance,
        detail: format!("after `{action}`, real Directory reported {what} {real:?}, spec requires {want:?}"),
    }
}

/// Applies `action` to `state`, cross-checking the real [`Directory`]
/// against the spec on every directory-touching step.
///
/// # Errors
///
/// A [`Violation`] (always `SpecConformance`) when the real directory
/// and the executable spec disagree — about a successor state, an
/// outcome field, or whether the transition is legal at all.
pub fn apply(
    config: &CheckConfig,
    state: &ModelState,
    action: Action,
) -> Result<ModelState, Violation> {
    let mut next = state.clone();
    match action {
        Action::Issue { node, line, write } => {
            next.pending[node as usize] =
                Some(Pending { line, write, nacks_left: config.max_nacks });
        }
        Action::Nack { node } => {
            let Some(p) = next.pending[node as usize].as_mut() else {
                return Err(Violation {
                    invariant: Invariant::SpecConformance,
                    detail: format!("NACK for node {node} with no pending request"),
                });
            };
            p.nacks_left -= 1;
            // A NACK carries no protocol payload: directory and caches are
            // untouched, the requester just retries later.
        }
        Action::Service { node } => {
            let Some(p) = next.pending[node as usize].take() else {
                return Err(Violation {
                    invariant: Invariant::SpecConformance,
                    detail: format!("service for node {node} with no pending request"),
                });
            };
            let pre = state.dir[p.line as usize];
            let mut dir = materialize(config, state)?;
            if p.write {
                let want = spec::write_transition(pre, node).map_err(|r| Violation {
                    invariant: Invariant::SpecConformance,
                    detail: format!(
                        "model let node {node} issue a write on line {} it owns ({r:?})",
                        p.line
                    ),
                })?;
                let out = dir.write_miss(line_addr(p.line), node);
                if out.source != want.source {
                    return Err(mismatch(action, "fill source", out.source, want.source));
                }
                if out.invalidate != want.invalidate {
                    return Err(mismatch(action, "invalidation set", out.invalidate, want.invalidate));
                }
                if out.previous_owner != want.previous_owner {
                    return Err(mismatch(action, "previous owner", out.previous_owner, want.previous_owner));
                }
                if out.upgrade != want.upgrade {
                    return Err(mismatch(action, "upgrade flag", out.upgrade, want.upgrade));
                }
                if out.home != node_home(config, p.line) {
                    return Err(mismatch(action, "home node", out.home, node_home(config, p.line)));
                }
                next.dir[p.line as usize] = want.next;
                next.set_cache(config, node, p.line, CacheState::ModifiedL2);
                for victim in want.invalidate.iter() {
                    next.set_cache(config, victim, p.line, CacheState::Invalid);
                }
                if let Some(prev) = want.previous_owner {
                    next.set_cache(config, prev, p.line, CacheState::Invalid);
                }
                conformance(config, &dir, &next, action)?;
            } else {
                let want = spec::read_transition(pre, node).map_err(|r| Violation {
                    invariant: Invariant::SpecConformance,
                    detail: format!(
                        "model let node {node} issue a read on line {} it owns ({r:?})",
                        p.line
                    ),
                })?;
                let out = dir.read_miss(line_addr(p.line), node);
                if out.source != want.source {
                    return Err(mismatch(action, "fill source", out.source, want.source));
                }
                if out.downgraded_owner != want.downgraded_owner {
                    return Err(mismatch(
                        action,
                        "downgraded owner",
                        out.downgraded_owner,
                        want.downgraded_owner,
                    ));
                }
                if out.home != node_home(config, p.line) {
                    return Err(mismatch(action, "home node", out.home, node_home(config, p.line)));
                }
                next.dir[p.line as usize] = want.next;
                next.set_cache(config, node, p.line, CacheState::Shared);
                if let Some(owner) = want.downgraded_owner {
                    next.set_cache(config, owner, p.line, CacheState::Shared);
                }
                conformance(config, &dir, &next, action)?;
            }
        }
        Action::SilentDrop { node, line } => {
            // No directory interaction at all: the stale presence bit stays.
            next.set_cache(config, node, line, CacheState::Invalid);
        }
        Action::NotifyDrop { node, line } => {
            let pre = state.dir[line as usize];
            let (want_state, want_removed) = spec::drop_transition(pre, node);
            let mut dir = materialize(config, state)?;
            let removed = dir.drop_sharer(line_addr(line), node);
            if removed != want_removed {
                return Err(mismatch(action, "drop effectiveness", removed, want_removed));
            }
            next.dir[line as usize] = want_state;
            next.set_cache(config, node, line, CacheState::Invalid);
            conformance(config, &dir, &next, action)?;
        }
        Action::Writeback { node, line } => {
            let pre = state.dir[line as usize];
            let want = spec::writeback_transition(pre, node).map_err(|r| Violation {
                invariant: Invariant::SpecConformance,
                detail: format!("model let non-owner node {node} write back line {line} ({r:?})"),
            })?;
            let mut dir = materialize(config, state)?;
            if let Err(e) = dir.writeback(line_addr(line), node) {
                return Err(mismatch(action, "refusal", Some(e), Option::<()>::None));
            }
            next.dir[line as usize] = want;
            next.set_cache(config, node, line, CacheState::Invalid);
            conformance(config, &dir, &next, action)?;
        }
        Action::ParkInRac { node, line } | Action::RefetchFromRac { node, line } => {
            let to_rac = matches!(action, Action::ParkInRac { .. });
            let pre = state.dir[line as usize];
            let want = spec::rac_transition(pre, node, to_rac).map_err(|r| Violation {
                invariant: Invariant::SpecConformance,
                detail: format!("model let non-owner node {node} move line {line} ({r:?})"),
            })?;
            let mut dir = materialize(config, state)?;
            let res = if to_rac {
                dir.owner_moved_to_rac(line_addr(line), node)
            } else {
                dir.owner_refetched_from_rac(line_addr(line), node)
            };
            if let Err(e) = res {
                return Err(mismatch(action, "refusal", Some(e), Option::<()>::None));
            }
            next.dir[line as usize] = want;
            next.set_cache(
                config,
                node,
                line,
                if to_rac { CacheState::ModifiedRac } else { CacheState::ModifiedL2 },
            );
            conformance(config, &dir, &next, action)?;
        }
    }
    Ok(next)
}

/// The home node of a model line (page-interleaved, one page per line).
pub fn node_home(config: &CheckConfig, line: u8) -> NodeId {
    line % config.nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        let config = CheckConfig { nodes: 4, lines: 4, rac: true, max_nacks: 7, max_states: 10 };
        let mut state = ModelState::initial(&config);
        state.dir[0] = LineState::Shared([0u8, 2, 3].into_iter().collect());
        state.dir[1] = LineState::Modified { owner: 3, in_rac: true };
        state.dir[2] = LineState::Modified { owner: 1, in_rac: false };
        state.set_cache(&config, 0, 0, CacheState::Shared);
        state.set_cache(&config, 3, 1, CacheState::ModifiedRac);
        state.set_cache(&config, 1, 2, CacheState::ModifiedL2);
        state.pending[2] = Some(Pending { line: 3, write: true, nacks_left: 7 });
        state.pending[0] = Some(Pending { line: 0, write: false, nacks_left: 0 });
        let key = encode(&config, &state);
        assert_eq!(decode(&config, key), state);
        // The initial state must encode differently.
        assert_ne!(key, encode(&config, &ModelState::initial(&config)));
    }

    #[test]
    fn action_codec_round_trips() {
        let all = [
            Action::Issue { node: 3, line: 2, write: false },
            Action::Issue { node: 0, line: 0, write: true },
            Action::Nack { node: 1 },
            Action::Service { node: 2 },
            Action::SilentDrop { node: 1, line: 3 },
            Action::NotifyDrop { node: 2, line: 0 },
            Action::Writeback { node: 3, line: 1 },
            Action::ParkInRac { node: 0, line: 2 },
            Action::RefetchFromRac { node: 1, line: 1 },
        ];
        for a in all {
            assert_eq!(Action::decode(a.encode()), Some(a));
        }
        assert_eq!(Action::decode([99, 0]), None);
    }

    #[test]
    fn initial_state_enables_only_issues() {
        let config = CheckConfig::small();
        let state = ModelState::initial(&config);
        let actions = enabled_actions(&config, &state);
        assert!(actions.iter().all(|a| matches!(a, Action::Issue { .. })));
        // 2 nodes x 1 line x {read, write}.
        assert_eq!(actions.len(), 4);
    }

    #[test]
    fn service_of_write_claims_ownership_and_matches_real_directory() {
        let config = CheckConfig::small();
        let state = ModelState::initial(&config);
        let issued = apply(&config, &state, Action::Issue { node: 1, line: 0, write: true })
            .expect("issue is pure bookkeeping");
        let served = apply(&config, &state_after_nacks(&config, issued), Action::Service { node: 1 })
            .expect("cold write must be serviceable");
        assert_eq!(served.dir[0], LineState::Modified { owner: 1, in_rac: false });
        assert_eq!(served.cache_of(&config, 1, 0), CacheState::ModifiedL2);
        assert_eq!(served.pending[1], None);
    }

    /// Exhausts the NACK budget first so the serviced path covers retries.
    fn state_after_nacks(config: &CheckConfig, mut state: ModelState) -> ModelState {
        while state.pending.iter().flatten().any(|p| p.nacks_left > 0) {
            let node = state
                .pending
                .iter()
                .position(|p| p.is_some_and(|p| p.nacks_left > 0))
                .expect("checked above") as u8;
            state = apply(config, &state, Action::Nack { node }).expect("NACK within budget");
        }
        state
    }

    #[test]
    fn line_addresses_have_distinct_homes() {
        let config = CheckConfig::medium();
        let dir = Directory::new(config.nodes, LINE_SIZE, PAGE_SIZE);
        for l in 0..config.lines {
            assert_eq!(dir.home(line_addr(l)), node_home(&config, l));
        }
        assert_ne!(dir.home(line_addr(0)), dir.home(line_addr(1)));
    }
}
