//! A hand-rolled, lossless Rust lexer shared by the source-analysis
//! tools (`csim-lint` and `csim-analyze`).
//!
//! The workspace builds with zero external crates, so the analysis
//! layer cannot lean on `syn` or `rustc_lexer`. This module provides
//! the next best thing: a token-level scan of Rust source that is
//!
//! * **lossless** — the token texts tile the input exactly, so
//!   concatenating them reproduces the file byte-for-byte (a property
//!   test fuzzes this on arbitrary input and checks it on every file in
//!   the workspace);
//! * **panic-free** — arbitrary bytes lex to *something*; malformed
//!   source yields unterminated literal/comment tokens, never an abort;
//! * **honest about the hard cases** — nested block comments
//!   (`/* /* */ */`), raw strings with any hash depth (`r##"…"##`),
//!   byte and raw-byte strings, raw identifiers (`r#type`), multi-byte
//!   character literals (`'é'`), and the char-literal/lifetime
//!   ambiguity (`'a'` vs `&'a str`) are all tokenized correctly. The
//!   previous line-oriented stripper mis-lexed multi-byte char
//!   literals, which silently corrupted everything after them on the
//!   line — a lint gate that can be blinded by a unicode literal is not
//!   a gate.
//!
//! On top of the lexer sit the two helpers the analysis tools share:
//!
//! * [`strip_noncode`] — blanks comments and string/char literals while
//!   preserving byte length and line structure, so token-level rule
//!   scans can never be tripped (or hidden) by prose;
//! * [`markers`] — extracts `// lint: allow(rule) — reason` and the
//!   `// analyze:` directives (`hot`, `cold`, `publish`, `unwind`,
//!   `total`, `exact`) from *comment tokens only*. The old scanner
//!   searched raw lines, so a marker spelled inside a string literal
//!   could fabricate an escape and suppress a real finding; a directive
//!   is now only a directive when it is actually a comment.

/// Control-flow keyword classes, for CFG construction.
///
/// The lexer itself keeps keywords as [`TokKind::Ident`] (losslessness
/// does not care), but `csim-analyze`'s CFG builder needs to know which
/// identifiers open branches, loops, and exits. Classifying them here —
/// next to the lexer, in the one crate both analysis tools share —
/// keeps the keyword set in a single place.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrlKw {
    /// `if` — a two-way branch (the `else`-less form falls through).
    If,
    /// `else` — the other arm of an `if`.
    Else,
    /// `match` — an n-way branch.
    Match,
    /// `while` — a conditional loop (includes `while let`).
    While,
    /// `loop` — an unconditional loop, exits only by `break`/`return`.
    Loop,
    /// `for` — an iterator loop.
    For,
    /// `return` — an early exit to the function's exit block.
    Return,
    /// `break` — an exit to the innermost loop's join block.
    Break,
    /// `continue` — a back edge to the innermost loop's head.
    Continue,
}

/// Classifies an identifier token as a control-flow keyword, or `None`
/// for everything else.
pub fn ctrl_kw(text: &str) -> Option<CtrlKw> {
    Some(match text {
        "if" => CtrlKw::If,
        "else" => CtrlKw::Else,
        "match" => CtrlKw::Match,
        "while" => CtrlKw::While,
        "loop" => CtrlKw::Loop,
        "for" => CtrlKw::For,
        "return" => CtrlKw::Return,
        "break" => CtrlKw::Break,
        "continue" => CtrlKw::Continue,
        _ => return None,
    })
}

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Spaces, tabs, newlines.
    Ws,
    /// `// …` to end of line (newline excluded).
    LineComment,
    /// `/* … */`, nesting tracked; unterminated runs to EOF.
    BlockComment,
    /// `"…"` or `b"…"` with escapes; unterminated runs to EOF.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##`; unterminated runs to EOF.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`, `'é'`; unterminated stops at newline.
    CharLit,
    /// `'a` in `&'a str` (also loop labels).
    Lifetime,
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// Numeric literal, including suffixes (`1.5f64`, `0xFF`, `1e-3`).
    Num,
    /// Any other single character.
    Punct,
}

/// One token. `text` borrows from the lexed source; `start` is its byte
/// offset and `line` the 1-based line its first byte sits on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tok<'a> {
    /// Classification.
    pub kind: TokKind,
    /// Exact source slice (losslessness: slices tile the input).
    pub text: &'a str,
    /// Byte offset of `text` in the input.
    pub start: usize,
    /// 1-based line number of the token's first byte.
    pub line: usize,
}

#[inline]
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

#[inline]
fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Scans past a raw-string body starting at the `r` (or the `b` of
/// `br`). Returns the end offset (just past the closing quote, or EOF
/// when unterminated), or `None` when this is not a raw string at all.
fn raw_string_end(b: &[u8], mut i: usize) -> Option<usize> {
    if b.get(i) == Some(&b'b') {
        i += 1;
    }
    if b.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut closing = 0usize;
            while closing < hashes && b.get(j) == Some(&b'#') {
                closing += 1;
                j += 1;
            }
            if closing == hashes {
                return Some(j);
            }
        }
        i += 1;
    }
    Some(b.len())
}

/// Scans past an escaped (non-raw) string body; `i` points just past
/// the opening quote. Returns the offset past the closing quote, or EOF.
fn str_end(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' if i + 1 < b.len() => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Lexes `src` into a lossless token stream: the `text` slices of the
/// returned tokens concatenate back to `src` exactly.
///
/// ```
/// use csim_check::lex::{lex, TokKind};
/// let toks = lex("let x = r#\"raw\"#; // done");
/// let rebuilt: String = toks.iter().map(|t| t.text).collect();
/// assert_eq!(rebuilt, "let x = r#\"raw\"#; // done");
/// assert!(toks.iter().any(|t| t.kind == TokKind::RawStr));
/// ```
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < b.len() {
        let start = i;
        let kind = match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                TokKind::LineComment
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                TokKind::BlockComment
            }
            b' ' | b'\t' | b'\r' | b'\n' => {
                while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\r' | b'\n') {
                    i += 1;
                }
                TokKind::Ws
            }
            b'"' => {
                i = str_end(b, i + 1);
                TokKind::Str
            }
            b'\'' => {
                let (kind, end) = char_or_lifetime(src, i);
                i = end;
                kind
            }
            c if c.is_ascii_digit() => {
                i += 1;
                loop {
                    match b.get(i) {
                        Some(&c) if c.is_ascii_alphanumeric() || c == b'_' => i += 1,
                        // `.` continues a number only when a digit
                        // follows (`1.5`); `1.max(2)` keeps the dot as
                        // punctuation.
                        Some(&b'.')
                            if b.get(i + 1).is_some_and(u8::is_ascii_digit) =>
                        {
                            i += 1;
                        }
                        // Exponent sign: `1e+5` / `2.5E-3`.
                        Some(&(b'+' | b'-'))
                            if matches!(b.get(i.wrapping_sub(1)), Some(b'e' | b'E'))
                                && b.get(i + 1).is_some_and(u8::is_ascii_digit) =>
                        {
                            i += 1;
                        }
                        _ => break,
                    }
                }
                TokKind::Num
            }
            c if is_ident_start(c) => {
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let ident = &src[start..i];
                // Literal prefixes: the greedy ident scan has already
                // absorbed `r`, `b`, or `br`; if a string body follows,
                // extend the token into the literal. Anything longer
                // (`for_x"`) is an ordinary ident followed by a string.
                match ident {
                    "r" | "br" if b.get(i) == Some(&b'"') || b.get(i) == Some(&b'#') => {
                        if let Some(end) = raw_string_end(b, start) {
                            i = end;
                            TokKind::RawStr
                        } else if ident == "r"
                            && b.get(i) == Some(&b'#')
                            && b.get(i + 1).copied().is_some_and(is_ident_start)
                        {
                            // Raw identifier `r#type`.
                            i += 2;
                            while i < b.len() && is_ident_continue(b[i]) {
                                i += 1;
                            }
                            TokKind::Ident
                        } else {
                            TokKind::Ident
                        }
                    }
                    "b" if b.get(i) == Some(&b'"') => {
                        i = str_end(b, i + 1);
                        TokKind::Str
                    }
                    "b" if b.get(i) == Some(&b'\'') => {
                        let (_, end) = char_or_lifetime(src, i);
                        i = end;
                        TokKind::CharLit
                    }
                    _ => TokKind::Ident,
                }
            }
            _ => {
                // One Punct per character; >= 0x80 starters were claimed
                // by the ident arm, so this advances exactly one byte of
                // ASCII and never splits a UTF-8 sequence.
                i += 1;
                TokKind::Punct
            }
        };
        let text = &src[start..i];
        toks.push(Tok { kind, text, start, line });
        line += text.bytes().filter(|&c| c == b'\n').count();
    }
    toks
}

/// Disambiguates `'…` at offset `i` (which holds the `'`): char literal
/// vs lifetime vs lone quote. Returns the kind and the end offset.
fn char_or_lifetime(src: &str, i: usize) -> (TokKind, usize) {
    let b = src.as_bytes();
    let rest = &src[i + 1..];
    let mut chars = rest.chars();
    match chars.next() {
        None => (TokKind::Punct, i + 1),
        // Escaped char literal: scan to the closing quote, but never
        // across a newline (char literals cannot contain raw newlines;
        // stopping keeps a stray quote from swallowing the file).
        Some('\\') => {
            let mut j = i + 1;
            while j < b.len() {
                match b[j] {
                    b'\\' if j + 1 < b.len() && b[j + 1] != b'\n' => j += 2,
                    b'\'' => return (TokKind::CharLit, j + 1),
                    b'\n' => break,
                    _ => j += 1,
                }
            }
            (TokKind::CharLit, j)
        }
        Some(c) => {
            let after = chars.next();
            if c != '\'' && after == Some('\'') {
                // 'x' or 'é' — one char (of any width), then a quote.
                (TokKind::CharLit, i + 1 + c.len_utf8() + 1)
            } else if is_ident_start(c as u8) || !c.is_ascii() {
                // Lifetime or loop label: consume the ident.
                let mut j = i + 1 + c.len_utf8();
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                (TokKind::Lifetime, j)
            } else {
                (TokKind::Punct, i + 1)
            }
        }
    }
}

/// Replaces the contents of comments and string/char literals with
/// spaces, preserving byte length and line structure so offsets and
/// line numbers keep meaning. Lifetimes survive; everything a human
/// wrote as prose is gone, so token rules can neither be tripped nor
/// hidden by comments or string text.
pub fn strip_noncode(source: &str) -> String {
    let mut out = String::with_capacity(source.len());
    for tok in lex(source) {
        match tok.kind {
            TokKind::LineComment
            | TokKind::BlockComment
            | TokKind::Str
            | TokKind::RawStr
            | TokKind::CharLit => {
                for ch in tok.text.chars() {
                    if ch == '\n' {
                        out.push('\n');
                    } else {
                        // Multi-byte chars blank to one space per byte so
                        // byte offsets after the literal stay aligned.
                        for _ in 0..ch.len_utf8() {
                            out.push(' ');
                        }
                    }
                }
            }
            _ => out.push_str(tok.text),
        }
    }
    out
}

/// A source directive extracted from a comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MarkerKind {
    /// `// lint: allow(<rule>) — reason` — a counted, documented
    /// exception to a named rule. The reason is mandatory; a bare
    /// `allow` does not suppress anything.
    Allow {
        /// The rule being escaped (e.g. `no-panic`, `hot-alloc`).
        rule: String,
        /// The stated justification (may be empty — callers reject that).
        reason: String,
    },
    /// `// analyze: hot` — the next function is on the measured hot
    /// path; `csim-analyze` checks it (and everything it can reach)
    /// for allocation, float arithmetic, and panicking operations.
    Hot,
    /// `// analyze: cold — reason` — the next function is a deliberate
    /// hot-path boundary (slow path, opt-in instrumentation, reference
    /// implementation); traversal stops here. The reason is mandatory
    /// so boundaries stay visible, not silent.
    Cold {
        /// Why the boundary is legitimate (empty ⇒ marker is inert).
        reason: String,
    },
    /// `// analyze: publish — reason` — the relaxed atomic store on (or
    /// just below) this line is a declared publication stripe: a value
    /// intentionally published without ordering because no reader
    /// derives cross-field invariants from it. The reason is mandatory;
    /// a bare `publish` declares nothing.
    Publish {
        /// Why relaxed publication is sound here (empty ⇒ inert).
        reason: String,
    },
    /// `// analyze: unwind — reason` — the `catch_unwind` on (or just
    /// below) this line is a declared panic boundary: the comment states
    /// what state the catch protects and why resuming is sound. The
    /// reason is mandatory; a bare `unwind` declares nothing.
    Unwind {
        /// Why the panic boundary is sound (empty ⇒ inert).
        reason: String,
    },
    /// `// analyze: total — reason` — a totality contract for the
    /// panic-freedom pass: the partial operation on (or just below) this
    /// line — or, when placed above a `fn`, every partial operation in
    /// that function — cannot actually fail, for the stated reason
    /// (e.g. an index derived from a power-of-two mask of the geometry).
    /// The reason is mandatory; a bare `total` contracts nothing.
    Total {
        /// Why the partial operation is total here (empty ⇒ inert).
        reason: String,
    },
    /// `// analyze: exact` — the f64 accumulation on (or just below)
    /// this line claims integer-exactness: every value it receives must
    /// be statically provable as integer-valued (`Int-exact` in the
    /// exactness pass's domain). An optional reason may follow.
    Exact {
        /// Optional commentary (not required — the claim itself is the
        /// contract, and the pass *verifies* rather than trusts it).
        reason: String,
    },
}

/// A directive plus the 1-based line it sits on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Marker {
    /// Line of the directive itself (for `Allow`, the escaped code may
    /// be on the same line or up to a few lines below).
    pub line: usize,
    /// What the directive says.
    pub kind: MarkerKind,
}

/// Extracts analysis directives from `source`. Only comment tokens are
/// considered, and the directive must open the comment (after `//`,
/// `/*`, doc markers, and whitespace) — prose that merely *mentions*
/// the syntax, or a string literal containing it, is not a directive.
pub fn markers(source: &str) -> Vec<Marker> {
    let mut out = Vec::new();
    for tok in lex(source) {
        if !matches!(tok.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let body = tok
            .text
            .trim_start_matches(['/', '*', '!'])
            .trim_start()
            .trim_end_matches(['*', '/'])
            .trim_end();
        if let Some(rest) = body.strip_prefix("lint: allow(") {
            if let Some(close) = rest.find(')') {
                let rule = rest[..close].trim().to_string();
                let reason = trim_reason(&rest[close + 1..]);
                out.push(Marker { line: tok.line, kind: MarkerKind::Allow { rule, reason } });
            }
        } else if let Some(rest) = body.strip_prefix("analyze:") {
            let rest = rest.trim_start();
            if rest == "hot" || rest.starts_with("hot ") || rest.starts_with("hot —") {
                out.push(Marker { line: tok.line, kind: MarkerKind::Hot });
            } else if let Some(r) = rest.strip_prefix("cold") {
                out.push(Marker { line: tok.line, kind: MarkerKind::Cold { reason: trim_reason(r) } });
            } else if let Some(r) = rest.strip_prefix("publish") {
                out.push(Marker {
                    line: tok.line,
                    kind: MarkerKind::Publish { reason: trim_reason(r) },
                });
            } else if let Some(r) = rest.strip_prefix("unwind") {
                out.push(Marker {
                    line: tok.line,
                    kind: MarkerKind::Unwind { reason: trim_reason(r) },
                });
            } else if let Some(r) = rest.strip_prefix("total") {
                out.push(Marker {
                    line: tok.line,
                    kind: MarkerKind::Total { reason: trim_reason(r) },
                });
            } else if let Some(r) = rest.strip_prefix("exact") {
                out.push(Marker {
                    line: tok.line,
                    kind: MarkerKind::Exact { reason: trim_reason(r) },
                });
            }
        }
    }
    out
}

/// Strips the `— ` / `- ` / `: ` separator off a marker reason.
fn trim_reason(s: &str) -> String {
    s.trim_start_matches([' ', '-', '—', ':']).trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rebuild(src: &str) -> String {
        lex(src).iter().map(|t| t.text).collect()
    }

    #[test]
    fn lex_is_lossless_on_tricky_input() {
        for src in [
            "fn main() { let x = 1; }",
            "/* nested /* deep /* deeper */ */ */ code",
            "let r = r##\"a \"# b\"##; tail",
            "let b = br#\"bytes\"#; let s = b\"esc\\\"aped\";",
            "let c = '\\''; let l: &'a str = x; let label = 'outer: loop {};",
            "let uni = 'é'; let mix = ['é', 'x'];",
            "let f = 1.5e-3f64; let h = 0xFF_u8; let m = 1.max(2);",
            "let raw_id = r#type; // trailing comment",
            "unterminated /* block",
            "unterminated \"string",
            "let q = '",
            "" ,
        ] {
            assert_eq!(rebuild(src), src, "lossless round-trip failed");
        }
    }

    #[test]
    fn nested_block_comments_lex_as_one_token() {
        let toks = lex("/* a /* b */ c */ x");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert_eq!(toks[0].text, "/* a /* b */ c */");
        assert!(toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "x"));
    }

    #[test]
    fn raw_strings_and_raw_idents_disambiguate() {
        let toks = lex("r#\"panic!\"# r#match rx\"s\"");
        assert_eq!(toks[0].kind, TokKind::RawStr);
        assert_eq!(toks[2].kind, TokKind::Ident);
        assert_eq!(toks[2].text, "r#match");
        // `rx` is a plain ident; the quote after it opens a normal string.
        assert_eq!(toks[4].kind, TokKind::Ident);
        assert_eq!(toks[5].kind, TokKind::Str);
    }

    #[test]
    fn multibyte_char_literals_do_not_corrupt_the_tail() {
        // The old line-oriented stripper treated the closing quote of
        // 'é' as a fresh char-literal opener and swallowed real code.
        let src = "let v = ['é', 'x']; y.unwrap()";
        let stripped = strip_noncode(src);
        assert!(stripped.contains("unwrap"), "code after a unicode char must survive: {stripped}");
        assert_eq!(stripped.len(), src.len(), "byte length preserved");
        let toks = lex(src);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::CharLit).count(), 2);
    }

    #[test]
    fn strip_preserves_lines_and_blanks_literals() {
        let src = "let a = 1; // unwrap() here\nlet b = \".expect(\"; /* panic!\nstill */ let c = r#\"todo!\"#;\n";
        let out = strip_noncode(src);
        assert_eq!(out.lines().count(), src.lines().count());
        assert_eq!(out.len(), src.len());
        for bad in ["unwrap", "expect", "panic", "todo"] {
            assert!(!out.contains(bad), "{bad} leaked through: {out}");
        }
        assert!(out.contains("let a = 1;"));
        assert!(out.contains("let c ="));
    }

    #[test]
    fn lifetimes_survive_stripping() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        assert_eq!(strip_noncode(src), src);
    }

    #[test]
    fn markers_come_only_from_comments() {
        let src = "\
// lint: allow(no-panic) — real escape
let s = \"// lint: allow(no-panic) — fake, inside a string\";
// analyze: hot
fn probe() {}
// analyze: cold — slow path, amortized
fn refill() {}
";
        let m = markers(src);
        assert_eq!(m.len(), 3, "{m:?}");
        assert_eq!(m[0].line, 1);
        assert!(matches!(&m[0].kind, MarkerKind::Allow { rule, reason }
            if rule == "no-panic" && reason == "real escape"));
        assert!(matches!(m[1].kind, MarkerKind::Hot) && m[1].line == 3);
        assert!(matches!(&m[2].kind, MarkerKind::Cold { reason } if reason.contains("slow path")));
    }

    #[test]
    fn publish_and_unwind_markers_parse_with_reasons() {
        let src = "\
// analyze: publish — monotonic counter, readers tolerate staleness
x.store(1, Ordering::Relaxed);
// analyze: unwind — worker boundary; queue state has no cross-field invariants
let r = std::panic::catch_unwind(|| run());
// analyze: publish
y.store(2, Ordering::Relaxed);
";
        let m = markers(src);
        assert_eq!(m.len(), 3, "{m:?}");
        assert!(matches!(&m[0].kind, MarkerKind::Publish { reason }
            if reason.contains("monotonic counter")));
        assert_eq!(m[0].line, 1);
        assert!(matches!(&m[1].kind, MarkerKind::Unwind { reason }
            if reason.contains("worker boundary")));
        assert_eq!(m[1].line, 3);
        // Reasonless markers parse but carry an empty reason — callers
        // treat that as inert, exactly like reasonless `cold`.
        assert!(matches!(&m[2].kind, MarkerKind::Publish { reason } if reason.is_empty()));
    }

    #[test]
    fn total_and_exact_markers_parse() {
        let src = "\
// analyze: total — index derived from pow2 mask, invariant held by new()
let t = tags[idx];
// analyze: exact
bd.busy_cycles += n as f64;
// analyze: exact — closed-form retire, argument proven integer-valued
bd.busy_cycles += 1.0;
// analyze: total
let u = tags[other];
";
        let m = markers(src);
        assert_eq!(m.len(), 4, "{m:?}");
        assert!(matches!(&m[0].kind, MarkerKind::Total { reason }
            if reason.contains("pow2 mask")));
        assert_eq!(m[0].line, 1);
        assert!(matches!(&m[1].kind, MarkerKind::Exact { reason } if reason.is_empty()));
        assert!(matches!(&m[2].kind, MarkerKind::Exact { reason }
            if reason.contains("closed-form")));
        // A reasonless total parses but carries an empty reason — the
        // model treats that as inert, like reasonless cold/publish.
        assert!(matches!(&m[3].kind, MarkerKind::Total { reason } if reason.is_empty()));
    }

    #[test]
    fn ctrl_kw_classifies_exactly_the_control_keywords() {
        for (kw, class) in [
            ("if", CtrlKw::If),
            ("else", CtrlKw::Else),
            ("match", CtrlKw::Match),
            ("while", CtrlKw::While),
            ("loop", CtrlKw::Loop),
            ("for", CtrlKw::For),
            ("return", CtrlKw::Return),
            ("break", CtrlKw::Break),
            ("continue", CtrlKw::Continue),
        ] {
            assert_eq!(ctrl_kw(kw), Some(class), "{kw}");
        }
        for not_kw in ["iff", "match_arm", "looped", "fn", "let", "x", ""] {
            assert_eq!(ctrl_kw(not_kw), None, "{not_kw}");
        }
    }

    #[test]
    fn prose_mentioning_directives_is_not_a_directive() {
        let src = "/// Use `// lint: allow(no-panic) — reason` to escape, or mark\n/// a fn with `// analyze: hot` markers.\nfn f() {}\n";
        assert!(markers(src).is_empty(), "doc prose must not create markers");
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "let r = r#\"line1\nline2\"#;\n// analyze: hot\nfn g() {}\n";
        let m = markers(src);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].line, 3);
        let toks = lex(src);
        let g = toks.iter().find(|t| t.text == "g").unwrap();
        assert_eq!(g.line, 4);
    }

    #[test]
    fn unterminated_char_stops_at_newline() {
        let src = "let q = '\\\nlet next = 1;";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "next"),
            "an unterminated char literal must not swallow the next line: {toks:?}");
    }

    #[test]
    fn numbers_with_suffixes_and_exponents_are_single_tokens() {
        for (src, text) in [
            ("1.5e-3f64;", "1.5e-3f64"),
            ("0xFF_u8;", "0xFF_u8"),
            ("1_000_000;", "1_000_000"),
            ("2.5E+7;", "2.5E+7"),
        ] {
            let toks = lex(src);
            assert_eq!(toks[0].kind, TokKind::Num, "{src}");
            assert_eq!(toks[0].text, text, "{src}");
        }
        // `1.max(2)` keeps the dot out of the number.
        let toks = lex("1.max(2)");
        assert_eq!(toks[0].text, "1");
        assert_eq!(toks[1].text, ".");
    }
}
