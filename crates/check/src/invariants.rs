//! The protocol invariants checked on every reached state.
//!
//! These are the properties the paper's memory system silently relies
//! on: a full-map invalidation directory only produces correct 2-hop and
//! 3-hop latencies if ownership is unique, the sharer vector never
//! under-approximates the true holders, and dirty data is never dropped
//! on the floor. Each invariant is checked as a total predicate over a
//! [`ModelState`]; the same predicates back the runtime sanitizer's full
//! cross-check.

use std::fmt;

use csim_coherence::LineState;

use crate::model::{CacheState, CheckConfig, ModelState};

/// The safety properties the checker enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invariant {
    /// Single-writer/multiple-reader: at most one node holds a dirty
    /// copy of a line, and never concurrently with read-only copies.
    Swmr,
    /// Directory/cache agreement: the directory's record of a line is
    /// consistent with what the caches actually hold (the sharer vector
    /// may over-approximate after silent drops, never under-approximate).
    Agreement,
    /// No lost writeback: whenever the directory believes a node owns
    /// dirty data, that node really holds it (in L2 or RAC, matching the
    /// directory's residence bit).
    LostWriteback,
    /// Retry termination: every in-flight request stays within its NACK
    /// budget and is always serviceable, so retry chains cannot livelock.
    RetryTermination,
    /// Conformance of the real `Directory` to the executable spec: every
    /// transition must produce the predicted successor and outcome.
    SpecConformance,
    /// States no legal transition sequence reaches (e.g. `Shared` with
    /// an empty sharer vector).
    DeadState,
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Invariant::Swmr => "single-writer/multiple-reader",
            Invariant::Agreement => "directory/cache agreement",
            Invariant::LostWriteback => "no lost writeback",
            Invariant::RetryTermination => "retry termination",
            Invariant::SpecConformance => "spec conformance",
            Invariant::DeadState => "no dead states",
        };
        f.write_str(name)
    }
}

/// One invariant failure, with the evidence that makes it readable
/// without re-running the checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The property that failed.
    pub invariant: Invariant,
    /// Human-readable evidence (states, nodes, lines involved).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated: {}", self.invariant, self.detail)
    }
}

/// Checks every state invariant; the first failure wins (checks run in
/// a fixed order, so the reported violation is deterministic).
pub fn check_state(config: &CheckConfig, state: &ModelState) -> Result<(), Violation> {
    for line in 0..config.lines {
        check_line(config, state, line)?;
    }
    for (node, p) in state.pending.iter().enumerate() {
        if let Some(p) = p {
            if p.nacks_left > config.max_nacks {
                return Err(Violation {
                    invariant: Invariant::RetryTermination,
                    detail: format!(
                        "node {node} has {} NACK credits left, above the budget of {}",
                        p.nacks_left, config.max_nacks
                    ),
                });
            }
            if p.line >= config.lines {
                return Err(Violation {
                    invariant: Invariant::DeadState,
                    detail: format!("node {node} has a pending request for nonexistent line {}", p.line),
                });
            }
        }
    }
    Ok(())
}

fn check_line(config: &CheckConfig, state: &ModelState, line: u8) -> Result<(), Violation> {
    let holders: Vec<(u8, CacheState)> = (0..config.nodes)
        .map(|n| (n, state.cache_of(config, n, line)))
        .filter(|(_, c)| *c != CacheState::Invalid)
        .collect();
    let dirty: Vec<u8> =
        holders.iter().filter(|(_, c)| c.is_modified()).map(|(n, _)| *n).collect();

    // SWMR is directory-independent: it must hold over the caches alone.
    if dirty.len() > 1 {
        return Err(Violation {
            invariant: Invariant::Swmr,
            detail: format!("line {line} is dirty in {} caches at once: nodes {dirty:?}", dirty.len()),
        });
    }
    if let Some(&owner) = dirty.first() {
        let readers: Vec<u8> = holders
            .iter()
            .filter(|(n, c)| *c == CacheState::Shared && *n != owner)
            .map(|(n, _)| *n)
            .collect();
        if !readers.is_empty() {
            return Err(Violation {
                invariant: Invariant::Swmr,
                detail: format!(
                    "line {line} is dirty in node {owner} while nodes {readers:?} hold read-only copies"
                ),
            });
        }
    }

    match state.dir[line as usize] {
        LineState::Uncached => {
            if let Some((n, c)) = holders.first() {
                return Err(Violation {
                    invariant: Invariant::Agreement,
                    detail: format!(
                        "directory says line {line} is Uncached but node {n} holds it as {c:?}"
                    ),
                });
            }
        }
        LineState::Shared(sharers) => {
            if sharers.is_empty() {
                return Err(Violation {
                    invariant: Invariant::DeadState,
                    detail: format!("line {line} is Shared with an empty sharer vector"),
                });
            }
            if let Some(bad) = sharers.iter().find(|&n| n >= config.nodes) {
                return Err(Violation {
                    invariant: Invariant::DeadState,
                    detail: format!("line {line} records nonexistent sharer node {bad}"),
                });
            }
            for (n, c) in &holders {
                if c.is_modified() {
                    return Err(Violation {
                        invariant: Invariant::Agreement,
                        detail: format!(
                            "directory says line {line} is Shared but node {n} holds it dirty ({c:?})"
                        ),
                    });
                }
                // The sharer vector may keep stale bits after silent
                // drops, but a real holder must always be recorded.
                if !sharers.contains(*n) {
                    return Err(Violation {
                        invariant: Invariant::Agreement,
                        detail: format!(
                            "node {n} holds a Shared copy of line {line} but is missing from the \
                             sharer vector {sharers:?}"
                        ),
                    });
                }
            }
        }
        LineState::Modified { owner, in_rac } => {
            if owner >= config.nodes {
                return Err(Violation {
                    invariant: Invariant::DeadState,
                    detail: format!("line {line} records nonexistent owner node {owner}"),
                });
            }
            let expected = if in_rac { CacheState::ModifiedRac } else { CacheState::ModifiedL2 };
            let actual = state.cache_of(config, owner, line);
            if !actual.is_modified() {
                return Err(Violation {
                    invariant: Invariant::LostWriteback,
                    detail: format!(
                        "directory says node {owner} owns dirty line {line} but its cache is \
                         {actual:?} — the only copy of the data has been lost"
                    ),
                });
            }
            if actual != expected {
                return Err(Violation {
                    invariant: Invariant::Agreement,
                    detail: format!(
                        "directory says line {line}'s dirty copy is in the owner's {}, but node \
                         {owner} holds it as {actual:?}",
                        if in_rac { "RAC" } else { "L2" }
                    ),
                });
            }
            if let Some((n, c)) = holders.iter().find(|(n, _)| *n != owner) {
                return Err(Violation {
                    invariant: Invariant::Agreement,
                    detail: format!(
                        "line {line} is Modified by node {owner} but node {n} also holds it as {c:?}"
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelState;
    use csim_coherence::NodeSet;

    fn cfg() -> CheckConfig {
        CheckConfig { nodes: 3, lines: 2, rac: true, max_nacks: 1, max_states: 1000 }
    }

    fn set(state: &mut ModelState, config: &CheckConfig, node: u8, line: u8, c: CacheState) {
        state.cache[node as usize * config.lines as usize + line as usize] = c;
    }

    #[test]
    fn initial_state_is_clean() {
        let config = cfg();
        assert_eq!(check_state(&config, &ModelState::initial(&config)), Ok(()));
    }

    #[test]
    fn two_dirty_copies_violate_swmr() {
        let config = cfg();
        let mut s = ModelState::initial(&config);
        s.dir[0] = LineState::Modified { owner: 0, in_rac: false };
        set(&mut s, &config, 0, 0, CacheState::ModifiedL2);
        set(&mut s, &config, 2, 0, CacheState::ModifiedRac);
        let v = check_state(&config, &s).unwrap_err();
        assert_eq!(v.invariant, Invariant::Swmr);
        assert!(v.detail.contains("nodes [0, 2]"), "{}", v.detail);
    }

    #[test]
    fn unrecorded_holder_violates_agreement() {
        let config = cfg();
        let mut s = ModelState::initial(&config);
        s.dir[1] = LineState::Shared(NodeSet::single(0));
        set(&mut s, &config, 0, 1, CacheState::Shared);
        set(&mut s, &config, 1, 1, CacheState::Shared); // node 1 not in vector
        let v = check_state(&config, &s).unwrap_err();
        assert_eq!(v.invariant, Invariant::Agreement);
    }

    #[test]
    fn stale_presence_bits_are_legal() {
        // After a silent drop the vector over-approximates: that is fine.
        let config = cfg();
        let mut s = ModelState::initial(&config);
        s.dir[0] = LineState::Shared([0u8, 1].into_iter().collect());
        set(&mut s, &config, 0, 0, CacheState::Shared); // node 1 dropped silently
        assert_eq!(check_state(&config, &s), Ok(()));
    }

    #[test]
    fn vanished_owner_is_a_lost_writeback() {
        let config = cfg();
        let mut s = ModelState::initial(&config);
        s.dir[0] = LineState::Modified { owner: 1, in_rac: false };
        let v = check_state(&config, &s).unwrap_err();
        assert_eq!(v.invariant, Invariant::LostWriteback);
        assert!(v.detail.contains("lost"), "{}", v.detail);
    }

    #[test]
    fn rac_residence_mismatch_is_disagreement() {
        let config = cfg();
        let mut s = ModelState::initial(&config);
        s.dir[0] = LineState::Modified { owner: 1, in_rac: true };
        set(&mut s, &config, 1, 0, CacheState::ModifiedL2);
        let v = check_state(&config, &s).unwrap_err();
        assert_eq!(v.invariant, Invariant::Agreement);
    }

    #[test]
    fn empty_sharer_vector_is_a_dead_state() {
        let config = cfg();
        let mut s = ModelState::initial(&config);
        s.dir[0] = LineState::Shared(NodeSet::empty());
        let v = check_state(&config, &s).unwrap_err();
        assert_eq!(v.invariant, Invariant::DeadState);
    }

    #[test]
    fn nack_budget_overrun_breaks_retry_termination() {
        let config = cfg();
        let mut s = ModelState::initial(&config);
        s.pending[2] = Some(crate::model::Pending { line: 0, write: false, nacks_left: 5 });
        let v = check_state(&config, &s).unwrap_err();
        assert_eq!(v.invariant, Invariant::RetryTermination);
    }
}
