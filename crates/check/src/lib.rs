//! Protocol verification for the chip-integration simulator.
//!
//! The paper's performance argument rests on the directory protocol
//! being *correct*: 2-hop vs 3-hop latencies, RAC occupancy, and NACK
//! retry costs only mean anything if ownership is unique, sharer vectors
//! never under-approximate, and dirty data is never lost. This crate
//! checks that from three independent directions:
//!
//! 1. **An executable spec** ([`spec`]) — a second, from-scratch
//!    implementation of the directory transition relation. A protocol
//!    bug now has to be made twice, in two different shapes, to go
//!    unnoticed.
//! 2. **An explicit-state model checker** ([`explore`]) — exhaustively
//!    enumerates every reachable state of bounded configurations
//!    (2–4 nodes, 1–4 lines, NACK/retry and RAC transitions included),
//!    running the *real* [`csim_coherence::Directory`] and the spec side
//!    by side and checking the [`invariants`] on every state. A
//!    violation prints a minimal transition trace plus a replay seed.
//! 3. **A runtime sanitizer** ([`sanitizer`]) — the same spec threaded
//!    through live full-scale simulations behind `--sanitize`,
//!    cross-checking every directory transition against a shadow copy.
//!    Off by default with a zero-overhead contract: reports are
//!    bit-identical with the sanitizer disabled.
//!
//! The crate also ships [`lint`], a dependency-free source gate for the
//! workspace's determinism and no-panic contracts, exposed as the
//! `csim-lint` binary, and [`lex`], the lossless hand-rolled Rust lexer
//! that both `csim-lint` and the deeper `csim-analyze` workspace
//! analyzer build on.

#![forbid(unsafe_code)]

pub mod explore;
pub mod invariants;
pub mod lex;
pub mod lint;
pub mod model;
pub mod sanitizer;
pub mod spec;

pub use explore::{explore, replay, CheckReport, Counterexample};
pub use invariants::{check_state, Invariant, Violation};
pub use lint::{lint_workspace, LintReport, LintRule};
pub use model::{Action, CacheState, CheckConfig, ModelState};
pub use sanitizer::{Sanitizer, SanitizerError};
