//! A hermetic source lint for the simulator workspace.
//!
//! This is not a general Rust linter — it enforces the handful of
//! project-wide contracts that `rustc` and `clippy` cannot express, with
//! zero dependencies so it runs anywhere the toolchain does:
//!
//! * **no-panic** — library code must not contain `unwrap`/`expect`/
//!   `panic!`/`todo!`/`unimplemented!`/`unreachable!` outside tests.
//!   Typed errors are values in this codebase; a panic in the simulation
//!   core turns a reportable protocol violation into an abort.
//!   (`assert!`/`debug_assert!` remain legal: they state invariants, not
//!   error handling.)
//! * **no-wallclock** — `SystemTime`/`Instant::now` are nondeterminism:
//!   the same seed must produce the same report forever.
//! * **no-hash-export** — report/export paths must not use
//!   `HashMap`/`HashSet`, whose iteration order is free to vary; emitted
//!   artifacts must be byte-stable.
//! * **no-unsafe** — `unsafe` appears nowhere, and every crate root
//!   carries `#![forbid(unsafe_code)]` so the compiler enforces it too.
//!
//! Findings point at real lines in stripped source (comments and string
//! literals removed by the shared token-level lexer in [`crate::lex`]),
//! so a rule name in a doc comment or an error message never trips the
//! gate. Deliberate exceptions are escaped in place with
//! `// lint: allow(<rule>) — reason`, which is counted and reported so
//! exceptions stay visible instead of silently accumulating. Escape
//! markers are only honored when they are genuine comments — a marker
//! spelled inside a string literal cannot suppress a finding.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lex::{markers, MarkerKind};

pub use crate::lex::strip_noncode;

/// The enforced rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LintRule {
    /// No panic-family calls in non-test library code.
    NoPanic,
    /// No wall-clock reads (`SystemTime`, `Instant::now`).
    NoWallClock,
    /// No hash-ordered containers in export/report paths.
    NoHashExport,
    /// No `unsafe` token anywhere.
    NoUnsafe,
    /// A crate root missing `#![forbid(unsafe_code)]`.
    MissingForbidUnsafe,
}

impl LintRule {
    /// The name used in escape markers: `// lint: allow(<name>) — why`.
    pub fn name(self) -> &'static str {
        match self {
            LintRule::NoPanic => "no-panic",
            LintRule::NoWallClock => "no-wallclock",
            LintRule::NoHashExport => "no-hash-export",
            LintRule::NoUnsafe => "no-unsafe",
            LintRule::MissingForbidUnsafe => "forbid-unsafe",
        }
    }
}

impl fmt::Display for LintRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintFinding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// The violated rule.
    pub rule: LintRule,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.excerpt)
    }
}

/// One deliberate, documented exception.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintEscape {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line of the escaped code.
    pub line: usize,
    /// The rule escaped.
    pub rule: LintRule,
    /// The stated justification.
    pub reason: String,
}

/// The result of linting a file set.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Files scanned.
    pub files: usize,
    /// Violations (empty means the gate passes).
    pub findings: Vec<LintFinding>,
    /// Documented exceptions encountered.
    pub escapes: Vec<LintEscape>,
}

impl LintReport {
    /// True when no rule fired.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Which rules apply to a file, by its workspace-relative path.
#[derive(Clone, Copy, Debug)]
struct Policy {
    no_panic: bool,
    no_wallclock: bool,
    no_hash_export: bool,
}

fn policy_for(rel: &str) -> Policy {
    // The bench harness drives threads and prints to a terminal; a panic
    // there aborts a tool, not a simulation. Everything else is library
    // or simulation code.
    let bench = rel.starts_with("crates/bench/");
    // Deterministic-artifact paths: anything that serializes reports,
    // traces, or plots.
    let export = rel.starts_with("crates/obs/src/")
        || rel.starts_with("crates/stats/src/")
        || rel.starts_with("crates/analyze/src/")
        || rel == "crates/core/src/report.rs"
        || rel == "crates/core/src/export.rs";
    Policy { no_panic: !bench, no_wallclock: true, no_hash_export: export }
}

const PANIC_TOKENS: [&str; 6] =
    [".unwrap()", ".expect(", "panic!", "unimplemented!", "todo!", "unreachable!"];
const WALLCLOCK_TOKENS: [&str; 2] = ["SystemTime", "Instant::now"];
const HASH_TOKENS: [&str; 2] = ["HashMap", "HashSet"];

/// Lints one file's source text. `rel` is the workspace-relative path
/// used both for reporting and for policy selection.
pub fn lint_file(rel: &str, source: &str) -> (Vec<LintFinding>, Vec<LintEscape>) {
    let policy = policy_for(rel);
    let stripped = strip_noncode(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    // Escape markers, keyed by 1-based line. Sourced from comment tokens
    // only: a marker inside a string literal is content, not a directive.
    let allows: Vec<(usize, String, String)> = markers(source)
        .into_iter()
        .filter_map(|m| match m.kind {
            MarkerKind::Allow { rule, reason } => Some((m.line, rule, reason)),
            _ => None,
        })
        .collect();

    let mut findings = Vec::new();
    let mut escapes = Vec::new();
    let mut depth: i64 = 0;
    let mut pending_test_attr = false;
    let mut test_block_depth: Option<i64> = None;

    for (idx, stripped_line) in stripped_lines.iter().enumerate() {
        let raw_line = raw_lines.get(idx).copied().unwrap_or("");
        let in_test = test_block_depth.is_some();
        if !in_test && stripped_line.contains("#[cfg(test)]") {
            pending_test_attr = true;
        }

        if !in_test && !pending_test_attr {
            let mut check = |rule: LintRule, tokens: &[&str]| {
                let hit = tokens.iter().any(|t| match *t {
                    // `unsafe` needs word-boundary care; substrings do not.
                    "unsafe" => has_word(stripped_line, "unsafe"),
                    t => stripped_line.contains(t),
                });
                if !hit {
                    return;
                }
                // An escape marker counts on the same line or up to three
                // lines above, so wrapped expressions (`CacheGeometry::new(..)
                // \n .expect(..)`) stay escapable without relaxing the rule.
                let line_no = idx + 1;
                // Match by rule first, then take the nearest marker:
                // two allows for different rules may stack above one
                // line, and neither may shadow the other.
                let marker = allows
                    .iter()
                    .filter(|(l, r, _)| {
                        *l <= line_no && line_no - *l <= 3 && r == rule.name()
                    })
                    .max_by_key(|(l, _, _)| *l)
                    .map(|(_, r, why)| (r.as_str(), why.as_str()));
                match marker {
                    Some((_, reason)) if !reason.is_empty() => {
                        escapes.push(LintEscape {
                            file: rel.to_string(),
                            line: idx + 1,
                            rule,
                            reason: reason.to_string(),
                        });
                    }
                    _ => findings.push(LintFinding {
                        file: rel.to_string(),
                        line: idx + 1,
                        rule,
                        excerpt: raw_line.trim().to_string(),
                    }),
                }
            };
            if policy.no_panic {
                check(LintRule::NoPanic, &PANIC_TOKENS);
            }
            if policy.no_wallclock {
                check(LintRule::NoWallClock, &WALLCLOCK_TOKENS);
            }
            if policy.no_hash_export {
                check(LintRule::NoHashExport, &HASH_TOKENS);
            }
            check(LintRule::NoUnsafe, &["unsafe"]);
        }

        for ch in stripped_line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_test_attr {
                        test_block_depth = Some(depth - 1);
                        pending_test_attr = false;
                    }
                }
                '}' => {
                    depth -= 1;
                    if test_block_depth == Some(depth) {
                        test_block_depth = None;
                    }
                }
                _ => {}
            }
        }
    }

    // Crate roots must carry the compiler-enforced twin of no-unsafe.
    let is_crate_root = rel.ends_with("src/lib.rs");
    if is_crate_root && !source.contains("#![forbid(unsafe_code)]") {
        findings.push(LintFinding {
            file: rel.to_string(),
            line: 1,
            rule: LintRule::MissingForbidUnsafe,
            excerpt: "crate root lacks #![forbid(unsafe_code)]".to_string(),
        });
    }
    (findings, escapes)
}

fn has_word(line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !line[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = after >= line.len()
            || !line[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Recursively collects the `.rs` files the gate covers: `src/` of the
/// root package and of every crate under `crates/`. Tests, benches and
/// examples are exercised code, not shipped code — they are exempt.
fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    for r in roots {
        walk(&r, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`.
///
/// # Errors
///
/// I/O errors reading the tree (a missing `crates/` directory is an
/// error: it means the lint is running in the wrong place).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    if !root.join("crates").is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no crates/ directory — not the workspace root", root.display()),
        ));
    }
    let mut report = LintReport::default();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        let (findings, escapes) = lint_file(&rel, &source);
        report.files += 1;
        report.findings.extend(findings);
        report.escapes.extend(escapes);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_removes_comments_and_strings_but_keeps_lines() {
        let src = "let a = 1; // unwrap() in a comment\nlet b = \".expect(\"; /* panic!\nstill */ let c;\n";
        let out = strip_noncode(src);
        assert_eq!(out.lines().count(), src.lines().count());
        assert!(!out.contains("unwrap"));
        assert!(!out.contains("expect"));
        assert!(!out.contains("panic"));
        assert!(out.contains("let a = 1;"));
        assert!(out.contains("let c;"));
    }

    #[test]
    fn stripper_handles_raw_strings_and_chars() {
        let src = "let r = r#\"panic! \"quoted\" unwrap()\"#; let l: &'a str = x; let c = '\\''; let d = 'x';";
        let out = strip_noncode(src);
        assert!(!out.contains("panic"));
        assert!(!out.contains("unwrap"));
        assert!(out.contains("&'a str"), "lifetimes survive: {out}");
        assert_eq!(out.len(), src.len());
    }

    #[test]
    fn string_line_continuations_keep_line_numbers_aligned() {
        // A `\`-escaped newline inside a string must survive stripping,
        // or every later finding/escape lands on the wrong line.
        let src = "let s = \"first \\\n    second\";\n// lint: allow(no-panic) — exercised in a test\nlet g = geo.expect(\"checked\");\n";
        let stripped = strip_noncode(src);
        assert_eq!(stripped.lines().count(), src.lines().count());
        let (findings, escapes) = lint_file("crates/config/src/system.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(escapes.len(), 1);
        assert_eq!(escapes[0].line, 4);
    }

    #[test]
    fn escape_markers_inside_strings_do_not_suppress() {
        // Regression: the old scanner searched raw lines for markers, so
        // a string literal *containing* the marker syntax could fabricate
        // an escape for a real finding within range below it.
        let src = "fn f() {\n    let s = \"// lint: allow(no-panic) — fake\";\n    let g = geo.expect(\"checked\");\n}\n";
        let (findings, escapes) = lint_file("crates/config/src/system.rs", src);
        assert_eq!(findings.len(), 1, "string-borne marker must not escape: {findings:?}");
        assert!(escapes.is_empty());
    }

    #[test]
    fn multibyte_char_literals_do_not_hide_findings() {
        // Regression: the old stripper mis-lexed 'é' (closing quote read
        // as a new opener), corrupting everything after it on the line.
        let src = "fn f() { let c = 'é'; let x = ['é', y.unwrap()]; }\n";
        let (findings, _) = lint_file("crates/cache/src/model.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, LintRule::NoPanic);
    }

    #[test]
    fn panics_in_test_modules_are_ignored() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn g() { y.unwrap(); }\n";
        let (findings, _) = lint_file("crates/cache/src/model.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 6);
        assert_eq!(findings[0].rule, LintRule::NoPanic);
    }

    #[test]
    fn escape_markers_convert_findings_into_escapes() {
        let src = "fn f() {\n    // lint: allow(no-panic) — geometry is a compile-time constant\n    let g = geo.expect(\"checked\");\n}\n";
        let (findings, escapes) = lint_file("crates/config/src/system.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(escapes.len(), 1);
        assert_eq!(escapes[0].rule, LintRule::NoPanic);
        assert!(escapes[0].reason.contains("compile-time"));
    }

    #[test]
    fn escapes_without_reasons_do_not_count() {
        let src = "fn f() {\n    // lint: allow(no-panic)\n    let g = geo.expect(\"checked\");\n}\n";
        let (findings, escapes) = lint_file("crates/config/src/system.rs", src);
        assert_eq!(findings.len(), 1, "a bare escape with no reason is not an escape");
        assert!(escapes.is_empty());
    }

    #[test]
    fn wallclock_and_unsafe_are_flagged_everywhere() {
        let src = "fn f() { let t = Instant::now(); }\nunsafe fn g() {}\n";
        let (findings, _) = lint_file("crates/bench/src/lib.rs", src);
        // bench is exempt from no-panic but not from determinism/unsafe.
        let rules: Vec<LintRule> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&LintRule::NoWallClock), "{findings:?}");
        assert!(rules.contains(&LintRule::NoUnsafe), "{findings:?}");
    }

    #[test]
    fn hash_containers_flagged_only_in_export_paths() {
        let src = "use std::collections::HashMap;\n";
        let (f1, _) = lint_file("crates/obs/src/json.rs", src);
        assert_eq!(f1.len(), 1);
        assert_eq!(f1[0].rule, LintRule::NoHashExport);
        let (f2, _) = lint_file("crates/coherence/src/directory.rs", src);
        assert!(f2.is_empty(), "hash maps are fine off the export paths: {f2:?}");
    }

    #[test]
    fn crate_roots_must_forbid_unsafe() {
        let (findings, _) = lint_file("crates/cache/src/lib.rs", "pub mod model;\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, LintRule::MissingForbidUnsafe);
        let (ok, _) =
            lint_file("crates/cache/src/lib.rs", "#![forbid(unsafe_code)]\npub mod model;\n");
        assert!(ok.is_empty());
    }

    #[test]
    fn unsafe_matches_words_not_substrings() {
        assert!(has_word("unsafe fn x()", "unsafe"));
        assert!(has_word("{ unsafe }", "unsafe"));
        assert!(!has_word("an_unsafe_looking_name", "unsafe"));
        assert!(!has_word("unsafety", "unsafe"));
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f() { let x = a.unwrap_or(0); let y = b.unwrap_or_else(foo); let z = c.unwrap_or_default(); }\n";
        let (findings, _) = lint_file("crates/cache/src/model.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn workspace_lint_runs_on_this_repo_and_is_clean() {
        // The real gate: the actual workspace must lint clean. This test
        // is the same check CI runs via the csim-lint binary.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_workspace(&root).expect("workspace readable");
        assert!(report.files > 30, "expected to scan the whole workspace, saw {}", report.files);
        let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
        assert!(report.clean(), "lint violations:\n{}", rendered.join("\n"));
    }

    #[test]
    fn missing_workspace_root_is_an_error() {
        assert!(lint_workspace(Path::new("/nonexistent-lint-root")).is_err());
    }
}
