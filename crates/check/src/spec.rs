//! The executable protocol specification.
//!
//! This module is a deliberately independent re-implementation of the
//! directory protocol's transition relation: given a line's current
//! [`LineState`] and a request, it says what the *next* state must be and
//! what the outcome must report. It shares no code with
//! `csim_coherence::Directory` — that is the point. The model checker
//! compares the real directory against this spec over the whole bounded
//! state space, and the runtime sanitizer compares every live transition
//! of a full simulation against it, so a bug has to be made twice, in two
//! different shapes, to go unnoticed.
//!
//! The spec is total: transitions that the protocol must *refuse* are
//! values too ([`SpecRefusal`]), so refusal behavior is checked with the
//! same machinery as acceptance behavior.

use csim_coherence::{FillSource, LineState, NodeId, NodeSet};

/// Why a transition must be refused by a correct directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecRefusal {
    /// A read or write miss by the node the directory already records as
    /// the dirty owner: the simulator must never consult the directory
    /// for a line the requester owns (it would be an L2 hit).
    RequesterOwnsLine,
    /// A writeback / RAC park / RAC refetch by a node that is not the
    /// recorded owner (including lines that are not `Modified` at all).
    NotOwner,
}

/// What a correct directory must do with a read miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecRead {
    /// The line's state after the transition.
    pub next: LineState,
    /// Where the fill data must come from.
    pub source: FillSource,
    /// The former owner that must downgrade, if any.
    pub downgraded_owner: Option<NodeId>,
}

/// What a correct directory must do with a write miss (or upgrade).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecWrite {
    /// The line's state after the transition.
    pub next: LineState,
    /// Where the fill data must come from.
    pub source: FillSource,
    /// Exactly the read-only copies that must be invalidated.
    pub invalidate: NodeSet,
    /// The former dirty owner whose copy supplies the data, if any.
    pub previous_owner: Option<NodeId>,
    /// Whether this is an upgrade (requester already held a shared copy).
    pub upgrade: bool,
}

/// The required behavior of a read miss by `requester` on a line in
/// `state`.
///
/// # Errors
///
/// [`SpecRefusal::RequesterOwnsLine`] when the requester is the recorded
/// dirty owner — a correct simulator never issues that request.
pub fn read_transition(state: LineState, requester: NodeId) -> Result<SpecRead, SpecRefusal> {
    match state {
        LineState::Uncached => Ok(SpecRead {
            next: LineState::Shared(NodeSet::single(requester)),
            source: FillSource::Home,
            downgraded_owner: None,
        }),
        LineState::Shared(sharers) => {
            let mut next = sharers;
            next.insert(requester);
            Ok(SpecRead {
                next: LineState::Shared(next),
                source: FillSource::Home,
                downgraded_owner: None,
            })
        }
        LineState::Modified { owner, .. } if owner == requester => {
            Err(SpecRefusal::RequesterOwnsLine)
        }
        LineState::Modified { owner, in_rac } => {
            let mut next = NodeSet::single(owner);
            next.insert(requester);
            Ok(SpecRead {
                next: LineState::Shared(next),
                source: FillSource::OwnerCache { owner, in_rac },
                downgraded_owner: Some(owner),
            })
        }
    }
}

/// The required behavior of a write miss (or upgrade) by `requester` on a
/// line in `state`.
///
/// # Errors
///
/// [`SpecRefusal::RequesterOwnsLine`] when the requester is already the
/// recorded dirty owner.
pub fn write_transition(state: LineState, requester: NodeId) -> Result<SpecWrite, SpecRefusal> {
    let next = LineState::Modified { owner: requester, in_rac: false };
    match state {
        LineState::Uncached => Ok(SpecWrite {
            next,
            source: FillSource::Home,
            invalidate: NodeSet::empty(),
            previous_owner: None,
            upgrade: false,
        }),
        LineState::Shared(sharers) => Ok(SpecWrite {
            next,
            source: FillSource::Home,
            invalidate: sharers.without(requester),
            previous_owner: None,
            upgrade: sharers.contains(requester),
        }),
        LineState::Modified { owner, .. } if owner == requester => {
            Err(SpecRefusal::RequesterOwnsLine)
        }
        LineState::Modified { owner, in_rac } => Ok(SpecWrite {
            next,
            source: FillSource::OwnerCache { owner, in_rac },
            invalidate: NodeSet::empty(),
            previous_owner: Some(owner),
            upgrade: false,
        }),
    }
}

/// The required behavior of a dirty writeback by `node`: only the
/// recorded owner may return a line to memory, and doing so makes it
/// `Uncached`.
///
/// # Errors
///
/// [`SpecRefusal::NotOwner`] for every other state — a correct directory
/// refuses without mutating anything (the lost-writeback hazard).
pub fn writeback_transition(state: LineState, node: NodeId) -> Result<LineState, SpecRefusal> {
    match state {
        LineState::Modified { owner, .. } if owner == node => Ok(LineState::Uncached),
        _ => Err(SpecRefusal::NotOwner),
    }
}

/// The required behavior of the owner parking its modified copy in its
/// RAC (`to_rac = true`) or pulling it back into its L2 (`to_rac =
/// false`).
///
/// # Errors
///
/// [`SpecRefusal::NotOwner`] when `node` is not the recorded owner.
pub fn rac_transition(state: LineState, node: NodeId, to_rac: bool) -> Result<LineState, SpecRefusal> {
    match state {
        LineState::Modified { owner, .. } if owner == node => {
            Ok(LineState::Modified { owner, in_rac: to_rac })
        }
        _ => Err(SpecRefusal::NotOwner),
    }
}

/// The required behavior of a sharer's eviction notification: remove the
/// presence bit; the last sharer returns the line to `Uncached`. Stale
/// notifications (line not `Shared`, or `node` not recorded) change
/// nothing, which the `bool` reports.
pub fn drop_transition(state: LineState, node: NodeId) -> (LineState, bool) {
    match state {
        LineState::Shared(sharers) if sharers.contains(node) => {
            let rest = sharers.without(node);
            if rest.is_empty() {
                (LineState::Uncached, true)
            } else {
                (LineState::Shared(rest), true)
            }
        }
        other => (other, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_spec_covers_all_source_states() {
        let r = read_transition(LineState::Uncached, 2).unwrap();
        assert_eq!(r.source, FillSource::Home);
        assert_eq!(r.next, LineState::Shared(NodeSet::single(2)));

        let sharers: NodeSet = [0u8, 1].into_iter().collect();
        let r = read_transition(LineState::Shared(sharers), 2).unwrap();
        let all: NodeSet = [0u8, 1, 2].into_iter().collect();
        assert_eq!(r.next, LineState::Shared(all));
        assert_eq!(r.downgraded_owner, None);

        let r = read_transition(LineState::Modified { owner: 1, in_rac: true }, 2).unwrap();
        assert_eq!(r.source, FillSource::OwnerCache { owner: 1, in_rac: true });
        assert_eq!(r.downgraded_owner, Some(1));

        assert_eq!(
            read_transition(LineState::Modified { owner: 2, in_rac: false }, 2),
            Err(SpecRefusal::RequesterOwnsLine)
        );
    }

    #[test]
    fn write_spec_invalidates_everyone_but_the_writer() {
        let sharers: NodeSet = [0u8, 1, 2].into_iter().collect();
        let w = write_transition(LineState::Shared(sharers), 1).unwrap();
        assert!(w.upgrade);
        let others: NodeSet = [0u8, 2].into_iter().collect();
        assert_eq!(w.invalidate, others);
        assert_eq!(w.next, LineState::Modified { owner: 1, in_rac: false });

        let w = write_transition(LineState::Modified { owner: 0, in_rac: false }, 1).unwrap();
        assert_eq!(w.previous_owner, Some(0));
        assert!(w.invalidate.is_empty());
    }

    #[test]
    fn ownership_transitions_refuse_non_owners() {
        let m = LineState::Modified { owner: 3, in_rac: false };
        assert_eq!(writeback_transition(m, 3), Ok(LineState::Uncached));
        assert_eq!(writeback_transition(m, 1), Err(SpecRefusal::NotOwner));
        assert_eq!(writeback_transition(LineState::Uncached, 0), Err(SpecRefusal::NotOwner));
        assert_eq!(rac_transition(m, 3, true), Ok(LineState::Modified { owner: 3, in_rac: true }));
        assert_eq!(rac_transition(m, 0, true), Err(SpecRefusal::NotOwner));
    }

    #[test]
    fn drop_spec_handles_last_sharer_and_stale_notifications() {
        let one = LineState::Shared(NodeSet::single(4));
        assert_eq!(drop_transition(one, 4), (LineState::Uncached, true));
        assert_eq!(drop_transition(one, 2), (one, false));
        let m = LineState::Modified { owner: 4, in_rac: false };
        assert_eq!(drop_transition(m, 4), (m, false));
    }
}
