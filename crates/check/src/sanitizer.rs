//! The runtime coherence sanitizer.
//!
//! While the model checker proves the protocol correct for *bounded*
//! machines, the sanitizer carries the same invariants into full-scale
//! simulation: it keeps an independent shadow copy of every line's
//! directory state, and after every live directory transition it checks
//! the real directory's new state *and* the reported outcome against the
//! executable spec in [`crate::spec`], applied to the shadow.
//!
//! The sanitizer is deliberately passive: hooks never mutate the
//! simulation, never allocate per call on the happy path beyond the
//! shadow map itself, and the first divergence is latched
//! ([`Sanitizer::first_divergence`]) rather than panicking, so the
//! simulator can surface it as a typed error at a clean boundary. Once a
//! divergence is latched, later hooks become no-ops — the shadow can no
//! longer be trusted to produce meaningful follow-on reports.
//!
//! Zero-overhead contract: the simulator holds an
//! `Option<Box<Sanitizer>>`; when it is `None` the only cost is one
//! pointer test per transition, and every report is bit-identical to a
//! build without the sanitizer compiled in at all.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use csim_coherence::{Directory, LineState, NodeId, ProtocolError, ReadOutcome, WriteOutcome};

use crate::spec;

/// A divergence between the live directory and the shadow/spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SanitizerError {
    /// The transition being checked (`"read_miss"`, `"writeback"`, ...).
    pub op: &'static str,
    /// The line involved.
    pub line: u64,
    /// What disagreed, with both sides' values.
    pub detail: String,
}

impl fmt::Display for SanitizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sanitizer: {} on line {:#x}: {}", self.op, self.line, self.detail)
    }
}

impl std::error::Error for SanitizerError {}

/// The shadow directory and its latched verdict.
#[derive(Debug, Default)]
pub struct Sanitizer {
    /// Independent record of every line's state (`BTreeMap`, so any
    /// future iteration is deterministic by construction).
    shadow: BTreeMap<u64, LineState>,
    /// Lines ever referenced, for cross-checking cold-miss flags.
    seen: BTreeSet<u64>,
    checks: u64,
    failed: Option<SanitizerError>,
}

impl Sanitizer {
    /// A fresh sanitizer with an empty shadow. Wire it in *before* the
    /// first reference is simulated — it can only vouch for transitions
    /// it has observed from the beginning.
    pub fn new() -> Self {
        Sanitizer::default()
    }

    /// Number of transitions cross-checked so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// The first divergence found, if any. Latched: once set, subsequent
    /// hooks do nothing.
    pub fn first_divergence(&self) -> Option<&SanitizerError> {
        self.failed.as_ref()
    }

    fn shadow_state(&self, line: u64) -> LineState {
        self.shadow.get(&line).copied().unwrap_or(LineState::Uncached)
    }

    fn fail(&mut self, op: &'static str, line: u64, detail: String) {
        if self.failed.is_none() {
            self.failed = Some(SanitizerError { op, line, detail });
        }
    }

    /// Cross-checks a completed [`Directory::read_miss`].
    pub fn on_read_miss(
        &mut self,
        dir: &Directory,
        line: u64,
        requester: NodeId,
        out: &ReadOutcome,
    ) {
        if self.failed.is_some() {
            return;
        }
        self.checks += 1;
        let pre = self.shadow_state(line);
        let want = match spec::read_transition(pre, requester) {
            Ok(want) => want,
            Err(r) => {
                self.fail(
                    "read_miss",
                    line,
                    format!("simulator consulted the directory for a line the requester owns ({r:?}, shadow {pre:?})"),
                );
                return;
            }
        };
        if out.source != want.source {
            self.fail(
                "read_miss",
                line,
                format!("fill source {:?}, spec requires {:?} (shadow {pre:?})", out.source, want.source),
            );
        } else if out.downgraded_owner != want.downgraded_owner {
            self.fail(
                "read_miss",
                line,
                format!(
                    "downgraded owner {:?}, spec requires {:?} (shadow {pre:?})",
                    out.downgraded_owner, want.downgraded_owner
                ),
            );
        } else if out.home != dir.home(line) {
            self.fail(
                "read_miss",
                line,
                format!("reported home {} but the directory maps it to {}", out.home, dir.home(line)),
            );
        } else if dir.state(line) != want.next {
            self.fail(
                "read_miss",
                line,
                format!(
                    "directory moved to {:?}, spec requires {:?} (shadow {pre:?})",
                    dir.state(line),
                    want.next
                ),
            );
        } else if out.cold == self.seen.contains(&line) {
            self.fail(
                "read_miss",
                line,
                format!(
                    "cold flag {} disagrees with the shadow's reference history",
                    out.cold
                ),
            );
        }
        if self.failed.is_some() {
            return;
        }
        self.seen.insert(line);
        self.shadow.insert(line, want.next);
    }

    /// Cross-checks a completed [`Directory::write_miss`].
    pub fn on_write_miss(
        &mut self,
        dir: &Directory,
        line: u64,
        requester: NodeId,
        out: &WriteOutcome,
    ) {
        if self.failed.is_some() {
            return;
        }
        self.checks += 1;
        let pre = self.shadow_state(line);
        let want = match spec::write_transition(pre, requester) {
            Ok(want) => want,
            Err(r) => {
                self.fail(
                    "write_miss",
                    line,
                    format!("simulator consulted the directory for a line the requester owns ({r:?}, shadow {pre:?})"),
                );
                return;
            }
        };
        if out.source != want.source {
            self.fail(
                "write_miss",
                line,
                format!("fill source {:?}, spec requires {:?} (shadow {pre:?})", out.source, want.source),
            );
        } else if out.invalidate != want.invalidate {
            self.fail(
                "write_miss",
                line,
                format!(
                    "invalidation set {:?}, spec requires {:?} (shadow {pre:?})",
                    out.invalidate, want.invalidate
                ),
            );
        } else if out.previous_owner != want.previous_owner {
            self.fail(
                "write_miss",
                line,
                format!(
                    "previous owner {:?}, spec requires {:?} (shadow {pre:?})",
                    out.previous_owner, want.previous_owner
                ),
            );
        } else if out.upgrade != want.upgrade {
            self.fail(
                "write_miss",
                line,
                format!("upgrade flag {}, spec requires {} (shadow {pre:?})", out.upgrade, want.upgrade),
            );
        } else if out.home != dir.home(line) {
            self.fail(
                "write_miss",
                line,
                format!("reported home {} but the directory maps it to {}", out.home, dir.home(line)),
            );
        } else if dir.state(line) != want.next {
            self.fail(
                "write_miss",
                line,
                format!(
                    "directory moved to {:?}, spec requires {:?} (shadow {pre:?})",
                    dir.state(line),
                    want.next
                ),
            );
        } else if out.cold == self.seen.contains(&line) {
            self.fail(
                "write_miss",
                line,
                format!("cold flag {} disagrees with the shadow's reference history", out.cold),
            );
        }
        if self.failed.is_some() {
            return;
        }
        self.seen.insert(line);
        self.shadow.insert(line, want.next);
    }

    /// Cross-checks a completed [`Directory::writeback`] (accepted or
    /// refused).
    pub fn on_writeback(
        &mut self,
        dir: &Directory,
        line: u64,
        node: NodeId,
        result: Result<(), ProtocolError>,
    ) {
        self.on_owner_transition("writeback", dir, line, node, result, |pre| {
            spec::writeback_transition(pre, node)
        });
    }

    /// Cross-checks a completed [`Directory::owner_moved_to_rac`].
    pub fn on_rac_park(
        &mut self,
        dir: &Directory,
        line: u64,
        node: NodeId,
        result: Result<(), ProtocolError>,
    ) {
        self.on_owner_transition("owner_moved_to_rac", dir, line, node, result, |pre| {
            spec::rac_transition(pre, node, true)
        });
    }

    /// Cross-checks a completed [`Directory::owner_refetched_from_rac`].
    pub fn on_rac_refetch(
        &mut self,
        dir: &Directory,
        line: u64,
        node: NodeId,
        result: Result<(), ProtocolError>,
    ) {
        self.on_owner_transition("owner_refetched_from_rac", dir, line, node, result, |pre| {
            spec::rac_transition(pre, node, false)
        });
    }

    fn on_owner_transition(
        &mut self,
        op: &'static str,
        dir: &Directory,
        line: u64,
        node: NodeId,
        result: Result<(), ProtocolError>,
        predict: impl FnOnce(LineState) -> Result<LineState, spec::SpecRefusal>,
    ) {
        if self.failed.is_some() {
            return;
        }
        self.checks += 1;
        let pre = self.shadow_state(line);
        match (predict(pre), result) {
            (Ok(next), Ok(())) => {
                if dir.state(line) != next {
                    self.fail(
                        op,
                        line,
                        format!(
                            "directory moved to {:?}, spec requires {:?} (shadow {pre:?}, node {node})",
                            dir.state(line),
                            next
                        ),
                    );
                    return;
                }
                self.shadow.insert(line, next);
            }
            (Err(refusal), Err(_)) => {
                // Consistent refusal; the directory must be untouched.
                if dir.state(line) != pre {
                    self.fail(
                        op,
                        line,
                        format!(
                            "refused transition ({refusal:?}) still mutated the line: {:?} -> {:?}",
                            pre,
                            dir.state(line)
                        ),
                    );
                }
            }
            (Ok(next), Err(e)) => self.fail(
                op,
                line,
                format!("directory refused ({e}) a transition the spec allows (node {node}, shadow {pre:?} -> {next:?})"),
            ),
            (Err(refusal), Ok(())) => self.fail(
                op,
                line,
                format!(
                    "directory accepted a transition the spec refuses ({refusal:?}; node {node}, shadow {pre:?})"
                ),
            ),
        }
    }

    /// Cross-checks a completed [`Directory::drop_sharer`].
    pub fn on_drop_sharer(&mut self, dir: &Directory, line: u64, node: NodeId, removed: bool) {
        if self.failed.is_some() {
            return;
        }
        self.checks += 1;
        let pre = self.shadow_state(line);
        let (want_state, want_removed) = spec::drop_transition(pre, node);
        if removed != want_removed {
            self.fail(
                "drop_sharer",
                line,
                format!(
                    "reported removed={removed}, spec requires {want_removed} (node {node}, shadow {pre:?})"
                ),
            );
            return;
        }
        if dir.state(line) != want_state {
            self.fail(
                "drop_sharer",
                line,
                format!(
                    "directory moved to {:?}, spec requires {:?} (shadow {pre:?})",
                    dir.state(line),
                    want_state
                ),
            );
            return;
        }
        if self.shadow.contains_key(&line) {
            self.shadow.insert(line, want_state);
        }
    }

    /// Full-state audit: every line the live directory tracks must match
    /// the shadow, and vice versa. Run at simulation end (and at epoch
    /// boundaries in strict runs) to catch drift the per-transition
    /// checks cannot see — e.g. a transition that mutated an unrelated
    /// line.
    ///
    /// # Errors
    ///
    /// The first latched divergence, or the first line where live and
    /// shadow state differ.
    pub fn verify_shadow(&self, dir: &Directory) -> Result<(), SanitizerError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        for (line, live) in dir.iter() {
            let shadowed = self.shadow_state(line);
            if live != shadowed {
                return Err(SanitizerError {
                    op: "verify_shadow",
                    line,
                    detail: format!("live directory has {live:?}, shadow has {shadowed:?}"),
                });
            }
        }
        for (&line, &shadowed) in &self.shadow {
            if dir.state(line) != shadowed {
                return Err(SanitizerError {
                    op: "verify_shadow",
                    line,
                    detail: format!(
                        "shadow has {shadowed:?}, live directory has {:?}",
                        dir.state(line)
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csim_coherence::NodeSet;

    fn dir4() -> Directory {
        Directory::new(4, 64, 8192)
    }

    #[test]
    fn clean_protocol_sequence_passes_every_check() {
        let mut dir = dir4();
        let mut sz = Sanitizer::new();
        let r = dir.read_miss(10, 0);
        sz.on_read_miss(&dir, 10, 0, &r);
        let w = dir.write_miss(10, 1);
        sz.on_write_miss(&dir, 10, 1, &w);
        let park = dir.owner_moved_to_rac(10, 1);
        sz.on_rac_park(&dir, 10, 1, park);
        let refetch = dir.owner_refetched_from_rac(10, 1);
        sz.on_rac_refetch(&dir, 10, 1, refetch);
        let wb = dir.writeback(10, 1);
        sz.on_writeback(&dir, 10, 1, wb);
        let r2 = dir.read_miss(10, 2);
        sz.on_read_miss(&dir, 10, 2, &r2);
        assert!(!r2.cold, "tombstone keeps cold tracking");
        let removed = dir.drop_sharer(10, 2);
        sz.on_drop_sharer(&dir, 10, 2, removed);
        assert_eq!(sz.first_divergence(), None);
        assert_eq!(sz.checks(), 7);
        sz.verify_shadow(&dir).expect("shadow agrees");
    }

    #[test]
    fn consistent_refusals_pass() {
        let mut dir = dir4();
        let mut sz = Sanitizer::new();
        let w = dir.write_miss(5, 2);
        sz.on_write_miss(&dir, 5, 2, &w);
        let bad = dir.writeback(5, 0); // not the owner
        sz.on_writeback(&dir, 5, 0, bad);
        assert_eq!(sz.first_divergence(), None, "spec and directory agree it is illegal");
        sz.verify_shadow(&dir).unwrap();
    }

    #[test]
    fn tampering_with_the_directory_is_caught_by_the_next_check() {
        let mut dir = dir4();
        let mut sz = Sanitizer::new();
        let r = dir.read_miss(7, 0);
        sz.on_read_miss(&dir, 7, 0, &r);
        // Simulate a corrupted transition: someone rewrites the line
        // behind the protocol's back.
        dir.seed_state(7, LineState::Modified { owner: 3, in_rac: false }).unwrap();
        let err = sz.verify_shadow(&dir).unwrap_err();
        assert_eq!(err.op, "verify_shadow");
        assert!(err.detail.contains("Modified"), "{}", err.detail);
    }

    #[test]
    fn wrong_outcome_fields_are_caught_at_the_transition() {
        let mut dir = dir4();
        let mut sz = Sanitizer::new();
        let w = dir.write_miss(3, 1);
        sz.on_write_miss(&dir, 3, 1, &w);
        // Hand the sanitizer a doctored outcome for the next read: claim
        // the fill came from home although the spec demands the owner's
        // cache.
        let r = dir.read_miss(3, 2);
        let mut doctored = r;
        doctored.source = csim_coherence::FillSource::Home;
        sz.on_read_miss(&dir, 3, 2, &doctored);
        let err = sz.first_divergence().expect("divergence latched");
        assert_eq!(err.op, "read_miss");
        assert!(err.detail.contains("fill source"), "{}", err.detail);
        // Latched: further checks are no-ops and the error sticks.
        let checks = sz.checks();
        let r2 = dir.read_miss(3, 3);
        sz.on_read_miss(&dir, 3, 3, &r2);
        assert_eq!(sz.checks(), checks);
        assert!(sz.verify_shadow(&dir).is_err());
    }

    #[test]
    fn cold_flag_lies_are_caught() {
        let mut dir = dir4();
        let mut sz = Sanitizer::new();
        let r = dir.read_miss(9, 0);
        let mut doctored = r;
        doctored.cold = false; // first machine-wide reference: must be cold
        sz.on_read_miss(&dir, 9, 0, &doctored);
        let err = sz.first_divergence().expect("divergence latched");
        assert!(err.detail.contains("cold"), "{}", err.detail);
    }

    #[test]
    fn stale_drop_notifications_check_clean() {
        let mut dir = dir4();
        let mut sz = Sanitizer::new();
        let removed = dir.drop_sharer(99, 1); // never tracked
        sz.on_drop_sharer(&dir, 99, 1, removed);
        assert_eq!(sz.first_divergence(), None);
        sz.verify_shadow(&dir).unwrap();
    }

    #[test]
    fn sharer_bookkeeping_tracks_partial_drops() {
        let mut dir = dir4();
        let mut sz = Sanitizer::new();
        for n in 0..3 {
            let r = dir.read_miss(4, n);
            sz.on_read_miss(&dir, 4, n, &r);
        }
        let removed = dir.drop_sharer(4, 1);
        sz.on_drop_sharer(&dir, 4, 1, removed);
        assert_eq!(sz.first_divergence(), None);
        let expected: NodeSet = [0u8, 2].into_iter().collect();
        assert_eq!(dir.state(4), LineState::Shared(expected));
        sz.verify_shadow(&dir).unwrap();
    }
}
