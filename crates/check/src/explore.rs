//! Breadth-first exhaustive exploration of the bounded model.
//!
//! BFS (rather than DFS) so that the first violation found is at minimal
//! depth — the counterexample trace is the *shortest* sequence of
//! protocol events that breaks the invariant, which is what makes it
//! readable. The visited set is keyed by the compact
//! [`encode`](crate::model::encode) form; only keys, parent indices and
//! the arriving action are stored, so the frontier stays small and the
//! trace is rebuilt by walking parent pointers.
//!
//! Everything here is deterministic: action enumeration order is fixed,
//! the queue is FIFO, and no hash-map iteration order ever influences
//! results — identical runs produce identical reports and replay seeds.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::invariants::{check_state, Violation};
use crate::model::{apply, enabled_actions, decode, encode, Action, CheckConfig, ModelState};

/// A violation plus the evidence to understand and reproduce it.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// What failed.
    pub violation: Violation,
    /// The minimal event trace from the reset state: each step is the
    /// action taken and a summary of the state it produced.
    pub steps: Vec<(Action, String)>,
    /// Hex-encoded action sequence; feed to [`replay`] (or
    /// `csim-check --replay`) to re-execute the exact failing run.
    pub replay_seed: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.violation)?;
        writeln!(f, "minimal trace ({} steps from reset):", self.steps.len())?;
        for (i, (action, state)) in self.steps.iter().enumerate() {
            writeln!(f, "  {:>3}. {action}", i + 1)?;
            writeln!(f, "       => {state}")?;
        }
        write!(f, "replay seed: {}", self.replay_seed)
    }
}

/// The result of one exploration (or replay).
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The bounds explored.
    pub config: CheckConfig,
    /// Distinct reachable states visited.
    pub states: usize,
    /// Transitions executed (spec + real directory, each cross-checked).
    pub transitions: u64,
    /// Depth of the deepest state reached (BFS level).
    pub max_depth: usize,
    /// Whether exploration stopped at `max_states` before exhausting the
    /// space. A truncated clean run is *not* a proof.
    pub truncated: bool,
    /// The first (minimal-depth) violation, if any.
    pub violation: Option<Counterexample>,
}

impl CheckReport {
    /// True when the whole bounded space was explored and no invariant
    /// failed.
    pub fn verified(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} lines, rac={}, nack budget {}: {} states, {} transitions, depth {}",
            self.config.nodes,
            self.config.lines,
            self.config.rac,
            self.config.max_nacks,
            self.states,
            self.transitions,
            self.max_depth
        )?;
        if self.truncated {
            write!(f, " (TRUNCATED at {} states)", self.config.max_states)?;
        }
        match &self.violation {
            None => write!(f, " — no violations"),
            Some(cex) => write!(f, "\nVIOLATION: {cex}"),
        }
    }
}

struct Vertex {
    key: u128,
    /// Index of the predecessor in the vertex arena (self-index for the
    /// root, which carries no arriving action).
    parent: usize,
    action: Option<Action>,
    depth: usize,
}

/// Exhaustively explores the reachable state space of `config`.
///
/// Every transition is executed against both the spec and a real
/// [`Directory`](csim_coherence::Directory); every reached state is
/// checked against the full invariant set. Stops at the first violation
/// (minimal depth by BFS) or when the space — or the `max_states`
/// budget — is exhausted.
pub fn explore(config: &CheckConfig) -> Result<CheckReport, String> {
    config.validate()?;
    let initial = ModelState::initial(config);
    let mut vertices = vec![Vertex { key: encode(config, &initial), parent: 0, action: None, depth: 0 }];
    let mut visited: HashMap<u128, usize> = HashMap::new();
    visited.insert(vertices[0].key, 0);
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut transitions = 0u64;
    let mut max_depth = 0usize;
    let mut truncated = false;

    if let Err(violation) = check_state(config, &initial) {
        return Ok(CheckReport {
            config: *config,
            states: 1,
            transitions: 0,
            max_depth: 0,
            truncated: false,
            violation: Some(build_counterexample(config, &vertices, 0, None, violation)),
        });
    }

    while let Some(idx) = queue.pop_front() {
        let state = decode(config, vertices[idx].key);
        let depth = vertices[idx].depth;
        for action in enabled_actions(config, &state) {
            transitions += 1;
            let next = match apply(config, &state, action) {
                Ok(next) => next,
                Err(violation) => {
                    return Ok(CheckReport {
                        config: *config,
                        states: vertices.len(),
                        transitions,
                        max_depth,
                        truncated,
                        violation: Some(build_counterexample(
                            config,
                            &vertices,
                            idx,
                            Some(action),
                            violation,
                        )),
                    });
                }
            };
            let key = encode(config, &next);
            if visited.contains_key(&key) {
                continue;
            }
            let new_idx = vertices.len();
            visited.insert(key, new_idx);
            vertices.push(Vertex { key, parent: idx, action: Some(action), depth: depth + 1 });
            max_depth = max_depth.max(depth + 1);
            if let Err(violation) = check_state(config, &next) {
                return Ok(CheckReport {
                    config: *config,
                    states: vertices.len(),
                    transitions,
                    max_depth,
                    truncated,
                    violation: Some(build_counterexample(config, &vertices, new_idx, None, violation)),
                });
            }
            queue.push_back(new_idx);
        }
        if vertices.len() >= config.max_states {
            truncated = true;
            break;
        }
    }

    Ok(CheckReport {
        config: *config,
        states: vertices.len(),
        transitions,
        max_depth,
        truncated,
        violation: None,
    })
}

/// Rebuilds the minimal action trace to `idx` (plus the optional final
/// action that itself failed), re-executes it from the reset state to
/// produce readable per-step summaries, and encodes the replay seed.
fn build_counterexample(
    config: &CheckConfig,
    vertices: &[Vertex],
    idx: usize,
    final_action: Option<Action>,
    violation: Violation,
) -> Counterexample {
    let mut actions = Vec::new();
    let mut at = idx;
    while let Some(action) = vertices[at].action {
        actions.push(action);
        at = vertices[at].parent;
    }
    actions.reverse();
    if let Some(action) = final_action {
        actions.push(action);
    }

    let mut steps = Vec::with_capacity(actions.len());
    let mut state = ModelState::initial(config);
    for action in &actions {
        match apply(config, &state, *action) {
            Ok(next) => {
                steps.push((*action, next.summarize(config)));
                state = next;
            }
            Err(v) => {
                steps.push((*action, format!("<transition itself failed: {v}>")));
                break;
            }
        }
    }

    let mut replay_seed = String::with_capacity(actions.len() * 4);
    for action in &actions {
        for byte in action.encode() {
            use fmt::Write as _;
            let _ = write!(replay_seed, "{byte:02x}");
        }
    }
    Counterexample { violation, steps, replay_seed }
}

/// Decodes a replay seed produced by a previous run.
///
/// # Errors
///
/// A description of the malformed hex or unknown opcode.
pub fn decode_seed(seed: &str) -> Result<Vec<Action>, String> {
    let seed = seed.trim();
    if !seed.len().is_multiple_of(4) {
        return Err(format!("replay seed length {} is not a multiple of 4 hex digits", seed.len()));
    }
    let byte_at = |i: usize| -> Result<u8, String> {
        u8::from_str_radix(&seed[i..i + 2], 16)
            .map_err(|e| format!("bad hex at offset {i}: {e}"))
    };
    let mut actions = Vec::with_capacity(seed.len() / 4);
    for i in (0..seed.len()).step_by(4) {
        let bytes = [byte_at(i)?, byte_at(i + 2)?];
        let action = Action::decode(bytes)
            .ok_or_else(|| format!("unknown action opcode {:#x} at offset {i}", bytes[0]))?;
        actions.push(action);
    }
    Ok(actions)
}

/// Re-executes a replay seed step by step, checking invariants after
/// every action, and returns the trace. Used by `csim-check --replay`
/// to reproduce a counterexample deterministically.
///
/// # Errors
///
/// A description of a malformed seed or an action that is not enabled
/// in the state it is applied to.
pub fn replay(config: &CheckConfig, seed: &str) -> Result<Counterexample, String> {
    config.validate()?;
    let actions = decode_seed(seed)?;
    let mut state = ModelState::initial(config);
    let mut steps = Vec::with_capacity(actions.len());
    let mut violation = None;
    for (i, action) in actions.iter().enumerate() {
        if !enabled_actions(config, &state).contains(action) {
            return Err(format!(
                "step {}: `{action}` is not enabled in state `{}` — wrong config for this seed?",
                i + 1,
                state.summarize(config)
            ));
        }
        match apply(config, &state, *action) {
            Ok(next) => {
                steps.push((*action, next.summarize(config)));
                if let Err(v) = check_state(config, &next) {
                    violation = Some(v);
                    break;
                }
                state = next;
            }
            Err(v) => {
                steps.push((*action, format!("<transition itself failed: {v}>")));
                violation = Some(v);
                break;
            }
        }
    }
    let violation = violation.unwrap_or(Violation {
        invariant: crate::invariants::Invariant::SpecConformance,
        detail: "replay completed without reproducing a violation".to_string(),
    });
    Ok(Counterexample { violation, steps, replay_seed: seed.trim().to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::Invariant;

    #[test]
    fn smallest_config_verifies_clean() {
        let report = explore(&CheckConfig::small()).expect("valid config");
        assert!(report.verified(), "{report}");
        assert!(report.states > 10, "2n/1l must still have a real state space");
        assert!(report.max_depth >= 3);
    }

    #[test]
    fn nack_free_config_shrinks_the_space() {
        let with = explore(&CheckConfig { max_nacks: 1, ..CheckConfig::small() }).unwrap();
        let without = explore(&CheckConfig { max_nacks: 0, ..CheckConfig::small() }).unwrap();
        assert!(without.verified() && with.verified());
        assert!(
            without.states < with.states,
            "NACK credits add states: {} !< {}",
            without.states,
            with.states
        );
    }

    #[test]
    fn truncation_is_reported_not_hidden() {
        let report =
            explore(&CheckConfig { max_states: 5, ..CheckConfig::small() }).expect("valid config");
        assert!(report.truncated);
        assert!(!report.verified(), "a truncated run must not claim verification");
        assert!(report.to_string().contains("TRUNCATED"));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(explore(&CheckConfig { nodes: 9, ..CheckConfig::small() }).is_err());
        assert!(explore(&CheckConfig { lines: 0, ..CheckConfig::small() }).is_err());
        assert!(explore(&CheckConfig { max_nacks: 99, ..CheckConfig::small() }).is_err());
    }

    #[test]
    fn replay_round_trips_an_action_sequence() {
        // Hand-build a short legal run: node 0 write-misses line 0,
        // gets NACKed once, is serviced, then writes back.
        let config = CheckConfig::small();
        let actions = [
            crate::model::Action::Issue { node: 0, line: 0, write: true },
            crate::model::Action::Nack { node: 0 },
            crate::model::Action::Service { node: 0 },
            crate::model::Action::Writeback { node: 0, line: 0 },
        ];
        let seed: String =
            actions.iter().flat_map(|a| a.encode()).map(|b| format!("{b:02x}")).collect();
        let cex = replay(&config, &seed).expect("legal sequence replays");
        assert_eq!(cex.steps.len(), 4);
        assert!(cex.violation.detail.contains("without reproducing"));
        assert_eq!(decode_seed(&seed).unwrap().len(), 4);
    }

    #[test]
    fn replay_rejects_garbage_seeds() {
        let config = CheckConfig::small();
        assert!(replay(&config, "zz").is_err());
        assert!(replay(&config, "abc").is_err(), "odd length");
        // Opcode 9 does not exist.
        assert!(replay(&config, "0900").is_err());
        // A service with nothing pending is not enabled.
        let seed: String = crate::model::Action::Service { node: 0 }
            .encode()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        let err = replay(&config, &seed).unwrap_err();
        assert!(err.contains("not enabled"), "{err}");
    }

    #[test]
    fn seeded_violations_are_caught_with_a_trace() {
        // Force a broken state through the model by checking it directly:
        // the explorer itself never reaches one (that is the theorem), so
        // we validate the counterexample plumbing on a hand-made vertex
        // arena instead.
        let config = CheckConfig::small();
        let initial = ModelState::initial(&config);
        let issued = apply(&config, &initial, Action::Issue { node: 1, line: 0, write: true })
            .expect("issue is legal");
        let vertices = vec![
            Vertex { key: encode(&config, &initial), parent: 0, action: None, depth: 0 },
            Vertex {
                key: encode(&config, &issued),
                parent: 0,
                action: Some(Action::Issue { node: 1, line: 0, write: true }),
                depth: 1,
            },
        ];
        let violation = Violation {
            invariant: Invariant::Swmr,
            detail: "synthetic violation for trace-plumbing test".to_string(),
        };
        let cex = build_counterexample(&config, &vertices, 1, None, violation);
        assert_eq!(cex.steps.len(), 1);
        assert!(!cex.replay_seed.is_empty());
        let rendered = cex.to_string();
        assert!(rendered.contains("minimal trace"));
        assert!(rendered.contains("replay seed"));
        // The seed replays to the same step count.
        let replayed = replay(&config, &cex.replay_seed).unwrap();
        assert_eq!(replayed.steps.len(), 1);
    }
}
