//! Hermetic source-lint gate for the simulator workspace.
//!
//! ```text
//! csim-lint [workspace-root]
//! ```
//!
//! Scans `src/` of the root package and every crate under `crates/`,
//! enforcing the contracts in [`csim_check::lint`]: no panics in library
//! code, no wall-clock reads, no hash-ordered containers on export
//! paths, and no `unsafe` anywhere. Exit status 0 when clean, 1 when any
//! rule fires, 2 when the root is not a workspace.

use std::path::PathBuf;
use std::process::ExitCode;

use csim_check::lint::lint_workspace;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("csim-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for finding in &report.findings {
        println!("{finding}");
    }
    if !report.escapes.is_empty() {
        println!(
            "{} documented exception{} in force:",
            report.escapes.len(),
            if report.escapes.len() == 1 { "" } else { "s" }
        );
        for escape in &report.escapes {
            println!("  {}:{}: allow({}) — {}", escape.file, escape.line, escape.rule, escape.reason);
        }
    }
    println!(
        "csim-lint: {} files, {} finding{}, {} escape{}",
        report.files,
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.escapes.len(),
        if report.escapes.len() == 1 { "" } else { "s" },
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
