//! Explicit-state model checker for the directory protocol.
//!
//! ```text
//! csim-check                        # verify the small and medium presets
//! csim-check --nodes 3 --lines 2   # verify one bounded configuration
//! csim-check --replay <seed> ...   # re-execute a counterexample trace
//! ```
//!
//! Exit status: 0 when every requested configuration verifies clean,
//! 1 on a violation or truncated search, 2 on usage errors.

use std::process::ExitCode;

use csim_check::model::CheckConfig;
use csim_check::{explore, replay};

struct Args {
    config: Option<CheckConfig>,
    replay_seed: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut config: Option<CheckConfig> = None;
    let mut replay_seed = None;
    let mut it = argv.iter();
    let touch = |config: &mut Option<CheckConfig>| {
        if config.is_none() {
            *config = Some(CheckConfig::small());
        }
    };
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--nodes" => {
                touch(&mut config);
                if let Some(c) = config.as_mut() {
                    c.nodes = parse_u8(&value("--nodes")?)?;
                }
            }
            "--lines" => {
                touch(&mut config);
                if let Some(c) = config.as_mut() {
                    c.lines = parse_u8(&value("--lines")?)?;
                }
            }
            "--max-nacks" => {
                touch(&mut config);
                if let Some(c) = config.as_mut() {
                    c.max_nacks = parse_u8(&value("--max-nacks")?)?;
                }
            }
            "--max-states" => {
                touch(&mut config);
                if let Some(c) = config.as_mut() {
                    let raw = value("--max-states")?;
                    c.max_states = raw
                        .parse::<usize>()
                        .map_err(|_| format!("not a state count: {raw:?}"))?;
                }
            }
            "--no-rac" => {
                touch(&mut config);
                if let Some(c) = config.as_mut() {
                    c.rac = false;
                }
            }
            "--preset" => {
                config = Some(match value("--preset")?.as_str() {
                    "small" => CheckConfig::small(),
                    "medium" => CheckConfig::medium(),
                    other => return Err(format!("unknown preset {other:?} (small|medium)")),
                });
            }
            "--replay" => replay_seed = Some(value("--replay")?),
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args { config, replay_seed })
}

fn parse_u8(s: &str) -> Result<u8, String> {
    s.parse::<u8>().map_err(|_| format!("not a small integer: {s:?}"))
}

fn usage() -> &'static str {
    "usage: csim-check [--preset small|medium] [--nodes N] [--lines L] \
     [--max-nacks K] [--no-rac] [--replay SEED]\n\
     With no arguments, verifies the small (2 nodes / 1 line) and medium\n\
     (3 nodes / 2 lines) presets used by CI."
}

fn run_one(config: &CheckConfig) -> bool {
    match explore(config) {
        Ok(report) => {
            println!("{report}");
            report.verified()
        }
        Err(e) => {
            eprintln!("csim-check: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("csim-check: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if let Some(seed) = args.replay_seed {
        let config = args.config.unwrap_or_else(CheckConfig::small);
        return match replay(&config, &seed) {
            Ok(trace) => {
                println!("{trace}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("csim-check: replay failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let configs = match args.config {
        Some(c) => vec![c],
        None => vec![CheckConfig::small(), CheckConfig::medium()],
    };
    let mut ok = true;
    for config in &configs {
        ok &= run_one(config);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
