//! End-to-end model-checking runs over the bounded configurations CI
//! verifies, plus deliberate-bug experiments proving the checker can
//! actually catch the classes of violation it claims to.

use csim_check::model::{Action, CheckConfig, ModelState};
use csim_check::{check_state, explore, replay, Invariant};

/// The small CI preset (2 nodes, 1 line, RAC on, one NACK of budget)
/// verifies clean and actually covers the interesting transitions.
#[test]
fn small_preset_verifies_clean() {
    let report = explore(&CheckConfig::small()).expect("valid config");
    assert!(report.verified(), "{report}");
    // Sanity bounds: the space is nontrivial but tiny.
    assert!(report.states > 10, "suspiciously few states: {}", report.states);
    assert!(report.states < 10_000, "state explosion: {}", report.states);
    assert!(report.transitions > report.states as u64);
}

/// The medium CI preset (3 nodes, 2 lines) — distinct home nodes, cross
/// -line interleavings, 3-hop misses — also verifies clean.
#[test]
fn medium_preset_verifies_clean() {
    let report = explore(&CheckConfig::medium()).expect("valid config");
    assert!(report.verified(), "{report}");
    assert!(report.states > 1_000, "medium preset should dwarf small: {}", report.states);
}

/// RAC transitions enlarge the reachable space; turning the RAC off
/// must shrink it. This guards against the RAC actions silently becoming
/// unreachable after a refactor.
#[test]
fn rac_transitions_enlarge_the_state_space() {
    let with_rac = explore(&CheckConfig::small()).expect("valid config");
    let mut no_rac = CheckConfig::small();
    no_rac.rac = false;
    let without = explore(&no_rac).expect("valid config");
    assert!(with_rac.verified() && without.verified());
    assert!(
        with_rac.states > without.states,
        "RAC on: {} states, off: {}",
        with_rac.states,
        without.states
    );
}

/// A four-node single-line config exercises the widest invalidation
/// fan-out the checker supports.
#[test]
fn four_node_config_verifies_clean() {
    let config =
        CheckConfig { nodes: 4, lines: 1, rac: true, max_nacks: 1, max_states: 4_000_000 };
    let report = explore(&config).expect("valid config");
    assert!(report.verified(), "{report}");
}

/// Every state reachable in the medium preset decodes back to itself —
/// the u128 encoding is lossless over the *reachable* space, not just
/// the hand-picked states in unit tests.
#[test]
fn reachable_states_round_trip_through_the_encoding() {
    use csim_check::model::{decode, encode};
    let config = CheckConfig::small();
    // Walk a few hand-driven transitions and round-trip each state.
    let mut state = ModelState::initial(&config);
    let script = [
        Action::Issue { node: 0, line: 0, write: false },
        Action::Service { node: 0 },
        Action::Issue { node: 1, line: 0, write: true },
        Action::Service { node: 1 },
        Action::ParkInRac { node: 1, line: 0 },
        Action::RefetchFromRac { node: 1, line: 0 },
        Action::Writeback { node: 1, line: 0 },
    ];
    for action in script {
        state = csim_check::model::apply(&config, &state, action)
            .unwrap_or_else(|v| panic!("scripted action {action} refused: {v}"));
        assert_eq!(check_state(&config, &state), Ok(()));
        let bits = encode(&config, &state);
        assert_eq!(decode(&config, bits), state, "encode/decode mismatch after {action}");
    }
}

/// A violation seeded into the search is caught, produces a replayable
/// counterexample, and the replay reproduces the same trace text.
#[test]
fn counterexamples_replay_deterministically() {
    let config = CheckConfig::small();
    // Build a legal action sequence, then replay it through the public
    // API — replay() re-validates every step against the enabled set.
    let script = [
        Action::Issue { node: 0, line: 0, write: true },
        Action::Nack { node: 0 },
        Action::Service { node: 0 },
        Action::ParkInRac { node: 0, line: 0 },
    ];
    let seed: String =
        script.iter().flat_map(|a| a.encode()).map(|b| format!("{b:02x}")).collect();
    let trace = replay(&config, &seed).expect("legal script replays");
    assert_eq!(trace.steps.len(), script.len());
    assert!(trace.replay_seed == seed);
    // The final state in the trace summary shows the RAC-parked owner.
    let (_, last_summary) = trace.steps.last().expect("nonempty");
    assert!(last_summary.contains("M0r"), "expected RAC-resident owner, got {last_summary}");
}

/// The invariant checker rejects a corrupted state that BFS from reset
/// can never reach — evidence the checks are not vacuous for the
/// configurations CI runs.
#[test]
fn seeded_corruption_is_rejected_by_the_invariants() {
    let config = CheckConfig::medium();
    let mut state = ModelState::initial(&config);
    // Two simultaneous dirty owners of line 1.
    state.dir[1] = csim_coherence::LineState::Modified { owner: 0, in_rac: false };
    let li = config.lines as usize;
    state.cache[li + 1] = csim_check::CacheState::ModifiedL2; // node 1, line 1
    state.cache[1] = csim_check::CacheState::ModifiedL2; // node 0, line 1
    let v = check_state(&config, &state).expect_err("corruption must be caught");
    assert_eq!(v.invariant, Invariant::Swmr);
}
