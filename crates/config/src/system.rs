//! Full-system configuration and its builder.

use crate::error::ConfigError;
use crate::geometry::CacheGeometry;
use crate::integration::{IntegrationLevel, L2Config, L2Kind};
use crate::latency::LatencyTable;
use crate::processor::{OooParams, ProcessorModel};
use crate::{L1_ASSOC, L1_SIZE, LINE_SIZE, MP_NODES};

/// Remote access cache parameters (paper Section 6).
///
/// The RAC caches only remote data; its data lives in local main memory so
/// hits cost the local-memory latency, while its tags live on-chip.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RacConfig {
    /// Size / associativity / line size of the RAC.
    pub geometry: CacheGeometry,
}

impl RacConfig {
    /// The paper's RAC: 8 MB, 8-way.
    pub fn paper() -> Self {
        RacConfig {
// lint: allow(no-panic) — paper constants are validated by construction; failure is a build-time bug
            geometry: CacheGeometry::new(8 << 20, 8, LINE_SIZE)
                .expect("paper RAC geometry is valid"),
        }
    }
}

/// A validated description of one simulated machine.
///
/// Construct with [`SystemConfig::builder`]; every accessor below is
/// guaranteed consistent (the builder validates die limits, node counts and
/// integration-level / L2-kind agreement).
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    n_nodes: usize,
    cores_per_node: usize,
    integration: IntegrationLevel,
    l1i: CacheGeometry,
    l1d: CacheGeometry,
    l2: L2Config,
    rac: Option<RacConfig>,
    replicate_instructions: bool,
    processor: ProcessorModel,
    latencies: LatencyTable,
}

impl SystemConfig {
    /// Starts building a configuration. Defaults: uniprocessor, `Base`
    /// integration, 8 MB direct-mapped off-chip L2, 64 KB 2-way L1s,
    /// in-order processor, no RAC, no instruction replication.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::new()
    }

    /// The paper's Base uniprocessor (8 MB direct-mapped off-chip L2).
    ///
    /// # Example
    ///
    /// ```
    /// let cfg = csim_config::SystemConfig::paper_base_uni();
    /// assert_eq!(cfg.n_nodes(), 1);
    /// assert_eq!(cfg.l2().geometry.label(), "8M1w");
    /// ```
    pub fn paper_base_uni() -> Self {
        // lint: allow(no-panic) — paper constants are validated by construction; failure is a build-time bug
        Self::builder().build().expect("paper base uniprocessor config is valid")
    }

    /// The paper's Base 8-processor configuration.
    pub fn paper_base_mp8() -> Self {
        // lint: allow(no-panic) — paper constants are validated by construction; failure is a build-time bug
        Self::builder().nodes(MP_NODES).build().expect("paper base MP config is valid")
    }

    /// The paper's fully-integrated design (2 MB 8-way on-chip SRAM L2,
    /// MC and CC/NR on chip) with `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn paper_fully_integrated(n: usize) -> Self {
        Self::builder()
            .nodes(n)
            .integration(IntegrationLevel::FullyIntegrated)
            .l2_sram(2 << 20, 8)
            .build()
            // lint: allow(no-panic) — paper constants are validated by construction; failure is a build-time bug
            .expect("paper fully-integrated config is valid")
    }

    /// Number of processor nodes (chips).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Processor cores per chip, all sharing the chip's L2 (the paper's
    /// concluding chip-multiprocessing suggestion; 1 reproduces the
    /// paper's configurations).
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Total cores in the machine (`n_nodes * cores_per_node`).
    pub fn total_cores(&self) -> usize {
        self.n_nodes * self.cores_per_node
    }

    /// Integration level.
    pub fn integration(&self) -> IntegrationLevel {
        self.integration
    }

    /// L1 instruction cache geometry.
    pub fn l1i(&self) -> CacheGeometry {
        self.l1i
    }

    /// L1 data cache geometry.
    pub fn l1d(&self) -> CacheGeometry {
        self.l1d
    }

    /// L2 configuration.
    pub fn l2(&self) -> L2Config {
        self.l2
    }

    /// Remote access cache, if configured.
    pub fn rac(&self) -> Option<RacConfig> {
        self.rac
    }

    /// Whether instruction pages are replicated to every node (OS-based
    /// code replication, paper Section 6).
    pub fn replicate_instructions(&self) -> bool {
        self.replicate_instructions
    }

    /// Processor timing model.
    pub fn processor(&self) -> ProcessorModel {
        self.processor
    }

    /// Memory latencies for this configuration.
    pub fn latencies(&self) -> LatencyTable {
        self.latencies
    }

    /// A human-readable one-line summary, e.g.
    /// `"8p All 2M8w SRAM InOrder"`.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{}p{} {} {} {:?} {}",
            self.n_nodes,
            if self.cores_per_node > 1 { format!("x{}c", self.cores_per_node) } else { String::new() },
            self.integration.label(),
            self.l2.geometry.label(),
            self.l2.kind,
            self.processor.label()
        );
        if self.rac.is_some() {
            s.push_str(" +RAC");
        }
        if self.replicate_instructions {
            s.push_str(" +IRepl");
        }
        s
    }
}

/// Builder for [`SystemConfig`]. Non-consuming: methods take `&mut self`
/// and return `&mut Self` so both one-liners and conditional configuration
/// read naturally.
#[derive(Clone, Debug)]
pub struct SystemConfigBuilder {
    n_nodes: usize,
    cores_per_node: usize,
    integration: IntegrationLevel,
    l1i: CacheGeometry,
    l1d: CacheGeometry,
    l2: L2Config,
    rac: Option<RacConfig>,
    replicate_instructions: bool,
    processor: ProcessorModel,
    latency_override: Option<LatencyTable>,
}

impl SystemConfigBuilder {
    fn new() -> Self {
        // lint: allow(no-panic) — paper constants are validated by construction; failure is a build-time bug
        let l1 = CacheGeometry::new(L1_SIZE, L1_ASSOC, LINE_SIZE).expect("default L1 is valid");
        // lint: allow(no-panic) — paper constants are validated by construction; failure is a build-time bug
        let l2_geom = CacheGeometry::new(8 << 20, 1, LINE_SIZE).expect("default L2 is valid");
        SystemConfigBuilder {
            n_nodes: 1,
            cores_per_node: 1,
            integration: IntegrationLevel::Base,
            l1i: l1,
            l1d: l1,
            l2: L2Config::new(l2_geom, L2Kind::OffChip),
            rac: None,
            replicate_instructions: false,
            processor: ProcessorModel::InOrder,
            latency_override: None,
        }
    }

    /// Sets the number of processor nodes (chips).
    pub fn nodes(&mut self, n: usize) -> &mut Self {
        self.n_nodes = n;
        self
    }

    /// Sets the number of cores per chip, all sharing the chip's L2 — a
    /// chip multiprocessor, the extension the paper's conclusion points
    /// to. Default 1.
    pub fn cores_per_node(&mut self, cores: usize) -> &mut Self {
        self.cores_per_node = cores;
        self
    }

    /// Sets the integration level.
    pub fn integration(&mut self, level: IntegrationLevel) -> &mut Self {
        self.integration = level;
        self
    }

    /// Sets an off-chip L2 of the given size and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is malformed; use [`Self::l2`] with a
    /// pre-validated [`CacheGeometry`] to handle errors instead.
    pub fn l2_off_chip(&mut self, size_bytes: u64, assoc: u32) -> &mut Self {
// lint: allow(no-panic) — documented panicking convenience setter; the builder's build() is the fallible path
        let g = CacheGeometry::new(size_bytes, assoc, LINE_SIZE)
            .expect("off-chip L2 geometry must be valid");
        self.l2 = L2Config::new(g, L2Kind::OffChip);
        self
    }

    /// Sets an on-chip SRAM L2 of the given size and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is malformed (die-limit checks happen at
    /// [`Self::build`] time, not here).
    pub fn l2_sram(&mut self, size_bytes: u64, assoc: u32) -> &mut Self {
// lint: allow(no-panic) — documented panicking convenience setter; the builder's build() is the fallible path
        let g = CacheGeometry::new(size_bytes, assoc, LINE_SIZE)
            .expect("SRAM L2 geometry must be valid");
        self.l2 = L2Config::new(g, L2Kind::OnChipSram);
        self
    }

    /// Sets an on-chip embedded-DRAM L2 of the given size and
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is malformed.
    pub fn l2_dram(&mut self, size_bytes: u64, assoc: u32) -> &mut Self {
// lint: allow(no-panic) — documented panicking convenience setter; the builder's build() is the fallible path
        let g = CacheGeometry::new(size_bytes, assoc, LINE_SIZE)
            .expect("DRAM L2 geometry must be valid");
        self.l2 = L2Config::new(g, L2Kind::OnChipDram);
        self
    }

    /// Sets the L2 from a pre-built [`L2Config`].
    pub fn l2(&mut self, l2: L2Config) -> &mut Self {
        self.l2 = l2;
        self
    }

    /// Overrides the L1 geometries (both caches; the paper uses identical
    /// 64 KB 2-way L1I and L1D).
    pub fn l1(&mut self, geometry: CacheGeometry) -> &mut Self {
        self.l1i = geometry;
        self.l1d = geometry;
        self
    }

    /// Adds a remote access cache.
    pub fn rac(&mut self, rac: RacConfig) -> &mut Self {
        self.rac = Some(rac);
        self
    }

    /// Enables OS-based replication of instruction pages at every node.
    pub fn replicate_instructions(&mut self, on: bool) -> &mut Self {
        self.replicate_instructions = on;
        self
    }

    /// Selects the in-order processor model (the default).
    pub fn in_order(&mut self) -> &mut Self {
        self.processor = ProcessorModel::InOrder;
        self
    }

    /// Selects the out-of-order processor model.
    pub fn out_of_order(&mut self, params: OooParams) -> &mut Self {
        self.processor = ProcessorModel::OutOfOrder(params);
        self
    }

    /// Replaces the derived latency table (for sensitivity studies).
    pub fn latencies(&mut self, table: LatencyTable) -> &mut Self {
        self.latency_override = Some(table);
        self
    }

    /// Validates and produces the [`SystemConfig`].
    ///
    /// # Errors
    ///
    /// * [`ConfigError::BadNodeCount`] — zero nodes, or a RAC on a
    ///   uniprocessor.
    /// * [`ConfigError::L2KindMismatch`] — off-chip L2 with an integrated
    ///   level, or on-chip L2 with a non-integrated level.
    /// * [`ConfigError::L2TooLargeForDie`] — on-chip L2 over the process
    ///   technology limit (2 MB SRAM / 8 MB DRAM).
    pub fn build(&self) -> Result<SystemConfig, ConfigError> {
        if self.n_nodes == 0 {
            return Err(ConfigError::BadNodeCount("at least one node is required".into()));
        }
        if self.cores_per_node == 0 || self.cores_per_node > 16 {
            return Err(ConfigError::BadNodeCount(
                "cores per node must be in 1..=16".into(),
            ));
        }
        if self.rac.is_some() && self.n_nodes < 2 {
            return Err(ConfigError::BadNodeCount(
                "a remote access cache only exists in multiprocessors".into(),
            ));
        }
        let on_chip_l2 = !matches!(self.l2.kind, L2Kind::OffChip);
        if self.integration.l2_on_chip() != on_chip_l2 {
            return Err(ConfigError::L2KindMismatch(format!(
                "integration level {:?} requires an {} L2 but got {:?}",
                self.integration,
                if self.integration.l2_on_chip() { "on-chip" } else { "off-chip" },
                self.l2.kind
            )));
        }
        if let Some(limit) = self.l2.kind.die_limit_bytes() {
            if self.l2.geometry.size_bytes() > limit {
                return Err(ConfigError::L2TooLargeForDie {
                    size_bytes: self.l2.geometry.size_bytes(),
                    limit_bytes: limit,
                });
            }
        }
        let latencies = self.latency_override.unwrap_or_else(|| {
            LatencyTable::for_system(self.integration, self.l2.kind, self.l2.geometry.assoc())
        });
        Ok(SystemConfig {
            n_nodes: self.n_nodes,
            cores_per_node: self.cores_per_node,
            integration: self.integration,
            l1i: self.l1i,
            l1d: self.l1d,
            l2: self.l2,
            rac: self.rac,
            replicate_instructions: self.replicate_instructions,
            processor: self.processor,
            latencies,
        })
    }
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_order_is_the_default_processor_model() {
        let mut b = super::SystemConfig::builder();
        b.nodes(1).l2_off_chip(8 << 20, 1);
        let default_cfg = b.build().unwrap();
        let mut b = super::SystemConfig::builder();
        b.nodes(1).l2_off_chip(8 << 20, 1).in_order();
        let explicit = b.build().unwrap();
        assert_eq!(default_cfg.processor, explicit.processor);
    }

    use super::*;

    #[test]
    fn default_build_is_paper_base_uniprocessor() {
        let cfg = SystemConfig::paper_base_uni();
        assert_eq!(cfg.n_nodes(), 1);
        assert_eq!(cfg.integration(), IntegrationLevel::Base);
        assert_eq!(cfg.l2().geometry.size_bytes(), 8 << 20);
        assert_eq!(cfg.l2().geometry.assoc(), 1);
        assert_eq!(cfg.l1i().size_bytes(), 64 << 10);
        assert_eq!(cfg.l1d().assoc(), 2);
        assert_eq!(cfg.latencies().l2_hit, 25);
        assert_eq!(cfg.processor(), ProcessorModel::InOrder);
    }

    #[test]
    fn mp8_has_eight_nodes() {
        assert_eq!(SystemConfig::paper_base_mp8().n_nodes(), 8);
    }

    #[test]
    fn fully_integrated_latencies_derive_from_level() {
        let cfg = SystemConfig::paper_fully_integrated(8);
        assert_eq!(cfg.latencies().l2_hit, 15);
        assert_eq!(cfg.latencies().local, 75);
        assert_eq!(cfg.latencies().remote_clean, 150);
        assert_eq!(cfg.latencies().remote_dirty, 200);
    }

    #[test]
    fn zero_nodes_rejected() {
        let err = SystemConfig::builder().nodes(0).build().unwrap_err();
        assert!(matches!(err, ConfigError::BadNodeCount(_)));
    }

    #[test]
    fn rac_on_uniprocessor_rejected() {
        let err = SystemConfig::builder()
            .nodes(1)
            .integration(IntegrationLevel::FullyIntegrated)
            .l2_sram(1 << 20, 4)
            .rac(RacConfig::paper())
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::BadNodeCount(_)));
    }

    #[test]
    fn sram_over_die_limit_rejected() {
        let err = SystemConfig::builder()
            .integration(IntegrationLevel::L2Integrated)
            .l2_sram(4 << 20, 8)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::L2TooLargeForDie { .. }));
    }

    #[test]
    fn dram_allows_8mb_but_not_16mb() {
        assert!(SystemConfig::builder()
            .integration(IntegrationLevel::L2Integrated)
            .l2_dram(8 << 20, 8)
            .build()
            .is_ok());
        assert!(SystemConfig::builder()
            .integration(IntegrationLevel::L2Integrated)
            .l2_dram(16 << 20, 8)
            .build()
            .is_err());
    }

    #[test]
    fn off_chip_l2_with_integrated_level_rejected() {
        let err = SystemConfig::builder()
            .integration(IntegrationLevel::FullyIntegrated)
            .l2_off_chip(8 << 20, 1)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::L2KindMismatch(_)));
    }

    #[test]
    fn on_chip_l2_with_base_level_rejected() {
        let err = SystemConfig::builder()
            .integration(IntegrationLevel::Base)
            .l2_sram(2 << 20, 8)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::L2KindMismatch(_)));
    }

    #[test]
    fn latency_override_is_honored() {
        let custom = LatencyTable {
            l2_hit: 1,
            local: 2,
            remote_clean: 3,
            remote_dirty: 4,
            rac_hit: 5,
            remote_dirty_in_rac: 6,
        };
        let cfg = SystemConfig::builder().latencies(custom).build().unwrap();
        assert_eq!(cfg.latencies(), custom);
    }

    #[test]
    fn summary_mentions_key_features() {
        let mut b = SystemConfig::builder();
        b.nodes(8)
            .integration(IntegrationLevel::FullyIntegrated)
            .l2_sram(2 << 20, 8)
            .rac(RacConfig::paper())
            .replicate_instructions(true);
        let cfg = b.build().unwrap();
        let s = cfg.summary();
        assert!(s.contains("8p"));
        assert!(s.contains("All"));
        assert!(s.contains("2M8w"));
        assert!(s.contains("+RAC"));
        assert!(s.contains("+IRepl"));
    }

    #[test]
    fn builder_supports_conditional_configuration() {
        let want_rac = true;
        let mut b = SystemConfig::builder();
        b.nodes(8).integration(IntegrationLevel::FullyIntegrated).l2_sram(1 << 20, 4);
        if want_rac {
            b.rac(RacConfig::paper());
        }
        let cfg = b.build().unwrap();
        assert!(cfg.rac().is_some());
    }
}
