//! Integration levels and L2 implementation technology.

use crate::geometry::CacheGeometry;

/// Which system-level modules are integrated onto the processor die.
///
/// The paper successively moves the second-level cache (L2), the memory
/// controller (MC), and the coherence controller / network router (CC/NR)
/// onto the processor chip, measuring each step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IntegrationLevel {
    /// A conventional design with an unoptimized off-chip memory system
    /// ("Conservative Base" in Figure 3).
    ConservativeBase,
    /// An aggressive off-chip design: L2 data, MC and CC/NR are all
    /// external, but latencies are optimized ("Base").
    Base,
    /// L2 data integrated on-chip; MC and CC/NR remain external.
    L2Integrated,
    /// L2 and memory controller on-chip; CC/NR external. The separation of
    /// the MC from the CC makes *remote* accesses slower than in less
    /// integrated designs (see Section 4 of the paper).
    L2McIntegrated,
    /// L2, MC, and CC/NR all on-chip — the Alpha 21364 design point.
    FullyIntegrated,
}

impl IntegrationLevel {
    /// Whether the L2 data array is on the processor die at this level.
    pub fn l2_on_chip(self) -> bool {
        matches!(
            self,
            IntegrationLevel::L2Integrated
                | IntegrationLevel::L2McIntegrated
                | IntegrationLevel::FullyIntegrated
        )
    }

    /// Whether the memory controller is on the processor die.
    pub fn mc_on_chip(self) -> bool {
        matches!(self, IntegrationLevel::L2McIntegrated | IntegrationLevel::FullyIntegrated)
    }

    /// Whether the coherence controller and network router are on the die.
    pub fn cc_on_chip(self) -> bool {
        matches!(self, IntegrationLevel::FullyIntegrated)
    }

    /// Short label used in experiment output ("Cons", "Base", "L2",
    /// "L2+MC", "All" — the names in the paper's Figure 10).
    pub fn label(self) -> &'static str {
        match self {
            IntegrationLevel::ConservativeBase => "Cons",
            IntegrationLevel::Base => "Base",
            IntegrationLevel::L2Integrated => "L2",
            IntegrationLevel::L2McIntegrated => "L2+MC",
            IntegrationLevel::FullyIntegrated => "All",
        }
    }

    /// All levels in increasing order of integration.
    pub fn all() -> [IntegrationLevel; 5] {
        [
            IntegrationLevel::ConservativeBase,
            IntegrationLevel::Base,
            IntegrationLevel::L2Integrated,
            IntegrationLevel::L2McIntegrated,
            IntegrationLevel::FullyIntegrated,
        ]
    }
}

/// The implementation technology of the L2 data array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum L2Kind {
    /// External SRAM (the off-chip designs). Capacity is unconstrained;
    /// direct-mapped organizations enjoy a faster hit time (25 vs 30
    /// cycles) because the data cycle can be wave-pipelined.
    OffChip,
    /// On-chip SRAM: at most 2 MB in the paper's 0.18um technology, 15
    /// cycle hits at any associativity.
    OnChipSram,
    /// On-chip embedded DRAM: up to 8 MB but slower (25 cycle hits).
    OnChipDram,
}

impl L2Kind {
    /// Maximum capacity the die can hold for this kind, or `None` when
    /// unconstrained (off-chip).
    pub fn die_limit_bytes(self) -> Option<u64> {
        match self {
            L2Kind::OffChip => None,
            L2Kind::OnChipSram => Some(2 << 20),
            L2Kind::OnChipDram => Some(8 << 20),
        }
    }
}

/// Full description of the second-level cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct L2Config {
    /// Size / associativity / line size.
    pub geometry: CacheGeometry,
    /// Implementation technology (drives hit latency and die limits).
    pub kind: L2Kind,
}

impl L2Config {
    /// Convenience constructor.
    pub fn new(geometry: CacheGeometry, kind: L2Kind) -> Self {
        L2Config { geometry, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_placement_is_monotonic() {
        use IntegrationLevel::*;
        let levels = IntegrationLevel::all();
        assert_eq!(levels.len(), 5);
        // Each successive level integrates at least as much.
        for w in levels.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert!(u8::from(a.l2_on_chip()) <= u8::from(b.l2_on_chip()));
            assert!(u8::from(a.mc_on_chip()) <= u8::from(b.mc_on_chip()));
            assert!(u8::from(a.cc_on_chip()) <= u8::from(b.cc_on_chip()));
        }
        assert!(!Base.l2_on_chip());
        assert!(L2Integrated.l2_on_chip() && !L2Integrated.mc_on_chip());
        assert!(L2McIntegrated.mc_on_chip() && !L2McIntegrated.cc_on_chip());
        assert!(FullyIntegrated.cc_on_chip());
    }

    #[test]
    fn labels_match_paper_figure_10() {
        assert_eq!(IntegrationLevel::Base.label(), "Base");
        assert_eq!(IntegrationLevel::L2McIntegrated.label(), "L2+MC");
        assert_eq!(IntegrationLevel::FullyIntegrated.label(), "All");
    }

    #[test]
    fn die_limits_match_section_2_3() {
        assert_eq!(L2Kind::OffChip.die_limit_bytes(), None);
        assert_eq!(L2Kind::OnChipSram.die_limit_bytes(), Some(2 << 20));
        assert_eq!(L2Kind::OnChipDram.die_limit_bytes(), Some(8 << 20));
    }
}
