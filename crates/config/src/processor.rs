//! Processor model selection.

/// Parameters of the out-of-order model (Section 7 of the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OooParams {
    /// Issue width (the paper uses 4).
    pub issue_width: u32,
    /// Instruction window (reorder buffer) size (the paper uses 64).
    pub window: u32,
    /// Number of load/store units (the paper uses 2).
    pub load_store_units: u32,
}

impl OooParams {
    /// The paper's aggressive four-wide configuration.
    pub fn paper() -> Self {
        OooParams { issue_width: 4, window: 64, load_store_units: 2 }
    }
}

impl Default for OooParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Which processor timing model drives the simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
#[derive(Default)]
pub enum ProcessorModel {
    /// Single-issue pipelined in-order core (the paper's medium-speed SimOS
    /// model, used for most results).
    #[default]
    InOrder,
    /// Multiple-issue out-of-order core (the paper's slowest, most detailed
    /// model, used in Section 7).
    OutOfOrder(OooParams),
}

impl ProcessorModel {
    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            ProcessorModel::InOrder => "InOrder",
            ProcessorModel::OutOfOrder(_) => "OOO",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ooo_parameters() {
        let p = OooParams::paper();
        assert_eq!(p.issue_width, 4);
        assert_eq!(p.window, 64);
        assert_eq!(p.load_store_units, 2);
    }

    #[test]
    fn default_model_is_in_order() {
        assert_eq!(ProcessorModel::default(), ProcessorModel::InOrder);
        assert_eq!(ProcessorModel::default().label(), "InOrder");
    }

    #[test]
    fn ooo_label() {
        assert_eq!(ProcessorModel::OutOfOrder(OooParams::paper()).label(), "OOO");
    }
}
