//! System configurations for the chip-level-integration study.
//!
//! This crate encodes the experimental matrix of the paper:
//!
//! * [`IntegrationLevel`] — which system-level modules (L2 cache, memory
//!   controller, coherence controller / network router) are on the
//!   processor die.
//! * [`LatencyTable`] — the memory latencies of the paper's Figure 3, in
//!   processor cycles at 1 GHz.
//! * [`CacheGeometry`] / [`L2Config`] — cache sizes and associativities.
//! * [`SystemConfig`] — a validated full-system description built with
//!   [`SystemConfigBuilder`], consumed by the simulator in `csim-core`.
//!
//! # Example
//!
//! ```
//! use csim_config::{IntegrationLevel, SystemConfig};
//!
//! // The paper's fully-integrated 8-processor configuration with a
//! // 2 MB 8-way on-chip L2 (the "All" bar of Figure 10).
//! let cfg = SystemConfig::builder()
//!     .nodes(8)
//!     .integration(IntegrationLevel::FullyIntegrated)
//!     .l2_sram(2 << 20, 8)
//!     .build()?;
//! assert_eq!(cfg.latencies().l2_hit, 15);
//! assert_eq!(cfg.latencies().remote_dirty, 200);
//! # Ok::<(), csim_config::ConfigError>(())
//! ```

#![forbid(unsafe_code)]

mod error;
mod geometry;
mod integration;
mod latency;
mod processor;
mod system;

pub use error::ConfigError;
pub use geometry::CacheGeometry;
pub use integration::{IntegrationLevel, L2Config, L2Kind};
pub use latency::LatencyTable;
pub use processor::{OooParams, ProcessorModel};
pub use system::{RacConfig, SystemConfig, SystemConfigBuilder};

/// Cache line size used by every configuration in the paper (bytes).
pub const LINE_SIZE: u64 = 64;

/// Page size used for home-node interleaving and instruction replication
/// (bytes).
pub const PAGE_SIZE: u64 = 8192;

/// Number of processors in the paper's multiprocessor configuration.
pub const MP_NODES: usize = 8;

/// Size of each first-level cache (64 KB, 2-way in the paper's Figure 2).
pub const L1_SIZE: u64 = 64 << 10;

/// Associativity of the first-level caches.
pub const L1_ASSOC: u32 = 2;
