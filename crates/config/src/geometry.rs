//! Cache geometry.

use crate::error::ConfigError;

/// Size, associativity and line size of a cache.
///
/// Set counts do not have to be powers of two — the paper's Section 6
/// compares a 1.25 MB L2 against a 1 MB L2 plus remote-access-cache tags,
/// and 1.25 MB 4-way yields 5120 sets. Indexing is done by modulo in the
/// cache model, so any whole number of sets is legal.
///
/// # Example
///
/// ```
/// use csim_config::CacheGeometry;
/// let g = CacheGeometry::new(2 << 20, 8, 64)?;
/// assert_eq!(g.sets(), 4096);
/// assert_eq!(g.lines(), 32768);
/// # Ok::<(), csim_config::ConfigError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    assoc: u32,
    line_size: u64,
}

impl CacheGeometry {
    /// Creates a geometry after validating it.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadGeometry`] if any dimension is zero, the
    /// line size is not a power of two, or the size is not divisible into a
    /// whole number of sets of `assoc` lines.
    pub fn new(size_bytes: u64, assoc: u32, line_size: u64) -> Result<Self, ConfigError> {
        if size_bytes == 0 || assoc == 0 || line_size == 0 {
            return Err(ConfigError::BadGeometry(format!(
                "dimensions must be nonzero (size={size_bytes}, assoc={assoc}, line={line_size})"
            )));
        }
        if !line_size.is_power_of_two() {
            return Err(ConfigError::BadGeometry(format!(
                "line size must be a power of two, got {line_size}"
            )));
        }
        let set_bytes = line_size * u64::from(assoc);
        if !size_bytes.is_multiple_of(set_bytes) {
            return Err(ConfigError::BadGeometry(format!(
                "size {size_bytes} is not a whole number of {assoc}-way sets of {line_size}-byte lines"
            )));
        }
        Ok(CacheGeometry { size_bytes, assoc, line_size })
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity (lines per set).
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_size * u64::from(self.assoc))
    }

    /// Total number of lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_size
    }

    /// A compact label in the paper's notation, e.g. `2M8w` for a 2 MB
    /// 8-way cache or `1.25M4w` for fractional megabyte sizes.
    ///
    /// ```
    /// use csim_config::CacheGeometry;
    /// let g = CacheGeometry::new(2 << 20, 8, 64)?;
    /// assert_eq!(g.label(), "2M8w");
    /// # Ok::<(), csim_config::ConfigError>(())
    /// ```
    pub fn label(&self) -> String {
        let mb = self.size_bytes as f64 / (1u64 << 20) as f64;
        if (mb - mb.round()).abs() < 1e-9 {
            format!("{}M{}w", mb.round() as u64, self.assoc)
        } else {
            format!("{mb}M{}w", self.assoc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_dimensions() {
        let g = CacheGeometry::new(8 << 20, 1, 64).unwrap();
        assert_eq!(g.size_bytes(), 8 << 20);
        assert_eq!(g.assoc(), 1);
        assert_eq!(g.line_size(), 64);
        assert_eq!(g.sets(), 131072);
        assert_eq!(g.lines(), 131072);
    }

    #[test]
    fn fractional_megabyte_geometry_is_legal() {
        // 1.25 MB 4-way, as used in the paper's Figure 12.
        let g = CacheGeometry::new(5 << 18, 4, 64).unwrap();
        assert_eq!(g.sets(), 5120);
        assert_eq!(g.label(), "1.25M4w");
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(CacheGeometry::new(0, 1, 64).is_err());
        assert!(CacheGeometry::new(1024, 0, 64).is_err());
        assert!(CacheGeometry::new(1024, 1, 0).is_err());
    }

    #[test]
    fn non_power_of_two_line_rejected() {
        assert!(CacheGeometry::new(1024, 1, 48).is_err());
    }

    #[test]
    fn indivisible_size_rejected() {
        // 1000 bytes cannot be split into 64-byte-line sets.
        assert!(CacheGeometry::new(1000, 1, 64).is_err());
    }

    #[test]
    fn labels_match_paper_notation() {
        let g = CacheGeometry::new(1 << 20, 8, 64).unwrap();
        assert_eq!(g.label(), "1M8w");
        let g = CacheGeometry::new(8 << 20, 1, 64).unwrap();
        assert_eq!(g.label(), "8M1w");
    }
}
