//! The paper's memory-latency table (Figure 3).
//!
//! All latencies are in processor cycles; the paper's processor runs at
//! 1 GHz, so cycles equal nanoseconds.

use crate::integration::{IntegrationLevel, L2Kind};

/// Memory latencies for one system configuration, in cycles.
///
/// The four columns of the paper's Figure 3, plus the two remote-access-
/// cache latencies introduced in Section 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LatencyTable {
    /// L2 hit (an L1 miss that hits in the L2).
    pub l2_hit: u64,
    /// Miss serviced by the local memory.
    pub local: u64,
    /// Miss serviced by a remote home memory (2-hop).
    pub remote_clean: u64,
    /// Miss serviced by a dirty line in a remote processor's cache (3-hop).
    pub remote_dirty: u64,
    /// Hit in the local remote-access cache, when one is configured
    /// (Section 6: same as local memory, 75 ns).
    pub rac_hit: u64,
    /// Miss serviced by dirty data held in a *remote node's RAC* rather
    /// than its L2 (Section 6: 250 ns vs 200 ns).
    pub remote_dirty_in_rac: u64,
}

impl LatencyTable {
    /// Builds the latency row of Figure 3 for a given integration level and
    /// L2 implementation.
    ///
    /// `l2_assoc` only matters for the `Base` off-chip configuration, where
    /// direct-mapped external SRAM can be wave-pipelined (25-cycle hits)
    /// while associative organizations pay 30 cycles.
    ///
    /// # Example
    ///
    /// ```
    /// use csim_config::{IntegrationLevel, L2Kind, LatencyTable};
    /// let base_dm = LatencyTable::for_system(IntegrationLevel::Base, L2Kind::OffChip, 1);
    /// assert_eq!((base_dm.l2_hit, base_dm.local), (25, 100));
    /// let full = LatencyTable::for_system(
    ///     IntegrationLevel::FullyIntegrated, L2Kind::OnChipSram, 8);
    /// assert_eq!(full.remote_dirty, 200);
    /// ```
    pub fn for_system(level: IntegrationLevel, l2_kind: L2Kind, l2_assoc: u32) -> Self {
        let (l2_hit, local, remote_clean, remote_dirty) = match level {
            IntegrationLevel::ConservativeBase => (30, 150, 225, 325),
            IntegrationLevel::Base => {
                if l2_assoc == 1 {
                    (25, 100, 175, 275)
                } else {
                    (30, 100, 175, 275)
                }
            }
            IntegrationLevel::L2Integrated => match l2_kind {
                L2Kind::OnChipDram => (25, 100, 175, 275),
                _ => (15, 100, 175, 275),
            },
            // The MC is integrated but the CC is not: local accesses get
            // faster (75) while remote accesses that must flow through the
            // external CC and then back over the system bus to reach memory
            // get *slower* (225).
            IntegrationLevel::L2McIntegrated => match l2_kind {
                L2Kind::OnChipDram => (25, 75, 225, 275),
                _ => (15, 75, 225, 275),
            },
            IntegrationLevel::FullyIntegrated => match l2_kind {
                L2Kind::OnChipDram => (25, 75, 150, 200),
                _ => (15, 75, 150, 200),
            },
        };
        LatencyTable {
            l2_hit,
            local,
            remote_clean,
            remote_dirty,
            rac_hit: 75,
            remote_dirty_in_rac: 250,
        }
    }

    /// Renders the full Figure 3 table as aligned text.
    pub fn figure3_table() -> String {
        use IntegrationLevel::*;
        let rows: [(&str, LatencyTable); 7] = [
            ("Conservative Base", LatencyTable::for_system(ConservativeBase, L2Kind::OffChip, 1)),
            ("Base, 1-way L2", LatencyTable::for_system(Base, L2Kind::OffChip, 1)),
            ("Base, n-way L2", LatencyTable::for_system(Base, L2Kind::OffChip, 4)),
            ("L2 integrated, SRAM", LatencyTable::for_system(L2Integrated, L2Kind::OnChipSram, 8)),
            ("L2 integrated, DRAM", LatencyTable::for_system(L2Integrated, L2Kind::OnChipDram, 8)),
            ("L2, MC integrated", LatencyTable::for_system(L2McIntegrated, L2Kind::OnChipSram, 8)),
            (
                "L2, MC, CC/NR integrated",
                LatencyTable::for_system(FullyIntegrated, L2Kind::OnChipSram, 8),
            ),
        ];
        let mut out = String::new();
        out.push_str(&format!(
            "{:<26} {:>6} {:>6} {:>7} {:>13}\n",
            "Configuration", "L2 Hit", "Local", "Remote", "Remote Dirty"
        ));
        for (name, t) in rows {
            out.push_str(&format!(
                "{:<26} {:>6} {:>6} {:>7} {:>13}\n",
                name, t.l2_hit, t.local, t.remote_clean, t.remote_dirty
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use IntegrationLevel::*;

    #[test]
    fn figure3_rows_reproduced_exactly() {
        let t = LatencyTable::for_system(ConservativeBase, L2Kind::OffChip, 4);
        assert_eq!((t.l2_hit, t.local, t.remote_clean, t.remote_dirty), (30, 150, 225, 325));
        let t = LatencyTable::for_system(Base, L2Kind::OffChip, 1);
        assert_eq!((t.l2_hit, t.local, t.remote_clean, t.remote_dirty), (25, 100, 175, 275));
        let t = LatencyTable::for_system(Base, L2Kind::OffChip, 4);
        assert_eq!((t.l2_hit, t.local, t.remote_clean, t.remote_dirty), (30, 100, 175, 275));
        let t = LatencyTable::for_system(L2Integrated, L2Kind::OnChipSram, 8);
        assert_eq!((t.l2_hit, t.local, t.remote_clean, t.remote_dirty), (15, 100, 175, 275));
        let t = LatencyTable::for_system(L2Integrated, L2Kind::OnChipDram, 8);
        assert_eq!((t.l2_hit, t.local, t.remote_clean, t.remote_dirty), (25, 100, 175, 275));
        let t = LatencyTable::for_system(L2McIntegrated, L2Kind::OnChipSram, 8);
        assert_eq!((t.l2_hit, t.local, t.remote_clean, t.remote_dirty), (15, 75, 225, 275));
        let t = LatencyTable::for_system(FullyIntegrated, L2Kind::OnChipSram, 8);
        assert_eq!((t.l2_hit, t.local, t.remote_clean, t.remote_dirty), (15, 75, 150, 200));
    }

    #[test]
    fn full_integration_improvement_factors_match_section_2_3() {
        // "full integration reduces L2 hit latency by 1.67x, local memory
        // latency by 1.33x, remote latency by 1.17x and remote dirty
        // latency by 1.38x relative to the Base parameters."
        let base = LatencyTable::for_system(Base, L2Kind::OffChip, 1);
        let full = LatencyTable::for_system(FullyIntegrated, L2Kind::OnChipSram, 8);
        let ratio = |a: u64, b: u64| a as f64 / b as f64;
        assert!((ratio(base.l2_hit, full.l2_hit) - 1.67).abs() < 0.01);
        assert!((ratio(base.local, full.local) - 1.33).abs() < 0.01);
        assert!((ratio(base.remote_clean, full.remote_clean) - 1.17).abs() < 0.01);
        assert!((ratio(base.remote_dirty, full.remote_dirty) - 1.38).abs() < 0.01);
    }

    #[test]
    fn mc_integration_raises_remote_latency() {
        // Section 4: separating MC from CC makes remote reads slower.
        let l2_only = LatencyTable::for_system(L2Integrated, L2Kind::OnChipSram, 8);
        let l2_mc = LatencyTable::for_system(L2McIntegrated, L2Kind::OnChipSram, 8);
        assert!(l2_mc.remote_clean > l2_only.remote_clean);
        assert!(l2_mc.local < l2_only.local);
    }

    #[test]
    fn rac_latencies_match_section_6() {
        let t = LatencyTable::for_system(FullyIntegrated, L2Kind::OnChipSram, 8);
        assert_eq!(t.rac_hit, 75);
        assert_eq!(t.remote_dirty_in_rac, 250);
    }

    #[test]
    fn rendered_table_contains_all_rows() {
        let s = LatencyTable::figure3_table();
        assert!(s.contains("Conservative Base"));
        assert!(s.contains("L2, MC, CC/NR integrated"));
        assert_eq!(s.lines().count(), 8);
    }
}
