//! Configuration validation errors.

use std::error::Error;
use std::fmt;

/// An invalid system configuration.
///
/// Returned by [`SystemConfigBuilder::build`](crate::SystemConfigBuilder::build)
/// and by the geometry constructors.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A cache size, associativity or line size is malformed (zero, not a
    /// power of two where required, or not divisible into whole sets).
    BadGeometry(String),
    /// The on-chip L2 exceeds what the process technology allows
    /// (2 MB SRAM / 8 MB DRAM in the paper's 0.18um assumptions).
    L2TooLargeForDie { size_bytes: u64, limit_bytes: u64 },
    /// The integration level requires an on-chip (or off-chip) L2 but the
    /// configured L2 kind does not match.
    L2KindMismatch(String),
    /// The node count is invalid for the requested feature (e.g. a remote
    /// access cache on a uniprocessor).
    BadNodeCount(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadGeometry(msg) => write!(f, "invalid cache geometry: {msg}"),
            ConfigError::L2TooLargeForDie { size_bytes, limit_bytes } => write!(
                f,
                "on-chip L2 of {size_bytes} bytes exceeds the die limit of {limit_bytes} bytes"
            ),
            ConfigError::L2KindMismatch(msg) => write!(f, "l2 kind mismatch: {msg}"),
            ConfigError::BadNodeCount(msg) => write!(f, "invalid node count: {msg}"),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = ConfigError::L2TooLargeForDie { size_bytes: 4 << 20, limit_bytes: 2 << 20 };
        let s = e.to_string();
        assert!(s.contains("4194304"));
        assert!(s.contains("2097152"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<ConfigError>();
    }
}
