//! Property tests for configuration validation and the latency tables.

use proptest::prelude::*;

use csim_config::{
    CacheGeometry, ConfigError, IntegrationLevel, L2Kind, LatencyTable, SystemConfig,
};

proptest! {
    #[test]
    fn geometry_construction_is_total(
        size in 0u64..(64 << 20),
        assoc in 0u32..32,
        line_shift in 0u32..12,
    ) {
        let line = 1u64 << line_shift;
        match CacheGeometry::new(size, assoc, line) {
            Ok(g) => {
                prop_assert_eq!(g.size_bytes(), size);
                prop_assert_eq!(g.sets() * u64::from(g.assoc()) * g.line_size(), size);
                prop_assert_eq!(g.lines(), size / line);
            }
            Err(e) => {
                // Rejection must be for a stated reason.
                prop_assert!(matches!(e, ConfigError::BadGeometry(_)));
                prop_assert!(
                    size == 0
                        || assoc == 0
                        || size % (line * u64::from(assoc.max(1))) != 0
                );
            }
        }
    }

    #[test]
    fn valid_power_of_two_geometries_always_build(
        size_shift in 10u32..24,
        assoc_shift in 0u32..4,
    ) {
        let size = 1u64 << size_shift;
        let assoc = 1u32 << assoc_shift;
        let g = CacheGeometry::new(size, assoc, 64).unwrap();
        prop_assert!(g.sets().is_power_of_two());
    }

    #[test]
    fn more_integration_never_increases_any_latency(assoc in 1u32..=8) {
        use IntegrationLevel::*;
        // Compare the aggressive levels pairwise in integration order
        // (Conservative Base is a separate, deliberately slow design and
        // L2+MC deliberately raises remote latency, so compare only the
        // monotone fields there).
        let base = LatencyTable::for_system(Base, L2Kind::OffChip, assoc);
        let l2 = LatencyTable::for_system(L2Integrated, L2Kind::OnChipSram, assoc);
        let full = LatencyTable::for_system(FullyIntegrated, L2Kind::OnChipSram, assoc);
        prop_assert!(l2.l2_hit <= base.l2_hit);
        prop_assert!(full.l2_hit <= l2.l2_hit);
        prop_assert!(full.local <= l2.local);
        prop_assert!(full.remote_clean <= l2.remote_clean);
        prop_assert!(full.remote_dirty <= l2.remote_dirty);
    }

    #[test]
    fn builder_rejects_all_oversized_sram(extra_kb in 1u64..4096) {
        let size = (2 << 20) + extra_kb * 1024;
        // Round to a legal geometry so only the die limit can fail.
        let size = size - size % (8 * 64);
        let result = SystemConfig::builder()
            .integration(IntegrationLevel::L2Integrated)
            .l2_sram(size, 8)
            .build();
        let is_die_limit = matches!(result, Err(ConfigError::L2TooLargeForDie { .. }));
        prop_assert!(is_die_limit, "expected die-limit rejection, got {:?}", result);
    }

    #[test]
    fn node_counts_round_trip(nodes in 1usize..64) {
        let cfg = SystemConfig::builder().nodes(nodes).build().unwrap();
        prop_assert_eq!(cfg.n_nodes(), nodes);
    }

    #[test]
    fn summary_always_mentions_node_count_and_l2(
        nodes in 1usize..16,
        mb in 1u64..=8,
    ) {
        let cfg = SystemConfig::builder().nodes(nodes).l2_off_chip(mb << 20, 1).build().unwrap();
        let s = cfg.summary();
        let node_tag = format!("{nodes}p");
        let l2_tag = format!("{mb}M1w");
        prop_assert!(s.contains(&node_tag), "missing {} in {}", node_tag, s);
        prop_assert!(s.contains(&l2_tag), "missing {} in {}", l2_tag, s);
    }
}
