//! Randomized property tests for configuration validation and the latency
//! tables, driven by the workspace's deterministic [`SimRng`] (the
//! workspace builds with no external crates, so these replace `proptest`
//! with fixed-seed case generation — failures reproduce exactly).

use csim_config::{
    CacheGeometry, ConfigError, IntegrationLevel, L2Kind, LatencyTable, SystemConfig,
};
use csim_trace::SimRng;

#[test]
fn geometry_construction_is_total() {
    let mut rng = SimRng::seed_from_u64(0xC0FFEE);
    for _ in 0..2000 {
        let size = rng.gen_range(0..64 << 20);
        let assoc = rng.gen_range(0..32) as u32;
        let line = 1u64 << rng.gen_range(0..12);
        match CacheGeometry::new(size, assoc, line) {
            Ok(g) => {
                assert_eq!(g.size_bytes(), size);
                assert_eq!(g.sets() * u64::from(g.assoc()) * g.line_size(), size);
                assert_eq!(g.lines(), size / line);
            }
            Err(e) => {
                // Rejection must be for a stated reason.
                assert!(matches!(e, ConfigError::BadGeometry(_)));
                assert!(
                    size == 0 || assoc == 0 || !size.is_multiple_of(line * u64::from(assoc.max(1))),
                    "spurious rejection of size={size} assoc={assoc} line={line}"
                );
            }
        }
    }
}

#[test]
fn valid_power_of_two_geometries_always_build() {
    for size_shift in 10u32..24 {
        for assoc_shift in 0u32..4 {
            let size = 1u64 << size_shift;
            let assoc = 1u32 << assoc_shift;
            let g = CacheGeometry::new(size, assoc, 64).unwrap();
            assert!(g.sets().is_power_of_two());
        }
    }
}

#[test]
fn more_integration_never_increases_any_latency() {
    use IntegrationLevel::*;
    // Compare the aggressive levels pairwise in integration order
    // (Conservative Base is a separate, deliberately slow design and
    // L2+MC deliberately raises remote latency, so compare only the
    // monotone fields there).
    for assoc in 1u32..=8 {
        let base = LatencyTable::for_system(Base, L2Kind::OffChip, assoc);
        let l2 = LatencyTable::for_system(L2Integrated, L2Kind::OnChipSram, assoc);
        let full = LatencyTable::for_system(FullyIntegrated, L2Kind::OnChipSram, assoc);
        assert!(l2.l2_hit <= base.l2_hit);
        assert!(full.l2_hit <= l2.l2_hit);
        assert!(full.local <= l2.local);
        assert!(full.remote_clean <= l2.remote_clean);
        assert!(full.remote_dirty <= l2.remote_dirty);
    }
}

#[test]
fn builder_rejects_all_oversized_sram() {
    let mut rng = SimRng::seed_from_u64(0xD1E);
    for _ in 0..200 {
        let extra_kb = rng.gen_range(1..4096);
        let size = (2 << 20) + extra_kb * 1024;
        // Round to a legal geometry so only the die limit can fail.
        let size = size - size % (8 * 64);
        let result = SystemConfig::builder()
            .integration(IntegrationLevel::L2Integrated)
            .l2_sram(size, 8)
            .build();
        assert!(
            matches!(result, Err(ConfigError::L2TooLargeForDie { .. })),
            "expected die-limit rejection for {size}, got {result:?}"
        );
    }
}

#[test]
fn node_counts_round_trip() {
    for nodes in 1usize..64 {
        let cfg = SystemConfig::builder().nodes(nodes).build().unwrap();
        assert_eq!(cfg.n_nodes(), nodes);
    }
}

#[test]
fn summary_always_mentions_node_count_and_l2() {
    for nodes in 1usize..16 {
        for mb in 1u64..=8 {
            let cfg =
                SystemConfig::builder().nodes(nodes).l2_off_chip(mb << 20, 1).build().unwrap();
            let s = cfg.summary();
            let node_tag = format!("{nodes}p");
            let l2_tag = format!("{mb}M1w");
            assert!(s.contains(&node_tag), "missing {node_tag} in {s}");
            assert!(s.contains(&l2_tag), "missing {l2_tag} in {s}");
        }
    }
}
