//! Model-based property tests: the set-associative cache must behave
//! exactly like a naive reference model (a vector of MRU-ordered lines
//! per set) under arbitrary operation sequences.

use proptest::prelude::*;

use csim_cache::{Cache, Outcome};
use csim_config::CacheGeometry;

/// A deliberately naive reference implementation of a set-associative
/// write-back LRU cache.
struct ModelCache {
    sets: Vec<Vec<(u64, bool)>>, // MRU-first (line, dirty)
    assoc: usize,
}

impl ModelCache {
    fn new(n_sets: usize, assoc: usize) -> Self {
        ModelCache { sets: vec![Vec::new(); n_sets], assoc }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets.len() as u64) as usize
    }

    fn access(&mut self, line: u64, write: bool) -> bool {
        let set = self.set_of(line);
        if let Some(pos) = self.sets[set].iter().position(|&(l, _)| l == line) {
            let (l, d) = self.sets[set].remove(pos);
            self.sets[set].insert(0, (l, d || write));
            true
        } else {
            false
        }
    }

    fn insert(&mut self, line: u64, dirty: bool) -> Option<(u64, bool)> {
        let set = self.set_of(line);
        let victim = if self.sets[set].len() == self.assoc { self.sets[set].pop() } else { None };
        self.sets[set].insert(0, (line, dirty));
        victim
    }

    fn invalidate(&mut self, line: u64) -> Option<bool> {
        let set = self.set_of(line);
        self.sets[set]
            .iter()
            .position(|&(l, _)| l == line)
            .map(|pos| self.sets[set].remove(pos).1)
    }

    fn contains(&self, line: u64) -> bool {
        self.sets[self.set_of(line)].iter().any(|&(l, _)| l == line)
    }

    fn is_dirty(&self, line: u64) -> bool {
        self.sets[self.set_of(line)].iter().any(|&(l, d)| l == line && d)
    }
}

#[derive(Clone, Debug)]
enum Op {
    Access { line: u64, write: bool },
    Invalidate { line: u64 },
    Clean { line: u64 },
}

fn op_strategy(line_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..line_space, any::<bool>()).prop_map(|(line, write)| Op::Access { line, write }),
        1 => (0..line_space).prop_map(|line| Op::Invalidate { line }),
        1 => (0..line_space).prop_map(|line| Op::Clean { line }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_model(
        ops in prop::collection::vec(op_strategy(96), 1..400),
        assoc in 1u32..=8,
    ) {
        // 16 sets regardless of associativity.
        let geometry = CacheGeometry::new(u64::from(assoc) * 16 * 64, assoc, 64).unwrap();
        let mut cache = Cache::new(geometry);
        let mut model = ModelCache::new(16, assoc as usize);

        for op in ops {
            match op {
                Op::Access { line, write } => {
                    let hit = cache.access(line, write) == Outcome::Hit;
                    let model_hit = model.access(line, write);
                    prop_assert_eq!(hit, model_hit, "access({}, {}) diverged", line, write);
                    if !hit {
                        // Fill after miss (write-allocate), as the simulator does.
                        let victim = cache.insert(line, write);
                        let model_victim = model.insert(line, write);
                        prop_assert_eq!(
                            victim.map(|v| (v.line, v.dirty)),
                            model_victim,
                            "insert({}) evicted different victims", line
                        );
                    }
                }
                Op::Invalidate { line } => {
                    prop_assert_eq!(cache.invalidate(line), model.invalidate(line));
                }
                Op::Clean { line } => {
                    let had = model.contains(line);
                    if had {
                        let set = model.set_of(line);
                        for entry in &mut model.sets[set] {
                            if entry.0 == line {
                                entry.1 = false;
                            }
                        }
                    }
                    prop_assert_eq!(cache.clean(line), had);
                }
            }
        }

        // Final state agreement over the whole line space.
        for line in 0..96 {
            prop_assert_eq!(cache.contains(line), model.contains(line), "contains({})", line);
            prop_assert_eq!(cache.is_dirty(line), model.is_dirty(line), "is_dirty({})", line);
        }
        prop_assert_eq!(
            cache.occupancy(),
            model.sets.iter().map(Vec::len).sum::<usize>()
        );
    }

    #[test]
    fn occupancy_never_exceeds_capacity(
        lines in prop::collection::vec(0u64..10_000, 1..600),
    ) {
        let geometry = CacheGeometry::new(8 * 1024, 4, 64).unwrap();
        let mut cache = Cache::new(geometry);
        for line in lines {
            if cache.access(line, false) == Outcome::Miss {
                cache.insert(line, false);
            }
            prop_assert!(cache.occupancy() as u64 <= geometry.lines());
        }
    }
}
