//! Set-associative cache models for the chip-level-integration simulator.
//!
//! The same [`Cache`] type models every cache in the simulated machine: the
//! split 64 KB 2-way L1s, the second-level cache in all its off-chip and
//! on-chip variants (1-8 MB, 1- to 8-way), and the 8 MB 8-way remote access
//! cache of the paper's Section 6.
//!
//! The model operates on *line addresses* (byte address divided by the line
//! size — see [`csim_trace::line_addr`](https://docs.rs/csim-trace)), uses
//! true LRU replacement within each set, write-back / write-allocate
//! policy, and supports the operations the coherence layer needs:
//! invalidation, downgrade (M→S), and dirty-victim extraction.
//!
//! # Example
//!
//! ```
//! use csim_cache::{Cache, Outcome};
//! use csim_config::CacheGeometry;
//!
//! let mut l2 = Cache::new(CacheGeometry::new(2 << 20, 8, 64)?);
//! assert_eq!(l2.access(0x40, false), Outcome::Miss);
//! l2.insert(0x40, false);
//! assert_eq!(l2.access(0x40, true), Outcome::Hit); // write hit; line now dirty
//! assert!(l2.is_dirty(0x40));
//! # Ok::<(), csim_config::ConfigError>(())
//! ```

#![forbid(unsafe_code)]

mod model;
mod reference;
mod stack_distance;
mod stats;

pub use model::{Cache, Evicted, Outcome};
pub use reference::ReferenceCache;
pub use stack_distance::StackDistance;
pub use stats::CacheStats;
