//! Per-cache access statistics.

/// Counters accumulated by a [`Cache`](crate::Cache).
///
/// These are raw per-cache counts; the simulator's reports aggregate and
/// classify them further (e.g. splitting L2 misses into local / 2-hop /
/// 3-hop).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that found their line resident.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Write accesses that missed.
    pub write_misses: u64,
    /// Valid lines displaced by insertions.
    pub evictions: u64,
    /// Displaced lines that were dirty (caused a writeback).
    pub dirty_evictions: u64,
    /// Lines removed by external invalidations.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; zero when no accesses were observed.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Accumulates another cache's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
        self.evictions += other.evictions;
        self.dirty_evictions += other.dirty_evictions;
        self.invalidations += other.invalidations;
    }

    // The write/dirty sub-counters add the flag unconditionally: on the
    // per-reference path an unpredictable data-dependent branch costs more
    // than the add it would skip, and the counters are identical.
    pub(crate) fn record_hit(&mut self, write: bool) {
        self.hits += 1;
        self.write_hits += u64::from(write);
    }

    /// `n` read hits at once (no write-hit component).
    pub(crate) fn record_hits(&mut self, n: u64) {
        self.hits += n;
    }

    pub(crate) fn record_miss(&mut self, write: bool) {
        self.misses += 1;
        self.write_misses += u64::from(write);
    }

    pub(crate) fn record_eviction(&mut self, dirty: bool) {
        self.evictions += 1;
        self.dirty_evictions += u64::from(dirty);
    }

    pub(crate) fn record_invalidation(&mut self) {
        self.invalidations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_empty() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn miss_ratio_is_fraction_of_accesses() {
        let mut s = CacheStats::default();
        s.record_hit(false);
        s.record_miss(true);
        s.record_miss(false);
        assert_eq!(s.accesses(), 3);
        assert!((s.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.write_misses, 1);
    }
}
