//! The retained *reference* cache implementation.
//!
//! This is the original struct-of-fields model the simulator shipped with
//! before the packed-slot hot-path rewrite of [`crate::Cache`]. It is kept —
//! unchanged in behaviour — as the oracle for differential testing: the
//! optimized model must produce bit-identical outcomes, statistics, and
//! resident-line sets on any operation stream. `tests/sweep_identity.rs`
//! drives both implementations with one million `SimRng`-generated
//! operations (including the non-power-of-two 1.25 MB geometry) and asserts
//! exact agreement.
//!
//! Do not optimize this file. Its value is that it stays simple and slow.

use csim_config::CacheGeometry;

use crate::model::{Evicted, Outcome};
use crate::stats::CacheStats;

#[derive(Clone, Copy, Debug)]
struct Slot {
    tag: u64,
    valid: bool,
    dirty: bool,
}

const EMPTY: Slot = Slot { tag: 0, valid: false, dirty: false };

/// Straightforward set-associative, write-back, true-LRU cache — the seed
/// engine's implementation, preserved as a differential-testing oracle for
/// the optimized [`crate::Cache`].
///
/// Semantics are identical to [`crate::Cache`]: MRU→LRU slot order within a
/// set, modulo set indexing (non-power-of-two set counts are legal), and the
/// same statistics counters.
#[derive(Clone, Debug)]
pub struct ReferenceCache {
    geometry: CacheGeometry,
    n_sets: usize,
    assoc: usize,
    slots: Vec<Slot>,
    stats: CacheStats,
}

impl ReferenceCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let n_sets = geometry.sets() as usize;
        let assoc = geometry.assoc() as usize;
        ReferenceCache {
            geometry,
            n_sets,
            assoc,
            slots: vec![EMPTY; n_sets * assoc],
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Access statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_range(&self, line: u64) -> (usize, usize) {
        let set = (line % self.n_sets as u64) as usize;
        let start = set * self.assoc;
        (start, start + self.assoc)
    }

    /// Looks a line up and updates LRU state. See [`crate::Cache::access`].
    // analyze: total — set_range selects a window inside slots: the set index is reduced modulo n_sets and slots holds n_sets*assoc entries from construction
    pub fn access(&mut self, line: u64, write: bool) -> Outcome {
        let (start, end) = self.set_range(line);
        let set = &mut self.slots[start..end];
        for i in 0..set.len() {
            if set[i].valid && set[i].tag == line {
                let mut slot = set[i];
                if write {
                    slot.dirty = true;
                }
                // Rotate to MRU position.
                set.copy_within(0..i, 1);
                set[0] = slot;
                self.stats.record_hit(write);
                return Outcome::Hit;
            }
        }
        self.stats.record_miss(write);
        Outcome::Miss
    }

    /// Checks for presence without touching LRU state or statistics.
    pub fn contains(&self, line: u64) -> bool {
        let (start, end) = self.set_range(line);
        // analyze: total — set_range selects a window inside slots: the set index is reduced modulo n_sets and slots holds n_sets*assoc entries from construction
        self.slots[start..end].iter().any(|s| s.valid && s.tag == line)
    }

    /// Whether the line is present and modified. `false` when absent.
    pub fn is_dirty(&self, line: u64) -> bool {
        let (start, end) = self.set_range(line);
        // analyze: total — set_range selects a window inside slots: the set index is reduced modulo n_sets and slots holds n_sets*assoc entries from construction
        self.slots[start..end].iter().any(|s| s.valid && s.tag == line && s.dirty)
    }

    /// Installs a line at the MRU position. See [`crate::Cache::insert`].
    // analyze: total — set_range selects a window inside slots: the set index is reduced modulo n_sets and slots holds n_sets*assoc entries from construction
    pub fn insert(&mut self, line: u64, dirty: bool) -> Option<Evicted> {
        debug_assert!(!self.contains(line), "inserting line {line:#x} that is already cached");
        let (start, end) = self.set_range(line);
        let set = &mut self.slots[start..end];
        // Prefer an invalid slot; otherwise evict LRU (last).
        let victim_idx = set.iter().position(|s| !s.valid).unwrap_or(set.len() - 1);
        let victim = set[victim_idx];
        set.copy_within(0..victim_idx, 1);
        set[0] = Slot { tag: line, valid: true, dirty };
        if victim.valid {
            self.stats.record_eviction(victim.dirty);
            Some(Evicted { line: victim.tag, dirty: victim.dirty })
        } else {
            None
        }
    }

    /// Removes a line. Returns `Some(dirty)` when it was present.
    // analyze: total — set_range selects a window inside slots: the set index is reduced modulo n_sets and slots holds n_sets*assoc entries from construction
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let (start, end) = self.set_range(line);
        let set = &mut self.slots[start..end];
        for i in 0..set.len() {
            if set[i].valid && set[i].tag == line {
                let dirty = set[i].dirty;
                // Compact: shift later (less recent) slots up, free the LRU end.
                set.copy_within(i + 1.., i);
                let last = set.len() - 1;
                set[last] = EMPTY;
                self.stats.record_invalidation();
                return Some(dirty);
            }
        }
        None
    }

    /// Clears the dirty bit of a present line (coherence downgrade M→S).
    pub fn clean(&mut self, line: u64) -> bool {
        let (start, end) = self.set_range(line);
        // analyze: total — set_range selects a window inside slots: the set index is reduced modulo n_sets and slots holds n_sets*assoc entries from construction
        for s in &mut self.slots[start..end] {
            if s.valid && s.tag == line {
                s.dirty = false;
                return true;
            }
        }
        false
    }

    /// Marks a present line dirty without an access.
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        let (start, end) = self.set_range(line);
        // analyze: total — set_range selects a window inside slots: the set index is reduced modulo n_sets and slots holds n_sets*assoc entries from construction
        for s in &mut self.slots[start..end] {
            if s.valid && s.tag == line {
                s.dirty = true;
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently cached (O(capacity) scan, by design).
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.valid).count()
    }

    /// Iterates over all resident line addresses (MRU-first within each set).
    pub fn resident_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.iter().filter(|s| s.valid).map(|s| s.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_semantics_smoke() {
        let mut c = ReferenceCache::new(CacheGeometry::new(4096, 2, 64).unwrap());
        assert_eq!(c.access(1, false), Outcome::Miss);
        assert!(c.insert(1, true).is_none());
        assert_eq!(c.access(1, false), Outcome::Hit);
        assert!(c.is_dirty(1));
        assert!(c.clean(1));
        assert!(!c.is_dirty(1));
        assert_eq!(c.invalidate(1), Some(false));
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }
}
