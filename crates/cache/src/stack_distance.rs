//! Mattson stack-distance analysis.
//!
//! The classic single-pass algorithm (Mattson et al., 1970): for an LRU
//! cache, the miss ratio at *every* capacity can be computed from one
//! traversal of the reference stream by recording, for each access, how
//! many *distinct* lines were touched since the previous access to the
//! same line (its stack distance). A fully-associative LRU cache of `C`
//! lines misses exactly the accesses whose stack distance is `>= C`.
//!
//! This is the tool used to validate the synthetic OLTP workload's
//! footprint against the paper's characterization: the distance
//! histogram *is* the miss-ratio-vs-capacity curve, and the knee of the
//! curve is the cacheable footprint (the paper's ~2 MB).
//!
//! The implementation is the standard O(log n)-per-access scheme: a
//! Fenwick tree over access timestamps holds a 1 at each line's
//! last-access time, so the number of distinct lines touched since then
//! is a suffix sum.
//!
//! # Example
//!
//! ```
//! use csim_cache::StackDistance;
//!
//! let mut sd = StackDistance::new();
//! for line in [1u64, 2, 3, 1, 2, 3] {
//!     sd.access(line);
//! }
//! // The second round of accesses all have distance 2 (two other
//! // distinct lines in between): a 4-line cache captures everything...
//! assert_eq!(sd.misses_at_capacity(4), 3); // only the 3 cold misses
//! // ...while a 2-line cache misses every access.
//! assert_eq!(sd.misses_at_capacity(2), 6);
//! ```

use std::collections::HashMap;

/// Single-pass LRU stack-distance profiler.
#[derive(Clone, Debug, Default)]
pub struct StackDistance {
    // One flag per timestamp: 1 when that timestamp is some line's most
    // recent access. The Fenwick tree is rebuilt from this on growth.
    bits: Vec<u8>,
    // Fenwick tree over `bits` (1-based, fixed capacity; rebuilt when the
    // timestamp space doubles — a dynamically grown Fenwick tree would
    // silently drop carries into nodes that did not exist yet).
    tree: Vec<u64>,
    // line -> timestamp of its last access (1-based).
    last: HashMap<u64, usize>,
    // Exact distance histogram plus an overflow bucket.
    exact: Vec<u64>,
    overflow: u64,
    cold: u64,
    accesses: u64,
}

/// Exact distances are recorded up to this value; larger ones land in a
/// single overflow bucket (they miss in any cache this crate simulates).
const MAX_EXACT_DISTANCE: usize = 1 << 21; // 2M lines = 128 MB of cache

impl StackDistance {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        StackDistance {
            bits: vec![0], // index 0 unused (1-based timestamps)
            tree: vec![0; 1024],
            last: HashMap::new(),
            exact: Vec::new(),
            overflow: 0,
            cold: 0,
            accesses: 0,
        }
    }

    fn tree_add(&mut self, mut i: usize, delta: i64) {
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    fn tree_prefix(&self, mut i: usize) -> u64 {
        let mut s = 0;
        while i > 0 {
            // analyze: total — Fenwick descent: i -= i & i.wrapping_neg() only ever clears bits, so i stays within the tree it was built against
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Doubles the Fenwick capacity and rebuilds it from `bits`.
    fn grow(&mut self) {
        let new_len = self.tree.len() * 2;
        let mut tree = vec![0u64; new_len];
        for (t, &b) in self.bits.iter().enumerate().skip(1) {
            if b != 0 {
                let mut i = t;
                while i < new_len {
                    tree[i] += 1;
                    i += i & i.wrapping_neg();
                }
            }
        }
        self.tree = tree;
    }

    /// Records one access to `line` and returns its stack distance
    /// (`None` for a cold, first-ever access).
    // analyze: cold — offline characterization tool (Mattson analysis of the workload footprint), used by the characterize bin and examples, never by the simulator loop; the name-based call graph conflates this `access` with the simulator's
    // analyze: total — bits is grown past every recorded position before marking, and exact is resized to idx+1 on the cold path right before the increment
    pub fn access(&mut self, line: u64) -> Option<u64> {
        self.accesses += 1;
        let now = self.bits.len();
        self.bits.push(0);
        if now >= self.tree.len() {
            self.grow();
        }
        let distance = match self.last.get(&line).copied() {
            Some(prev) => {
                // Distinct lines touched since `prev` = ones after prev.
                let after = self.tree_prefix(now - 1) - self.tree_prefix(prev);
                self.tree_add(prev, -1);
                self.bits[prev] = 0;
                Some(after)
            }
            None => {
                self.cold += 1;
                None
            }
        };
        self.tree_add(now, 1);
        self.bits[now] = 1;
        self.last.insert(line, now);
        if let Some(d) = distance {
            if (d as usize) < MAX_EXACT_DISTANCE {
                let idx = d as usize;
                if idx >= self.exact.len() {
                    self.exact.resize(idx + 1, 0);
                }
                self.exact[idx] += 1;
            } else {
                self.overflow += 1;
            }
        }
        distance
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Cold (first-touch) accesses: the distinct-line footprint.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Misses a fully-associative LRU cache of `capacity_lines` would
    /// take on the observed stream (cold misses included).
    pub fn misses_at_capacity(&self, capacity_lines: u64) -> u64 {
        let cap = capacity_lines as usize;
        let reuse_misses: u64 = if cap < self.exact.len() {
            self.exact[cap..].iter().sum::<u64>() + self.overflow
        } else {
            self.overflow
        };
        self.cold + reuse_misses
    }

    /// Miss ratio at the given capacity; zero when nothing was observed.
    pub fn miss_ratio_at(&self, capacity_lines: u64) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses_at_capacity(capacity_lines) as f64 / self.accesses as f64
        }
    }

    /// The miss-ratio curve at power-of-two capacities from `1` to
    /// `2^max_log2` lines: the workload's cacheability profile.
    pub fn curve(&self, max_log2: u32) -> Vec<(u64, f64)> {
        (0..=max_log2).map(|k| (1u64 << k, self.miss_ratio_at(1 << k))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_misses_count_distinct_lines() {
        let mut sd = StackDistance::new();
        for line in [5u64, 6, 5, 7, 6, 5] {
            sd.access(line);
        }
        assert_eq!(sd.cold_misses(), 3);
        assert_eq!(sd.accesses(), 6);
    }

    #[test]
    fn distances_match_hand_computation() {
        let mut sd = StackDistance::new();
        assert_eq!(sd.access(1), None);
        assert_eq!(sd.access(2), None);
        assert_eq!(sd.access(1), Some(1)); // one distinct line (2) in between
        assert_eq!(sd.access(1), Some(0)); // immediate re-reference
        assert_eq!(sd.access(3), None);
        assert_eq!(sd.access(2), Some(2)); // 1 and 3 in between
    }

    #[test]
    fn capacity_one_misses_everything_but_repeats() {
        let mut sd = StackDistance::new();
        for line in [1u64, 1, 2, 2, 1] {
            sd.access(line);
        }
        // Distances: -, 0, -, 0, 1. Capacity 1 misses cold(2) + d>=1 (1).
        assert_eq!(sd.misses_at_capacity(1), 3);
        // Capacity 2 captures everything after cold.
        assert_eq!(sd.misses_at_capacity(2), 2);
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let mut sd = StackDistance::new();
        // A scan of 64 lines repeated 4 times.
        for _ in 0..4 {
            for line in 0..64u64 {
                sd.access(line);
            }
        }
        let curve = sd.curve(8);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12, "curve must not increase with capacity");
        }
        // A 64-line cache captures the loop entirely: only cold misses.
        assert_eq!(sd.misses_at_capacity(64), 64);
        // A 32-line cache thrashes on an LRU scan: everything misses.
        assert_eq!(sd.misses_at_capacity(32), 256);
    }

    #[test]
    fn agrees_with_a_real_fully_associative_cache() {
        use crate::{Cache, Outcome};
        use csim_config::CacheGeometry;

        // Pseudo-random stream over 200 lines.
        let mut lines = Vec::new();
        let mut x = 12345u64;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            lines.push((x >> 33) % 200);
        }

        let mut sd = StackDistance::new();
        for &l in &lines {
            sd.access(l);
        }

        for cap in [16u64, 64, 128] {
            let geom = CacheGeometry::new(cap * 64, cap as u32, 64).unwrap();
            let mut cache = Cache::new(geom);
            let mut misses = 0;
            for &l in &lines {
                if cache.access(l, false) == Outcome::Miss {
                    misses += 1;
                    cache.insert(l, false);
                }
            }
            assert_eq!(
                sd.misses_at_capacity(cap),
                misses,
                "stack distance disagrees with simulation at capacity {cap}"
            );
        }
    }

    #[test]
    fn miss_ratio_handles_empty_profiler() {
        let sd = StackDistance::new();
        assert_eq!(sd.miss_ratio_at(64), 0.0);
        assert_eq!(sd.accesses(), 0);
    }
}
