//! The set-associative cache model (struct-of-arrays hot-path
//! implementation).
//!
//! Every probe in the simulator's inner loop lands here. The previous
//! packed layout (dirty bit folded into the tag word) made every probe
//! pay a mask before the compare and every hit an unconditional
//! read-modify-write store to refresh the dirty bit — `kernel_attribution`
//! in BENCH_sweep.json localized ~99% of kernel time to exactly that
//! arithmetic. The slots are now split into parallel arrays:
//!
//! ```text
//! tags[i]:  raw line address, or u64::MAX for an empty slot (the
//!           sentinel is outside the legal line range `line < 2^63 - 1`,
//!           so the probe needs no valid bit and no mask — a hit is a
//!           bare `tags[i] == line` compare)
//! dirty[i]: 0 or 1, touched only by writes and coherence operations
//! ```
//!
//! Set lookup uses a mask when the set count is a power of two and a
//! precomputed reciprocal multiply-shift otherwise (the paper's 1.25 MB
//! 4-way L2 has 5120 sets — no hardware divide on the probe path).
//! Direct-mapped and 2-way sets — the L1s and several of the paper's L2
//! points — skip the general LRU rotate entirely; the ≥4-way scan
//! compares the whole set unconditionally so the compiler can vectorize
//! the tag compare.
//!
//! Semantics are bit-identical to the retained seed implementation
//! ([`crate::ReferenceCache`]); `tests/sweep_identity.rs` proves it on a
//! million-operation randomized stream per geometry.

use csim_config::CacheGeometry;

use crate::stats::CacheStats;

/// Result of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The line was present (LRU updated; on a write the line is now
    /// dirty).
    Hit,
    /// The line was absent. The caller services the miss and then calls
    /// [`Cache::insert`].
    Miss,
}

impl Outcome {
    /// Returns `true` on [`Outcome::Hit`].
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, Outcome::Hit)
    }
}

/// A line pushed out of the cache by [`Cache::insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Evicted {
    /// Line address of the victim.
    pub line: u64,
    /// Whether the victim held modified data (requires a writeback).
    pub dirty: bool,
}

/// Upper bound (exclusive) on legal line addresses: `2^63 - 1`. Keeps the
/// empty sentinel unambiguous and the reciprocal set index exact (the
/// multiply-shift below is proven for dividends under `2^63`).
const TAG_MASK: u64 = !(1 << 63);
/// Sentinel tag for an empty slot — outside the legal line-address range
/// (`line < TAG_MASK`), so `tags[i] == line` can never match an empty slot
/// and the probe needs no valid bit.
const EMPTY_SLOT: u64 = u64::MAX;

/// A set-associative, write-back, write-allocate cache with true LRU
/// replacement.
///
/// Operates on line addresses. Within each set, slots are kept in MRU→LRU
/// order; a hit rotates the slot to the front, an insertion evicts the last
/// slot when the set is full.
///
/// The number of sets need not be a power of two (indexing divides by a
/// precomputed reciprocal), so fractional-megabyte caches such as the
/// 1.25 MB L2 of the paper's Figure 12 are supported; power-of-two set
/// counts take a mask fast path.
///
/// Line addresses must be below `2^63 - 1` (the all-ones word is the
/// empty-tag sentinel, and the reciprocal set index is exact only below
/// `2^63`). The simulator's address map stays far below that; the bound
/// is debug-asserted.
#[derive(Clone, Debug)]
pub struct Cache {
    geometry: CacheGeometry,
    n_sets: usize,
    assoc: usize,
    /// `n_sets - 1` when the set count is a power of two; unused otherwise.
    set_mask: u64,
    /// Whether `set_mask` is valid (power-of-two set count).
    pow2: bool,
    /// Round-up reciprocal of `n_sets` for the non-pow2 set index:
    /// `floor(2^(64+sh) / n_sets) + 1`. Zero (unused) when `pow2`.
    recip_m: u64,
    /// `floor(log2(n_sets))` — the post-multiply shift paired with
    /// `recip_m`.
    recip_sh: u32,
    /// Line-address tags, `n_sets * assoc` long, MRU-first within each
    /// set; [`EMPTY_SLOT`] marks a free slot.
    tags: Vec<u64>,
    /// Dirty flags (0/1), parallel to `tags`. Split out so the probe's
    /// tag compare carries no state bits and read hits store nothing.
    dirty: Vec<u8>,
    /// Live count of valid lines, maintained by insert/invalidate so
    /// [`Cache::occupancy`] is O(1) instead of an O(capacity) scan.
    valid_count: usize,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Example
    ///
    /// ```
    /// use csim_cache::Cache;
    /// use csim_config::CacheGeometry;
    /// let c = Cache::new(CacheGeometry::new(64 << 10, 2, 64)?);
    /// assert_eq!(c.geometry().sets(), 512);
    /// # Ok::<(), csim_config::ConfigError>(())
    /// ```
    pub fn new(geometry: CacheGeometry) -> Self {
        let n_sets = geometry.sets() as usize;
        let assoc = geometry.assoc() as usize;
        let pow2 = n_sets.is_power_of_two();
        let (recip_m, recip_sh) = if pow2 {
            (0, 0)
        } else {
            // Round-up reciprocal (Granlund–Montgomery): with
            // sh = floor(log2 d) and m = floor(2^(64+sh) / d) + 1,
            // floor((line * m) >> (64 + sh)) == line / d exactly for all
            // line < 2^63 (the error term e·line/2^(64+sh) with
            // e = m·d - 2^(64+sh) <= d stays below 1 on that domain).
            // m fits in u64 because d is not a power of two, so
            // d >= 2^sh + 1 and m <= 2^(64+sh)/(2^sh+1) + 1 < 2^64.
            let d = n_sets as u64;
            let sh = 63 - d.leading_zeros();
            let m = ((1u128 << (64 + sh)) / u128::from(d) + 1) as u64;
            (m, sh)
        };
        Cache {
            geometry,
            n_sets,
            assoc,
            set_mask: n_sets as u64 - 1,
            pow2,
            recip_m,
            recip_sh,
            tags: vec![EMPTY_SLOT; n_sets * assoc],
            dirty: vec![0; n_sets * assoc],
            valid_count: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Access statistics accumulated so far.
    #[inline]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics (e.g. at the end of warmup) without touching
    /// cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// First slot index of the set the line maps to. Power-of-two set
    /// counts use a mask; others (e.g. the 1.25 MB L2's 5120 sets) use the
    /// precomputed reciprocal — a widening multiply and two shifts instead
    /// of a hardware divide on every probe. The branch is perfectly
    /// predicted — it goes the same way for the lifetime of a cache
    /// instance.
    #[inline(always)]
    fn set_start(&self, line: u64) -> usize {
        let set = if self.pow2 {
            (line & self.set_mask) as usize
        } else {
            let q = ((u128::from(line) * u128::from(self.recip_m)) >> 64) as u64 >> self.recip_sh;
            (line - q * self.n_sets as u64) as usize
        };
        set * self.assoc
    }

    /// Looks a line up and updates LRU state. On a write hit the line
    /// becomes dirty. On a miss nothing is allocated — service the miss and
    /// call [`Cache::insert`].
    // analyze: hot
    #[inline]
    // analyze: total — set_start returns set*assoc with the set index reduced below n_sets, and tags/dirty hold n_sets*assoc entries from construction, so every probe in the set window is in bounds
    pub fn access(&mut self, line: u64, write: bool) -> Outcome {
        debug_assert!(line < TAG_MASK, "line {line:#x} exceeds the legal tag range");
        let start = self.set_start(line);
        match self.assoc {
            // Direct-mapped: one bare compare; a read hit stores nothing
            // (the packed layout's unconditional dirty-refresh store was
            // the single largest probe cost).
            1 => {
                if self.tags[start] == line {
                    if write {
                        self.dirty[start] = 1;
                    }
                    self.stats.record_hit(write);
                    return Outcome::Hit;
                }
            }
            // 2-way: the rotate is a swap (or a no-op on an MRU hit).
            2 => {
                if self.tags[start] == line {
                    if write {
                        self.dirty[start] = 1;
                    }
                    self.stats.record_hit(write);
                    return Outcome::Hit;
                }
                if self.tags[start + 1] == line {
                    self.tags[start + 1] = self.tags[start];
                    self.tags[start] = line;
                    let d = self.dirty[start + 1] | u8::from(write);
                    self.dirty[start + 1] = self.dirty[start];
                    self.dirty[start] = d;
                    self.stats.record_hit(write);
                    return Outcome::Hit;
                }
            }
            _ => {
                // Scan the whole set unconditionally: at most one slot can
                // match, so last-match == the match, and the branch-free
                // body lets the compiler vectorize the tag compare.
                let set = &self.tags[start..start + self.assoc];
                let mut hit = usize::MAX;
                for (i, &t) in set.iter().enumerate() {
                    if t == line {
                        hit = i;
                    }
                }
                if hit != usize::MAX {
                    let d = self.dirty[start + hit] | u8::from(write);
                    // Rotate both arrays to the MRU position.
                    self.tags.copy_within(start..start + hit, start + 1);
                    self.dirty.copy_within(start..start + hit, start + 1);
                    self.tags[start] = line;
                    self.dirty[start] = d;
                    self.stats.record_hit(write);
                    return Outcome::Hit;
                }
            }
        }
        self.stats.record_miss(write);
        Outcome::Miss
    }

    /// `access(line, true)` fused with the pre-store `is_dirty(line)`
    /// read: probes once and also returns whether the line was already
    /// dirty *before* this store marked it. Counters, LRU movement and
    /// the final dirty state are exactly those of the unfused pair
    /// (`is_dirty` mutates nothing); on a miss the second component is
    /// `false`, as `is_dirty` reports for an absent line. The simulator
    /// uses this for the uniprocessor store-ownership shortcut, where
    /// the separate `is_dirty` probe was a measurable second walk of the
    /// set.
    // analyze: hot
    #[inline]
    // analyze: total — set_start returns set*assoc with the set index reduced below n_sets, and tags/dirty hold n_sets*assoc entries from construction, so every probe in the set window is in bounds
    pub fn access_store_was_dirty(&mut self, line: u64) -> (Outcome, bool) {
        debug_assert!(line < TAG_MASK, "line {line:#x} exceeds the legal tag range");
        let start = self.set_start(line);
        match self.assoc {
            1 => {
                if self.tags[start] == line {
                    let was = self.dirty[start] != 0;
                    self.dirty[start] = 1;
                    self.stats.record_hit(true);
                    return (Outcome::Hit, was);
                }
            }
            2 => {
                if self.tags[start] == line {
                    let was = self.dirty[start] != 0;
                    self.dirty[start] = 1;
                    self.stats.record_hit(true);
                    return (Outcome::Hit, was);
                }
                if self.tags[start + 1] == line {
                    let was = self.dirty[start + 1] != 0;
                    self.tags[start + 1] = self.tags[start];
                    self.tags[start] = line;
                    self.dirty[start + 1] = self.dirty[start];
                    self.dirty[start] = 1;
                    self.stats.record_hit(true);
                    return (Outcome::Hit, was);
                }
            }
            _ => {
                let set = &self.tags[start..start + self.assoc];
                let mut hit = usize::MAX;
                for (i, &t) in set.iter().enumerate() {
                    if t == line {
                        hit = i;
                    }
                }
                if hit != usize::MAX {
                    let was = self.dirty[start + hit] != 0;
                    self.tags.copy_within(start..start + hit, start + 1);
                    self.dirty.copy_within(start..start + hit, start + 1);
                    self.tags[start] = line;
                    self.dirty[start] = 1;
                    self.stats.record_hit(true);
                    return (Outcome::Hit, was);
                }
            }
        }
        self.stats.record_miss(true);
        (Outcome::Miss, false)
    }

    /// Records a read hit without probing the set.
    ///
    /// Contract: the caller must already know the line is resident at the
    /// MRU position of its set, so a real `access(line, false)` would hit
    /// and change nothing but the hit counters (an MRU hit rotates
    /// nothing, and a read leaves the dirty bit alone). The simulator
    /// uses this for back-to-back instruction fetches of one line, which
    /// dominate the fetch stream; the counters advance exactly as the
    /// full probe would advance them.
    // analyze: hot
    #[inline]
    pub fn record_repeat_read_hit(&mut self) {
        self.stats.record_hit(false);
    }

    /// Records `n` read hits without probing the set — the batched form
    /// of [`Cache::record_repeat_read_hit`], under the same contract,
    /// for a run of back-to-back fetches of one resident line. Counters
    /// are integers, so one `+= n` equals `n` single hits exactly.
    // analyze: hot
    #[inline]
    pub fn record_repeat_read_hits(&mut self, n: u64) {
        self.stats.record_hits(n);
    }

    /// Checks for presence without touching LRU state or statistics.
    // analyze: hot
    #[inline]
    pub fn contains(&self, line: u64) -> bool {
        let start = self.set_start(line);
        // analyze: total — set_start returns set*assoc with the set index reduced below n_sets, and tags/dirty hold n_sets*assoc entries from construction, so every probe in the set window is in bounds
        self.tags[start..start + self.assoc].contains(&line)
    }

    /// Whether the line is present and modified. `false` when absent.
    // analyze: hot
    #[inline]
    // analyze: total — set_start returns set*assoc with the set index reduced below n_sets, and tags/dirty hold n_sets*assoc entries from construction, so every probe in the set window is in bounds
    pub fn is_dirty(&self, line: u64) -> bool {
        let start = self.set_start(line);
        match self.tags[start..start + self.assoc].iter().position(|&t| t == line) {
            Some(i) => self.dirty[start + i] != 0,
            None => false,
        }
    }

    /// Installs a line at the MRU position, evicting the LRU slot if the
    /// set is full. Returns the victim, if any.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is already present — the caller
    /// must only insert after a miss.
    // analyze: hot
    #[inline]
    // analyze: total — set_start returns set*assoc with the set index reduced below n_sets, and tags/dirty hold n_sets*assoc entries from construction, so every probe in the set window is in bounds
    pub fn insert(&mut self, line: u64, dirty: bool) -> Option<Evicted> {
        debug_assert!(line < TAG_MASK, "line {line:#x} exceeds the legal tag range");
        debug_assert!(!self.contains(line), "inserting line {line:#x} that is already cached");
        let start = self.set_start(line);
        if self.assoc == 1 {
            let victim_tag = self.tags[start];
            let victim_dirty = self.dirty[start];
            self.tags[start] = line;
            self.dirty[start] = u8::from(dirty);
            return self.account_insert(victim_tag, victim_dirty);
        }
        // Prefer an invalid slot; otherwise evict LRU (last). Valid slots
        // always precede empty ones (invalidate compacts), so `position`
        // finds the frontmost free slot.
        let victim_idx = self.tags[start..start + self.assoc]
            .iter()
            .position(|&t| t == EMPTY_SLOT)
            .unwrap_or(self.assoc - 1);
        let victim_tag = self.tags[start + victim_idx];
        let victim_dirty = self.dirty[start + victim_idx];
        self.tags.copy_within(start..start + victim_idx, start + 1);
        self.dirty.copy_within(start..start + victim_idx, start + 1);
        self.tags[start] = line;
        self.dirty[start] = u8::from(dirty);
        self.account_insert(victim_tag, victim_dirty)
    }

    /// Shared insert bookkeeping: stats, live occupancy count, and the
    /// evicted-line report.
    #[inline]
    fn account_insert(&mut self, victim_tag: u64, victim_dirty: u8) -> Option<Evicted> {
        if victim_tag != EMPTY_SLOT {
            let dirty = victim_dirty != 0;
            self.stats.record_eviction(dirty);
            Some(Evicted { line: victim_tag, dirty })
        } else {
            self.valid_count += 1;
            None
        }
    }

    /// Removes a line. Returns `Some(dirty)` when it was present.
    // analyze: total — set_start returns set*assoc with the set index reduced below n_sets, and tags/dirty hold n_sets*assoc entries from construction, so every probe in the set window is in bounds
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let start = self.set_start(line);
        let end = start + self.assoc;
        for i in start..end {
            if self.tags[i] == line {
                let dirty = self.dirty[i] != 0;
                // Compact: shift later (less recent) slots up, free the LRU end.
                self.tags.copy_within(i + 1..end, i);
                self.dirty.copy_within(i + 1..end, i);
                self.tags[end - 1] = EMPTY_SLOT;
                self.dirty[end - 1] = 0;
                self.valid_count -= 1;
                self.stats.record_invalidation();
                return Some(dirty);
            }
        }
        None
    }

    /// Clears the dirty bit of a present line (coherence downgrade M→S).
    /// Returns `true` when the line was present.
    #[inline]
    // analyze: total — set_start returns set*assoc with the set index reduced below n_sets, and tags/dirty hold n_sets*assoc entries from construction, so every probe in the set window is in bounds
    pub fn clean(&mut self, line: u64) -> bool {
        let start = self.set_start(line);
        for i in start..start + self.assoc {
            if self.tags[i] == line {
                self.dirty[i] = 0;
                return true;
            }
        }
        false
    }

    /// Marks a present line dirty without an access (used when ownership is
    /// granted after an upgrade). Returns `true` when the line was present.
    #[inline]
    // analyze: total — set_start returns set*assoc with the set index reduced below n_sets, and tags/dirty hold n_sets*assoc entries from construction, so every probe in the set window is in bounds
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        let start = self.set_start(line);
        for i in start..start + self.assoc {
            if self.tags[i] == line {
                self.dirty[i] = 1;
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently cached. O(1): the count is
    /// maintained live by [`Cache::insert`] / [`Cache::invalidate`]; debug
    /// builds assert it against a full scan.
    pub fn occupancy(&self) -> usize {
        debug_assert_eq!(
            self.valid_count,
            self.tags.iter().filter(|&&t| t != EMPTY_SLOT).count(),
            "live valid_count diverged from the tag array"
        );
        self.valid_count
    }

    /// Iterates over all resident line addresses (MRU-first within each
    /// set; for tests and reporting).
    pub fn resident_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.tags.iter().copied().filter(|&t| t != EMPTY_SLOT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(size: u64, assoc: u32) -> Cache {
        Cache::new(CacheGeometry::new(size, assoc, 64).unwrap())
    }

    /// Two lines that map to the same set of `c`.
    fn conflicting_pair(c: &Cache) -> (u64, u64) {
        let sets = c.geometry().sets();
        (7, 7 + sets)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache(4096, 2);
        assert_eq!(c.access(1, false), Outcome::Miss);
        assert!(c.insert(1, false).is_none());
        assert_eq!(c.access(1, false), Outcome::Hit);
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut c = cache(4096, 2);
        c.insert(1, false);
        assert!(!c.is_dirty(1));
        c.access(1, true);
        assert!(c.is_dirty(1));
    }

    #[test]
    fn insert_dirty_is_dirty() {
        let mut c = cache(4096, 2);
        c.insert(9, true);
        assert!(c.is_dirty(9));
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = cache(4096, 1);
        let (a, b) = conflicting_pair(&c);
        c.insert(a, false);
        let v = c.insert(b, false).expect("direct-mapped conflict must evict");
        assert_eq!(v.line, a);
        assert!(!c.contains(a));
        assert!(c.contains(b));
    }

    #[test]
    fn lru_order_is_respected() {
        let mut c = cache(4096, 2);
        let sets = c.geometry().sets();
        let (a, b, d) = (3, 3 + sets, 3 + 2 * sets);
        c.insert(a, false);
        c.insert(b, false);
        // Touch `a` so `b` becomes LRU.
        assert_eq!(c.access(a, false), Outcome::Hit);
        let v = c.insert(d, false).unwrap();
        assert_eq!(v.line, b, "LRU line must be evicted");
        assert!(c.contains(a));
        assert!(c.contains(d));
    }

    #[test]
    fn eviction_reports_dirty_victims() {
        let mut c = cache(4096, 1);
        let (a, b) = conflicting_pair(&c);
        c.insert(a, false);
        c.access(a, true); // dirty it
        let v = c.insert(b, false).unwrap();
        assert_eq!(v, Evicted { line: a, dirty: true });
    }

    #[test]
    fn invalidate_removes_and_reports_dirty() {
        let mut c = cache(4096, 2);
        c.insert(5, true);
        assert_eq!(c.invalidate(5), Some(true));
        assert!(!c.contains(5));
        assert_eq!(c.invalidate(5), None);
    }

    #[test]
    fn invalidate_frees_slot_for_reuse() {
        let mut c = cache(4096, 2);
        let sets = c.geometry().sets();
        let (a, b, d) = (1, 1 + sets, 1 + 2 * sets);
        c.insert(a, false);
        c.insert(b, false);
        c.invalidate(a);
        // Set now has a free slot: inserting `d` must not evict `b`.
        assert!(c.insert(d, false).is_none());
        assert!(c.contains(b) && c.contains(d));
    }

    #[test]
    fn clean_downgrades_dirty_line() {
        let mut c = cache(4096, 2);
        c.insert(5, true);
        assert!(c.clean(5));
        assert!(!c.is_dirty(5));
        assert!(c.contains(5));
        assert!(!c.clean(1234), "cleaning an absent line reports false");
    }

    #[test]
    fn mark_dirty_upgrades_clean_line() {
        let mut c = cache(4096, 2);
        c.insert(5, false);
        assert!(c.mark_dirty(5));
        assert!(c.is_dirty(5));
        assert!(!c.mark_dirty(77));
    }

    #[test]
    fn contains_does_not_disturb_lru() {
        let mut c = cache(4096, 2);
        let sets = c.geometry().sets();
        let (a, b, d) = (2, 2 + sets, 2 + 2 * sets);
        c.insert(a, false);
        c.insert(b, false); // MRU = b, LRU = a
        assert!(c.contains(a)); // must NOT promote a
        let v = c.insert(d, false).unwrap();
        assert_eq!(v.line, a);
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut c = cache(4096, 2);
        assert_eq!(c.occupancy(), 0);
        c.insert(1, false);
        c.insert(2, false);
        assert_eq!(c.occupancy(), 2);
        c.invalidate(1);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn occupancy_live_count_tracks_evictions() {
        // Evictions replace a line, so occupancy must not grow past capacity.
        let mut c = cache(4096, 1);
        let sets = c.geometry().sets();
        for k in 0..3 {
            c.insert(7 + k * sets, k == 1);
        }
        assert_eq!(c.occupancy(), 1);
        c.invalidate(7 + 2 * sets);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn non_power_of_two_set_count_wraps_by_modulo() {
        // 1.25 MB 4-way => 5120 sets.
        let mut c = cache(5 << 18, 4);
        assert_eq!(c.geometry().sets(), 5120);
        let line = 5120 * 3 + 17; // maps to set 17
        c.insert(line, false);
        assert!(c.contains(line));
        assert_eq!(c.access(line, false), Outcome::Hit);
    }

    #[test]
    fn reciprocal_set_index_matches_modulo() {
        // The strength-reduced non-pow2 set index must equal the plain
        // modulo for every geometry the sweep can construct, across the
        // whole debug-asserted line domain (spot-checked at the extremes).
        for &(size, assoc) in &[(5u64 << 18, 4u32), (5 << 18, 2), (3 << 16, 1), (7 << 20, 8)] {
            let c = cache(size, assoc);
            let n_sets = c.geometry().sets();
            if n_sets.is_power_of_two() {
                continue;
            }
            let check = |line: u64| {
                let expect = (line % n_sets) as usize * c.assoc;
                assert_eq!(c.set_start(line), expect, "sets={n_sets} line={line}");
            };
            for line in 0..3 * n_sets {
                check(line);
            }
            for k in 0..10_000u64 {
                check(TAG_MASK - 1 - k);
                check(k.wrapping_mul(0x9E37_79B9_7F4A_7C15) & (TAG_MASK - 1));
            }
        }
    }

    #[test]
    fn large_line_addresses_pack_round_trip() {
        // A line address near the top of the legal range must survive
        // insert/evict intact alongside its dirty flag.
        let mut c = cache(4096, 2);
        let sets = c.geometry().sets();
        let big = (1u64 << 58) + 17; // multiple of nothing special; maps by modulo/mask
        c.insert(big, true);
        assert!(c.contains(big));
        assert!(c.is_dirty(big));
        let conflict_a = big + sets;
        let conflict_b = big + 2 * sets;
        c.insert(conflict_a, false);
        let v = c.insert(conflict_b, false).unwrap();
        assert_eq!(v, Evicted { line: big, dirty: true });
    }

    #[test]
    fn stats_track_hits_misses_evictions() {
        let mut c = cache(4096, 1);
        let (a, b) = conflicting_pair(&c);
        c.access(a, false);
        c.insert(a, false);
        c.access(a, true);
        c.access(b, false);
        c.insert(b, false); // evicts dirty a
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.dirty_evictions, 1);
        c.reset_stats();
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn full_associative_set_keeps_working_set() {
        let mut c = cache(8 * 64, 8); // one 8-way set
        for l in 0..8u64 {
            assert_eq!(c.access(l, false), Outcome::Miss);
            c.insert(l, false);
        }
        for l in 0..8u64 {
            assert_eq!(c.access(l, false), Outcome::Hit, "line {l} should still be resident");
        }
        // Ninth line evicts the LRU, which after the hit sweep is line 0.
        let v = c.insert(8, false).unwrap();
        assert_eq!(v.line, 0);
    }
}
