//! The set-associative cache model.

use csim_config::CacheGeometry;

use crate::stats::CacheStats;

/// Result of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The line was present (LRU updated; on a write the line is now
    /// dirty).
    Hit,
    /// The line was absent. The caller services the miss and then calls
    /// [`Cache::insert`].
    Miss,
}

impl Outcome {
    /// Returns `true` on [`Outcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, Outcome::Hit)
    }
}

/// A line pushed out of the cache by [`Cache::insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Evicted {
    /// Line address of the victim.
    pub line: u64,
    /// Whether the victim held modified data (requires a writeback).
    pub dirty: bool,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    tag: u64,
    valid: bool,
    dirty: bool,
}

const EMPTY: Slot = Slot { tag: 0, valid: false, dirty: false };

/// A set-associative, write-back, write-allocate cache with true LRU
/// replacement.
///
/// Operates on line addresses. Within each set, slots are kept in MRU→LRU
/// order; a hit rotates the slot to the front, an insertion evicts the last
/// slot when the set is full.
///
/// The number of sets need not be a power of two (indexing is modulo), so
/// fractional-megabyte caches such as the 1.25 MB L2 of the paper's Figure
/// 12 are supported.
#[derive(Clone, Debug)]
pub struct Cache {
    geometry: CacheGeometry,
    n_sets: usize,
    assoc: usize,
    slots: Vec<Slot>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Example
    ///
    /// ```
    /// use csim_cache::Cache;
    /// use csim_config::CacheGeometry;
    /// let c = Cache::new(CacheGeometry::new(64 << 10, 2, 64)?);
    /// assert_eq!(c.geometry().sets(), 512);
    /// # Ok::<(), csim_config::ConfigError>(())
    /// ```
    pub fn new(geometry: CacheGeometry) -> Self {
        let n_sets = geometry.sets() as usize;
        let assoc = geometry.assoc() as usize;
        Cache {
            geometry,
            n_sets,
            assoc,
            slots: vec![EMPTY; n_sets * assoc],
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Access statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics (e.g. at the end of warmup) without touching
    /// cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_range(&self, line: u64) -> (usize, usize) {
        let set = (line % self.n_sets as u64) as usize;
        let start = set * self.assoc;
        (start, start + self.assoc)
    }

    /// Looks a line up and updates LRU state. On a write hit the line
    /// becomes dirty. On a miss nothing is allocated — service the miss and
    /// call [`Cache::insert`].
    pub fn access(&mut self, line: u64, write: bool) -> Outcome {
        let (start, end) = self.set_range(line);
        let set = &mut self.slots[start..end];
        for i in 0..set.len() {
            if set[i].valid && set[i].tag == line {
                let mut slot = set[i];
                if write {
                    slot.dirty = true;
                }
                // Rotate to MRU position.
                set.copy_within(0..i, 1);
                set[0] = slot;
                self.stats.record_hit(write);
                return Outcome::Hit;
            }
        }
        self.stats.record_miss(write);
        Outcome::Miss
    }

    /// Checks for presence without touching LRU state or statistics.
    pub fn contains(&self, line: u64) -> bool {
        let (start, end) = self.set_range(line);
        self.slots[start..end].iter().any(|s| s.valid && s.tag == line)
    }

    /// Whether the line is present and modified. `false` when absent.
    pub fn is_dirty(&self, line: u64) -> bool {
        let (start, end) = self.set_range(line);
        self.slots[start..end].iter().any(|s| s.valid && s.tag == line && s.dirty)
    }

    /// Installs a line at the MRU position, evicting the LRU slot if the
    /// set is full. Returns the victim, if any.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is already present — the caller
    /// must only insert after a miss.
    pub fn insert(&mut self, line: u64, dirty: bool) -> Option<Evicted> {
        debug_assert!(!self.contains(line), "inserting line {line:#x} that is already cached");
        let (start, end) = self.set_range(line);
        let set = &mut self.slots[start..end];
        // Prefer an invalid slot; otherwise evict LRU (last).
        let victim_idx = set.iter().position(|s| !s.valid).unwrap_or(set.len() - 1);
        let victim = set[victim_idx];
        set.copy_within(0..victim_idx, 1);
        set[0] = Slot { tag: line, valid: true, dirty };
        if victim.valid {
            self.stats.record_eviction(victim.dirty);
            Some(Evicted { line: victim.tag, dirty: victim.dirty })
        } else {
            None
        }
    }

    /// Removes a line. Returns `Some(dirty)` when it was present.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let (start, end) = self.set_range(line);
        let set = &mut self.slots[start..end];
        for i in 0..set.len() {
            if set[i].valid && set[i].tag == line {
                let dirty = set[i].dirty;
                // Compact: shift later (less recent) slots up, free the LRU end.
                set.copy_within(i + 1.., i);
                let last = set.len() - 1;
                set[last] = EMPTY;
                self.stats.record_invalidation();
                return Some(dirty);
            }
        }
        None
    }

    /// Clears the dirty bit of a present line (coherence downgrade M→S).
    /// Returns `true` when the line was present.
    pub fn clean(&mut self, line: u64) -> bool {
        let (start, end) = self.set_range(line);
        for s in &mut self.slots[start..end] {
            if s.valid && s.tag == line {
                s.dirty = false;
                return true;
            }
        }
        false
    }

    /// Marks a present line dirty without an access (used when ownership is
    /// granted after an upgrade). Returns `true` when the line was present.
    pub fn mark_dirty(&mut self, line: u64) -> bool {
        let (start, end) = self.set_range(line);
        for s in &mut self.slots[start..end] {
            if s.valid && s.tag == line {
                s.dirty = true;
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently cached (O(capacity); for tests and
    /// reporting).
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.valid).count()
    }

    /// Iterates over all resident line addresses (MRU-first within each
    /// set; for tests and reporting).
    pub fn resident_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.iter().filter(|s| s.valid).map(|s| s.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(size: u64, assoc: u32) -> Cache {
        Cache::new(CacheGeometry::new(size, assoc, 64).unwrap())
    }

    /// Two lines that map to the same set of `c`.
    fn conflicting_pair(c: &Cache) -> (u64, u64) {
        let sets = c.geometry().sets();
        (7, 7 + sets)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache(4096, 2);
        assert_eq!(c.access(1, false), Outcome::Miss);
        assert!(c.insert(1, false).is_none());
        assert_eq!(c.access(1, false), Outcome::Hit);
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut c = cache(4096, 2);
        c.insert(1, false);
        assert!(!c.is_dirty(1));
        c.access(1, true);
        assert!(c.is_dirty(1));
    }

    #[test]
    fn insert_dirty_is_dirty() {
        let mut c = cache(4096, 2);
        c.insert(9, true);
        assert!(c.is_dirty(9));
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = cache(4096, 1);
        let (a, b) = conflicting_pair(&c);
        c.insert(a, false);
        let v = c.insert(b, false).expect("direct-mapped conflict must evict");
        assert_eq!(v.line, a);
        assert!(!c.contains(a));
        assert!(c.contains(b));
    }

    #[test]
    fn lru_order_is_respected() {
        let mut c = cache(4096, 2);
        let sets = c.geometry().sets();
        let (a, b, d) = (3, 3 + sets, 3 + 2 * sets);
        c.insert(a, false);
        c.insert(b, false);
        // Touch `a` so `b` becomes LRU.
        assert_eq!(c.access(a, false), Outcome::Hit);
        let v = c.insert(d, false).unwrap();
        assert_eq!(v.line, b, "LRU line must be evicted");
        assert!(c.contains(a));
        assert!(c.contains(d));
    }

    #[test]
    fn eviction_reports_dirty_victims() {
        let mut c = cache(4096, 1);
        let (a, b) = conflicting_pair(&c);
        c.insert(a, false);
        c.access(a, true); // dirty it
        let v = c.insert(b, false).unwrap();
        assert_eq!(v, Evicted { line: a, dirty: true });
    }

    #[test]
    fn invalidate_removes_and_reports_dirty() {
        let mut c = cache(4096, 2);
        c.insert(5, true);
        assert_eq!(c.invalidate(5), Some(true));
        assert!(!c.contains(5));
        assert_eq!(c.invalidate(5), None);
    }

    #[test]
    fn invalidate_frees_slot_for_reuse() {
        let mut c = cache(4096, 2);
        let sets = c.geometry().sets();
        let (a, b, d) = (1, 1 + sets, 1 + 2 * sets);
        c.insert(a, false);
        c.insert(b, false);
        c.invalidate(a);
        // Set now has a free slot: inserting `d` must not evict `b`.
        assert!(c.insert(d, false).is_none());
        assert!(c.contains(b) && c.contains(d));
    }

    #[test]
    fn clean_downgrades_dirty_line() {
        let mut c = cache(4096, 2);
        c.insert(5, true);
        assert!(c.clean(5));
        assert!(!c.is_dirty(5));
        assert!(c.contains(5));
        assert!(!c.clean(1234), "cleaning an absent line reports false");
    }

    #[test]
    fn mark_dirty_upgrades_clean_line() {
        let mut c = cache(4096, 2);
        c.insert(5, false);
        assert!(c.mark_dirty(5));
        assert!(c.is_dirty(5));
        assert!(!c.mark_dirty(77));
    }

    #[test]
    fn contains_does_not_disturb_lru() {
        let mut c = cache(4096, 2);
        let sets = c.geometry().sets();
        let (a, b, d) = (2, 2 + sets, 2 + 2 * sets);
        c.insert(a, false);
        c.insert(b, false); // MRU = b, LRU = a
        assert!(c.contains(a)); // must NOT promote a
        let v = c.insert(d, false).unwrap();
        assert_eq!(v.line, a);
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut c = cache(4096, 2);
        assert_eq!(c.occupancy(), 0);
        c.insert(1, false);
        c.insert(2, false);
        assert_eq!(c.occupancy(), 2);
        c.invalidate(1);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn non_power_of_two_set_count_wraps_by_modulo() {
        // 1.25 MB 4-way => 5120 sets.
        let mut c = cache(5 << 18, 4);
        assert_eq!(c.geometry().sets(), 5120);
        let line = 5120 * 3 + 17; // maps to set 17
        c.insert(line, false);
        assert!(c.contains(line));
        assert_eq!(c.access(line, false), Outcome::Hit);
    }

    #[test]
    fn stats_track_hits_misses_evictions() {
        let mut c = cache(4096, 1);
        let (a, b) = conflicting_pair(&c);
        c.access(a, false);
        c.insert(a, false);
        c.access(a, true);
        c.access(b, false);
        c.insert(b, false); // evicts dirty a
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.dirty_evictions, 1);
        c.reset_stats();
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn full_associative_set_keeps_working_set() {
        let mut c = cache(8 * 64, 8); // one 8-way set
        for l in 0..8u64 {
            assert_eq!(c.access(l, false), Outcome::Miss);
            c.insert(l, false);
        }
        for l in 0..8u64 {
            assert_eq!(c.access(l, false), Outcome::Hit, "line {l} should still be resident");
        }
        // Ninth line evicts the LRU, which after the hit sweep is line 0.
        let v = c.insert(8, false).unwrap();
        assert_eq!(v.line, 0);
    }
}
