//! Property tests for [`NodeSet`] and the directory's iteration
//! surfaces, driven by the workspace's deterministic [`SimRng`] (no
//! external crates). These pin the edge cases the model checker's state
//! encoding and the sanitizer's shadow directory both lean on.

use csim_coherence::{Directory, NodeId, NodeSet};
use csim_trace::SimRng;

const ROUNDS: usize = 2_000;

/// A random set plus the reference `Vec<bool>` membership model it must
/// agree with.
fn random_set(rng: &mut SimRng) -> (NodeSet, [bool; 64]) {
    let mut set = NodeSet::empty();
    let mut model = [false; 64];
    for _ in 0..rng.gen_range(0..16) {
        let n = rng.gen_range(0..64) as NodeId;
        if rng.gen_range(0..4) == 0 {
            set.remove(n);
            model[n as usize] = false;
        } else {
            set.insert(n);
            model[n as usize] = true;
        }
    }
    (set, model)
}

#[test]
fn membership_agrees_with_a_boolean_model() {
    let mut rng = SimRng::seed_from_u64(0x5E7);
    for _ in 0..ROUNDS {
        let (set, model) = random_set(&mut rng);
        let expected_len = model.iter().filter(|&&b| b).count() as u32;
        assert_eq!(set.len(), expected_len);
        assert_eq!(set.is_empty(), expected_len == 0);
        for n in 0..64u8 {
            assert_eq!(set.contains(n), model[n as usize], "node {n} of {set:?}");
        }
    }
}

#[test]
fn insert_and_remove_are_idempotent() {
    let mut rng = SimRng::seed_from_u64(0x1DEA);
    for _ in 0..ROUNDS {
        let (mut set, _) = random_set(&mut rng);
        let n = rng.gen_range(0..64) as NodeId;
        set.insert(n);
        let once = set;
        set.insert(n);
        assert_eq!(set, once, "double insert of {n}");
        set.remove(n);
        let removed = set;
        set.remove(n);
        assert_eq!(set, removed, "double remove of {n}");
        assert!(!set.contains(n));
    }
}

#[test]
fn without_equals_remove_and_leaves_the_original_untouched() {
    let mut rng = SimRng::seed_from_u64(0xA11);
    for _ in 0..ROUNDS {
        let (set, _) = random_set(&mut rng);
        let n = rng.gen_range(0..64) as NodeId;
        let before = set;
        let mut removed = set;
        removed.remove(n);
        assert_eq!(set.without(n), removed);
        assert_eq!(set, before, "without() must not mutate its receiver");
    }
}

#[test]
fn iteration_is_ascending_and_complete() {
    let mut rng = SimRng::seed_from_u64(0x17E8);
    for _ in 0..ROUNDS {
        let (set, model) = random_set(&mut rng);
        let seen: Vec<NodeId> = set.iter().collect();
        let expected: Vec<NodeId> =
            (0..64u8).filter(|&n| model[n as usize]).collect();
        assert_eq!(seen, expected, "iter() must yield every member exactly once, ascending");
    }
}

#[test]
fn bits_round_trip_through_from_bits() {
    let mut rng = SimRng::seed_from_u64(0xB17);
    for _ in 0..ROUNDS {
        let (set, _) = random_set(&mut rng);
        assert_eq!(NodeSet::from_bits(set.bits()), set);
    }
    assert_eq!(NodeSet::empty().bits(), 0);
    assert_eq!(NodeSet::from_bits(0), NodeSet::empty());
}

#[test]
fn collect_from_iterator_matches_manual_insertion() {
    let nodes = [3u8, 60, 0, 17, 3];
    let collected: NodeSet = nodes.into_iter().collect();
    let mut manual = NodeSet::empty();
    for n in nodes {
        manual.insert(n);
    }
    assert_eq!(collected, manual);
    assert_eq!(collected.len(), 4, "duplicate inserts collapse");
}

/// `Directory::iter` and `Directory::tracked_lines` are the sanitizer's
/// audit surface: they must agree with each other and with per-line
/// `state()` lookups after an arbitrary protocol history.
#[test]
fn directory_iteration_matches_point_lookups() {
    let mut rng = SimRng::seed_from_u64(0xD17);
    for _ in 0..200 {
        let mut dir = Directory::new(4, 64, 8192);
        for _ in 0..64 {
            let line = rng.gen_range(0..12);
            let node = rng.gen_range(0..4) as NodeId;
            // A requester never consults the directory for a line it
            // already owns — mirror the simulator's contract.
            let owns = matches!(dir.state(line),
                csim_coherence::LineState::Modified { owner, .. } if owner == node);
            match rng.gen_range(0..5) {
                0 if !owns => {
                    let _ = dir.read_miss(line, node);
                }
                1 if !owns => {
                    let _ = dir.write_miss(line, node);
                }
                2 => {
                    let _ = dir.writeback(line, node);
                }
                3 => {
                    let _ = dir.drop_sharer(line, node);
                }
                _ => {
                    if rng.gen_range(0..2) == 0 {
                        let _ = dir.owner_moved_to_rac(line, node);
                    } else {
                        let _ = dir.owner_refetched_from_rac(line, node);
                    }
                }
            }
        }
        assert_eq!(dir.iter().count(), dir.tracked_lines());
        let mut prev = None;
        for (line, state) in dir.iter() {
            assert!(prev.is_none_or(|p| p < line), "iter() must ascend: {prev:?} then {line}");
            prev = Some(line);
            assert_eq!(dir.state(line), state, "iter() disagrees with state({line})");
        }
    }
}
