//! Property tests of the directory protocol state machine: arbitrary
//! legal operation sequences must preserve the single-writer invariant
//! and produce self-consistent outcomes.

use proptest::prelude::*;

use csim_coherence::{Directory, FillSource, LineState, NodeId};

#[derive(Clone, Copy, Debug)]
enum Op {
    Read { line: u64, node: NodeId },
    Write { line: u64, node: NodeId },
    EvictIfOwner { line: u64, node: NodeId },
}

fn op_strategy(lines: u64, nodes: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..lines, 0..nodes).prop_map(|(line, node)| Op::Read { line, node }),
        2 => (0..lines, 0..nodes).prop_map(|(line, node)| Op::Write { line, node }),
        1 => (0..lines, 0..nodes).prop_map(|(line, node)| Op::EvictIfOwner { line, node }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn protocol_outcomes_are_self_consistent(
        ops in prop::collection::vec(op_strategy(24, 6), 1..300),
    ) {
        let mut dir = Directory::new(6, 64, 8192);
        // Track which nodes conceptually hold a valid copy, mirroring the
        // caches the simulator would maintain.
        let mut holders: std::collections::HashMap<u64, Vec<NodeId>> = Default::default();

        for op in ops {
            match op {
                Op::Read { line, node } => {
                    // The simulator only consults the directory on a miss;
                    // a read by a current dirty owner never reaches here.
                    if let LineState::Modified { owner, .. } = dir.state(line) {
                        if owner == node {
                            continue;
                        }
                    }
                    let out = dir.read_miss(line, node);
                    // Fill source must agree with the downgrade request.
                    match out.source {
                        FillSource::OwnerCache { owner, .. } => {
                            prop_assert_eq!(out.downgraded_owner, Some(owner));
                            prop_assert_ne!(owner, node);
                        }
                        FillSource::Home => prop_assert_eq!(out.downgraded_owner, None),
                    }
                    prop_assert_eq!(out.home, dir.home(line));
                    // After a read the line is Shared and includes the reader.
                    match dir.state(line) {
                        LineState::Shared(s) => prop_assert!(s.contains(node)),
                        other => prop_assert!(false, "read left state {:?}", other),
                    }
                    holders.entry(line).or_default().push(node);
                }
                Op::Write { line, node } => {
                    if let LineState::Modified { owner, .. } = dir.state(line) {
                        if owner == node {
                            continue;
                        }
                    }
                    let out = dir.write_miss(line, node);
                    // Invalidation set never targets the writer.
                    prop_assert!(!out.invalidate.contains(node));
                    if let Some(prev) = out.previous_owner {
                        prop_assert_ne!(prev, node);
                        // A modified line has no other sharers to invalidate.
                        prop_assert!(out.invalidate.is_empty());
                    }
                    // Single-writer invariant.
                    prop_assert_eq!(
                        dir.state(line),
                        LineState::Modified { owner: node, in_rac: false }
                    );
                    holders.insert(line, vec![node]);
                }
                Op::EvictIfOwner { line, node } => {
                    if dir.state(line) == (LineState::Modified { owner: node, in_rac: false }) {
                        dir.writeback(line, node);
                        prop_assert_eq!(dir.state(line), LineState::Uncached);
                        holders.remove(&line);
                    }
                }
            }
        }
    }

    #[test]
    fn cold_flag_fires_exactly_once_per_line(
        accesses in prop::collection::vec((0u64..16, 0u8..4, any::<bool>()), 1..200),
    ) {
        let mut dir = Directory::new(4, 64, 8192);
        let mut seen = std::collections::HashSet::new();
        for (line, node, write) in accesses {
            if let LineState::Modified { owner, .. } = dir.state(line) {
                if owner == node {
                    continue;
                }
            }
            let cold = if write {
                dir.write_miss(line, node).cold
            } else {
                dir.read_miss(line, node).cold
            };
            prop_assert_eq!(cold, seen.insert(line), "cold flag wrong for line {}", line);
        }
    }

    #[test]
    fn homes_are_stable_and_balanced(nodes in 1u8..=16) {
        let dir = Directory::new(nodes, 64, 8192);
        let lines_per_page = 8192 / 64;
        let mut counts = vec![0u32; nodes as usize];
        for page in 0..(u64::from(nodes) * 64) {
            let home = dir.home(page * lines_per_page + 3);
            prop_assert!(home < nodes);
            prop_assert_eq!(home, dir.home(page * lines_per_page + 99));
            counts[home as usize] += 1;
        }
        // Round-robin interleave: perfectly balanced over whole rounds.
        prop_assert!(counts.iter().all(|&c| c == 64));
    }
}
