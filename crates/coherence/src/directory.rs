//! The full-map directory protocol state machine.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use crate::node_set::{NodeId, NodeSet};

/// Coherence state of one cache line, as recorded by the directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LineState {
    /// No cache holds the line; memory at the home node is current.
    Uncached,
    /// One or more caches hold read-only copies; memory is current.
    Shared(NodeSet),
    /// Exactly one node holds a modified copy; memory is stale. `in_rac`
    /// records whether the copy currently sits in the owner's remote
    /// access cache rather than its L2 (paper Section 6).
    Modified {
        /// The owning node.
        owner: NodeId,
        /// Whether the modified copy lives in the owner's RAC.
        in_rac: bool,
    },
}

/// Where the data for a miss comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FillSource {
    /// The home node's memory (clean data). Whether this is a *local* or a
    /// *2-hop remote* miss depends on whether the requester is the home —
    /// compare against [`ReadOutcome::home`] / [`WriteOutcome::home`].
    Home,
    /// A dirty copy in another node's cache hierarchy (a 3-hop miss).
    OwnerCache {
        /// The node whose cache supplies the data.
        owner: NodeId,
        /// Whether the copy was in the owner's RAC (slower to retrieve
        /// than its L2: 250 ns vs 200 ns in the paper).
        in_rac: bool,
    },
}

/// What the directory decided for a read miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Where the fill data comes from.
    pub source: FillSource,
    /// The line's home node.
    pub home: NodeId,
    /// First machine-wide reference to this line (a cold miss).
    pub cold: bool,
    /// A former owner that must downgrade its copy from Modified to Shared
    /// (its dirty data is written back to the home as part of the 3-hop
    /// transaction).
    pub downgraded_owner: Option<NodeId>,
}

/// What the directory decided for a write miss or upgrade.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Where the fill data comes from (for an upgrade the requester already
    /// has the data; the source is still reported as `Home`).
    pub source: FillSource,
    /// The line's home node.
    pub home: NodeId,
    /// First machine-wide reference to this line (a cold miss).
    pub cold: bool,
    /// Read-only copies that must be invalidated (never contains the
    /// requester).
    pub invalidate: NodeSet,
    /// A former owner whose modified copy supplies the data and is then
    /// invalidated.
    pub previous_owner: Option<NodeId>,
    /// Whether the requester already held a shared copy (an
    /// upgrade/ownership request rather than a full data fetch).
    pub upgrade: bool,
}

/// A protocol transition that the directory refused because it does not
/// apply to the line's current state.
///
/// Before these errors existed, a misuse (say, a writeback from a node
/// that is not the recorded owner) was only caught by a `debug_assert!`;
/// in release builds the directory silently transitioned the line to
/// `Uncached`, losing the real owner's dirty copy — exactly the
/// lost-writeback corruption the model checker in `csim-check` is built
/// to catch. Refused transitions now leave the directory state
/// untouched and report *why* as a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The operation names a line the directory has never tracked.
    UntrackedLine {
        /// The operation attempted (`"writeback"`, ...).
        op: &'static str,
        /// The line address.
        line: u64,
    },
    /// The operation is only legal for the line's current owner, and
    /// `node` is not it (or the line is not `Modified` at all).
    NotOwner {
        /// The operation attempted.
        op: &'static str,
        /// The line address.
        line: u64,
        /// The node that attempted the transition.
        node: NodeId,
        /// The directory state the line actually had.
        state: LineState,
    },
    /// A state handed to [`Directory::seed_state`] is not representable
    /// by the protocol (out-of-range node ids, or `Shared` with an empty
    /// sharer set — a dead state no legal transition sequence reaches).
    InvalidSeed {
        /// The line address.
        line: u64,
        /// The rejected state.
        state: LineState,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UntrackedLine { op, line } => {
                write!(f, "{op} for untracked line {line:#x}")
            }
            ProtocolError::NotOwner { op, line, node, state } => write!(
                f,
                "{op} by node {node} for line {line:#x}, which is {state:?} (not owned by {node})"
            ),
            ProtocolError::InvalidSeed { line, state } => {
                write!(f, "cannot seed line {line:#x} with unrepresentable state {state:?}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Protocol event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirectoryStats {
    /// Read misses processed.
    pub read_misses: u64,
    /// Write misses (including upgrades) processed.
    pub write_misses: u64,
    /// Writes that had to invalidate at least one remote copy.
    pub invalidating_writes: u64,
    /// Total individual invalidation messages sent.
    pub invalidations_sent: u64,
    /// 3-hop transactions (fills supplied by a remote owner's cache).
    pub three_hop_fills: u64,
    /// Dirty writebacks received at homes (owner evictions).
    pub writebacks: u64,
    /// Downgrades (M -> S on a remote read).
    pub downgrades: u64,
    /// Transactions NACKed at the directory controller. The protocol
    /// state machine itself never refuses a request — NACKs are injected
    /// by the fault model under contention — but the outcome is a
    /// protocol event and is counted here with the rest.
    pub nacks: u64,
}

// A fast, deterministic hasher for u64 line addresses (FxHash-style
// multiply; the std SipHash is needlessly slow for this hot path and we do
// not face adversarial keys).
#[derive(Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only used for u64 keys; fold bytes in word-sized chunks.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 32;
    }
}

type LineMap<V> = HashMap<u64, V, BuildHasherDefault<LineHasher>>;

/// The full-map invalidation directory for one simulated machine.
///
/// Entries are kept per line address; home nodes are assigned by
/// interleaving pages across nodes (round-robin on the page index), the
/// scheme the paper assumes when it observes that OLTP data has a 1-in-8
/// chance of being local on an 8-node machine.
///
/// Lines that revert to `Uncached` keep a tombstone entry so cold misses
/// remain distinguishable from re-fetches.
#[derive(Debug)]
pub struct Directory {
    n_nodes: u8,
    lines_per_page_shift: u32,
    entries: LineMap<LineState>,
    stats: DirectoryStats,
}

impl Directory {
    /// Creates a directory for `n_nodes` nodes, with the given cache-line
    /// and page sizes in bytes (used for home interleaving).
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is 0 or exceeds 64, or if the sizes are not
    /// powers of two with `page_size >= line_size`.
    pub fn new(n_nodes: u8, line_size: u64, page_size: u64) -> Self {
        assert!((1..=64).contains(&n_nodes), "node count {n_nodes} out of range 1..=64");
        assert!(
            line_size.is_power_of_two() && page_size.is_power_of_two() && page_size >= line_size,
            "line/page sizes must be powers of two with page >= line"
        );
        Directory {
            n_nodes,
            lines_per_page_shift: (page_size / line_size).trailing_zeros(),
            entries: LineMap::default(),
            stats: DirectoryStats::default(),
        }
    }

    /// Number of nodes this directory serves.
    pub fn n_nodes(&self) -> u8 {
        self.n_nodes
    }

    /// The home node of a line: pages are interleaved round-robin across
    /// nodes.
    ///
    /// ```
    /// use csim_coherence::Directory;
    /// let dir = Directory::new(8, 64, 8192);
    /// // 8192 / 64 = 128 lines per page: lines 0..128 live on node 0,
    /// // lines 128..256 on node 1, ...
    /// assert_eq!(dir.home(0), 0);
    /// assert_eq!(dir.home(129), 1);
    /// assert_eq!(dir.home(128 * 8), 0);
    /// ```
    #[inline]
    pub fn home(&self, line: u64) -> NodeId {
        ((line >> self.lines_per_page_shift) % u64::from(self.n_nodes)) as NodeId
    }

    /// Current directory state of a line (absent lines are `Uncached`).
    pub fn state(&self, line: u64) -> LineState {
        self.entries.get(&line).copied().unwrap_or(LineState::Uncached)
    }

    /// Protocol counters accumulated so far.
    pub fn stats(&self) -> &DirectoryStats {
        &self.stats
    }

    /// Records `count` NACKed transactions at this directory. Called by
    /// the simulator's fault-injection layer; the state machine itself
    /// never NACKs.
    pub fn record_nacks(&mut self, count: u64) {
        self.stats.nacks += count;
    }

    /// Resets counters (end of warmup) without touching protocol state.
    pub fn reset_stats(&mut self) {
        self.stats = DirectoryStats::default();
    }

    /// Processes a read miss by `requester`.
    ///
    /// State transitions: `Uncached -> Shared{r}`,
    /// `Shared(s) -> Shared(s + r)`, `Modified{o} -> Shared{o, r}` (the
    /// owner downgrades and its data is written back to the home).
    pub fn read_miss(&mut self, line: u64, requester: NodeId) -> ReadOutcome {
        debug_assert!(requester < self.n_nodes);
        self.stats.read_misses += 1;
        let home = self.home(line);
        let entry = self.entries.entry(line);
        let cold = matches!(entry, std::collections::hash_map::Entry::Vacant(_));
        let state = entry.or_insert(LineState::Uncached);
        match *state {
            LineState::Uncached => {
                *state = LineState::Shared(NodeSet::single(requester));
                ReadOutcome { source: FillSource::Home, home, cold, downgraded_owner: None }
            }
            LineState::Shared(mut sharers) => {
                sharers.insert(requester);
                *state = LineState::Shared(sharers);
                ReadOutcome { source: FillSource::Home, home, cold, downgraded_owner: None }
            }
            LineState::Modified { owner, in_rac } => {
                debug_assert_ne!(
                    owner, requester,
                    "requester {requester} read-missed a line it owns (line {line:#x})"
                );
                let mut sharers = NodeSet::single(owner);
                sharers.insert(requester);
                *state = LineState::Shared(sharers);
                self.stats.three_hop_fills += 1;
                self.stats.downgrades += 1;
                ReadOutcome {
                    source: FillSource::OwnerCache { owner, in_rac },
                    home,
                    cold,
                    downgraded_owner: Some(owner),
                }
            }
        }
    }

    /// Processes a write miss (or upgrade) by `requester`. After this call
    /// the line is `Modified{requester}`.
    pub fn write_miss(&mut self, line: u64, requester: NodeId) -> WriteOutcome {
        debug_assert!(requester < self.n_nodes);
        self.stats.write_misses += 1;
        let home = self.home(line);
        let entry = self.entries.entry(line);
        let cold = matches!(entry, std::collections::hash_map::Entry::Vacant(_));
        let state = entry.or_insert(LineState::Uncached);
        let outcome = match *state {
            LineState::Uncached => WriteOutcome {
                source: FillSource::Home,
                home,
                cold,
                invalidate: NodeSet::empty(),
                previous_owner: None,
                upgrade: false,
            },
            LineState::Shared(sharers) => {
                let upgrade = sharers.contains(requester);
                let invalidate = sharers.without(requester);
                WriteOutcome {
                    source: FillSource::Home,
                    home,
                    cold,
                    invalidate,
                    previous_owner: None,
                    upgrade,
                }
            }
            LineState::Modified { owner, in_rac } => {
                debug_assert_ne!(
                    owner, requester,
                    "requester {requester} write-missed a line it owns (line {line:#x})"
                );
                self.stats.three_hop_fills += 1;
                WriteOutcome {
                    source: FillSource::OwnerCache { owner, in_rac },
                    home,
                    cold,
                    invalidate: NodeSet::empty(),
                    previous_owner: Some(owner),
                    upgrade: false,
                }
            }
        };
        if !outcome.invalidate.is_empty() || outcome.previous_owner.is_some() {
            self.stats.invalidating_writes += 1;
            self.stats.invalidations_sent += u64::from(outcome.invalidate.len())
                + u64::from(outcome.previous_owner.is_some());
        }
        *state = LineState::Modified { owner: requester, in_rac: false };
        outcome
    }

    /// The owner evicted its modified copy and wrote the data back to the
    /// home memory. The line becomes `Uncached`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UntrackedLine`] for a line the directory never
    /// tracked; [`ProtocolError::NotOwner`] when `node` is not the
    /// recorded owner (including lines that are not `Modified` at all).
    /// A refused writeback leaves the directory state untouched, so an
    /// erroneous caller cannot lose the real owner's dirty copy.
    pub fn writeback(&mut self, line: u64, node: NodeId) -> Result<(), ProtocolError> {
        let Some(state) = self.entries.get_mut(&line) else {
            return Err(ProtocolError::UntrackedLine { op: "writeback", line });
        };
        match *state {
            LineState::Modified { owner, .. } if owner == node => {
                self.stats.writebacks += 1;
                *state = LineState::Uncached;
                Ok(())
            }
            other => Err(ProtocolError::NotOwner { op: "writeback", line, node, state: other }),
        }
    }

    /// A sharer evicted its read-only copy (optional notification; silent
    /// clean evictions are also legal, leaving a stale presence bit that
    /// only costs a spurious invalidation message later).
    ///
    /// Returns `true` when the notification removed a recorded presence
    /// bit (dropping the last sharer returns the line to `Uncached`);
    /// `false` when it was stale — the line is untracked, not `Shared`,
    /// or `node` was not in the sharer set. Stale notifications are legal
    /// and leave the directory untouched.
    pub fn drop_sharer(&mut self, line: u64, node: NodeId) -> bool {
        let Some(state) = self.entries.get_mut(&line) else { return false };
        let LineState::Shared(sharers) = state else { return false };
        if !sharers.contains(node) {
            return false;
        }
        sharers.remove(node);
        if sharers.is_empty() {
            *state = LineState::Uncached;
        }
        true
    }

    /// The owner moved its modified copy from L2 into its RAC (dirty L2
    /// victim parked in the RAC instead of being written back home).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UntrackedLine`] / [`ProtocolError::NotOwner`] as
    /// for [`Directory::writeback`]; a refused park changes nothing.
    pub fn owner_moved_to_rac(&mut self, line: u64, node: NodeId) -> Result<(), ProtocolError> {
        self.set_rac_residence(line, node, true, "owner_moved_to_rac")
    }

    /// The owner pulled its modified copy back from its RAC into its L2.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UntrackedLine`] / [`ProtocolError::NotOwner`] as
    /// for [`Directory::writeback`]; a refused refetch changes nothing.
    pub fn owner_refetched_from_rac(&mut self, line: u64, node: NodeId) -> Result<(), ProtocolError> {
        self.set_rac_residence(line, node, false, "owner_refetched_from_rac")
    }

    fn set_rac_residence(
        &mut self,
        line: u64,
        node: NodeId,
        in_rac: bool,
        op: &'static str,
    ) -> Result<(), ProtocolError> {
        let Some(state) = self.entries.get_mut(&line) else {
            return Err(ProtocolError::UntrackedLine { op, line });
        };
        match *state {
            LineState::Modified { owner, .. } if owner == node => {
                *state = LineState::Modified { owner, in_rac };
                Ok(())
            }
            other => Err(ProtocolError::NotOwner { op, line, node, state: other }),
        }
    }

    /// Forces a line into a given directory state, bypassing the normal
    /// transitions. This is a hook for exhaustive checkers and tests
    /// (`csim-check` materializes every abstract state it explores
    /// through it); the simulator itself never calls it.
    ///
    /// Seeding `Uncached` records a tombstone, exactly as a writeback
    /// would, so cold-miss tracking stays meaningful.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidSeed`] when the state is unrepresentable:
    /// a node id at or beyond [`Directory::n_nodes`], or `Shared` with an
    /// empty sharer set (a dead state no legal transition reaches).
    pub fn seed_state(&mut self, line: u64, state: LineState) -> Result<(), ProtocolError> {
        let valid = match state {
            LineState::Uncached => true,
            LineState::Shared(sharers) => {
                !sharers.is_empty() && sharers.iter().all(|n| n < self.n_nodes)
            }
            LineState::Modified { owner, .. } => owner < self.n_nodes,
        };
        if !valid {
            return Err(ProtocolError::InvalidSeed { line, state });
        }
        self.entries.insert(line, state);
        Ok(())
    }

    /// Number of tracked lines (including `Uncached` tombstones); for
    /// reporting and tests.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over every tracked line and its state in ascending line
    /// order (includes `Uncached` tombstones). Used by invariant
    /// checkers and the runtime sanitizer's shadow audit; the ordering
    /// guarantee makes "the first violation found" a stable, meaningful
    /// notion rather than an accident of hash layout.
    pub fn iter(&self) -> impl Iterator<Item = (u64, LineState)> + '_ {
        let mut lines: Vec<(u64, LineState)> =
            self.entries.iter().map(|(&line, &state)| (line, state)).collect();
        lines.sort_unstable_by_key(|&(line, _)| line);
        lines.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir8() -> Directory {
        Directory::new(8, 64, 8192)
    }

    #[test]
    fn uniprocessor_home_is_always_node_zero() {
        let dir = Directory::new(1, 64, 8192);
        for line in [0u64, 1, 1000, 1 << 40] {
            assert_eq!(dir.home(line), 0);
        }
    }

    #[test]
    fn homes_interleave_by_page() {
        let dir = dir8();
        let lines_per_page = 8192 / 64;
        for page in 0..32u64 {
            let line = page * lines_per_page + 5;
            assert_eq!(dir.home(line), (page % 8) as NodeId);
        }
    }

    #[test]
    fn cold_read_fills_from_home_and_shares() {
        let mut dir = dir8();
        let r = dir.read_miss(42, 3);
        assert!(r.cold);
        assert_eq!(r.source, FillSource::Home);
        assert_eq!(r.downgraded_owner, None);
        assert_eq!(dir.state(42), LineState::Shared(NodeSet::single(3)));
    }

    #[test]
    fn second_read_is_not_cold() {
        let mut dir = dir8();
        dir.read_miss(42, 3);
        let r = dir.read_miss(42, 4);
        assert!(!r.cold);
        let expected: NodeSet = [3u8, 4].into_iter().collect();
        assert_eq!(dir.state(42), LineState::Shared(expected));
    }

    #[test]
    fn read_of_modified_line_is_three_hop_and_downgrades() {
        let mut dir = dir8();
        dir.write_miss(42, 1);
        let r = dir.read_miss(42, 2);
        assert_eq!(r.source, FillSource::OwnerCache { owner: 1, in_rac: false });
        assert_eq!(r.downgraded_owner, Some(1));
        let expected: NodeSet = [1u8, 2].into_iter().collect();
        assert_eq!(dir.state(42), LineState::Shared(expected));
        assert_eq!(dir.stats().three_hop_fills, 1);
        assert_eq!(dir.stats().downgrades, 1);
    }

    #[test]
    fn write_to_shared_line_invalidates_other_sharers_only() {
        let mut dir = dir8();
        dir.read_miss(42, 0);
        dir.read_miss(42, 1);
        dir.read_miss(42, 2);
        let w = dir.write_miss(42, 1);
        assert!(w.upgrade, "requester already held a shared copy");
        let expected: NodeSet = [0u8, 2].into_iter().collect();
        assert_eq!(w.invalidate, expected);
        assert_eq!(dir.state(42), LineState::Modified { owner: 1, in_rac: false });
        assert_eq!(dir.stats().invalidating_writes, 1);
        assert_eq!(dir.stats().invalidations_sent, 2);
    }

    #[test]
    fn write_to_modified_line_transfers_ownership() {
        let mut dir = dir8();
        dir.write_miss(42, 1);
        let w = dir.write_miss(42, 2);
        assert_eq!(w.source, FillSource::OwnerCache { owner: 1, in_rac: false });
        assert_eq!(w.previous_owner, Some(1));
        assert!(!w.upgrade);
        assert_eq!(dir.state(42), LineState::Modified { owner: 2, in_rac: false });
    }

    #[test]
    fn writeback_returns_line_to_memory() {
        let mut dir = dir8();
        dir.write_miss(42, 1);
        dir.writeback(42, 1).unwrap();
        assert_eq!(dir.state(42), LineState::Uncached);
        // Next reader fetches clean data from home — a 2-hop, not 3-hop.
        let r = dir.read_miss(42, 2);
        assert_eq!(r.source, FillSource::Home);
        assert!(!r.cold, "writeback must not reset cold tracking");
    }

    #[test]
    fn owner_retention_converts_two_hop_to_three_hop() {
        // The paper's key observation (Section 3): when the owner retains
        // its dirty copy (large cache), other nodes suffer 3-hop misses;
        // when it evicts (small cache -> writeback), they get 2-hop misses.
        let mut retained = dir8();
        retained.write_miss(7, 0);
        let r = retained.read_miss(7, 1);
        assert_eq!(r.source, FillSource::OwnerCache { owner: 0, in_rac: false });

        let mut evicted = dir8();
        evicted.write_miss(7, 0);
        evicted.writeback(7, 0).unwrap(); // small cache evicted the line
        let r = evicted.read_miss(7, 1);
        assert_eq!(r.source, FillSource::Home);
    }

    #[test]
    fn rac_parking_is_tracked() {
        let mut dir = dir8();
        dir.write_miss(42, 1);
        dir.owner_moved_to_rac(42, 1).unwrap();
        assert_eq!(dir.state(42), LineState::Modified { owner: 1, in_rac: true });
        let r = dir.read_miss(42, 2);
        assert_eq!(r.source, FillSource::OwnerCache { owner: 1, in_rac: true });
    }

    #[test]
    fn rac_refetch_clears_flag() {
        let mut dir = dir8();
        dir.write_miss(42, 1);
        dir.owner_moved_to_rac(42, 1).unwrap();
        dir.owner_refetched_from_rac(42, 1).unwrap();
        assert_eq!(dir.state(42), LineState::Modified { owner: 1, in_rac: false });
    }

    #[test]
    fn drop_sharer_prunes_presence_bits() {
        let mut dir = dir8();
        dir.read_miss(42, 0);
        dir.read_miss(42, 1);
        assert!(dir.drop_sharer(42, 0));
        assert_eq!(dir.state(42), LineState::Shared(NodeSet::single(1)));
        assert!(dir.drop_sharer(42, 1));
        assert_eq!(dir.state(42), LineState::Uncached);
    }

    #[test]
    fn drop_of_last_sharer_keeps_cold_tracking() {
        // Regression (model-checker finding follow-up): the last sharer's
        // notification returns the line to Uncached via a tombstone, so
        // a re-read is a plain 2-hop re-fetch, not a cold miss.
        let mut dir = dir8();
        dir.read_miss(42, 3);
        assert!(dir.drop_sharer(42, 3));
        assert_eq!(dir.state(42), LineState::Uncached);
        let r = dir.read_miss(42, 4);
        assert!(!r.cold, "drop of the last sharer must not reset cold tracking");
        assert_eq!(r.source, FillSource::Home);
    }

    #[test]
    fn stale_drop_notifications_are_inert() {
        let mut dir = dir8();
        dir.read_miss(42, 0);
        assert!(!dir.drop_sharer(42, 5), "node 5 never held the line");
        assert!(!dir.drop_sharer(99, 0), "line 99 was never tracked");
        dir.write_miss(7, 2);
        assert!(!dir.drop_sharer(7, 2), "modified lines leave via writeback, not drop");
        assert_eq!(dir.state(7), LineState::Modified { owner: 2, in_rac: false });
        assert_eq!(dir.state(42), LineState::Shared(NodeSet::single(0)));
    }

    #[test]
    fn writeback_from_non_owner_is_refused_and_harmless() {
        // Regression for the model checker's lost-writeback hazard: in
        // release builds the old code silently transitioned the line to
        // Uncached, losing node 1's dirty copy.
        let mut dir = dir8();
        dir.write_miss(42, 1);
        let err = dir.writeback(42, 3).unwrap_err();
        assert_eq!(
            err,
            ProtocolError::NotOwner {
                op: "writeback",
                line: 42,
                node: 3,
                state: LineState::Modified { owner: 1, in_rac: false },
            }
        );
        assert_eq!(
            dir.state(42),
            LineState::Modified { owner: 1, in_rac: false },
            "a refused writeback must not disturb the real owner"
        );
        assert_eq!(dir.stats().writebacks, 0);
    }

    #[test]
    fn writeback_of_shared_line_is_refused() {
        let mut dir = dir8();
        dir.read_miss(42, 0);
        dir.read_miss(42, 1);
        assert!(matches!(dir.writeback(42, 0), Err(ProtocolError::NotOwner { .. })));
        let expected: NodeSet = [0u8, 1].into_iter().collect();
        assert_eq!(dir.state(42), LineState::Shared(expected), "sharers must survive");
    }

    #[test]
    fn rac_transitions_from_non_owner_are_refused() {
        let mut dir = dir8();
        dir.write_miss(42, 1);
        assert!(matches!(dir.owner_moved_to_rac(42, 2), Err(ProtocolError::NotOwner { .. })));
        assert!(matches!(dir.owner_moved_to_rac(99, 1), Err(ProtocolError::UntrackedLine { .. })));
        assert_eq!(dir.state(42), LineState::Modified { owner: 1, in_rac: false });
        dir.owner_moved_to_rac(42, 1).unwrap();
        assert!(matches!(
            dir.owner_refetched_from_rac(42, 0),
            Err(ProtocolError::NotOwner { .. })
        ));
        assert_eq!(dir.state(42), LineState::Modified { owner: 1, in_rac: true });
    }

    #[test]
    fn seed_state_round_trips_and_validates() {
        let mut dir = dir8();
        let shared: NodeSet = [1u8, 4].into_iter().collect();
        dir.seed_state(10, LineState::Shared(shared)).unwrap();
        assert_eq!(dir.state(10), LineState::Shared(shared));
        dir.seed_state(11, LineState::Modified { owner: 7, in_rac: true }).unwrap();
        assert_eq!(dir.state(11), LineState::Modified { owner: 7, in_rac: true });
        dir.seed_state(12, LineState::Uncached).unwrap();
        assert_eq!(dir.tracked_lines(), 3, "Uncached seeds leave a tombstone");
        assert!(!dir.read_miss(12, 0).cold, "a seeded tombstone is not a cold line");

        // Dead or unrepresentable states are refused.
        let err = dir.seed_state(13, LineState::Shared(NodeSet::empty())).unwrap_err();
        assert!(matches!(err, ProtocolError::InvalidSeed { line: 13, .. }));
        assert!(dir.seed_state(13, LineState::Modified { owner: 8, in_rac: false }).is_err());
        assert!(dir
            .seed_state(13, LineState::Shared(NodeSet::single(9)))
            .is_err());
    }

    #[test]
    fn protocol_errors_display_specifics() {
        let e = ProtocolError::NotOwner {
            op: "writeback",
            line: 0x40,
            node: 3,
            state: LineState::Uncached,
        };
        let s = e.to_string();
        assert!(s.contains("writeback") && s.contains("0x40") && s.contains("node 3"));
        let e = ProtocolError::UntrackedLine { op: "owner_moved_to_rac", line: 7 };
        assert!(e.to_string().contains("untracked"));
    }

    #[test]
    fn stats_count_protocol_events() {
        let mut dir = dir8();
        dir.read_miss(1, 0);
        dir.write_miss(1, 1); // invalidates node 0
        dir.read_miss(1, 2); // 3-hop, downgrade of node 1
        let s = *dir.stats();
        assert_eq!(s.read_misses, 2);
        assert_eq!(s.write_misses, 1);
        assert_eq!(s.invalidating_writes, 1);
        assert_eq!(s.invalidations_sent, 1);
        assert_eq!(s.three_hop_fills, 1);
        assert_eq!(s.downgrades, 1);
        dir.reset_stats();
        assert_eq!(dir.stats().read_misses, 0);
    }

    #[test]
    fn writeback_of_untracked_line_is_a_typed_error() {
        let mut dir = dir8();
        assert_eq!(
            dir.writeback(42, 0),
            Err(ProtocolError::UntrackedLine { op: "writeback", line: 42 })
        );
    }

    #[test]
    fn home_node_locality_is_one_in_n() {
        // Over many pages, each node is home to 1/n of them.
        let dir = dir8();
        let lines_per_page = 128u64;
        let mut local = 0;
        let total = 8000u64;
        for page in 0..total {
            if dir.home(page * lines_per_page) == 3 {
                local += 1;
            }
        }
        assert_eq!(local, total / 8);
    }
}
