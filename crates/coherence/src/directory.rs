//! The full-map directory protocol state machine.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::node_set::{NodeId, NodeSet};

/// Coherence state of one cache line, as recorded by the directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LineState {
    /// No cache holds the line; memory at the home node is current.
    Uncached,
    /// One or more caches hold read-only copies; memory is current.
    Shared(NodeSet),
    /// Exactly one node holds a modified copy; memory is stale. `in_rac`
    /// records whether the copy currently sits in the owner's remote
    /// access cache rather than its L2 (paper Section 6).
    Modified {
        /// The owning node.
        owner: NodeId,
        /// Whether the modified copy lives in the owner's RAC.
        in_rac: bool,
    },
}

/// Where the data for a miss comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FillSource {
    /// The home node's memory (clean data). Whether this is a *local* or a
    /// *2-hop remote* miss depends on whether the requester is the home —
    /// compare against [`ReadOutcome::home`] / [`WriteOutcome::home`].
    Home,
    /// A dirty copy in another node's cache hierarchy (a 3-hop miss).
    OwnerCache {
        /// The node whose cache supplies the data.
        owner: NodeId,
        /// Whether the copy was in the owner's RAC (slower to retrieve
        /// than its L2: 250 ns vs 200 ns in the paper).
        in_rac: bool,
    },
}

/// What the directory decided for a read miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Where the fill data comes from.
    pub source: FillSource,
    /// The line's home node.
    pub home: NodeId,
    /// First machine-wide reference to this line (a cold miss).
    pub cold: bool,
    /// A former owner that must downgrade its copy from Modified to Shared
    /// (its dirty data is written back to the home as part of the 3-hop
    /// transaction).
    pub downgraded_owner: Option<NodeId>,
}

/// What the directory decided for a write miss or upgrade.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Where the fill data comes from (for an upgrade the requester already
    /// has the data; the source is still reported as `Home`).
    pub source: FillSource,
    /// The line's home node.
    pub home: NodeId,
    /// First machine-wide reference to this line (a cold miss).
    pub cold: bool,
    /// Read-only copies that must be invalidated (never contains the
    /// requester).
    pub invalidate: NodeSet,
    /// A former owner whose modified copy supplies the data and is then
    /// invalidated.
    pub previous_owner: Option<NodeId>,
    /// Whether the requester already held a shared copy (an
    /// upgrade/ownership request rather than a full data fetch).
    pub upgrade: bool,
}

/// Protocol event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirectoryStats {
    /// Read misses processed.
    pub read_misses: u64,
    /// Write misses (including upgrades) processed.
    pub write_misses: u64,
    /// Writes that had to invalidate at least one remote copy.
    pub invalidating_writes: u64,
    /// Total individual invalidation messages sent.
    pub invalidations_sent: u64,
    /// 3-hop transactions (fills supplied by a remote owner's cache).
    pub three_hop_fills: u64,
    /// Dirty writebacks received at homes (owner evictions).
    pub writebacks: u64,
    /// Downgrades (M -> S on a remote read).
    pub downgrades: u64,
    /// Transactions NACKed at the directory controller. The protocol
    /// state machine itself never refuses a request — NACKs are injected
    /// by the fault model under contention — but the outcome is a
    /// protocol event and is counted here with the rest.
    pub nacks: u64,
}

// A fast, deterministic hasher for u64 line addresses (FxHash-style
// multiply; the std SipHash is needlessly slow for this hot path and we do
// not face adversarial keys).
#[derive(Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only used for u64 keys; fold bytes in word-sized chunks.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 32;
    }
}

type LineMap<V> = HashMap<u64, V, BuildHasherDefault<LineHasher>>;

/// The full-map invalidation directory for one simulated machine.
///
/// Entries are kept per line address; home nodes are assigned by
/// interleaving pages across nodes (round-robin on the page index), the
/// scheme the paper assumes when it observes that OLTP data has a 1-in-8
/// chance of being local on an 8-node machine.
///
/// Lines that revert to `Uncached` keep a tombstone entry so cold misses
/// remain distinguishable from re-fetches.
#[derive(Debug)]
pub struct Directory {
    n_nodes: u8,
    lines_per_page_shift: u32,
    entries: LineMap<LineState>,
    stats: DirectoryStats,
}

impl Directory {
    /// Creates a directory for `n_nodes` nodes, with the given cache-line
    /// and page sizes in bytes (used for home interleaving).
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is 0 or exceeds 64, or if the sizes are not
    /// powers of two with `page_size >= line_size`.
    pub fn new(n_nodes: u8, line_size: u64, page_size: u64) -> Self {
        assert!((1..=64).contains(&n_nodes), "node count {n_nodes} out of range 1..=64");
        assert!(
            line_size.is_power_of_two() && page_size.is_power_of_two() && page_size >= line_size,
            "line/page sizes must be powers of two with page >= line"
        );
        Directory {
            n_nodes,
            lines_per_page_shift: (page_size / line_size).trailing_zeros(),
            entries: LineMap::default(),
            stats: DirectoryStats::default(),
        }
    }

    /// Number of nodes this directory serves.
    pub fn n_nodes(&self) -> u8 {
        self.n_nodes
    }

    /// The home node of a line: pages are interleaved round-robin across
    /// nodes.
    ///
    /// ```
    /// use csim_coherence::Directory;
    /// let dir = Directory::new(8, 64, 8192);
    /// // 8192 / 64 = 128 lines per page: lines 0..128 live on node 0,
    /// // lines 128..256 on node 1, ...
    /// assert_eq!(dir.home(0), 0);
    /// assert_eq!(dir.home(129), 1);
    /// assert_eq!(dir.home(128 * 8), 0);
    /// ```
    #[inline]
    pub fn home(&self, line: u64) -> NodeId {
        ((line >> self.lines_per_page_shift) % u64::from(self.n_nodes)) as NodeId
    }

    /// Current directory state of a line (absent lines are `Uncached`).
    pub fn state(&self, line: u64) -> LineState {
        self.entries.get(&line).copied().unwrap_or(LineState::Uncached)
    }

    /// Protocol counters accumulated so far.
    pub fn stats(&self) -> &DirectoryStats {
        &self.stats
    }

    /// Records `count` NACKed transactions at this directory. Called by
    /// the simulator's fault-injection layer; the state machine itself
    /// never NACKs.
    pub fn record_nacks(&mut self, count: u64) {
        self.stats.nacks += count;
    }

    /// Resets counters (end of warmup) without touching protocol state.
    pub fn reset_stats(&mut self) {
        self.stats = DirectoryStats::default();
    }

    /// Processes a read miss by `requester`.
    ///
    /// State transitions: `Uncached -> Shared{r}`,
    /// `Shared(s) -> Shared(s + r)`, `Modified{o} -> Shared{o, r}` (the
    /// owner downgrades and its data is written back to the home).
    pub fn read_miss(&mut self, line: u64, requester: NodeId) -> ReadOutcome {
        debug_assert!(requester < self.n_nodes);
        self.stats.read_misses += 1;
        let home = self.home(line);
        let entry = self.entries.entry(line);
        let cold = matches!(entry, std::collections::hash_map::Entry::Vacant(_));
        let state = entry.or_insert(LineState::Uncached);
        match *state {
            LineState::Uncached => {
                *state = LineState::Shared(NodeSet::single(requester));
                ReadOutcome { source: FillSource::Home, home, cold, downgraded_owner: None }
            }
            LineState::Shared(mut sharers) => {
                sharers.insert(requester);
                *state = LineState::Shared(sharers);
                ReadOutcome { source: FillSource::Home, home, cold, downgraded_owner: None }
            }
            LineState::Modified { owner, in_rac } => {
                debug_assert_ne!(
                    owner, requester,
                    "requester {requester} read-missed a line it owns (line {line:#x})"
                );
                let mut sharers = NodeSet::single(owner);
                sharers.insert(requester);
                *state = LineState::Shared(sharers);
                self.stats.three_hop_fills += 1;
                self.stats.downgrades += 1;
                ReadOutcome {
                    source: FillSource::OwnerCache { owner, in_rac },
                    home,
                    cold,
                    downgraded_owner: Some(owner),
                }
            }
        }
    }

    /// Processes a write miss (or upgrade) by `requester`. After this call
    /// the line is `Modified{requester}`.
    pub fn write_miss(&mut self, line: u64, requester: NodeId) -> WriteOutcome {
        debug_assert!(requester < self.n_nodes);
        self.stats.write_misses += 1;
        let home = self.home(line);
        let entry = self.entries.entry(line);
        let cold = matches!(entry, std::collections::hash_map::Entry::Vacant(_));
        let state = entry.or_insert(LineState::Uncached);
        let outcome = match *state {
            LineState::Uncached => WriteOutcome {
                source: FillSource::Home,
                home,
                cold,
                invalidate: NodeSet::empty(),
                previous_owner: None,
                upgrade: false,
            },
            LineState::Shared(sharers) => {
                let upgrade = sharers.contains(requester);
                let invalidate = sharers.without(requester);
                WriteOutcome {
                    source: FillSource::Home,
                    home,
                    cold,
                    invalidate,
                    previous_owner: None,
                    upgrade,
                }
            }
            LineState::Modified { owner, in_rac } => {
                debug_assert_ne!(
                    owner, requester,
                    "requester {requester} write-missed a line it owns (line {line:#x})"
                );
                self.stats.three_hop_fills += 1;
                WriteOutcome {
                    source: FillSource::OwnerCache { owner, in_rac },
                    home,
                    cold,
                    invalidate: NodeSet::empty(),
                    previous_owner: Some(owner),
                    upgrade: false,
                }
            }
        };
        if !outcome.invalidate.is_empty() || outcome.previous_owner.is_some() {
            self.stats.invalidating_writes += 1;
            self.stats.invalidations_sent += u64::from(outcome.invalidate.len())
                + u64::from(outcome.previous_owner.is_some());
        }
        *state = LineState::Modified { owner: requester, in_rac: false };
        outcome
    }

    /// The owner evicted its modified copy and wrote the data back to the
    /// home memory. The line becomes `Uncached`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `node` is not the recorded owner.
    pub fn writeback(&mut self, line: u64, node: NodeId) {
        let state = self.entries.get_mut(&line).expect("writeback for untracked line");
        if let LineState::Modified { owner, .. } = *state {
            debug_assert_eq!(owner, node, "writeback from non-owner node {node} for line {line:#x}");
        } else {
            debug_assert!(false, "writeback for non-modified line {line:#x}");
        }
        self.stats.writebacks += 1;
        *state = LineState::Uncached;
    }

    /// A sharer evicted its read-only copy (optional notification; silent
    /// clean evictions are also legal, leaving a stale presence bit that
    /// only costs a spurious invalidation message later).
    pub fn drop_sharer(&mut self, line: u64, node: NodeId) {
        if let Some(state) = self.entries.get_mut(&line) {
            if let LineState::Shared(sharers) = state {
                sharers.remove(node);
                if sharers.is_empty() {
                    *state = LineState::Uncached;
                }
            }
        }
    }

    /// The owner moved its modified copy from L2 into its RAC (dirty L2
    /// victim parked in the RAC instead of being written back home).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `node` is not the recorded owner.
    pub fn owner_moved_to_rac(&mut self, line: u64, node: NodeId) {
        if let Some(state) = self.entries.get_mut(&line) {
            if let LineState::Modified { owner, .. } = *state {
                debug_assert_eq!(owner, node, "non-owner {node} parking line {line:#x} in RAC");
                *state = LineState::Modified { owner, in_rac: true };
            }
        }
    }

    /// The owner pulled its modified copy back from its RAC into its L2.
    pub fn owner_refetched_from_rac(&mut self, line: u64, node: NodeId) {
        if let Some(state) = self.entries.get_mut(&line) {
            if let LineState::Modified { owner, .. } = *state {
                debug_assert_eq!(owner, node, "non-owner {node} refetching line {line:#x}");
                *state = LineState::Modified { owner, in_rac: false };
            }
        }
    }

    /// Number of tracked lines (including `Uncached` tombstones); for
    /// reporting and tests.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over every tracked line and its state (arbitrary order;
    /// includes `Uncached` tombstones). Used by invariant checkers.
    pub fn iter(&self) -> impl Iterator<Item = (u64, LineState)> + '_ {
        self.entries.iter().map(|(&line, &state)| (line, state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir8() -> Directory {
        Directory::new(8, 64, 8192)
    }

    #[test]
    fn uniprocessor_home_is_always_node_zero() {
        let dir = Directory::new(1, 64, 8192);
        for line in [0u64, 1, 1000, 1 << 40] {
            assert_eq!(dir.home(line), 0);
        }
    }

    #[test]
    fn homes_interleave_by_page() {
        let dir = dir8();
        let lines_per_page = 8192 / 64;
        for page in 0..32u64 {
            let line = page * lines_per_page + 5;
            assert_eq!(dir.home(line), (page % 8) as NodeId);
        }
    }

    #[test]
    fn cold_read_fills_from_home_and_shares() {
        let mut dir = dir8();
        let r = dir.read_miss(42, 3);
        assert!(r.cold);
        assert_eq!(r.source, FillSource::Home);
        assert_eq!(r.downgraded_owner, None);
        assert_eq!(dir.state(42), LineState::Shared(NodeSet::single(3)));
    }

    #[test]
    fn second_read_is_not_cold() {
        let mut dir = dir8();
        dir.read_miss(42, 3);
        let r = dir.read_miss(42, 4);
        assert!(!r.cold);
        let expected: NodeSet = [3u8, 4].into_iter().collect();
        assert_eq!(dir.state(42), LineState::Shared(expected));
    }

    #[test]
    fn read_of_modified_line_is_three_hop_and_downgrades() {
        let mut dir = dir8();
        dir.write_miss(42, 1);
        let r = dir.read_miss(42, 2);
        assert_eq!(r.source, FillSource::OwnerCache { owner: 1, in_rac: false });
        assert_eq!(r.downgraded_owner, Some(1));
        let expected: NodeSet = [1u8, 2].into_iter().collect();
        assert_eq!(dir.state(42), LineState::Shared(expected));
        assert_eq!(dir.stats().three_hop_fills, 1);
        assert_eq!(dir.stats().downgrades, 1);
    }

    #[test]
    fn write_to_shared_line_invalidates_other_sharers_only() {
        let mut dir = dir8();
        dir.read_miss(42, 0);
        dir.read_miss(42, 1);
        dir.read_miss(42, 2);
        let w = dir.write_miss(42, 1);
        assert!(w.upgrade, "requester already held a shared copy");
        let expected: NodeSet = [0u8, 2].into_iter().collect();
        assert_eq!(w.invalidate, expected);
        assert_eq!(dir.state(42), LineState::Modified { owner: 1, in_rac: false });
        assert_eq!(dir.stats().invalidating_writes, 1);
        assert_eq!(dir.stats().invalidations_sent, 2);
    }

    #[test]
    fn write_to_modified_line_transfers_ownership() {
        let mut dir = dir8();
        dir.write_miss(42, 1);
        let w = dir.write_miss(42, 2);
        assert_eq!(w.source, FillSource::OwnerCache { owner: 1, in_rac: false });
        assert_eq!(w.previous_owner, Some(1));
        assert!(!w.upgrade);
        assert_eq!(dir.state(42), LineState::Modified { owner: 2, in_rac: false });
    }

    #[test]
    fn writeback_returns_line_to_memory() {
        let mut dir = dir8();
        dir.write_miss(42, 1);
        dir.writeback(42, 1);
        assert_eq!(dir.state(42), LineState::Uncached);
        // Next reader fetches clean data from home — a 2-hop, not 3-hop.
        let r = dir.read_miss(42, 2);
        assert_eq!(r.source, FillSource::Home);
        assert!(!r.cold, "writeback must not reset cold tracking");
    }

    #[test]
    fn owner_retention_converts_two_hop_to_three_hop() {
        // The paper's key observation (Section 3): when the owner retains
        // its dirty copy (large cache), other nodes suffer 3-hop misses;
        // when it evicts (small cache -> writeback), they get 2-hop misses.
        let mut retained = dir8();
        retained.write_miss(7, 0);
        let r = retained.read_miss(7, 1);
        assert_eq!(r.source, FillSource::OwnerCache { owner: 0, in_rac: false });

        let mut evicted = dir8();
        evicted.write_miss(7, 0);
        evicted.writeback(7, 0); // small cache evicted the line
        let r = evicted.read_miss(7, 1);
        assert_eq!(r.source, FillSource::Home);
    }

    #[test]
    fn rac_parking_is_tracked() {
        let mut dir = dir8();
        dir.write_miss(42, 1);
        dir.owner_moved_to_rac(42, 1);
        assert_eq!(dir.state(42), LineState::Modified { owner: 1, in_rac: true });
        let r = dir.read_miss(42, 2);
        assert_eq!(r.source, FillSource::OwnerCache { owner: 1, in_rac: true });
    }

    #[test]
    fn rac_refetch_clears_flag() {
        let mut dir = dir8();
        dir.write_miss(42, 1);
        dir.owner_moved_to_rac(42, 1);
        dir.owner_refetched_from_rac(42, 1);
        assert_eq!(dir.state(42), LineState::Modified { owner: 1, in_rac: false });
    }

    #[test]
    fn drop_sharer_prunes_presence_bits() {
        let mut dir = dir8();
        dir.read_miss(42, 0);
        dir.read_miss(42, 1);
        dir.drop_sharer(42, 0);
        assert_eq!(dir.state(42), LineState::Shared(NodeSet::single(1)));
        dir.drop_sharer(42, 1);
        assert_eq!(dir.state(42), LineState::Uncached);
    }

    #[test]
    fn stats_count_protocol_events() {
        let mut dir = dir8();
        dir.read_miss(1, 0);
        dir.write_miss(1, 1); // invalidates node 0
        dir.read_miss(1, 2); // 3-hop, downgrade of node 1
        let s = *dir.stats();
        assert_eq!(s.read_misses, 2);
        assert_eq!(s.write_misses, 1);
        assert_eq!(s.invalidating_writes, 1);
        assert_eq!(s.invalidations_sent, 1);
        assert_eq!(s.three_hop_fills, 1);
        assert_eq!(s.downgrades, 1);
        dir.reset_stats();
        assert_eq!(dir.stats().read_misses, 0);
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn writeback_of_untracked_line_panics() {
        let mut dir = dir8();
        dir.writeback(42, 0);
    }

    #[test]
    fn home_node_locality_is_one_in_n() {
        // Over many pages, each node is home to 1/n of them.
        let dir = dir8();
        let lines_per_page = 128u64;
        let mut local = 0;
        let total = 8000u64;
        for page in 0..total {
            if dir.home(page * lines_per_page) == 3 {
                local += 1;
            }
        }
        assert_eq!(local, total / 8);
    }
}
