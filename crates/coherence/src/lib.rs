//! Directory-based cache-coherence substrate for the chip-level-integration
//! simulator.
//!
//! The simulated multiprocessor is the paper's 8-node CC-NUMA machine:
//! distributed memory, a full-map invalidation directory, and a
//! sequentially consistent memory system. This crate provides:
//!
//! * [`Directory`] — the protocol state machine. For every cache line it
//!   tracks `Uncached` / `Shared(sharers)` / `Modified(owner)` state, plus
//!   whether a modified line currently lives in the owner's L2 or has been
//!   parked in the owner's remote access cache (RAC).
//! * [`NodeSet`] — a bitmap of node ids (used for sharer sets and
//!   invalidation targets).
//! * Home-node assignment by page interleaving ([`Directory::home`]),
//!   which gives the paper's "1-in-8 chance of finding data locally".
//!
//! The directory is a pure state machine: it *describes* what must happen
//! (which owner must downgrade, which sharers must be invalidated, where
//! the fill data comes from) and the simulator in `csim-core` applies those
//! actions to the actual cache models.
//!
//! # Example
//!
//! ```
//! use csim_coherence::{Directory, FillSource};
//!
//! let mut dir = Directory::new(8, 64, 8192);
//! // Node 3 writes line 100; nobody had it: fill comes from home memory.
//! let w = dir.write_miss(100, 3);
//! assert!(w.cold);
//! assert_eq!(w.source, FillSource::Home);
//! // Node 5 now reads the same line: it is dirty in node 3's cache, a
//! // 3-hop miss; node 3 must downgrade to shared.
//! let r = dir.read_miss(100, 5);
//! assert_eq!(r.source, FillSource::OwnerCache { owner: 3, in_rac: false });
//! assert_eq!(r.downgraded_owner, Some(3));
//! ```

#![forbid(unsafe_code)]

mod directory;
mod node_set;

pub use directory::{
    Directory, DirectoryStats, FillSource, LineState, ProtocolError, ReadOutcome, WriteOutcome,
};
pub use node_set::{NodeId, NodeSet};
