//! Node identifiers and node bitmaps.

/// A processor-node identifier. The full-map directory uses a 64-bit
/// presence vector, so at most 64 nodes are supported (the paper uses 8).
pub type NodeId = u8;

/// A set of nodes, represented as a presence bitmap (full-map directory
/// vector).
///
/// # Example
///
/// ```
/// use csim_coherence::NodeSet;
/// let mut s = NodeSet::empty();
/// s.insert(2);
/// s.insert(5);
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(5));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 5]);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct NodeSet(u64);

impl NodeSet {
    /// The empty set.
    pub fn empty() -> Self {
        NodeSet(0)
    }

    /// A set containing exactly one node.
    ///
    /// # Panics
    ///
    /// Panics if `node >= 64`.
    pub fn single(node: NodeId) -> Self {
        assert!(node < 64, "node id {node} exceeds the 64-node directory limit");
        NodeSet(1 << node)
    }

    /// Adds a node.
    ///
    /// # Panics
    ///
    /// Panics if `node >= 64`.
    pub fn insert(&mut self, node: NodeId) {
        assert!(node < 64, "node id {node} exceeds the 64-node directory limit");
        self.0 |= 1 << node;
    }

    /// Removes a node (no-op when absent).
    pub fn remove(&mut self, node: NodeId) {
        if node < 64 {
            self.0 &= !(1 << node);
        }
    }

    /// Membership test.
    pub fn contains(&self, node: NodeId) -> bool {
        node < 64 && self.0 & (1 << node) != 0
    }

    /// Number of member nodes.
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// `true` when no nodes are present.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// The set with `node` removed (does not modify `self`).
    pub fn without(&self, node: NodeId) -> NodeSet {
        let mut s = *self;
        s.remove(node);
        s
    }

    /// The raw presence bitmap (bit `i` set ⇔ node `i` present). Stable
    /// across versions; used by state-space encoders and tests.
    pub fn bits(&self) -> u64 {
        self.0
    }

    /// Rebuilds a set from a raw presence bitmap, the inverse of
    /// [`NodeSet::bits`]. Every `u64` is a valid bitmap (bit `i` means
    /// node `i`, for `i < 64`).
    pub fn from_bits(bits: u64) -> NodeSet {
        NodeSet(bits)
    }

    /// Iterates over member node ids in ascending order.
    pub fn iter(&self) -> Iter {
        Iter(self.0)
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut s = NodeSet::empty();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl IntoIterator for NodeSet {
    type Item = NodeId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        Iter(self.0)
    }
}

/// Iterator over the members of a [`NodeSet`], ascending.
#[derive(Clone, Debug)]
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            let n = self.0.trailing_zeros() as NodeId;
            self.0 &= self.0 - 1;
            Some(n)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = NodeSet::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::empty();
        s.insert(0);
        s.insert(63);
        assert!(s.contains(0) && s.contains(63));
        assert_eq!(s.len(), 2);
        s.remove(0);
        assert!(!s.contains(0));
        assert_eq!(s.len(), 1);
        s.remove(7); // absent: no-op
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn single_and_without() {
        let s = NodeSet::single(4);
        assert_eq!(s.len(), 1);
        assert!(s.without(4).is_empty());
        assert_eq!(s.without(3), s);
    }

    #[test]
    fn iteration_is_ascending_and_exact() {
        let s: NodeSet = [5u8, 1, 7].into_iter().collect();
        let it = s.iter();
        assert_eq!(it.len(), 3);
        assert_eq!(it.collect::<Vec<_>>(), vec![1, 5, 7]);
    }

    #[test]
    #[should_panic(expected = "64-node")]
    fn node_64_rejected() {
        let _ = NodeSet::single(64);
    }

    #[test]
    fn from_iterator_deduplicates() {
        let s: NodeSet = [3u8, 3, 3].into_iter().collect();
        assert_eq!(s.len(), 1);
    }
}
