//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Owner retention** — the mechanism behind the paper's 2-hop → 3-hop
//!    conversion: as caches grow, owners retain dirty lines longer and
//!    other nodes' misses find dirty data (3-hop) instead of clean data at
//!    the home (2-hop).
//! 2. **Associativity sweep** — extends the paper's 2 MB column to 16-way
//!    to show diminishing returns beyond 8-way.
//! 3. **Kernel share** — the workload's kernel fraction (~25% in the
//!    paper) and its sensitivity: halving/doubling kernel path lengths.

// Parameter structs are deliberately built as "defaults, then override".
#![allow(clippy::field_reassign_with_default)]

use csim_bench::{
    configs, exec_chart, finish_figure, meas_refs, meas_refs_mp, run_sweep, warm_refs,
    warm_refs_mp, Claim, Sweep,
};
use csim_core::Simulation;
use csim_stats::{Bar, BarChart};
use csim_trace::ExecMode;
use csim_trace::ReferenceStream;
use csim_workload::{OltpParams, OltpWorkload};

fn ablation_owner_retention() -> (BarChart, Vec<Claim>) {
    let sweep: Vec<Sweep> = [1u64, 2, 4, 8]
        .iter()
        .map(|&mb| Sweep::new(format!("{mb}M4w"), configs::base_off_chip(8, mb, 4)))
        .collect();
    let results = run_sweep(&sweep, warm_refs_mp(), meas_refs_mp());
    let mut chart = BarChart::new("dirty (3-hop) share of L2 misses vs cache size, 8 processors");
    let mut shares = Vec::new();
    for (label, rep) in &results {
        let share = rep.misses.data_remote_dirty as f64 / rep.misses.total().max(1) as f64;
        shares.push(share);
        chart.push(Bar::new(label.clone()).with("dirty-share-%", 100.0 * share));
    }
    let monotone = shares.windows(2).all(|w| w[1] >= w[0] - 0.02);
    let claims = vec![
        Claim::check(
            "owner retention: the dirty share of misses grows with cache size",
            monotone && shares.last() > shares.first(),
            shares.iter().map(|s| format!("{:.0}%", s * 100.0)).collect::<Vec<_>>().join(" -> "),
        ),
        Claim::check(
            "writebacks (which convert future 3-hops into 2-hops) shrink with cache size",
            results.first().map(|(_, r)| r.directory.writebacks).unwrap_or(0)
                > results.last().map(|(_, r)| r.directory.writebacks).unwrap_or(0),
            format!(
                "writebacks {} -> {}",
                results.first().map(|(_, r)| r.directory.writebacks).unwrap_or(0),
                results.last().map(|(_, r)| r.directory.writebacks).unwrap_or(0)
            ),
        ),
    ];
    (chart, claims)
}

fn ablation_associativity() -> (BarChart, Vec<Claim>) {
    let sweep: Vec<Sweep> = [1u32, 2, 4, 8, 16]
        .iter()
        .map(|&w| Sweep::new(format!("2M{w}w"), configs::l2_sram(1, 2, w)))
        .collect();
    let results = run_sweep(&sweep, warm_refs(), meas_refs());
    let chart = exec_chart("execution time vs 2MB on-chip L2 associativity, uniprocessor", &results);
    let cycles: Vec<f64> = results.iter().map(|(_, r)| r.breakdown.total_cycles()).collect();
    let gain_4_to_8 = cycles[2] / cycles[3];
    let gain_8_to_16 = cycles[3] / cycles[4];
    let claims = vec![
        Claim::check(
            "associativity beyond 8-way shows diminishing returns",
            gain_8_to_16 < gain_4_to_8 && gain_8_to_16 < 1.04,
            format!("4->8: {gain_4_to_8:.3}x, 8->16: {gain_8_to_16:.3}x"),
        ),
        Claim::check(
            "1-way to 4-way is the critical step (paper: below 4-way performance collapses)",
            cycles[0] / cycles[2] > 1.2,
            format!("{:.2}x", cycles[0] / cycles[2]),
        ),
    ];
    (chart, claims)
}

fn ablation_kernel_share() -> (BarChart, Vec<Claim>) {
    let mut chart = BarChart::new("kernel share of instructions vs kernel path-length scaling");
    let mut shares = Vec::new();
    for (label, scale) in [("half", 0.5), ("paper", 1.0), ("double", 2.0)] {
        let mut params = OltpParams::default();
        params.txn_pipe_instrs = (params.txn_pipe_instrs as f64 * scale) as u64;
        params.txn_commit_instrs = (params.txn_commit_instrs as f64 * scale) as u64;
        params.switch_instrs = (params.switch_instrs as f64 * scale) as u64;
        let mut nodes = OltpWorkload::build(params, 1).expect("valid params");
        let stream = &mut nodes[0];
        let (mut kernel, mut instrs) = (0u64, 0u64);
        for _ in 0..600_000 {
            let r = stream.next_ref();
            if r.access.is_instruction() {
                instrs += 1;
                if r.mode == ExecMode::Kernel {
                    kernel += 1;
                }
            }
        }
        let share = kernel as f64 / instrs as f64;
        shares.push(share);
        chart.push(Bar::new(label).with("kernel-%", 100.0 * share));
    }
    let claims = vec![
        Claim::check(
            "the default workload spends ~25% of instructions in the kernel (paper Section 2.2)",
            (0.17..=0.33).contains(&shares[1]),
            format!("{:.0}%", 100.0 * shares[1]),
        ),
        Claim::check(
            "kernel share responds monotonically to kernel path lengths",
            shares[0] < shares[1] && shares[1] < shares[2],
            format!(
                "{:.0}% / {:.0}% / {:.0}%",
                100.0 * shares[0],
                100.0 * shares[1],
                100.0 * shares[2]
            ),
        ),
    ];
    (chart, claims)
}

fn ablation_scheduling_interleave() -> (BarChart, Vec<Claim>) {
    // How much does time-sharing 8 server processes per CPU matter?
    // Compare the default against a single server per node (less L1/L2
    // pressure from interleaved footprints).
    let cfg = configs::base_off_chip(1, 8, 1);
    let mut chart = BarChart::new("effect of servers-per-node on CPI, uniprocessor Base");
    let mut cpis = Vec::new();
    for servers in [1usize, 4, 8] {
        let mut params = OltpParams::default();
        params.servers_per_node = servers;
        let mut sim = Simulation::with_oltp(&cfg, params).expect("valid params");
        sim.warm_up(warm_refs() / 2);
        let rep = sim.run(meas_refs() / 2);
        cpis.push(rep.breakdown.cpi());
        chart.push(Bar::new(format!("{servers} servers")).with("CPI", rep.breakdown.cpi()));
    }
    let claims = vec![Claim::check(
        "time-sharing more server processes increases memory pressure (CPI)",
        cpis[0] < cpis[2],
        format!("CPI {:.2} (1) vs {:.2} (8)", cpis[0], cpis[2]),
    )];
    (chart, claims)
}

fn main() {
    let (c1, cl1) = ablation_owner_retention();
    finish_figure("ablation_owner_retention", "2-hop to 3-hop conversion mechanism", &[&c1], &cl1);

    let (c2, cl2) = ablation_associativity();
    finish_figure("ablation_associativity", "L2 associativity beyond the paper's sweep", &[&c2], &cl2);

    let (c3, cl3) = ablation_kernel_share();
    finish_figure("ablation_kernel_share", "kernel activity share", &[&c3], &cl3);

    let (c4, cl4) = ablation_scheduling_interleave();
    finish_figure("ablation_scheduling", "process time-sharing pressure", &[&c4], &cl4);
}
