//! Criterion microbenchmarks of the simulator's hot paths: cache
//! accesses, directory protocol transitions, workload reference
//! generation, and end-to-end simulation throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use csim_cache::Cache;
use csim_coherence::Directory;
use csim_config::{CacheGeometry, SystemConfig};
use csim_core::Simulation;
use csim_trace::ReferenceStream;
use csim_workload::{OltpParams, OltpWorkload};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    let geom = CacheGeometry::new(2 << 20, 8, 64).unwrap();

    g.bench_function("l2_hit", |b| {
        let mut cache = Cache::new(geom);
        cache.insert(42, false);
        b.iter(|| cache.access(std::hint::black_box(42), false))
    });

    g.bench_function("l2_miss_insert_evict", |b| {
        let mut cache = Cache::new(geom);
        let mut line = 0u64;
        b.iter(|| {
            line = line.wrapping_add(4096); // new set each time
            if cache.access(line, false).is_hit() {
                return None;
            }
            cache.insert(line, false)
        })
    });
    g.finish();
}

fn bench_directory(c: &mut Criterion) {
    let mut g = c.benchmark_group("directory");
    g.throughput(Throughput::Elements(1));

    g.bench_function("read_miss_cold", |b| {
        b.iter_batched_ref(
            || Directory::new(8, 64, 8192),
            |dir| {
                for line in 0..64u64 {
                    std::hint::black_box(dir.read_miss(line, (line % 8) as u8));
                }
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("migratory_write_write", |b| {
        let mut dir = Directory::new(8, 64, 8192);
        let mut node = 0u8;
        dir.write_miss(7, 0);
        b.iter(|| {
            node = (node + 1) % 8;
            std::hint::black_box(dir.write_miss(7, node))
        })
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.throughput(Throughput::Elements(1));
    g.bench_function("next_ref", |b| {
        let mut nodes = OltpWorkload::build(OltpParams::default(), 1).unwrap();
        let stream = &mut nodes[0];
        b.iter(|| std::hint::black_box(stream.next_ref()))
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);

    g.throughput(Throughput::Elements(10_000));
    g.bench_function("uniprocessor_10k_refs", |b| {
        let cfg = SystemConfig::paper_base_uni();
        let mut sim = Simulation::with_oltp(&cfg, OltpParams::default()).unwrap();
        sim.warm_up(200_000);
        b.iter(|| std::hint::black_box(sim.run(10_000)))
    });

    g.throughput(Throughput::Elements(8 * 10_000));
    g.bench_function("mp8_10k_refs_per_node", |b| {
        let cfg = SystemConfig::paper_base_mp8();
        let mut sim = Simulation::with_oltp(&cfg, OltpParams::default()).unwrap();
        sim.warm_up(100_000);
        b.iter(|| std::hint::black_box(sim.run(10_000)))
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_directory, bench_workload, bench_simulation);
criterion_main!(benches);
