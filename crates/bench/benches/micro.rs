//! Microbenchmarks of the simulator's hot paths: cache accesses,
//! directory protocol transitions, workload reference generation, and
//! end-to-end simulation throughput.
//!
//! Hand-rolled harness (no external benchmarking crate, so the workspace
//! builds hermetically): each benchmark is timed over a fixed operation
//! count after a short warm-up, reporting ns/op and Mops/s. Set
//! `CSIM_BENCH_QUICK=1` to cut iteration counts by 10x.

use std::hint::black_box;
use std::time::Instant;

use csim_cache::Cache;
use csim_coherence::Directory;
use csim_config::{CacheGeometry, SystemConfig};
use csim_core::Simulation;
use csim_trace::ReferenceStream;
use csim_workload::{OltpParams, OltpWorkload};

fn iterations(base: u64) -> u64 {
    if std::env::var("CSIM_BENCH_QUICK").is_ok_and(|v| v != "0") {
        (base / 10).max(1)
    } else {
        base
    }
}

/// Times `f` over `n` calls (after `n / 10` warm-up calls) and prints one
/// result line.
fn bench(name: &str, n: u64, mut f: impl FnMut()) {
    for _ in 0..n / 10 {
        f();
    }
    let start = Instant::now();
    for _ in 0..n {
        f();
    }
    let elapsed = start.elapsed();
    let ns_per_op = elapsed.as_nanos() as f64 / n as f64;
    println!(
        "{name:<32} {n:>10} ops  {ns_per_op:>9.1} ns/op  {:>8.2} Mops/s",
        1e3 / ns_per_op
    );
}

fn bench_cache() {
    let geom = CacheGeometry::new(2 << 20, 8, 64).expect("valid geometry");

    let mut cache = Cache::new(geom);
    cache.insert(42, false);
    bench("cache/l2_hit", iterations(10_000_000), || {
        black_box(cache.access(black_box(42), false));
    });

    let mut cache = Cache::new(geom);
    let mut line = 0u64;
    bench("cache/l2_miss_insert_evict", iterations(10_000_000), || {
        line = line.wrapping_add(4096); // new set each time
        if !cache.access(line, false).is_hit() {
            black_box(cache.insert(line, false));
        }
    });
}

fn bench_directory() {
    let mut dir = Directory::new(8, 64, 8192);
    let mut line = 0u64;
    bench("directory/read_miss_cold", iterations(2_000_000), || {
        black_box(dir.read_miss(line, (line % 8) as u8));
        line += 1;
    });

    let mut dir = Directory::new(8, 64, 8192);
    let mut node = 0u8;
    dir.write_miss(7, 0);
    bench("directory/migratory_write", iterations(5_000_000), || {
        node = (node + 1) % 8;
        black_box(dir.write_miss(7, node));
    });
}

fn bench_workload() {
    let mut nodes = OltpWorkload::build(OltpParams::default(), 1).expect("default params valid");
    let stream = &mut nodes[0];
    bench("workload/next_ref", iterations(10_000_000), || {
        black_box(stream.next_ref());
    });
}

fn bench_simulation() {
    let cfg = SystemConfig::paper_base_uni();
    let mut sim = Simulation::with_oltp(&cfg, OltpParams::default()).expect("default params valid");
    sim.warm_up(200_000);
    bench("simulation/uni_10k_refs", iterations(50), || {
        black_box(sim.run(10_000));
    });

    let cfg = SystemConfig::paper_base_mp8();
    let mut sim = Simulation::with_oltp(&cfg, OltpParams::default()).expect("default params valid");
    sim.warm_up(100_000);
    bench("simulation/mp8_10k_refs_per_node", iterations(20), || {
        black_box(sim.run(10_000));
    });
}

fn main() {
    println!("{:<32} {:>10}      {:>9}        {:>8}", "benchmark", "ops", "time", "rate");
    bench_cache();
    bench_directory();
    bench_workload();
    bench_simulation();
}
