//! Figure 5: OLTP behavior with different off-chip L2 configurations,
//! uniprocessor. Sweeps the external L2 from 1 MB to 8 MB at 1-way and
//! 4-way, plus the Conservative Base with an 8 MB 4-way L2, and prints
//! the paper's two charts (normalized execution time, normalized L2
//! misses).

use csim_bench::{
    comparison_table, configs, exec_chart, finish_figure, meas_refs, miss_chart,
    normalized_totals, run_sweep, warm_refs, Claim, Sweep,
};

fn main() {
    let mut sweep = Vec::new();
    for &assoc in &[1u32, 4] {
        for &mb in &[1u64, 2, 4, 8] {
            sweep.push(Sweep::new(format!("{mb}M{assoc}w"), configs::base_off_chip(1, mb, assoc)));
        }
    }
    sweep.push(Sweep::new("Cons-8M4w", configs::conservative(1, 8, 4)));

    let results = run_sweep(&sweep, warm_refs(), meas_refs());
    let exec = exec_chart("Figure 5 (left): normalized execution time, uniprocessor", &results);
    let miss = miss_chart("Figure 5 (right): normalized L2 misses, uniprocessor", &results);

    let e = normalized_totals(&results, false);
    let m = normalized_totals(&results, true);
    let idx = |label: &str| sweep.iter().position(|s| s.label == label).expect("label exists");

    // Paper bar heights as read from the figure (miss chart; the DM and
    // 4-way columns are disambiguated by cross-checking against Figure 7
    // and the prose claims).
    let paper_miss: [(&str, Option<f64>); 9] = [
        ("1M1w", Some(100.0)),
        ("2M1w", Some(58.0)),
        ("4M1w", Some(32.0)),
        ("8M1w", Some(14.0)),
        ("1M4w", Some(43.0)),
        ("2M4w", Some(11.0)),
        ("4M4w", Some(3.0)),
        ("8M4w", Some(2.0)),
        ("Cons-8M4w", Some(2.0)),
    ];
    let rows: Vec<(&str, Option<f64>, f64)> =
        paper_miss.iter().map(|(l, p)| (*l, *p, m[idx(l)])).collect();
    println!("{}", comparison_table("normalized L2 misses", &rows).render());

    let reduction = m[idx("1M1w")] / m[idx("8M4w")].max(1e-9);
    let claims = vec![
        Claim::check(
            "going from 1M1w to 8M4w cuts L2 misses ~50x",
            (20.0..=90.0).contains(&reduction),
            format!("{reduction:.0}x"),
        ),
        Claim::check(
            "a 2MB 4-way L2 has fewer misses than an 8MB direct-mapped L2",
            m[idx("2M4w")] < m[idx("8M1w")],
            format!("{:.1} vs {:.1}", m[idx("2M4w")], m[idx("8M1w")]),
        ),
        Claim::check(
            "miss stall time is over 50% of execution at 1M1w",
            {
                let r = &results[idx("1M1w")].1;
                (r.breakdown.local_cycles + r.breakdown.remote_cycles())
                    / r.breakdown.total_cycles()
                    > 0.5
            },
            {
                let r = &results[idx("1M1w")].1;
                format!(
                    "{:.0}%",
                    100.0 * (r.breakdown.local_cycles + r.breakdown.remote_cycles())
                        / r.breakdown.total_cycles()
                )
            },
        ),
        Claim::check(
            "4-way outperforms same-size direct-mapped at 1MB and 2MB",
            e[idx("1M4w")] < e[idx("1M1w")] && e[idx("2M4w")] < e[idx("2M1w")],
            format!(
                "1M: {:.1} vs {:.1}; 2M: {:.1} vs {:.1}",
                e[idx("1M4w")],
                e[idx("1M1w")],
                e[idx("2M4w")],
                e[idx("2M1w")]
            ),
        ),
        Claim::check(
            "at 8MB the direct-mapped L2 is at least as fast (faster hits win)",
            e[idx("8M1w")] <= e[idx("8M4w")] * 1.03,
            format!("{:.1} vs {:.1}", e[idx("8M1w")], e[idx("8M4w")]),
        ),
        Claim::check(
            "performance is insensitive to local latency with a big associative L2 (Cons ~ Base)",
            (e[idx("Cons-8M4w")] - e[idx("8M4w")]).abs() < 8.0,
            format!("{:.1} vs {:.1}", e[idx("Cons-8M4w")], e[idx("8M4w")]),
        ),
        Claim::check(
            "L2 hit time grows as caches get larger or more associative",
            {
                let small = &results[idx("1M1w")].1.breakdown;
                let large = &results[idx("8M4w")].1.breakdown;
                large.l2_hit_cycles / large.instructions as f64
                    > small.l2_hit_cycles / small.instructions as f64
            },
            "L2-hit CPI rises with cache size".to_string(),
        ),
    ];

    finish_figure(
        "fig05",
        "off-chip L2 sweep, uniprocessor (paper Figure 5)",
        &[&exec, &miss],
        &claims,
    );
}
