//! Extension experiment: chip multiprocessing (CMP).
//!
//! The paper's concluding remark: once integration has cut memory
//! latencies, "the next logical step seems to be to tolerate the
//! remaining latencies by exploiting the inherent thread-level
//! parallelism in OLTP through techniques such as chip multiprocessing".
//! This experiment holds the total core count at 8 and folds cores onto
//! fewer fully-integrated chips (8x1, 4x2, 2x4, 1x8), each chip's cores
//! sharing its 2 MB 8-way on-chip L2. Sharing moves on-chip: misses that
//! were 2-hop/3-hop network transactions become shared-L2 hits.

use csim_bench::{finish_figure, meas_refs_mp, run_sweep, warm_refs_mp, Claim, Sweep};
use csim_config::{IntegrationLevel, SystemConfig};
use csim_stats::BarChart;

fn main() {
    let mut sweep = Vec::new();
    for &(chips, cores) in &[(8usize, 1usize), (4, 2), (2, 4), (1, 8)] {
        let mut b = SystemConfig::builder();
        b.nodes(chips)
            .cores_per_node(cores)
            .integration(IntegrationLevel::FullyIntegrated)
            .l2_sram(2 << 20, 8);
        sweep.push(Sweep::new(format!("{chips}chips x {cores}cores"), b.build().unwrap()));
    }

    let results = run_sweep(&sweep, warm_refs_mp(), meas_refs_mp());

    // All configurations run 8 cores for the same per-core reference
    // count, so aggregate cycles are directly comparable.
    let mut chart = BarChart::new(
        "CMP extension: normalized execution time, 8 cores total, fully integrated",
    );
    for (label, rep) in &results {
        chart.push(rep.exec_bar(label.clone()));
    }
    let chart = chart.normalized_to_first();

    let mut miss_chart = BarChart::new("CMP extension: normalized L2 misses");
    for (label, rep) in &results {
        miss_chart.push(rep.miss_bar(label.clone()));
    }
    let miss_chart = miss_chart.normalized_to_first();

    let cycles: Vec<f64> = results.iter().map(|(_, r)| r.breakdown.total_cycles()).collect();
    let remote: Vec<u64> = results.iter().map(|(_, r)| r.misses.remote()).collect();
    let dirty: Vec<u64> = results.iter().map(|(_, r)| r.misses.data_remote_dirty).collect();

    let claims = vec![
        Claim::check(
            "folding cores onto fewer chips removes communication (3-hop) misses monotonically",
            dirty.windows(2).all(|w| w[1] < w[0]),
            format!("3-hop misses: {dirty:?} (2-hop+3-hop: {remote:?} — 2-hop can \
                     rise at intermediate points from shared-L2 capacity pressure)"),
        ),
        Claim::check(
            "a single-chip 8-core CMP eliminates dirty remote misses entirely",
            *dirty.last().unwrap_or(&1) == 0,
            format!("3-hop misses: {dirty:?}"),
        ),
        Claim::check(
            "CMP improves aggregate OLTP performance at equal core count",
            cycles.last().unwrap_or(&1.0) < cycles.first().unwrap_or(&0.0),
            format!(
                "8x1 -> 1x8 speedup {:.2}x",
                cycles.first().unwrap_or(&0.0) / cycles.last().unwrap_or(&1.0)
            ),
        ),
        Claim::check(
            "the CMP tradeoff is real: one shared L2 takes all cores' capacity pressure \
             (total misses rise), but cheap local misses still win",
            {
                let first = &results.first().expect("sweep nonempty").1;
                let last = &results.last().expect("sweep nonempty").1;
                last.misses.total() > first.misses.total()
                    && last.breakdown.total_cycles() < first.breakdown.total_cycles()
            },
            format!(
                "misses {} -> {}, cycles {:.2e} -> {:.2e}",
                results.first().expect("sweep nonempty").1.misses.total(),
                results.last().expect("sweep nonempty").1.misses.total(),
                results.first().expect("sweep nonempty").1.breakdown.total_cycles(),
                results.last().expect("sweep nonempty").1.breakdown.total_cycles()
            ),
        ),
    ];

    finish_figure(
        "extension_cmp",
        "chip multiprocessing (paper Section 9 future work)",
        &[&chart, &miss_chart],
        &claims,
    );
}
