//! Figure 12: performance impact of remote access caches with different
//! L2 sizes — 8 processors, fully integrated design, instruction pages
//! replicated. The middle comparison accounts for the chip area the
//! on-chip RAC tags would occupy: a 1.25 MB L2 without a RAC vs a 1 MB L2
//! with one.

use csim_bench::{
    configs, exec_chart, finish_figure, meas_refs_mp, normalized_totals, run_sweep, warm_refs_mp,
    Claim, Sweep,
};

fn main() {
    // L2 sizes in quarter-megabytes: 4 = 1 MB, 5 = 1.25 MB, 8 = 2 MB.
    let sweep = vec![
        Sweep::new("1M4w-NoRAC", configs::fully_integrated(8, 4, 4, false, true)),
        Sweep::new("1M4w-RAC", configs::fully_integrated(8, 4, 4, true, true)),
        Sweep::new("1.25M4w-NoRAC", configs::fully_integrated(8, 5, 4, false, true)),
        Sweep::new("2M8w-NoRAC", configs::fully_integrated(8, 8, 8, false, true)),
        Sweep::new("2M8w-RAC", configs::fully_integrated(8, 8, 8, true, true)),
    ];

    let results = run_sweep(&sweep, warm_refs_mp(), meas_refs_mp());
    let exec = exec_chart("Figure 12: execution time with remote access caches", &results);

    let e = normalized_totals(&results, false);
    let idx = |l: &str| sweep.iter().position(|s| s.label == l).expect("label");
    let rep = |l: &str| &results[idx(l)].1;

    let small_gain = 1.0 - e[idx("1M4w-RAC")] / e[idx("1M4w-NoRAC")];
    let big_gain = 1.0 - e[idx("2M8w-RAC")] / e[idx("2M8w-NoRAC")];

    let claims = vec![
        Claim::check(
            "the overall benefit of the RAC at 1M4w is small (paper: 4.3%)",
            (0.0..=0.25).contains(&small_gain),
            format!("{:.1}%", 100.0 * small_gain),
        ),
        Claim::check(
            "larger on-chip L2s (2M8w) make the RAC even less appealing (hit rate < 10%)",
            rep("2M8w-RAC").rac.hit_rate() < 0.10,
            format!("{:.1}%", 100.0 * rep("2M8w-RAC").rac.hit_rate()),
        ),
        Claim::check(
            "at 2M8w, performance is almost the same with and without a RAC",
            big_gain.abs() < 0.05,
            format!("{:.1}%", 100.0 * big_gain),
        ),
        Claim::check(
            "spending the RAC tag area on a bigger L2 is competitive (1.25M close to or better than 1M+RAC)",
            e[idx("1.25M4w-NoRAC")] < e[idx("1M4w-NoRAC")],
            format!(
                "1.25M {:.1} vs 1M+RAC {:.1} vs 1M {:.1}",
                e[idx("1.25M4w-NoRAC")],
                e[idx("1M4w-RAC")],
                e[idx("1M4w-NoRAC")]
            ),
        ),
    ];

    finish_figure(
        "fig12",
        "RAC performance with different L2 sizes (paper Figure 12)",
        &[&exec],
        &claims,
    );
}
