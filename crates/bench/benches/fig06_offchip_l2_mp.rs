//! Figure 6: OLTP behavior with different off-chip L2 configurations,
//! 8 processors. Same sweep as Figure 5 on the 8-node CC-NUMA machine;
//! remote (2-hop) and dirty remote (3-hop) misses now appear.

use csim_bench::{
    configs, exec_chart, finish_figure, meas_refs_mp, miss_chart, normalized_totals, run_sweep,
    warm_refs_mp, Claim, Sweep,
};

fn main() {
    let mut sweep = Vec::new();
    for &assoc in &[1u32, 4] {
        for &mb in &[1u64, 2, 4, 8] {
            sweep.push(Sweep::new(format!("{mb}M{assoc}w"), configs::base_off_chip(8, mb, assoc)));
        }
    }
    sweep.push(Sweep::new("Cons-8M4w", configs::conservative(8, 8, 4)));

    let results = run_sweep(&sweep, warm_refs_mp(), meas_refs_mp());
    let exec = exec_chart("Figure 6 (left): normalized execution time, 8 processors", &results);
    let miss = miss_chart("Figure 6 (right): normalized L2 misses, 8 processors", &results);

    let e = normalized_totals(&results, false);
    let m = normalized_totals(&results, true);
    let idx = |label: &str| sweep.iter().position(|s| s.label == label).expect("label exists");
    let rep = |label: &str| &results[idx(label)].1;

    let dirty_share = |label: &str| {
        let r = rep(label);
        r.misses.data_remote_dirty as f64 / r.misses.total().max(1) as f64
    };
    let cold_share = |label: &str| {
        let r = rep(label);
        r.misses.cold as f64 / r.misses.total().max(1) as f64
    };

    let claims = vec![
        Claim::check(
            "a sizable number of misses remain even with large associative caches",
            m[idx("8M4w")] > 20.0,
            format!("8M4w normalized misses = {:.1}", m[idx("8M4w")]),
        ),
        Claim::check(
            "the majority of remaining misses are communication, ~10% cold",
            cold_share("8M4w") < 0.2,
            format!("cold share at 8M4w = {:.1}%", 100.0 * cold_share("8M4w")),
        ),
        Claim::check(
            "over 50% of 8M4w misses are dirty 3-hop misses",
            dirty_share("8M4w") > 0.5,
            format!("{:.0}%", 100.0 * dirty_share("8M4w")),
        ),
        Claim::check(
            "more effective caching converts 2-hop misses into 3-hop misses",
            rep("8M4w").misses.data_remote_dirty as f64
                / rep("8M4w").breakdown.instructions as f64
                > rep("1M1w").misses.data_remote_dirty as f64
                    / rep("1M1w").breakdown.instructions as f64,
            format!(
                "dirty misses per kilo-instruction: {:.2} (1M1w) -> {:.2} (8M4w)",
                rep("1M1w").misses.data_remote_dirty as f64 * 1000.0
                    / rep("1M1w").breakdown.instructions as f64,
                rep("8M4w").misses.data_remote_dirty as f64 * 1000.0
                    / rep("8M4w").breakdown.instructions as f64
            ),
        ),
        Claim::check(
            "few misses are to local memory (data placement is hard, ~1-in-8)",
            {
                let r = rep("8M4w");
                let loc = (r.misses.instr_local + r.misses.data_local) as f64;
                loc / r.misses.total().max(1) as f64 <= 0.25
            },
            format!(
                "{:.0}% local",
                100.0 * (rep("8M4w").misses.instr_local + rep("8M4w").misses.data_local) as f64
                    / rep("8M4w").misses.total().max(1) as f64
            ),
        ),
        Claim::check(
            "the associative L2 always outperforms the same-size direct-mapped L2",
            e[idx("1M4w")] < e[idx("1M1w")]
                && e[idx("2M4w")] < e[idx("2M1w")]
                && e[idx("4M4w")] < e[idx("4M1w")],
            format!(
                "1M {:.1}<{:.1}, 2M {:.1}<{:.1}, 4M {:.1}<{:.1}",
                e[idx("1M4w")],
                e[idx("1M1w")],
                e[idx("2M4w")],
                e[idx("2M1w")],
                e[idx("4M4w")],
                e[idx("4M1w")]
            ),
        ),
        Claim::check(
            "at 8MB the two organizations perform virtually identically",
            (e[idx("8M4w")] - e[idx("8M1w")]).abs() < 6.0,
            format!("{:.1} vs {:.1}", e[idx("8M4w")], e[idx("8M1w")]),
        ),
        Claim::check(
            "multiprocessor performance is clearly sensitive to remote latencies (Cons slower)",
            e[idx("Cons-8M4w")] > e[idx("8M4w")] + 5.0,
            format!("{:.1} vs {:.1}", e[idx("Cons-8M4w")], e[idx("8M4w")]),
        ),
        Claim::check(
            "remote stall dominates execution at large cache sizes",
            {
                let r = rep("8M4w").breakdown;
                r.remote_cycles() > r.busy_cycles
                    && r.remote_cycles() > r.l2_hit_cycles
                    && r.remote_cycles() > r.local_cycles
            },
            format!(
                "remote = {:.0}% of time at 8M4w",
                100.0 * rep("8M4w").breakdown.remote_cycles()
                    / rep("8M4w").breakdown.total_cycles()
            ),
        ),
    ];

    finish_figure(
        "fig06",
        "off-chip L2 sweep, 8 processors (paper Figure 6)",
        &[&exec, &miss],
        &claims,
    );
}
