//! Figure 13: impact of integrating L2, MC and CC/NR with out-of-order
//! processors. The paper's finding: a 4-wide OOO core gains ~1.4x
//! (uniprocessor) / ~1.3x (multiprocessor) over in-order in absolute
//! terms, but the *relative* benefits of chip-level integration are
//! virtually identical for the two processor models.

use csim_bench::{
    configs, exec_chart, finish_figure, meas_refs, meas_refs_mp, normalized_totals, run_sweep,
    warm_refs, warm_refs_mp, Claim, Sweep,
};

fn main() {
    let uni = vec![
        Sweep::new("Base-InOrder", configs::base_off_chip(1, 8, 1)),
        Sweep::new("Base-OOO", configs::with_ooo(&configs::base_off_chip(1, 8, 1))),
        Sweep::new("L2-OOO", configs::with_ooo(&configs::l2_sram(1, 2, 8))),
        Sweep::new("L2+MC-OOO", configs::with_ooo(&configs::l2_mc(1, 2, 8))),
        // For the in-order/OOO relative-gain comparison we also need the
        // in-order integrated point.
        Sweep::new("L2-InOrder", configs::l2_sram(1, 2, 8)),
    ];
    let mp = vec![
        Sweep::new("Base-InOrder", configs::base_off_chip(8, 8, 1)),
        Sweep::new("Base-OOO", configs::with_ooo(&configs::base_off_chip(8, 8, 1))),
        Sweep::new("L2-OOO", configs::with_ooo(&configs::l2_sram(8, 2, 8))),
        Sweep::new("L2+MC-OOO", configs::with_ooo(&configs::l2_mc(8, 2, 8))),
        Sweep::new("All-OOO", configs::with_ooo(&configs::fully_integrated(8, 8, 8, false, false))),
        Sweep::new("All-InOrder", configs::fully_integrated(8, 8, 8, false, false)),
    ];

    let uni_results = run_sweep(&uni, warm_refs(), meas_refs());
    let mp_results = run_sweep(&mp, warm_refs_mp(), meas_refs_mp());

    // The paper normalizes to the Base OOO bar; keep the display sweep to
    // the bars the figure shows.
    let uni_disp: Vec<_> =
        uni_results.iter().filter(|(l, _)| l != "L2-InOrder").cloned().collect();
    let mp_disp: Vec<_> =
        mp_results.iter().filter(|(l, _)| l != "All-InOrder").cloned().collect();
    let uni_chart = exec_chart("Figure 13 (left): uniprocessor (first bar = in-order Base)", &uni_disp);
    let mp_chart = exec_chart("Figure 13 (right): 8 processors (first bar = in-order Base)", &mp_disp);

    let eu = normalized_totals(&uni_results, false);
    let em = normalized_totals(&mp_results, false);
    let iu = |l: &str| uni.iter().position(|s| s.label == l).expect("label");
    let im = |l: &str| mp.iter().position(|s| s.label == l).expect("label");

    let uni_ooo_gain = eu[iu("Base-InOrder")] / eu[iu("Base-OOO")];
    let mp_ooo_gain = em[im("Base-InOrder")] / em[im("Base-OOO")];
    let uni_rel_ooo = eu[iu("Base-OOO")] / eu[iu("L2-OOO")];
    let uni_rel_inorder = eu[iu("Base-InOrder")] / eu[iu("L2-InOrder")];
    let mp_rel_ooo = em[im("Base-OOO")] / em[im("All-OOO")];
    let mp_rel_inorder = em[im("Base-InOrder")] / em[im("All-InOrder")];

    let claims = vec![
        Claim::check(
            "4-issue OOO gains about 1.4x over in-order for the uniprocessor",
            (1.25..=1.55).contains(&uni_ooo_gain),
            format!("{uni_ooo_gain:.2}x"),
        ),
        Claim::check(
            "OOO gains are smaller (~1.3x) for the multiprocessor (remote misses are harder to hide)",
            (1.15..=1.45).contains(&mp_ooo_gain) && mp_ooo_gain < uni_ooo_gain,
            format!("{mp_ooo_gain:.2}x vs uni {uni_ooo_gain:.2}x"),
        ),
        Claim::check(
            "uniprocessor: relative L2-integration gain is virtually identical for both cores",
            (uni_rel_ooo / uni_rel_inorder - 1.0).abs() < 0.07,
            format!("OOO {uni_rel_ooo:.2}x vs in-order {uni_rel_inorder:.2}x"),
        ),
        Claim::check(
            "multiprocessor: relative full-integration gain is virtually identical for both cores",
            (mp_rel_ooo / mp_rel_inorder - 1.0).abs() < 0.07,
            format!("OOO {mp_rel_ooo:.2}x vs in-order {mp_rel_inorder:.2}x"),
        ),
        Claim::check(
            "uniprocessor: MC integration on top of L2 has virtually no impact for OOO too",
            (eu[iu("L2+MC-OOO")] - eu[iu("L2-OOO")]).abs() < 3.0,
            format!("{:.1} vs {:.1}", eu[iu("L2+MC-OOO")], eu[iu("L2-OOO")]),
        ),
    ];

    finish_figure(
        "fig13",
        "integration with out-of-order processors (paper Figure 13)",
        &[&uni_chart, &mp_chart],
        &claims,
    );
}
