//! Figure 11: impact of a remote access cache (RAC) on the L2 miss mix,
//! with and without OS-based instruction-page replication — 8 processors,
//! fully integrated design, 1 MB 4-way on-chip L2, 8 MB 8-way RAC.

use csim_bench::{
    configs, finish_figure, meas_refs_mp, miss_chart, run_sweep, warm_refs_mp, Claim, Sweep,
};

fn main() {
    let sweep = vec![
        Sweep::new("NoRAC", configs::fully_integrated(8, 4, 4, false, false)),
        Sweep::new("RAC", configs::fully_integrated(8, 4, 4, true, false)),
        Sweep::new("NoRAC+IRepl", configs::fully_integrated(8, 4, 4, false, true)),
        Sweep::new("RAC+IRepl", configs::fully_integrated(8, 4, 4, true, true)),
    ];

    let results = run_sweep(&sweep, warm_refs_mp(), meas_refs_mp());
    let miss =
        miss_chart("Figure 11: L2 miss mix with/without RAC and instruction replication", &results);

    let idx = |l: &str| sweep.iter().position(|s| s.label == l).expect("label");
    let rep = |l: &str| &results[idx(l)].1;

    let total = |l: &str| rep(l).misses.total() as f64;
    let rac_rate_norepl = rep("RAC").rac.hit_rate();
    let rac_rate_repl = rep("RAC+IRepl").rac.hit_rate();
    let inval_frac = |l: &str| {
        let d = rep(l).directory;
        d.invalidating_writes as f64 / d.write_misses.max(1) as f64
    };

    let claims = vec![
        Claim::check(
            "the RAC changes the mix but not the total number of L2 misses",
            (total("RAC") - total("NoRAC")).abs() / total("NoRAC") < 0.03,
            format!("{:.0} vs {:.0}", total("RAC"), total("NoRAC")),
        ),
        Claim::check(
            "without replication the RAC hit rate is ~42%",
            (0.30..=0.60).contains(&rac_rate_norepl),
            format!("{:.0}%", 100.0 * rac_rate_norepl),
        ),
        Claim::check(
            "instruction replication drops the RAC hit rate to ~30%",
            rac_rate_repl < rac_rate_norepl && (0.18..=0.48).contains(&rac_rate_repl),
            format!("{:.0}%", 100.0 * rac_rate_repl),
        ),
        Claim::check(
            "with the RAC, virtually all instruction misses are satisfied locally",
            {
                let m = rep("RAC").misses;
                m.instr_local as f64 / m.instr().max(1) as f64 > 0.8
            },
            format!(
                "{:.0}% of instruction misses local",
                100.0 * rep("RAC").misses.instr_local as f64
                    / rep("RAC").misses.instr().max(1) as f64
            ),
        ),
        Claim::check(
            "replication alone already makes instruction misses local",
            {
                let m = rep("NoRAC+IRepl").misses;
                m.instr_local as f64 / m.instr().max(1) as f64 > 0.95
            },
            format!(
                "{:.0}%",
                100.0 * rep("NoRAC+IRepl").misses.instr_local as f64
                    / rep("NoRAC+IRepl").misses.instr().max(1) as f64
            ),
        ),
        Claim::check(
            "the RAC increases the number of remote dirty (3-hop) misses",
            rep("RAC+IRepl").misses.data_remote_dirty
                > rep("NoRAC+IRepl").misses.data_remote_dirty,
            format!(
                "{} vs {}",
                rep("RAC+IRepl").misses.data_remote_dirty,
                rep("NoRAC+IRepl").misses.data_remote_dirty
            ),
        ),
        Claim::check(
            "the RAC increases the fraction of writes that send invalidations (~1-in-6 to ~1-in-3)",
            inval_frac("RAC+IRepl") > inval_frac("NoRAC+IRepl"),
            format!(
                "{:.2} -> {:.2}",
                inval_frac("NoRAC+IRepl"),
                inval_frac("RAC+IRepl")
            ),
        ),
    ];

    finish_figure(
        "fig11",
        "RAC effect on miss mix, 1M4w L2, 8 processors (paper Figure 11)",
        &[&miss],
        &claims,
    );
}
