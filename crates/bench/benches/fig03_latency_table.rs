//! Figures 2 and 3: the base system parameters and the memory-latency
//! table for every integration level. These are configuration tables, not
//! measurements; this target prints them exactly as encoded in
//! `csim-config` so they can be compared against the paper line by line.

use csim_config::{IntegrationLevel, L2Kind, LatencyTable, SystemConfig, L1_ASSOC, L1_SIZE, LINE_SIZE, MP_NODES};
use csim_noc::{derive_latency_table, remote_dirty_path_description, TechParams, Torus2D};

fn main() {
    println!("==============================================================");
    println!("Figure 2: parameters for the Base system");
    println!("==============================================================");
    let base = SystemConfig::paper_base_uni();
    println!("Processor speed                      1 GHz");
    println!("Cache line size                      {} bytes", LINE_SIZE);
    println!("L1 data cache size (on-chip)         {} KB", L1_SIZE >> 10);
    println!("L1 data cache associativity          {}-way", L1_ASSOC);
    println!("L1 instruction cache size (on-chip)  {} KB", L1_SIZE >> 10);
    println!("L1 instruction cache associativity   {}-way", L1_ASSOC);
    println!(
        "L2 cache size (off-chip)             {} MB",
        base.l2().geometry.size_bytes() >> 20
    );
    println!("L2 cache associativity               {}-way", base.l2().geometry.assoc());
    println!("Multiprocessor configuration         {} processors", MP_NODES);
    println!();
    println!("==============================================================");
    println!("Figure 3: memory latencies (cycles at 1 GHz = ns)");
    println!("==============================================================");
    println!("{}", LatencyTable::figure3_table());
    println!("Paper cross-checks (Section 2.3): full integration reduces");
    println!("L2 hit 1.67x, local 1.33x, remote 1.17x, remote dirty 1.38x");
    println!("relative to Base — encoded and unit-tested in csim-config.");
    println!();
    println!("==============================================================");
    println!("First-principles derivation (csim-noc, 8-node torus)");
    println!("==============================================================");
    let tech = TechParams::paper_018um();
    let torus = Torus2D::for_nodes(MP_NODES);
    println!(
        "{:<26} {:>6} {:>6} {:>7} {:>13}   (derived / paper)",
        "Configuration", "L2 Hit", "Local", "Remote", "Remote Dirty"
    );
    use IntegrationLevel::*;
    for level in [ConservativeBase, Base, L2Integrated, L2McIntegrated, FullyIntegrated] {
        let d = derive_latency_table(level, &tech, &torus);
        let kind = if level.l2_on_chip() { L2Kind::OnChipSram } else { L2Kind::OffChip };
        let p = LatencyTable::for_system(level, kind, 1);
        println!(
            "{:<26} {:>2}/{:<3} {:>3}/{:<3} {:>3}/{:<3} {:>6}/{:<6}",
            format!("{level:?}"),
            d.l2_hit, p.l2_hit, d.local, p.local,
            d.remote_clean, p.remote_clean, d.remote_dirty, p.remote_dirty
        );
    }
    println!();
    println!("Where a fully-integrated 3-hop miss spends its cycles:");
    println!("{}", remote_dirty_path_description(&tech, &torus));
}
