//! Figure 10: impact of successively integrating the L2 cache, memory
//! controller, and coherence controller / network router. Uniprocessor
//! bars: Base, L2, L2+MC. Multiprocessor bars: Base, L2, L2+MC, All
//! (plus Conservative Base for the Section 5 "1.56x over a less
//! aggressive design" claim).

use csim_bench::{
    configs, exec_chart, finish_figure, meas_refs, meas_refs_mp, normalized_totals, run_sweep,
    warm_refs, warm_refs_mp, Claim, Sweep,
};

fn main() {
    // L2 configuration: Base uses the 8MB 1-way off-chip cache, the
    // integrated designs a 2MB 8-way on-chip SRAM (paper caption).
    let uni = vec![
        Sweep::new("Base", configs::base_off_chip(1, 8, 1)),
        Sweep::new("L2", configs::l2_sram(1, 2, 8)),
        Sweep::new("L2+MC", configs::l2_mc(1, 2, 8)),
    ];
    let mp = vec![
        Sweep::new("Base", configs::base_off_chip(8, 8, 1)),
        Sweep::new("L2", configs::l2_sram(8, 2, 8)),
        Sweep::new("L2+MC", configs::l2_mc(8, 2, 8)),
        Sweep::new("All", configs::fully_integrated(8, 8, 8, false, false)),
        Sweep::new("Cons", configs::conservative(8, 8, 4)),
    ];

    let uni_results = run_sweep(&uni, warm_refs(), meas_refs());
    let mp_results = run_sweep(&mp, warm_refs_mp(), meas_refs_mp());
    let uni_chart = exec_chart("Figure 10 (left): uniprocessor", &uni_results);
    let mp_chart = exec_chart("Figure 10 (right): 8 processors", &mp_results);

    let eu = normalized_totals(&uni_results, false);
    let em = normalized_totals(&mp_results, false);
    let iu = |l: &str| uni.iter().position(|s| s.label == l).expect("label");
    let im = |l: &str| mp.iter().position(|s| s.label == l).expect("label");

    let uni_l2_gain = eu[iu("Base")] / eu[iu("L2")];
    let mp_l2_gain = em[im("Base")] / em[im("L2")];
    let mp_all_gain = em[im("Base")] / em[im("All")];
    let mp_rest_gain = em[im("L2")] / em[im("All")];
    let mp_cons_gain = em[im("Cons")] / em[im("All")];

    let claims = vec![
        Claim::check(
            "uniprocessor: integrating the L2 buys ~1.4x",
            (1.3..=1.6).contains(&uni_l2_gain),
            format!("{uni_l2_gain:.2}x"),
        ),
        Claim::check(
            "uniprocessor: integrating the MC on top has virtually no impact",
            (eu[iu("L2+MC")] - eu[iu("L2")]).abs() < 3.0,
            format!("{:.1} vs {:.1}", eu[iu("L2+MC")], eu[iu("L2")]),
        ),
        Claim::check(
            "multiprocessor: full integration buys ~1.43x over Base",
            (1.3..=1.55).contains(&mp_all_gain),
            format!("{mp_all_gain:.2}x"),
        ),
        Claim::check(
            "multiprocessor: about half the gain (~1.2x) comes from integrating the L2",
            (1.1..=1.3).contains(&mp_l2_gain),
            format!("{mp_l2_gain:.2}x"),
        ),
        Claim::check(
            "multiprocessor: the other half (~1.2x) comes from integrating MC + CC/NR",
            (1.1..=1.3).contains(&mp_rest_gain),
            format!("{mp_rest_gain:.2}x"),
        ),
        Claim::check(
            "multiprocessor: L2+MC alone is no better than L2 (separating MC from CC hurts)",
            em[im("L2+MC")] >= em[im("L2")] - 3.0,
            format!("{:.1} vs {:.1}", em[im("L2+MC")], em[im("L2")]),
        ),
        Claim::check(
            "gain over the less aggressive Conservative design is ~1.56x",
            (1.35..=1.8).contains(&mp_cons_gain),
            format!("{mp_cons_gain:.2}x"),
        ),
        Claim::check(
            "processor utilization for Base multiprocessor OLTP is low (~17%)",
            {
                let u = mp_results[im("Base")].1.breakdown.cpu_utilization();
                (0.07..=0.25).contains(&u)
            },
            format!("{:.0}%", 100.0 * mp_results[im("Base")].1.breakdown.cpu_utilization()),
        ),
    ];

    finish_figure(
        "fig10",
        "successive integration of L2, MC, CC/NR (paper Figure 10)",
        &[&uni_chart, &mp_chart],
        &claims,
    );
}
