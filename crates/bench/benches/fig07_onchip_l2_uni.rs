//! Figure 7: impact of an on-chip (integrated) L2, uniprocessor. The
//! Base 8 MB direct-mapped off-chip L2 is compared against integrated
//! SRAM L2s (1M8w, 2M at 8/4/2/1-way) and an 8 MB 8-way embedded-DRAM L2.

use csim_bench::{
    comparison_table, configs, exec_chart, finish_figure, meas_refs, miss_chart,
    normalized_totals, run_sweep, warm_refs, Claim, Sweep,
};

fn main() {
    let sweep = vec![
        Sweep::new("8M1w-Base", configs::base_off_chip(1, 8, 1)),
        Sweep::new("1M8w", configs::l2_sram(1, 1, 8)),
        Sweep::new("2M8w", configs::l2_sram(1, 2, 8)),
        Sweep::new("2M4w", configs::l2_sram(1, 2, 4)),
        Sweep::new("2M2w", configs::l2_sram(1, 2, 2)),
        Sweep::new("2M1w", configs::l2_sram(1, 2, 1)),
        Sweep::new("8M8w-DRAM", configs::l2_dram(1, 8, 8)),
    ];

    let results = run_sweep(&sweep, warm_refs(), meas_refs());
    let exec = exec_chart("Figure 7 (left): normalized execution time, uniprocessor", &results);
    let miss = miss_chart("Figure 7 (right): normalized L2 misses, uniprocessor", &results);

    let e = normalized_totals(&results, false);
    let m = normalized_totals(&results, true);
    let idx = |label: &str| sweep.iter().position(|s| s.label == label).expect("label exists");

    let paper_miss: [(&str, Option<f64>); 7] = [
        ("8M1w-Base", Some(100.0)),
        ("1M8w", Some(182.0)),
        ("2M8w", Some(47.0)),
        ("2M4w", Some(78.0)),
        ("2M2w", Some(242.0)),
        ("2M1w", Some(396.0)),
        ("8M8w-DRAM", Some(14.0)),
    ];
    let rows: Vec<(&str, Option<f64>, f64)> =
        paper_miss.iter().map(|(l, p)| (*l, *p, m[idx(l)])).collect();
    println!("{}", comparison_table("normalized L2 misses", &rows).render());

    let speedup = e[idx("8M1w-Base")] / e[idx("2M8w")];
    let claims = vec![
        Claim::check(
            "a 2MB 4-way or 8-way on-chip cache incurs fewer misses than the external 8MB DM cache",
            m[idx("2M8w")] < 100.0 && m[idx("2M4w")] < 100.0,
            format!("2M8w {:.0}, 2M4w {:.0} vs 100", m[idx("2M8w")], m[idx("2M4w")]),
        ),
        Claim::check(
            "integrating the L2 yields over a 1.4x performance improvement",
            (1.3..=1.6).contains(&speedup),
            format!("{speedup:.2}x"),
        ),
        Claim::check(
            "even the 1MB 8-way on-chip cache performs better than the 8MB off-chip cache",
            e[idx("1M8w")] < 100.0,
            format!("{:.1} vs 100", e[idx("1M8w")]),
        ),
        Claim::check(
            "less than 4-way associativity leads to a major reduction in performance at 2MB",
            e[idx("2M2w")] > e[idx("2M4w")] * 1.08 && e[idx("2M1w")] > e[idx("2M2w")],
            format!(
                "2M4w {:.1} < 2M2w {:.1} < 2M1w {:.1}",
                e[idx("2M4w")],
                e[idx("2M2w")],
                e[idx("2M1w")]
            ),
        ),
        Claim::check(
            "the larger DRAM on-chip cache is not a good option for uniprocessors",
            e[idx("8M8w-DRAM")] > e[idx("2M8w")],
            format!("{:.1} vs {:.1}", e[idx("8M8w-DRAM")], e[idx("2M8w")]),
        ),
        Claim::check(
            "the 2MB 8-way on-chip cache eliminates virtually all local memory stall time",
            {
                let r = &results[idx("2M8w")].1.breakdown;
                r.local_cycles / r.total_cycles() < 0.2
            },
            format!(
                "{:.0}% of time",
                100.0 * results[idx("2M8w")].1.breakdown.local_cycles
                    / results[idx("2M8w")].1.breakdown.total_cycles()
            ),
        ),
    ];

    finish_figure(
        "fig07",
        "integrated on-chip L2, uniprocessor (paper Figure 7)",
        &[&exec, &miss],
        &claims,
    );
}
