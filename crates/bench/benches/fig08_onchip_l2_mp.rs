//! Figure 8: impact of an on-chip (integrated) L2, 8 processors. Same
//! sweep as Figure 7 on the CC-NUMA machine: communication misses cap the
//! achievable gain at ~1.2x.

use csim_bench::{
    configs, exec_chart, finish_figure, meas_refs_mp, miss_chart, normalized_totals, run_sweep,
    warm_refs_mp, Claim, Sweep,
};

fn main() {
    let sweep = vec![
        Sweep::new("8M1w-Base", configs::base_off_chip(8, 8, 1)),
        Sweep::new("1M8w", configs::l2_sram(8, 1, 8)),
        Sweep::new("2M8w", configs::l2_sram(8, 2, 8)),
        Sweep::new("2M4w", configs::l2_sram(8, 2, 4)),
        Sweep::new("2M2w", configs::l2_sram(8, 2, 2)),
        Sweep::new("2M1w", configs::l2_sram(8, 2, 1)),
        Sweep::new("8M8w-DRAM", configs::l2_dram(8, 8, 8)),
    ];

    let results = run_sweep(&sweep, warm_refs_mp(), meas_refs_mp());
    let exec = exec_chart("Figure 8 (left): normalized execution time, 8 processors", &results);
    let miss = miss_chart("Figure 8 (right): normalized L2 misses, 8 processors", &results);

    let e = normalized_totals(&results, false);
    let m = normalized_totals(&results, true);
    let idx = |label: &str| sweep.iter().position(|s| s.label == label).expect("label exists");

    let speedup = 100.0 / e[idx("2M8w")];
    let uni_range = {
        // The paper notes less relative variation among configurations
        // than the uniprocessor case; check the spread of the on-chip
        // SRAM bars.
        let on_chip = [e[idx("1M8w")], e[idx("2M8w")], e[idx("2M4w")], e[idx("2M2w")]];
        let max = on_chip.iter().fold(f64::MIN, |a, &b| a.max(b));
        let min = on_chip.iter().fold(f64::MAX, |a, &b| a.min(b));
        max / min
    };
    let claims = vec![
        Claim::check(
            "a 2MB 4-way or 8-way configuration exhibits fewer misses than the off-chip 8MB DM cache",
            m[idx("2M8w")] < 100.0 && m[idx("2M4w")] < 100.0,
            format!("2M8w {:.0}, 2M4w {:.0} vs 100", m[idx("2M8w")], m[idx("2M4w")]),
        ),
        Claim::check(
            "an on-chip L2 leads to about a 1.2x improvement for multiprocessors",
            (1.08..=1.35).contains(&speedup),
            format!("{speedup:.2}x"),
        ),
        Claim::check(
            "the DRAM option costs about 10% for OLTP but stays robust",
            e[idx("8M8w-DRAM")] > e[idx("2M8w")]
                && e[idx("8M8w-DRAM")] < e[idx("2M8w")] * 1.25,
            format!("{:.1} vs {:.1}", e[idx("8M8w-DRAM")], e[idx("2M8w")]),
        ),
        Claim::check(
            "less relative variation among configurations than the uniprocessor case",
            uni_range < 1.6,
            format!("on-chip spread {uni_range:.2}x"),
        ),
        Claim::check(
            "communication misses cannot be eliminated by more effective caching",
            m[idx("2M8w")] > 25.0,
            format!("2M8w misses still {:.0}% of 8M1w", m[idx("2M8w")]),
        ),
    ];

    finish_figure(
        "fig08",
        "integrated on-chip L2, 8 processors (paper Figure 8)",
        &[&exec, &miss],
        &claims,
    );
}
