//! Workload characterization report: the measurable counterpart of the
//! paper's Section 2 workload description. Profiles the synthetic OLTP
//! stream (no cache simulation involved) and reports instruction mix,
//! user/kernel split, footprints, sharing behavior across nodes, and the
//! stack-distance cacheability curve.
//!
//! Usage: `cargo run --release -p csim-bench --bin characterize [refs_per_node]`

use std::collections::{HashMap, HashSet};

use csim_cache::StackDistance;
use csim_stats::TextTable;
use csim_trace::{Access, ExecMode, ReferenceStream};
use csim_workload::{OltpParams, OltpWorkload};

fn main() {
    let refs: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2_000_000);
    let nodes = 4usize;
    let params = OltpParams::default();
    let mut streams = OltpWorkload::build(params.clone(), nodes).expect("valid params");

    let mut counts: HashMap<(Access, ExecMode), u64> = HashMap::new();
    let mut sd = StackDistance::new();
    let mut touched_by: HashMap<u64, u8> = HashMap::new(); // line -> node bitmap
    let mut written_by: HashMap<u64, u8> = HashMap::new();
    let mut per_node_footprint: Vec<HashSet<u64>> = vec![HashSet::new(); nodes];

    for _ in 0..refs {
        for (n, stream) in streams.iter_mut().enumerate() {
            let r = stream.next_ref();
            *counts.entry((r.access, r.mode)).or_insert(0) += 1;
            let line = r.line_addr(64);
            if n == 0 {
                sd.access(line);
            }
            *touched_by.entry(line).or_insert(0) |= 1 << n;
            if r.access.is_write() {
                *written_by.entry(line).or_insert(0) |= 1 << n;
            }
            per_node_footprint[n].insert(line);
        }
    }

    let total: u64 = counts.values().sum();
    let instrs: u64 = counts
        .iter()
        .filter(|((a, _), _)| a.is_instruction())
        .map(|(_, c)| *c)
        .sum();
    let kernel_instrs: u64 = counts
        .iter()
        .filter(|((a, m), _)| a.is_instruction() && *m == ExecMode::Kernel)
        .map(|(_, c)| *c)
        .sum();

    println!("== reference mix ({} nodes, {} refs/node) ==", nodes, refs);
    let mut t = TextTable::new(vec!["kind", "count", "share", "per instruction"]);
    for access in [Access::InstrFetch, Access::Load, Access::Store] {
        let c: u64 =
            counts.iter().filter(|((a, _), _)| *a == access).map(|(_, v)| *v).sum();
        t.row(vec![
            format!("{access:?}"),
            c.to_string(),
            format!("{:.1}%", 100.0 * c as f64 / total as f64),
            format!("{:.3}", c as f64 / instrs as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "kernel share of instructions: {:.1}% (paper Section 2.2: ~25%)\n",
        100.0 * kernel_instrs as f64 / instrs as f64
    );

    println!("== footprints ==");
    let machine_lines = touched_by.len();
    println!(
        "machine-wide: {} lines ({:.1} MB); per node: {:.0} lines ({:.1} MB) average",
        machine_lines,
        machine_lines as f64 * 64.0 / (1 << 20) as f64,
        per_node_footprint.iter().map(|s| s.len()).sum::<usize>() as f64 / nodes as f64,
        per_node_footprint.iter().map(|s| s.len()).sum::<usize>() as f64 / nodes as f64 * 64.0
            / (1 << 20) as f64,
    );

    let shared_lines = touched_by.values().filter(|&&m| m.count_ones() > 1).count();
    let write_shared = written_by.values().filter(|&&m| m.count_ones() > 1).count();
    println!(
        "shared between nodes: {} lines ({:.1}% of footprint); write-shared: {} lines\n",
        shared_lines,
        100.0 * shared_lines as f64 / machine_lines.max(1) as f64,
        write_shared,
    );

    println!("== node-0 cacheability (Mattson stack distances) ==");
    let mut t = TextTable::new(vec!["fully-assoc LRU capacity", "miss ratio"]);
    for k in [512u64, 1024, 4096, 8192, 16384, 32768, 65536, 131072] {
        t.row(vec![
            format!("{} KB", k * 64 / 1024),
            format!("{:.4}%", 100.0 * sd.miss_ratio_at(k)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "distinct lines at node 0: {} ({:.1} MB) — the knee of this curve is the\n\
         'cacheable footprint' the paper finds a 2 MB associative L2 captures.",
        sd.cold_misses(),
        sd.cold_misses() as f64 * 64.0 / (1 << 20) as f64
    );
}
