//! Calibration probe: runs the key configurations of the paper and prints
//! the raw numbers the figures are built from, so workload parameters can
//! be tuned against the paper's reported shapes.
//!
//! Usage: `cargo run --release -p csim-bench --bin calibrate [warm] [run]`
//! (references per node, defaults 2M / 4M).

use csim_config::{IntegrationLevel, SystemConfig};
use csim_core::{SimReport, Simulation};
use csim_stats::TextTable;
use csim_workload::OltpParams;

fn run(cfg: &SystemConfig, warm: u64, meas: u64) -> SimReport {
    let mut sim = Simulation::with_oltp(cfg, OltpParams::default()).expect("valid workload");
    sim.warm_up(warm);
    sim.run(meas)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let warm: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2_000_000);
    let meas: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4_000_000);
    eprintln!("warm={warm} meas={meas} refs/node");

    let mut uni_cfgs: Vec<(String, SystemConfig)> = Vec::new();
    for &(mb, assoc) in &[(1u64, 1u32), (2, 1), (4, 1), (8, 1), (1, 4), (2, 4), (4, 4), (8, 4)] {
        let mut b = SystemConfig::builder();
        b.l2_off_chip(mb << 20, assoc);
        uni_cfgs.push((format!("{mb}M{assoc}w"), b.build().unwrap()));
    }
    for &(mb, assoc) in &[(1u64, 8u32), (2, 8), (2, 4), (2, 2), (2, 1)] {
        let mut b = SystemConfig::builder();
        b.integration(IntegrationLevel::L2Integrated).l2_sram(mb << 20, assoc);
        uni_cfgs.push((format!("int-{mb}M{assoc}w"), b.build().unwrap()));
    }
    {
        let mut b = SystemConfig::builder();
        b.integration(IntegrationLevel::L2Integrated).l2_dram(8 << 20, 8);
        uni_cfgs.push(("int-8M8w-DRAM".into(), b.build().unwrap()));
    }

    let handles: Vec<_> = uni_cfgs
        .into_iter()
        .map(|(label, cfg)| {
            std::thread::spawn(move || (label, run(&cfg, warm, meas)))
        })
        .collect();

    let mut t = TextTable::new(vec![
        "uni config", "misses", "mpki", "cpi", "cpu%", "l2hit%", "loc%", "l1i-m%", "l1d-m%", "txns",
    ]);
    let mut first_misses = None;
    for h in handles {
        let (label, rep) = h.join().expect("calibration thread panicked");
        let total = rep.breakdown.total_cycles();
        let fm = *first_misses.get_or_insert(rep.misses.total().max(1));
        let instrs = rep.breakdown.instructions as f64;
        t.row(vec![
            label,
            format!("{} ({:.1})", rep.misses.total(), 100.0 * rep.misses.total() as f64 / fm as f64),
            format!("{:.3}", rep.mpki()),
            format!("{:.2}", rep.breakdown.cpi()),
            format!("{:.1}", 100.0 * rep.breakdown.busy_cycles / total),
            format!("{:.1}", 100.0 * rep.breakdown.l2_hit_cycles / total),
            format!("{:.1}", 100.0 * rep.breakdown.local_cycles / total),
            format!("{:.2}", 100.0 * rep.l1i.misses as f64 / instrs),
            format!("{:.2}", 100.0 * rep.l1d.misses as f64 / instrs),
            format!("{}", rep.transactions),
        ]);
    }
    println!("{}", t.render());

    // Multiprocessor probes.
    let mut mp_cfgs: Vec<(String, SystemConfig)> = Vec::new();
    for &(mb, assoc) in &[(1u64, 1u32), (8, 1), (4, 4), (8, 4)] {
        let mut b = SystemConfig::builder();
        b.nodes(8).l2_off_chip(mb << 20, assoc);
        mp_cfgs.push((format!("mp-{mb}M{assoc}w"), b.build().unwrap()));
    }
    {
        let mut b = SystemConfig::builder();
        b.nodes(8).integration(IntegrationLevel::L2Integrated).l2_sram(2 << 20, 8);
        mp_cfgs.push(("mp-L2int-2M8w".into(), b.build().unwrap()));
        let mut b = SystemConfig::builder();
        b.nodes(8).integration(IntegrationLevel::FullyIntegrated).l2_sram(2 << 20, 8);
        mp_cfgs.push(("mp-All-2M8w".into(), b.build().unwrap()));
    }
    let handles: Vec<_> = mp_cfgs
        .into_iter()
        .map(|(label, cfg)| std::thread::spawn(move || (label, run(&cfg, warm, meas / 2))))
        .collect();

    let mut t = TextTable::new(vec![
        "mp config", "misses", "cpi", "cpu%", "l2hit%", "loc%", "rem2%", "rem3%", "3hop/miss", "cold%",
        "mpki",
    ]);
    let mut first = None;
    for h in handles {
        let (label, rep) = h.join().expect("mp thread panicked");
        let total = rep.breakdown.total_cycles();
        let m = rep.misses;
        let fm = *first.get_or_insert(m.total().max(1));
        t.row(vec![
            label,
            format!("{} ({:.1})", m.total(), 100.0 * m.total() as f64 / fm as f64),
            format!("{:.2}", rep.breakdown.cpi()),
            format!("{:.1}", 100.0 * rep.breakdown.busy_cycles / total),
            format!("{:.1}", 100.0 * rep.breakdown.l2_hit_cycles / total),
            format!("{:.1}", 100.0 * rep.breakdown.local_cycles / total),
            format!("{:.1}", 100.0 * rep.breakdown.remote_clean_cycles / total),
            format!("{:.1}", 100.0 * rep.breakdown.remote_dirty_cycles / total),
            format!("{:.2}", m.data_remote_dirty as f64 / m.total().max(1) as f64),
            format!("{:.1}", 100.0 * m.cold as f64 / m.total().max(1) as f64),
            format!("{:.3}", rep.mpki()),
        ]);
    }
    println!("{}", t.render());
    extra_probes(warm, meas / 2);
}

#[allow(dead_code)]
fn extra_probes(warm: u64, meas: u64) {
    use csim_config::{OooParams, RacConfig};
    // --- OOO vs in-order (fig13) ---
    let mut rows = Vec::new();
    type OooCase = (&'static str, usize, IntegrationLevel, (u64, u32, bool));
    let cases: [OooCase; 5] = [
        ("uni-base", 1, IntegrationLevel::Base, (8 << 20, 1, false)),
        ("uni-L2", 1, IntegrationLevel::L2Integrated, (2 << 20, 8, true)),
        ("mp-base", 8, IntegrationLevel::Base, (8 << 20, 1, false)),
        ("mp-L2", 8, IntegrationLevel::L2Integrated, (2 << 20, 8, true)),
        ("mp-all", 8, IntegrationLevel::FullyIntegrated, (2 << 20, 8, true)),
    ];
    for (label, nodes, int, l2) in cases {
        let (size, assoc, sram) = l2;
        let mk = |ooo: bool| {
            let mut b = SystemConfig::builder();
            b.nodes(nodes).integration(int);
            if sram { b.l2_sram(size, assoc); } else { b.l2_off_chip(size, assoc); }
            if ooo { b.out_of_order(OooParams::paper()); }
            b.build().unwrap()
        };
        let inord = run(&mk(false), warm, meas);
        let ooo = run(&mk(true), warm, meas);
        rows.push((label.to_string(), inord.breakdown.total_cycles(), ooo.breakdown.total_cycles()));
    }
    println!("OOO speedups (paper: uni 1.4x, mp 1.3x; integration gains identical):");
    for (label, io, oo) in &rows {
        println!("  {label}: in-order/OOO = {:.3}", io / oo);
    }

    // --- RAC (fig11/12) ---
    println!("RAC probes (paper: hit rate 42% no-repl, ~30% repl; exec gain 4.3% at 1M4w):");
    for &(l2_mb, l2_assoc, repl, rac) in
        &[(1u64, 4u32, false, false), (1, 4, false, true), (1, 4, true, false), (1, 4, true, true),
          (2, 8, true, false), (2, 8, true, true)]
    {
        let mut b = SystemConfig::builder();
        b.nodes(8)
            .integration(IntegrationLevel::FullyIntegrated)
            .l2_sram(l2_mb << 20, l2_assoc)
            .replicate_instructions(repl);
        if rac {
            b.rac(RacConfig::paper());
        }
        let cfg = b.build().unwrap();
        let rep = run(&cfg, warm, meas);
        println!(
            "  {}M{}w repl={} rac={}: cycles={:.3e} misses={} rac_hit_rate={:.2} dirty={} loc={} rem2={}",
            l2_mb, l2_assoc, repl, rac,
            rep.breakdown.total_cycles(), rep.misses.total(), rep.rac.hit_rate(),
            rep.misses.data_remote_dirty, rep.misses.data_local + rep.misses.instr_local,
            rep.misses.data_remote_clean + rep.misses.instr_remote,
        );
    }
}
