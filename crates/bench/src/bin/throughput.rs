//! Simulator throughput harness: measures simulation speed (simulated
//! references per wall-clock second) and records it in `BENCH_sweep.json`
//! so performance regressions are caught in CI.
//!
//! Three measurements:
//!
//! * **single** — the default OLTP configuration (`csim` with no flags:
//!   Base integration, 8M1w off-chip L2, one node), best-of-N timed
//!   `Simulation::run` after warm-up. The recorded
//!   `baseline_seed_refs_per_sec` is the same loop measured against the
//!   pre-optimization engine on the same machine; `speedup_vs_seed` is
//!   the hot-path optimization win.
//! * **cache_kernel** — the struct-of-arrays [`Cache`] vs
//!   [`ReferenceCache`] (the retained seed implementation) on an
//!   identical access stream over the default 8 MB direct-mapped L2
//!   geometry. Both kernels' statistics are compared after timing —
//!   a differential check that doubles as the optimization barrier
//!   keeping the compiler from stripping the accounting out of one
//!   loop but not the other (see `measure_cache_kernel`).
//! * **sweep** — the smoke grid from `examples/sweep_smoke.toml`'s shape
//!   through `csim-sweep`'s worker pool, checking the engine scales.
//! * **kernel_attribution** — the cache-kernel loop rerun with
//!   `csim-trace` host region markers under `csim-prof`'s sampling
//!   profiler: how each kernel's wall time splits between RNG/address
//!   generation and the probe itself (the evidence behind ROADMAP item
//!   1's 0.89x analysis).
//!
//! The report also carries a **history** array: each re-record appends
//! the previous report's headline numbers (single refs/sec, its seed
//! baseline, both speedups) before overwriting them, so the file keeps
//! the optimization lineage across PRs instead of losing it.
//!
//! Usage:
//!   throughput [--meas N] [--reps K] [--jobs J] [--out FILE]
//!   throughput --check FILE     # re-measure and fail (exit 1) on a
//!                               # >20% refs/sec regression vs FILE, or
//!                               # on the SoA cache kernel dropping
//!                               # below 1.0x vs ReferenceCache
//!
//! Timing uses `Instant::now`, which the workspace lint bans from
//! simulation code; this harness measures the simulator from outside, so
//! the readings never touch a report that must be deterministic.

use std::time::Instant;

use csim_cache::{Cache, ReferenceCache};
use csim_config::{CacheGeometry, IntegrationLevel, SystemConfig};
use csim_core::Simulation;
use csim_prof::{HostSampler, RegionReport};
use csim_sweep::{run_sweep, SweepPlan};
use csim_trace::hostprof::{set_region, Region};
use csim_trace::SimRng;
use csim_workload::OltpParams;

/// Best-of-N wall-clock seconds for one closure invocation.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        // lint: allow(no-wallclock) — throughput is a wall-clock quantity; never feeds a report
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
    }
    best
}

/// The `csim` no-flags configuration: Base integration, 8M1w off-chip L2.
fn default_config() -> SystemConfig {
    let mut b = SystemConfig::builder();
    b.nodes(1).cores_per_node(1).integration(IntegrationLevel::Base).l2_off_chip(8 << 20, 1);
    b.build().expect("the default configuration is valid")
}

/// Refs/sec of the default configuration: warm once, then time
/// `run(meas)` best-of-`reps` on the same simulation (statistics reset
/// per run keeps every repetition identical work).
fn measure_single(meas: u64, reps: usize) -> f64 {
    let cfg = default_config();
    let mut sim = Simulation::with_oltp(&cfg, OltpParams::default()).expect("valid workload");
    sim.warm_up(500_000);
    let best = best_of(reps, || {
        sim.run(meas);
    });
    meas as f64 / best
}

/// Ops/sec of a cache model under a deterministic access/insert stream.
/// Generic over the implementation so the optimized and reference caches
/// run literally the same loop. `inline(never)` pins each instantiation
/// to its own isolated codegen context: inlined into `main` next to the
/// attribution copies of the same loop, the optimizer was able to
/// specialize the reference kernel against the rest of the run and
/// deflate its timed work (it clocked above even a hand-inlined
/// stats-free reimplementation of the same probe).
#[inline(never)]
fn cache_ops_per_sec(
    reps: usize,
    ops: u64,
    line_mask: u64,
    mut access: impl FnMut(u64, bool) -> bool,
) -> f64 {
    let best = best_of(reps, || {
        let mut rng = SimRng::seed_from_u64(0xCAFE);
        for _ in 0..ops {
            let r = rng.next_u64();
            let line = r >> 32 & line_mask;
            access(line, r & 1 == 0);
        }
    });
    ops as f64 / best
}

fn measure_cache_kernel(reps: usize) -> (f64, f64) {
    // The default configuration's 8 MB direct-mapped off-chip L2: the
    // largest slot array the simulator probes, where the SoA layout's
    // footprint (1 MB of bare tags vs 2 MB of slot structs) governs the
    // host's cache behaviour.
    let geometry = CacheGeometry::new(8 << 20, 1, 64).expect("valid geometry");
    // 2x the cache's line capacity: hits, misses and evictions all stay
    // frequent, so both the probe and the insert/evict paths weigh in.
    let line_mask = 2 * geometry.lines() - 1;
    let ops = 4_000_000u64;
    let mut fast = Cache::new(geometry);
    let mut slow = ReferenceCache::new(geometry);
    // Interleave the two measurements rep by rep instead of timing one
    // implementation's full best-of after the other: host frequency and
    // cache state drift over a run, and back-to-back blocks hand the
    // second implementation a warmer machine than the first.
    let (mut best_fast, mut best_slow) = (0.0f64, 0.0f64);
    for _ in 0..reps.max(1) {
        let rate_fast = cache_ops_per_sec(1, ops, line_mask, |line, write| {
            if fast.access(line, write).is_hit() {
                true
            } else {
                fast.insert(line, write);
                false
            }
        });
        let rate_slow = cache_ops_per_sec(1, ops, line_mask, |line, write| {
            if slow.access(line, write).is_hit() {
                true
            } else {
                slow.insert(line, write);
                false
            }
        });
        best_fast = best_fast.max(rate_fast);
        best_slow = best_slow.max(rate_slow);
    }
    // Both counter blocks are observed AFTER timing, and compared. This
    // is a differential check on the measured work, and deliberately
    // also an optimization barrier: with the caches dropped unread, the
    // compiler is free to strip the statistics accounting out of
    // whichever kernel it can fully analyze (it did — for the
    // reference's simpler loop, deflating it by ~2.5x and making the
    // packed kernel look slower than the code it replaced).
    assert_eq!(
        fast.stats(),
        slow.stats(),
        "the two kernels must have done identical logical work"
    );
    (best_fast, best_slow)
}

/// Sampling rate for the kernel-attribution profile: fast enough for a
/// few thousand samples over a multi-million-op loop, slow enough that
/// `thread::sleep` granularity still paces the watcher.
const ATTRIBUTION_SAMPLE_HZ: u32 = 10_000;

/// Runs the cache-kernel loop with host region markers published
/// per-op: the RNG/address work and the probe itself become separately
/// sampleable, answering *where the kernel's wall time goes* instead of
/// only how fast it runs end to end.
fn attributed_cache_loop(
    ops: u64,
    line_mask: u64,
    probe: Region,
    mut access: impl FnMut(u64, bool) -> bool,
) {
    let mut rng = SimRng::seed_from_u64(0xCAFE);
    for _ in 0..ops {
        set_region(Region::Rng);
        let r = rng.next_u64();
        let line = r >> 32 & line_mask;
        set_region(probe);
        access(line, r & 1 == 0);
    }
    set_region(Region::Idle);
}

/// Wall-time-by-region profiles of the packed and reference cache
/// kernels (same geometry and stream as [`measure_cache_kernel`]).
fn measure_kernel_attribution(ops: u64) -> (RegionReport, RegionReport) {
    let geometry = CacheGeometry::new(8 << 20, 1, 64).expect("valid geometry");
    let line_mask = 2 * geometry.lines() - 1;

    let mut fast = Cache::new(geometry);
    let sampler = HostSampler::start(ATTRIBUTION_SAMPLE_HZ);
    attributed_cache_loop(ops, line_mask, Region::PackedProbe, |line, write| {
        if fast.access(line, write).is_hit() {
            true
        } else {
            fast.insert(line, write);
            false
        }
    });
    let packed = sampler.stop();

    let mut slow = ReferenceCache::new(geometry);
    let sampler = HostSampler::start(ATTRIBUTION_SAMPLE_HZ);
    attributed_cache_loop(ops, line_mask, Region::ReferenceProbe, |line, write| {
        if slow.access(line, write).is_hit() {
            true
        } else {
            slow.insert(line, write);
            false
        }
    });
    let reference = sampler.stop();
    (packed, reference)
}

/// The `kernel_attribution` report section: the two kernels' sampled
/// wall-time split between RNG/address generation, the probe itself,
/// and idle (loop overhead the markers don't cover).
fn kernel_attribution_json(packed: &RegionReport, reference: &RegionReport) -> String {
    let one = |name: &str, r: &RegionReport, probe: Region| {
        format!(
            "    \"{name}\": {{\"ticks\": {}, \"rng_share\": {:.3}, \"probe_share\": {:.3}, \"idle_share\": {:.3}}}",
            r.ticks,
            r.share(Region::Rng),
            r.share(probe),
            r.share(Region::Idle),
        )
    };
    format!(
        "  \"kernel_attribution\": {{\n    \"sample_hz\": {},\n{},\n{}\n  }}\n",
        packed.hz,
        one("packed", packed, Region::PackedProbe),
        one("reference", reference, Region::ReferenceProbe),
    )
}

/// Aggregate refs/sec of a small sweep grid on `jobs` workers.
fn measure_sweep(jobs: usize) -> (f64, u64) {
    let plan = SweepPlan::from_toml_str(
        r#"
        [sweep]
        name = "throughput-smoke"
        warm = 50_000
        meas = 200_000

        [grid]
        integration = ["base", "l2"]
        nodes = [1, 2]
        base_seed = 42
        runs_per_config = 1
        "#,
    )
    .expect("the smoke plan is valid");
    // Total simulated refs across the grid: meas × nodes per run.
    let total_refs: u64 = plan.expand().iter().map(|s| s.meas * s.nodes as u64).sum();
    let secs = best_of(1, || {
        run_sweep(&plan, jobs).expect("smoke sweep runs");
    });
    (total_refs as f64 / secs, total_refs)
}

/// Refs/sec of the seed (pre-optimization) engine, measured with the
/// `measure_single` loop on the machine the checked-in numbers were
/// produced on: the seed commit built with its own build configuration,
/// run as three rounds of 4M refs best-of-5, taking the median round.
/// Re-record when re-baselining on new hardware — interleave seed and
/// optimized runs, because this host's throughput drifts by several
/// percent over minutes and a one-sided measurement session biases the
/// ratio either way.
const BASELINE_SEED_REFS_PER_SEC: f64 = 24_532_347.0;

/// Scans `text` for `"key": <number>` and parses the number. Shared by
/// the regression check and the history carry-over; the workspace has a
/// JSON validator but no parser, and flat numeric fields do not justify
/// one.
fn scan_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

/// The `history` array for the next report: the previous report's
/// history entries (carried verbatim) plus one new entry holding the
/// previous report's own headline numbers. Each entry records the seed
/// baseline it was measured against, so entries stay comparable across
/// re-baselines. Returns the bracketed JSON array, indented for the
/// report layout.
fn history_with_previous(previous: Option<&str>) -> String {
    let mut entries: Vec<String> = Vec::new();
    if let Some(prev) = previous {
        if let Some(open) = prev.find("\"history\": [") {
            let body = &prev[open + "\"history\": [".len()..];
            if let Some(close) = body.find(']') {
                for line in body[..close].lines() {
                    let line = line.trim().trim_end_matches(',');
                    if line.starts_with('{') {
                        entries.push(line.to_string());
                    }
                }
            }
        }
        // The previous headline numbers become the newest history entry.
        let single = prev
            .find("\"single\"")
            .and_then(|at| scan_number(&prev[at..], "refs_per_sec"));
        if let Some(single) = single {
            let base = scan_number(prev, "baseline_seed_refs_per_sec").unwrap_or(0.0);
            let speedup = scan_number(prev, "speedup_vs_seed").unwrap_or(0.0);
            let kernel = prev
                .find("\"cache_kernel\"")
                .and_then(|at| scan_number(&prev[at..], "speedup"))
                .unwrap_or(0.0);
            entries.push(format!(
                "{{\"refs_per_sec\": {single:.0}, \"baseline_seed_refs_per_sec\": {base:.0}, \
                 \"speedup_vs_seed\": {speedup}, \"kernel_speedup\": {kernel}}}"
            ));
        }
    }
    if entries.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n    {}\n  ]", entries.join(",\n    "))
    }
}

/// Measurement-protocol knobs echoed into the report's `config` section.
struct RunConfig {
    meas: u64,
    reps: usize,
    jobs: usize,
}

fn report_json(
    run: &RunConfig,
    single: f64,
    kernel: (f64, f64),
    sweep: (f64, u64),
    attribution: &str,
    history: &str,
) -> String {
    let (opt, reference) = kernel;
    let (sweep_rps, sweep_refs) = sweep;
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"csim-bench-sweep/v1\",\n",
            "  \"config\": {{\"meas_refs\": {meas}, \"reps\": {reps}, \"jobs\": {jobs}}},\n",
            "  \"single\": {{\n",
            "    \"label\": \"base/8M1w/1n1c\",\n",
            "    \"refs_per_sec\": {single:.0},\n",
            "    \"baseline_seed_refs_per_sec\": {base:.0},\n",
            "    \"speedup_vs_seed\": {speedup:.3},\n",
            "    \"baseline_note\": \"seed engine measured with the identical loop on the same machine; re-record when re-baselining\"\n",
            "  }},\n",
            "  \"cache_kernel\": {{\n",
            "    \"optimized_ops_per_sec\": {opt:.0},\n",
            "    \"reference_ops_per_sec\": {refc:.0},\n",
            "    \"speedup\": {kspeed:.3}\n",
            "  }},\n",
            "  \"sweep\": {{\"total_refs\": {srefs}, \"refs_per_sec\": {srps:.0}}},\n",
            "  \"history\": {hist},\n",
            "{attr}",
            "}}\n",
        ),
        hist = history,
        meas = run.meas,
        reps = run.reps,
        jobs = run.jobs,
        single = single,
        base = BASELINE_SEED_REFS_PER_SEC,
        speedup = single / BASELINE_SEED_REFS_PER_SEC,
        opt = opt,
        refc = reference,
        kspeed = opt / reference,
        srefs = sweep_refs,
        srps = sweep_rps,
        attr = attribution,
    )
}

/// Pulls `"refs_per_sec": <number>` out of the `"single"` section of a
/// recorded report.
fn recorded_single_refs_per_sec(text: &str) -> Option<f64> {
    let single = text.find("\"single\"")?;
    scan_number(&text[single..], "refs_per_sec")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut meas = 2_000_000u64;
    let mut reps = 5usize;
    let mut jobs = 4usize;
    let mut out = "BENCH_sweep.json".to_string();
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--meas" => meas = value("--meas").parse().expect("--meas: integer"),
            "--reps" => reps = value("--reps").parse().expect("--reps: integer"),
            "--jobs" => jobs = value("--jobs").parse().expect("--jobs: integer"),
            "--out" => out = value("--out").clone(),
            "--check" => check = Some(value("--check").clone()),
            other => {
                eprintln!("unknown flag '{other}' (see the module docs in throughput.rs)");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check {
        let recorded_text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read recorded report '{path}': {e}"));
        let recorded = recorded_single_refs_per_sec(&recorded_text)
            .unwrap_or_else(|| panic!("no single.refs_per_sec in '{path}'"));
        eprintln!("measuring (check mode: {meas} refs best-of-{reps}) ...");
        let current = measure_single(meas, reps);
        let ratio = current / recorded;
        println!("recorded {recorded:.0} refs/s, current {current:.0} refs/s ({ratio:.2}x)");
        // Machine-to-machine variance is larger than run-to-run variance;
        // the gate is a backstop against large regressions, not a
        // micro-benchmark.
        if ratio < 0.8 {
            eprintln!("FAIL: >20% throughput regression vs {path}");
            std::process::exit(1);
        }
        // The struct-of-arrays kernel must never lose to the reference
        // implementation it replaced — that would mean the optimized
        // probe regressed into net overhead.
        eprintln!("cache kernel gate: optimized vs reference ...");
        let (opt, reference) = measure_cache_kernel(reps);
        let kernel_ratio = opt / reference;
        println!("cache kernel {opt:.0} vs {reference:.0} ops/s ({kernel_ratio:.2}x)");
        if kernel_ratio < 1.0 {
            eprintln!("FAIL: SoA cache kernel slower than ReferenceCache");
            std::process::exit(1);
        }
        println!("ok: within the 20% regression budget, kernel >= 1.0x");
        return;
    }

    eprintln!("single: {meas} refs best-of-{reps} ...");
    let single = measure_single(meas, reps);
    eprintln!("  {single:.0} refs/s ({:.2}x vs seed engine)", single / BASELINE_SEED_REFS_PER_SEC);
    eprintln!("cache kernel: optimized vs reference ...");
    let kernel = measure_cache_kernel(reps);
    eprintln!("  {:.0} vs {:.0} ops/s ({:.2}x)", kernel.0, kernel.1, kernel.0 / kernel.1);
    eprintln!("sweep grid on {jobs} worker(s) ...");
    let sweep = measure_sweep(jobs);
    eprintln!("  {:.0} refs/s over {} refs", sweep.0, sweep.1);
    eprintln!("kernel attribution: sampling at {ATTRIBUTION_SAMPLE_HZ} Hz ...");
    let (packed, reference) = measure_kernel_attribution(4_000_000);
    eprintln!(
        "  packed: {:.0}% rng / {:.0}% probe; reference: {:.0}% rng / {:.0}% probe",
        100.0 * packed.share(Region::Rng),
        100.0 * packed.share(Region::PackedProbe),
        100.0 * reference.share(Region::Rng),
        100.0 * reference.share(Region::ReferenceProbe),
    );
    let attribution = kernel_attribution_json(&packed, &reference);
    let previous = std::fs::read_to_string(&out).ok();
    let history = history_with_previous(previous.as_deref());
    let run = RunConfig { meas, reps, jobs };
    let doc = report_json(&run, single, kernel, sweep, &attribution, &history);
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("cannot write '{out}': {e}"));
    println!("wrote {out}");
}

#[cfg(test)]
mod tests {
    use super::{history_with_previous, kernel_attribution_json, recorded_single_refs_per_sec};

    #[test]
    fn scan_finds_the_single_section_number() {
        let text = "{\n \"single\": {\n \"label\": \"x\",\n \"refs_per_sec\": 123456,\n}}";
        assert_eq!(recorded_single_refs_per_sec(text), Some(123456.0));
        assert_eq!(recorded_single_refs_per_sec("{}"), None);
    }

    #[test]
    fn history_starts_empty_and_accumulates_previous_reports() {
        assert_eq!(history_with_previous(None), "[]");

        // A report with no history yields one entry: its own numbers.
        let first = concat!(
            "{\n \"single\": {\n \"refs_per_sec\": 100,\n",
            " \"baseline_seed_refs_per_sec\": 50,\n \"speedup_vs_seed\": 2,\n },\n",
            " \"cache_kernel\": {\n \"speedup\": 1.5\n }\n}",
        );
        let h1 = history_with_previous(Some(first));
        assert!(h1.contains("\"refs_per_sec\": 100"), "h1: {h1}");
        assert!(h1.contains("\"kernel_speedup\": 1.5"), "h1: {h1}");

        // A report carrying that history yields two entries, oldest first.
        let second = format!(
            concat!(
                "{{\n \"single\": {{\n \"refs_per_sec\": 300,\n",
                " \"baseline_seed_refs_per_sec\": 60,\n \"speedup_vs_seed\": 5,\n }},\n",
                " \"cache_kernel\": {{\n \"speedup\": 1.1\n }},\n",
                " \"history\": {h1}\n}}"
            ),
            h1 = h1
        );
        let h2 = history_with_previous(Some(&second));
        assert!(h2.contains("\"refs_per_sec\": 100"), "h2: {h2}");
        assert!(h2.contains("\"refs_per_sec\": 300"), "h2: {h2}");
        let older = h2.find("\"refs_per_sec\": 100").unwrap();
        let newer = h2.find("\"refs_per_sec\": 300").unwrap();
        assert!(older < newer, "history must stay oldest-first: {h2}");
    }

    #[test]
    fn attribution_section_carries_both_kernels() {
        let sampler = super::HostSampler::start(1000);
        let packed = sampler.stop();
        let sampler = super::HostSampler::start(1000);
        let reference = sampler.stop();
        let s = kernel_attribution_json(&packed, &reference);
        for needle in
            ["\"kernel_attribution\"", "\"packed\"", "\"reference\"", "\"probe_share\""]
        {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }
}
