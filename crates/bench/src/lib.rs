//! Experiment scaffolding for regenerating the paper's tables and figures.
//!
//! Each bench target under `benches/` (run via `cargo bench -p csim-bench
//! --bench figXX_...`) rebuilds one figure of the paper: it constructs the
//! figure's configuration sweep, simulates each configuration on the
//! synthetic OLTP workload, prints the paper-style normalized stacked
//! bars, checks the figure's headline claims, and writes a CSV under
//! `results/`.
//!
//! Reference counts are controlled by environment variables so quick
//! smoke runs and full reproductions use the same binaries:
//!
//! * `CSIM_WARM` / `CSIM_MEAS` — warmup / measured references per node
//!   (defaults 3M / 4M for uniprocessor runs; multiprocessor sweeps use
//!   `CSIM_WARM_MP` / `CSIM_MEAS_MP`, defaults 2.5M / 2M).
//! * `CSIM_QUICK=1` — shrink everything ~5x for smoke testing.
//! * `CSIM_STRICT=1` — panic when a paper claim fails to reproduce.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::path::PathBuf;

use csim_config::SystemConfig;
use csim_core::{SimReport, Simulation};
use csim_stats::{BarChart, TextTable};
use csim_workload::OltpParams;

/// A labeled configuration in a figure's sweep.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Bar label (paper notation, e.g. `2M8w`).
    pub label: String,
    /// The configuration to simulate.
    pub config: SystemConfig,
}

impl Sweep {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, config: SystemConfig) -> Self {
        Sweep { label: label.into(), config }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn quick() -> bool {
    std::env::var("CSIM_QUICK").map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
}

/// Warmup references per node for uniprocessor sweeps.
pub fn warm_refs() -> u64 {
    let base = env_u64("CSIM_WARM", 3_000_000);
    if quick() {
        base / 5
    } else {
        base
    }
}

/// Measured references per node for uniprocessor sweeps.
pub fn meas_refs() -> u64 {
    let base = env_u64("CSIM_MEAS", 4_000_000);
    if quick() {
        base / 5
    } else {
        base
    }
}

/// Warmup references per node for multiprocessor sweeps.
pub fn warm_refs_mp() -> u64 {
    let base = env_u64("CSIM_WARM_MP", 2_500_000);
    if quick() {
        base / 5
    } else {
        base
    }
}

/// Measured references per node for multiprocessor sweeps.
pub fn meas_refs_mp() -> u64 {
    let base = env_u64("CSIM_MEAS_MP", 2_000_000);
    if quick() {
        base / 5
    } else {
        base
    }
}

/// Simulates one configuration on the default OLTP workload.
pub fn run_config(cfg: &SystemConfig, warm: u64, meas: u64) -> SimReport {
    let mut sim = Simulation::with_oltp(cfg, OltpParams::default())
        .expect("default workload parameters are valid");
    sim.warm_up(warm);
    sim.run(meas)
}

/// Runs a sweep, one thread per configuration (harmless on one core,
/// faster on many).
pub fn run_sweep(sweep: &[Sweep], warm: u64, meas: u64) -> Vec<(String, SimReport)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = sweep
            .iter()
            .map(|s| {
                let label = s.label.clone();
                let cfg = s.config.clone();
                scope.spawn(move || {
                    // lint: allow(no-wallclock) — the bench harness exists to measure host runtime; results never enter a SimReport
                    let start = std::time::Instant::now();
                    let rep = run_config(&cfg, warm, meas);
                    eprintln!("  [{label}] done in {:.1}s", start.elapsed().as_secs_f64());
                    (label, rep)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep thread panicked")).collect()
    })
}

/// Builds the paper's normalized execution-time chart from sweep results.
pub fn exec_chart(title: &str, results: &[(String, SimReport)]) -> BarChart {
    let mut chart = BarChart::new(title);
    for (label, rep) in results {
        chart.push(rep.exec_bar(label.clone()));
    }
    chart.normalized_to_first()
}

/// Builds the paper's normalized L2-miss chart from sweep results.
pub fn miss_chart(title: &str, results: &[(String, SimReport)]) -> BarChart {
    let mut chart = BarChart::new(title);
    for (label, rep) in results {
        chart.push(rep.miss_bar(label.clone()));
    }
    chart.normalized_to_first()
}

/// A reproduction claim checked against measured results.
#[derive(Clone, Debug)]
pub struct Claim {
    /// What the paper states.
    pub statement: String,
    /// Whether our measurement agrees.
    pub holds: bool,
    /// The measured evidence.
    pub evidence: String,
}

impl Claim {
    /// Records a checked claim.
    pub fn check(statement: impl Into<String>, holds: bool, evidence: String) -> Self {
        Claim { statement: statement.into(), holds, evidence }
    }
}

/// Prints the claim checklist and returns how many failed.
pub fn report_claims(claims: &[Claim]) -> usize {
    println!("\nPaper claims checked against this run:");
    let mut failed = 0;
    for c in claims {
        let mark = if c.holds { "PASS" } else { "MISS" };
        if !c.holds {
            failed += 1;
        }
        println!("  [{mark}] {} — measured: {}", c.statement, c.evidence);
    }
    failed
}

/// Builds a side-by-side paper-vs-measured table for one metric. Paper
/// values marked `None` are unreadable from the figure scan and shown as
/// `-`.
pub fn comparison_table(metric: &str, rows: &[(&str, Option<f64>, f64)]) -> TextTable {
    let mut t = TextTable::new(vec![metric, "paper", "measured"]);
    for (label, paper, measured) in rows {
        t.row(vec![
            (*label).to_string(),
            paper.map_or("-".to_string(), |p| format!("{p:.0}")),
            format!("{measured:.1}"),
        ]);
    }
    t
}

/// Directory where experiment CSVs land (created on demand).
///
/// # Errors
///
/// Fails when the directory cannot be created (read-only filesystem,
/// permission, full disk).
pub(crate) fn results_dir() -> std::io::Result<PathBuf> {
    let dir = std::env::var("CSIM_RESULTS").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    std::fs::create_dir_all(&path)?;
    Ok(path)
}

/// Writes one experiment's charts to `results/<name>.csv` plus one SVG
/// rendering per chart (`results/<name>_<i>.svg`).
///
/// The result files are side artifacts of a bench run — the charts and
/// claim checks have already been printed — so IO failure is reported as
/// a warning rather than aborting the remaining figures.
pub(crate) fn save_csv(name: &str, charts: &[&BarChart]) {
    if let Err(e) = try_save_csv(name, charts) {
        eprintln!("  warning: could not write results for {name}: {e}");
    }
}

fn try_save_csv(name: &str, charts: &[&BarChart]) -> std::io::Result<()> {
    let dir = results_dir()?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    for (i, chart) in charts.iter().enumerate() {
        writeln!(f, "# {}", chart.title())?;
        f.write_all(chart.to_csv().as_bytes())?;
        let svg_path = dir.join(format!("{name}_{i}.svg"));
        csim_stats::svg::write_file(chart, &svg_path)?;
    }
    eprintln!("  results written to {}", path.display());
    Ok(())
}

/// Prints one figure: header, charts, claims; saves CSV; panics if any
/// claim failed and `CSIM_STRICT` is set (so CI can gate on shapes).
pub fn finish_figure(name: &str, description: &str, charts: &[&BarChart], claims: &[Claim]) {
    println!("==============================================================");
    println!("{name}: {description}");
    println!("==============================================================");
    for chart in charts {
        println!("{}", chart.render(60));
    }
    let failed = report_claims(claims);
    save_csv(name, charts);
    if failed > 0 && std::env::var("CSIM_STRICT").is_ok() {
        panic!("{failed} claim(s) did not reproduce");
    }
    println!();
}

/// Extracts normalized totals (first entry = 100) for claim math: either
/// execution cycles or L2 miss counts.
pub fn normalized_totals(results: &[(String, SimReport)], by_misses: bool) -> Vec<f64> {
    let raw: Vec<f64> = results
        .iter()
        .map(|(_, r)| {
            if by_misses {
                r.misses.total() as f64
            } else {
                r.breakdown.total_cycles()
            }
        })
        .collect();
    let first = raw.first().copied().unwrap_or(1.0).max(1e-12);
    raw.iter().map(|v| v / first * 100.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_are_sane() {
        assert!(warm_refs() > 0);
        assert!(meas_refs() > 0);
        assert!(warm_refs_mp() > 0);
        assert!(meas_refs_mp() > 0);
    }

    #[test]
    fn claims_report_counts_failures() {
        let claims =
            vec![Claim::check("a", true, "x".into()), Claim::check("b", false, "y".into())];
        assert_eq!(report_claims(&claims), 1);
    }

    #[test]
    fn normalized_totals_scale_to_first() {
        let cfg = SystemConfig::paper_base_uni();
        let rep = run_config(&cfg, 1_000, 2_000);
        let results = vec![("a".to_string(), rep.clone()), ("b".to_string(), rep)];
        let by_exec = normalized_totals(&results, false);
        assert_eq!(by_exec[0], 100.0);
        assert_eq!(by_exec[1], 100.0);
        let by_miss = normalized_totals(&results, true);
        assert_eq!(by_miss[0], 100.0);
    }

    #[test]
    fn comparison_table_renders_missing_paper_values() {
        let t = comparison_table("m", &[("x", Some(42.0), 41.5), ("y", None, 7.0)]);
        let s = t.render();
        assert!(s.contains("42"));
        assert!(s.contains('-'));
    }
}

/// Ready-made configuration constructors in the paper's vocabulary.
pub mod configs {
    use csim_config::{IntegrationLevel, OooParams, RacConfig, SystemConfig, SystemConfigBuilder};

    fn builder(nodes: usize) -> SystemConfigBuilder {
        let mut b = SystemConfig::builder();
        b.nodes(nodes);
        b
    }

    /// "Base": aggressive off-chip design with the given external L2.
    pub fn base_off_chip(nodes: usize, mb: u64, assoc: u32) -> SystemConfig {
        builder(nodes).l2_off_chip(mb << 20, assoc).build().expect("valid base config")
    }

    /// "Conservative Base": conventional off-chip design, slower memory
    /// system.
    pub fn conservative(nodes: usize, mb: u64, assoc: u32) -> SystemConfig {
        builder(nodes)
            .integration(IntegrationLevel::ConservativeBase)
            .l2_off_chip(mb << 20, assoc)
            .build()
            .expect("valid conservative config")
    }

    /// L2 data integrated on-chip (SRAM); MC and CC/NR external.
    pub fn l2_sram(nodes: usize, mb: u64, assoc: u32) -> SystemConfig {
        builder(nodes)
            .integration(IntegrationLevel::L2Integrated)
            .l2_sram(mb << 20, assoc)
            .build()
            .expect("valid L2-integrated config")
    }

    /// L2 integrated as on-chip embedded DRAM.
    pub fn l2_dram(nodes: usize, mb: u64, assoc: u32) -> SystemConfig {
        builder(nodes)
            .integration(IntegrationLevel::L2Integrated)
            .l2_dram(mb << 20, assoc)
            .build()
            .expect("valid DRAM-L2 config")
    }

    /// L2 and memory controller integrated; CC/NR external.
    pub fn l2_mc(nodes: usize, mb: u64, assoc: u32) -> SystemConfig {
        builder(nodes)
            .integration(IntegrationLevel::L2McIntegrated)
            .l2_sram(mb << 20, assoc)
            .build()
            .expect("valid L2+MC config")
    }

    /// Fully integrated (the Alpha 21364 design point), optionally with a
    /// remote access cache and OS instruction-page replication.
    pub fn fully_integrated(
        nodes: usize,
        mb4: u64, // L2 size in quarter-megabytes so 1.25 MB is expressible
        assoc: u32,
        rac: bool,
        replicate: bool,
    ) -> SystemConfig {
        let mut b = builder(nodes);
        b.integration(IntegrationLevel::FullyIntegrated)
            .l2_sram(mb4 << 18, assoc)
            .replicate_instructions(replicate);
        if rac {
            b.rac(RacConfig::paper());
        }
        b.build().expect("valid fully-integrated config")
    }

    /// Switches any configuration to the paper's 4-wide out-of-order core.
    pub fn with_ooo(cfg: &SystemConfig) -> SystemConfig {
        let mut b = SystemConfig::builder();
        b.nodes(cfg.n_nodes())
            .integration(cfg.integration())
            .l2(cfg.l2())
            .l1(cfg.l1i())
            .replicate_instructions(cfg.replicate_instructions())
            .out_of_order(OooParams::paper());
        if let Some(rac) = cfg.rac() {
            b.rac(rac);
        }
        b.build().expect("valid OOO variant")
    }
}
