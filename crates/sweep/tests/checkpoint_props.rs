//! Property tests of the checkpoint log's crash-safety contract, driven
//! by the workspace's own deterministic [`SimRng`].
//!
//! The contract under test (DESIGN.md §13): whatever happens to the log
//! — a clean shutdown, a SIGKILL mid-write (modeled here as truncation
//! at *every* byte offset), or a flipped bit anywhere in the file — a
//! resumed sweep must (a) never trust damage silently, (b) report it as
//! typed warnings, and (c) still produce a final report byte-identical
//! to an uninterrupted run.
//!
//! Simulation cost is irrelevant to these properties, so the grid points
//! are executed by a deterministic fake executor: thousands of
//! truncation offsets resume in milliseconds.

use csim_obs::json::Json;
use csim_sweep::{
    run_sweep_with, PointOutcome, RunOutcome, RunSpec, RunSummary, Shard, SweepConfig,
    SweepError, SweepPlan,
};
use csim_trace::SimRng;

use csim_fault::RetryPolicy;

/// A retry policy that never sleeps: failure paths stay fast.
fn instant_retry(max_retries: u32) -> RetryPolicy {
    RetryPolicy { max_retries, backoff_base: 0, exponential: false, backoff_cap: 0 }
}

/// An 8-point grid, enough to give the log a header and a spread of
/// records without slowing the every-byte-offset loop.
fn plan() -> SweepPlan {
    SweepPlan::from_toml_str(
        r#"
        [sweep]
        name = "ckpt-props"
        warm = 100
        meas = 100

        [grid]
        integration = ["base", "l2"]
        nodes = [1, 2]
        base_seed = 42
        runs_per_config = 2
        "#,
    )
    .expect("the property plan is valid")
}

/// Deterministic fake point executor: derives a small but varied run
/// document (floats, strings, nesting) from the spec alone, so any
/// re-execution after damage reproduces the original bytes exactly.
fn fake_exec(index: usize, spec: &RunSpec) -> Result<RunOutcome, SweepError> {
    let mut rng = SimRng::seed_from_u64(spec.seed ^ ((index as u64) << 32));
    let cpi = 1.0 + (rng.next_u64() % 4096) as f64 / 512.0;
    let mpki = (rng.next_u64() % 100_000) as f64 / 1000.0;
    let l2_misses = rng.next_u64() % 1_000_000;
    let transactions = rng.next_u64() % 10_000;
    let doc = Json::obj([
        ("schema", Json::str("csim-run-report/v1")),
        ("label", Json::str(spec.label())),
        ("cpi", Json::Float(cpi)),
        ("mpki", Json::Float(mpki)),
        (
            "misses",
            Json::obj([
                ("total", Json::UInt(l2_misses)),
                ("delta", Json::Int(-((rng.next_u64() % 100) as i64))),
            ]),
        ),
        ("note", Json::str("escapes: \"quotes\" and \\ and \n and \u{3bb}")),
    ]);
    Ok(RunOutcome {
        index,
        label: spec.label(),
        seed: spec.seed,
        summary: RunSummary { cpi, mpki, l2_misses, transactions },
        doc,
    })
}

/// A unique temp path per test so parallel test threads never collide.
fn temp_path(tag: &str) -> String {
    let path = std::env::temp_dir().join(format!("csim-ckpt-{}-{tag}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path.to_string_lossy().into_owned()
}

fn cfg_with(checkpoint: &str) -> SweepConfig {
    SweepConfig {
        jobs: 1,
        checkpoint: Some(checkpoint.to_string()),
        retry: instant_retry(0),
        ..SweepConfig::default()
    }
}

#[test]
fn schema_tags_are_pinned() {
    // Consumers key on these strings; renaming either is a breaking
    // change that must show up in a test diff.
    assert_eq!(csim_sweep::CHECKPOINT_SCHEMA, "csim-sweep-checkpoint/v1");
    assert_eq!(csim_sweep::SWEEP_SHARD_SCHEMA, "csim-sweep-shard/v1");
    let plan = plan();
    let path = temp_path("schema");
    run_sweep_with(&plan, &cfg_with(&path), &fake_exec).unwrap();
    let log = std::fs::read_to_string(&path).unwrap();
    assert!(
        log.lines().next().is_some_and(|l| l.contains(csim_sweep::CHECKPOINT_SCHEMA)),
        "the log header must carry the schema tag"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn clean_checkpointed_run_matches_an_uncheckpointed_one() {
    let plan = plan();
    let bare = run_sweep_with(&plan, &SweepConfig::default(), &fake_exec).unwrap();
    let path = temp_path("clean");
    let logged = run_sweep_with(&plan, &cfg_with(&path), &fake_exec).unwrap();
    assert_eq!(bare.to_json().to_string(), logged.to_json().to_string());
    assert!(logged.warnings.is_empty(), "{:?}", logged.warnings);
    assert_eq!(logged.resumed, 0);

    // An immediate re-run restores everything and executes nothing.
    let resumed = run_sweep_with(
        &plan,
        &cfg_with(&path),
        &|_, spec: &RunSpec| -> Result<RunOutcome, SweepError> {
            panic!("point {} must not re-execute on a complete log", spec.label())
        },
    )
    .unwrap();
    assert_eq!(resumed.resumed, plan.run_count());
    assert_eq!(resumed.to_json().to_string(), bare.to_json().to_string());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncation_at_every_byte_offset_resumes_byte_identical() {
    let plan = plan();
    let path = temp_path("trunc");
    let reference =
        run_sweep_with(&plan, &cfg_with(&path), &fake_exec).unwrap().to_json().to_string();
    let log = std::fs::read(&path).expect("the log was written");
    assert!(log.len() > 100, "log unexpectedly small ({} bytes)", log.len());

    for cut in 0..=log.len() {
        std::fs::write(&path, &log[..cut]).unwrap();
        let out = run_sweep_with(&plan, &cfg_with(&path), &fake_exec)
            .unwrap_or_else(|e| panic!("resume failed at cut {cut}: {e}"));
        assert_eq!(
            out.to_json().to_string(),
            reference,
            "report diverged after truncation at byte {cut}"
        );
        // Whatever survived the cut was restored, the rest re-ran; a
        // cut strictly inside the log's record area must restore fewer
        // points than a full log but never invent any.
        assert!(out.resumed <= plan.run_count());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn single_bit_corruption_is_detected_reported_and_recovered_past() {
    let plan = plan();
    let path = temp_path("bitflip");
    let reference =
        run_sweep_with(&plan, &cfg_with(&path), &fake_exec).unwrap().to_json().to_string();
    let log = std::fs::read(&path).expect("the log was written");

    let mut rng = SimRng::seed_from_u64(0xC0FF_EE00);
    for trial in 0..200 {
        let byte = (rng.next_u64() % log.len() as u64) as usize;
        let bit = (rng.next_u64() % 8) as u8;
        let mut damaged = log.clone();
        damaged[byte] ^= 1 << bit;
        std::fs::write(&path, &damaged).unwrap();
        let out = run_sweep_with(&plan, &cfg_with(&path), &fake_exec).unwrap_or_else(|e| {
            panic!("trial {trial}: resume failed after flipping bit {bit} of byte {byte}: {e}")
        });
        assert!(
            !out.warnings.is_empty(),
            "trial {trial}: flipping bit {bit} of byte {byte} went undetected"
        );
        assert!(
            out.warnings
                .iter()
                .all(|w| matches!(w, SweepError::Checkpoint { .. })),
            "trial {trial}: unexpected warning type: {:?}",
            out.warnings
        );
        assert_eq!(
            out.to_json().to_string(),
            reference,
            "trial {trial}: report diverged after flipping bit {bit} of byte {byte}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn failed_points_round_trip_through_the_log() {
    let plan = plan();
    let path = temp_path("failures");
    // Every third point fails permanently.
    let flaky = |index: usize, spec: &RunSpec| -> Result<RunOutcome, SweepError> {
        if index.is_multiple_of(3) {
            return Err(SweepError::Run {
                label: spec.label(),
                message: "deliberate permanent failure".to_string(),
            });
        }
        fake_exec(index, spec)
    };
    let first = run_sweep_with(&plan, &cfg_with(&path), &flaky).unwrap();
    assert!(first.failures().count() > 0);
    let reference = first.to_json().to_string();

    // The resume restores successes AND failures: nothing re-executes,
    // and the report (failure entries included) is byte-identical.
    let resumed = run_sweep_with(
        &plan,
        &cfg_with(&path),
        &|_, spec: &RunSpec| -> Result<RunOutcome, SweepError> {
            panic!("point {} must not re-execute", spec.label())
        },
    )
    .unwrap();
    assert_eq!(resumed.resumed, plan.run_count());
    assert_eq!(resumed.to_json().to_string(), reference);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn logs_of_a_different_plan_or_shard_are_refused_not_resumed() {
    let plan = plan();
    let path = temp_path("mismatch");
    run_sweep_with(&plan, &cfg_with(&path), &fake_exec).unwrap();

    // Different grid, same file: hard error, not silent mixing.
    let mut other = plan.clone();
    other.seeds.push(12345);
    let err = run_sweep_with(&other, &cfg_with(&path), &fake_exec).unwrap_err();
    assert!(matches!(err, SweepError::CheckpointMismatch { .. }), "{err}");

    // Same plan, different shard: also refused.
    let sharded = SweepConfig {
        shard: Some(Shard { index: 1, count: 2 }),
        ..cfg_with(&path)
    };
    let err = run_sweep_with(&plan, &sharded, &fake_exec).unwrap_err();
    assert!(matches!(err, SweepError::CheckpointMismatch { .. }), "{err}");

    // And the intact log still resumes fine afterwards.
    let ok = run_sweep_with(&plan, &cfg_with(&path), &fake_exec).unwrap();
    assert_eq!(ok.resumed, plan.run_count());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sharded_checkpoints_restore_only_their_own_points() {
    let plan = plan();
    let shard = Shard { index: 1, count: 2 };
    let path = temp_path("shard");
    let cfg = SweepConfig { shard: Some(shard), ..cfg_with(&path) };
    let first = run_sweep_with(&plan, &cfg, &fake_exec).unwrap();
    let reference = first.to_shard_json().to_string();
    assert!(first.points.iter().all(|p| shard.owns(p.index())));

    let resumed = run_sweep_with(
        &plan,
        &cfg,
        &|_, spec: &RunSpec| -> Result<RunOutcome, SweepError> {
            panic!("point {} must not re-execute", spec.label())
        },
    )
    .unwrap();
    assert_eq!(resumed.resumed, first.points.len());
    assert_eq!(resumed.to_shard_json().to_string(), reference);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn outcome_points_expose_the_restored_summaries() {
    // The CLI table is rebuilt from restored summaries; spot-check that
    // the exact f64 bit patterns survive the log.
    let plan = plan();
    let path = temp_path("summaries");
    let first = run_sweep_with(&plan, &cfg_with(&path), &fake_exec).unwrap();
    let resumed = run_sweep_with(
        &plan,
        &cfg_with(&path),
        &|_, _: &RunSpec| -> Result<RunOutcome, SweepError> { unreachable!("all restored") },
    )
    .unwrap();
    for (a, b) in first.points.iter().zip(resumed.points.iter()) {
        match (a, b) {
            (PointOutcome::Run(x), PointOutcome::Run(y)) => {
                assert_eq!(x.summary.cpi.to_bits(), y.summary.cpi.to_bits());
                assert_eq!(x.summary.mpki.to_bits(), y.summary.mpki.to_bits());
                assert_eq!(x.summary.l2_misses, y.summary.l2_misses);
                assert_eq!(x.summary.transactions, y.summary.transactions);
            }
            _ => panic!("outcome kind changed across resume"),
        }
    }
    let _ = std::fs::remove_file(&path);
}
