//! The deterministic parallel execution engine.
//!
//! Grid points are fully independent simulations — no shared mutable
//! state, seeds fixed at plan-load time — so parallelism is a pure
//! scheduling concern. Workers pull `(index, spec)` jobs from a shared
//! queue and park each result in its index slot; the merged report is
//! assembled in index order afterwards. The worker count therefore
//! affects wall-clock time only: `run_sweep(plan, 1)` and
//! `run_sweep(plan, 8)` produce byte-identical reports (a contract
//! enforced by `tests/sweep_identity.rs`).

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};

use csim_core::{run_report_json, SimReport, Simulation};
use csim_obs::json::Json;
use csim_obs::{version_string, RunManifest};
use csim_workload::OltpParams;

use crate::grid::RunSpec;
use crate::plan::{integration_short_name, SweepError, SweepPlan};

/// Schema tag written into every merged sweep report, bumped on breaking
/// layout changes so downstream readers can dispatch.
pub const SWEEP_REPORT_SCHEMA: &str = "csim-sweep-report/v1";

/// The result of one grid point.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The grid point that was run.
    pub spec: RunSpec,
    /// Its simulation counters.
    pub report: SimReport,
    /// Its full `csim-run-report/v1` document (no profile section, so
    /// the bytes are deterministic).
    pub doc: Json,
}

/// A completed sweep: the plan and one outcome per grid point, in grid
/// order.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The plan that was swept.
    pub plan: SweepPlan,
    /// One outcome per grid point, in [`SweepPlan::expand`] order.
    pub runs: Vec<RunOutcome>,
}

impl SweepOutcome {
    /// The merged `csim-sweep-report/v1` document. Deliberately echoes
    /// the plan but *not* the worker count: the report must be
    /// byte-identical whatever parallelism produced it.
    pub fn to_json(&self) -> Json {
        let plan = &self.plan;
        let strs = |it: Vec<String>| Json::Arr(it.into_iter().map(Json::Str).collect());
        let plan_doc = Json::obj([
            ("name", Json::str(&plan.name)),
            ("warm_refs_per_node", Json::UInt(plan.warm)),
            ("meas_refs_per_node", Json::UInt(plan.meas)),
            ("l2_dram", Json::Bool(plan.dram)),
            ("rac", Json::Bool(plan.rac)),
            ("replicate_instructions", Json::Bool(plan.replicate)),
            ("out_of_order", Json::Bool(plan.ooo)),
            (
                "integration",
                strs(plan
                    .integration
                    .iter()
                    .map(|&l| integration_short_name(l).to_string())
                    .collect()),
            ),
            ("l2", strs(plan.l2.iter().map(|s| s.label.clone()).collect())),
            ("nodes", Json::Arr(plan.nodes.iter().map(|&n| Json::UInt(n as u64)).collect())),
            ("cores", Json::Arr(plan.cores.iter().map(|&c| Json::UInt(c as u64)).collect())),
            ("seeds", Json::Arr(plan.seeds.iter().map(|&s| Json::UInt(s)).collect())),
            ("run_count", Json::UInt(self.runs.len() as u64)),
        ]);
        let runs = self
            .runs
            .iter()
            .map(|r| {
                Json::obj([
                    ("label", Json::str(r.spec.label())),
                    ("seed", Json::UInt(r.spec.seed)),
                    ("run", r.doc.clone()),
                ])
            })
            .collect();
        Json::obj([
            ("schema", Json::str(SWEEP_REPORT_SCHEMA)),
            ("plan", plan_doc),
            ("runs", Json::Arr(runs)),
        ])
    }
}

/// A poisoned sweep mutex only means another worker failed while holding
/// it; the protected data (an index queue / result slots) is still
/// consistent, so recover the guard instead of propagating a panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Executes one grid point: build the configuration, build the workload,
/// warm up, measure, and export the per-run report document.
fn execute(spec: &RunSpec) -> Result<RunOutcome, SweepError> {
    let cfg = spec.build_config()?;
    let params = OltpParams { seed: spec.seed, ..OltpParams::default() };
    let mut sim = Simulation::with_oltp(&cfg, params)
        .map_err(|e| SweepError::Run { label: spec.label(), message: e.to_string() })?;
    sim.warm_up(spec.warm);
    let report = sim.run(spec.meas);
    let manifest = RunManifest {
        tool: "csim-sweep".to_string(),
        version: version_string(env!("CARGO_PKG_VERSION")),
        config_summary: cfg.summary(),
        config: vec![
            ("label".to_string(), spec.label()),
            ("nodes".to_string(), spec.nodes.to_string()),
            ("cores_per_node".to_string(), spec.cores.to_string()),
            ("integration".to_string(), format!("{:?}", spec.integration)),
            ("l2_bytes".to_string(), spec.l2_bytes.to_string()),
            ("l2_assoc".to_string(), spec.l2_assoc.to_string()),
            ("l2_dram".to_string(), spec.dram.to_string()),
            ("rac".to_string(), spec.rac.to_string()),
            ("replicate_instructions".to_string(), spec.replicate.to_string()),
            ("out_of_order".to_string(), spec.ooo.to_string()),
            ("warm_refs_per_node".to_string(), spec.warm.to_string()),
            ("meas_refs_per_node".to_string(), spec.meas.to_string()),
        ],
        seeds: vec![("workload".to_string(), spec.seed)],
    };
    // `profile: None` keeps the per-run document wall-clock-free and
    // therefore byte-stable.
    let doc = run_report_json(&report, sim.observer(), &manifest, None);
    Ok(RunOutcome { spec: spec.clone(), report, doc })
}

/// Runs every grid point of the plan on `jobs` workers and merges the
/// outcomes in grid order.
///
/// `jobs == 1` executes serially on the calling thread (no pool, no
/// locking); `jobs > 1` uses `std::thread::scope` workers over a shared
/// job queue. Both paths return identical results — parallelism never
/// leaks into the output.
///
/// # Errors
///
/// [`SweepError::Run`] for the lowest-index grid point that failed;
/// remaining runs may or may not have executed.
pub fn run_sweep(plan: &SweepPlan, jobs: usize) -> Result<SweepOutcome, SweepError> {
    plan.validate()?;
    let specs = plan.expand();
    let results = if jobs <= 1 || specs.len() <= 1 {
        let mut results = Vec::with_capacity(specs.len());
        for spec in &specs {
            results.push(Some(execute(spec)));
        }
        results
    } else {
        let queue: Mutex<VecDeque<(usize, &RunSpec)>> =
            Mutex::new(specs.iter().enumerate().collect());
        let slots: Mutex<Vec<Option<Result<RunOutcome, SweepError>>>> =
            Mutex::new((0..specs.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(specs.len()) {
                scope.spawn(|| loop {
                    let job = lock(&queue).pop_front();
                    let Some((idx, spec)) = job else { break };
                    let outcome = execute(spec);
                    lock(&slots)[idx] = Some(outcome);
                });
            }
        });
        slots.into_inner().unwrap_or_else(PoisonError::into_inner)
    };
    let mut runs = Vec::with_capacity(specs.len());
    for (spec, slot) in specs.iter().zip(results) {
        let outcome = slot.ok_or_else(|| SweepError::Run {
            label: spec.label(),
            message: "worker exited without recording a result".to_string(),
        })??;
        runs.push(outcome);
    }
    Ok(SweepOutcome { plan: plan.clone(), runs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csim_config::IntegrationLevel;

    fn small_plan() -> SweepPlan {
        SweepPlan {
            name: "engine-test".to_string(),
            warm: 2_000,
            meas: 3_000,
            integration: vec![IntegrationLevel::Base, IntegrationLevel::L2Integrated],
            seeds: vec![42, 43],
            ..SweepPlan::default()
        }
    }

    #[test]
    fn serial_sweep_runs_every_grid_point_in_order() {
        let plan = small_plan();
        let out = run_sweep(&plan, 1).unwrap();
        assert_eq!(out.runs.len(), 4);
        let labels: Vec<String> = out.runs.iter().map(|r| r.spec.label()).collect();
        assert_eq!(
            labels,
            ["base/8M1w/1n1c/s0", "base/8M1w/1n1c/s1", "l2/2M8w/1n1c/s0", "l2/2M8w/1n1c/s1"]
        );
        for r in &out.runs {
            assert!(r.report.breakdown.instructions > 0);
        }
    }

    #[test]
    fn parallel_report_is_byte_identical_to_serial() {
        let plan = small_plan();
        let serial = run_sweep(&plan, 1).unwrap().to_json().to_string();
        let parallel = run_sweep(&plan, 4).unwrap().to_json().to_string();
        assert_eq!(serial, parallel);
        assert!(serial.contains("\"schema\":\"csim-sweep-report/v1\""));
        assert!(serial.contains("csim-run-report/v1"));
        assert!(!serial.contains("jobs"), "worker count must not leak into the report");
        csim_obs::json::validate(&serial).unwrap();
    }

    #[test]
    fn oversubscribed_pools_are_harmless() {
        let mut plan = small_plan();
        plan.integration = vec![IntegrationLevel::Base];
        plan.seeds = vec![7];
        let out = run_sweep(&plan, 64).unwrap();
        assert_eq!(out.runs.len(), 1);
    }

    #[test]
    fn failing_grid_points_surface_the_lowest_index_error() {
        let mut plan = small_plan();
        // A 64 MB on-chip SRAM L2 cannot build at the l2 level; the base
        // (off-chip) runs are fine.
        plan.l2 = vec![crate::plan::L2Spec::parse("64M8w").unwrap()];
        let err = run_sweep(&plan, 2).unwrap_err();
        assert!(matches!(err, SweepError::Run { .. }), "{err}");
        assert!(err.to_string().contains("l2/64M8w"), "{err}");
    }

    #[test]
    fn distinct_seeds_produce_distinct_reports() {
        let plan = small_plan();
        let out = run_sweep(&plan, 2).unwrap();
        assert_ne!(
            out.runs[0].report.breakdown.busy_cycles,
            out.runs[1].report.breakdown.busy_cycles,
            "different seeds should not produce identical cycle counts"
        );
    }
}
