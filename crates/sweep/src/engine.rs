//! The deterministic, crash-safe parallel execution engine.
//!
//! Grid points are fully independent simulations — no shared mutable
//! state, seeds fixed at plan-load time — so parallelism is a pure
//! scheduling concern. Workers pull `(index, spec)` jobs from a shared
//! queue and park each result in its index slot; the merged report is
//! assembled in index order afterwards. The worker count therefore
//! affects wall-clock time only: `run_sweep(plan, 1)` and
//! `run_sweep(plan, 8)` produce byte-identical reports (a contract
//! enforced by `tests/sweep_identity.rs`).
//!
//! On top of that PR-4 contract this engine layers the crash-safety
//! model (DESIGN.md §13):
//!
//! * **Failure isolation** — a point that panics or returns an error is
//!   caught at the worker boundary ([`std::panic::catch_unwind`]),
//!   retried with the deterministic capped backoff discipline shared
//!   with `csim-fault` ([`RetryPolicy`]), and, once the budget is
//!   exhausted, recorded as a structured [`PointFailure`] entry in the
//!   report instead of aborting the sweep.
//! * **Sharding** — a [`Shard`] restricts execution to a deterministic
//!   round-robin slice of the grid; [`SweepOutcome::to_shard_json`]
//!   emits a `csim-sweep-shard/v1` document that
//!   [`crate::merge_shard_docs`] reassembles into the byte-identical
//!   full report.
//! * **Checkpointing** — with [`SweepConfig::checkpoint`] set, every
//!   completed point is appended to a CRC-guarded log; a restarted
//!   sweep skips completed points and still emits a report
//!   byte-identical to an uninterrupted run (see [`crate::checkpoint`]).
//! * **Straggler watchdog** — with [`SweepConfig::time_points`] on,
//!   per-point wall times are collected through `csim-obs`'s
//!   [`PhaseProfile`] machinery and points slower than
//!   [`SweepConfig::straggler_mult`] × the median are flagged. All
//!   timing is opt-in: when off, no clock is ever read and the engine
//!   is fully deterministic.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};

use csim_core::{run_report_json, Simulation};
use csim_fault::RetryPolicy;
use csim_obs::json::Json;
use csim_obs::{version_string, PhaseProfile, RunManifest};
use csim_workload::OltpParams;

use crate::checkpoint::CheckpointLog;
use crate::grid::RunSpec;
use crate::plan::{integration_short_name, SweepError, SweepPlan};
use crate::shard::Shard;

/// Schema tag written into every merged sweep report, bumped on breaking
/// layout changes so downstream readers can dispatch.
pub const SWEEP_REPORT_SCHEMA: &str = "csim-sweep-report/v1";

/// Schema tag of a single shard's report (`--shard k/N --json-report`),
/// consumed by `csim --sweep-merge`.
pub const SWEEP_SHARD_SCHEMA: &str = "csim-sweep-shard/v1";

/// The paper-style headline numbers of one run, carried alongside the
/// full report document so the CLI table (and the checkpoint log) do
/// not need the whole `SimReport`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunSummary {
    /// Cycles per instruction.
    pub cpi: f64,
    /// L2 misses per thousand instructions.
    pub mpki: f64,
    /// Total L2 misses.
    pub l2_misses: u64,
    /// Completed transactions.
    pub transactions: u64,
}

/// The result of one successfully executed grid point.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Position of this point in [`SweepPlan::expand`] order.
    pub index: usize,
    /// The point's stable label (`RunSpec::label`).
    pub label: String,
    /// The workload seed the point ran with.
    pub seed: u64,
    /// Headline numbers for the CLI table.
    pub summary: RunSummary,
    /// Its full `csim-run-report/v1` document (no profile section, so
    /// the bytes are deterministic).
    pub doc: Json,
}

/// A grid point that kept failing after every retry: the structured
/// report entry that replaces its run document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointFailure {
    /// Position of this point in [`SweepPlan::expand`] order.
    pub index: usize,
    /// The point's stable label.
    pub label: String,
    /// The workload seed the point would have run with.
    pub seed: u64,
    /// Attempts made (the first try plus every retry).
    pub attempts: u32,
    /// The last attempt's error or panic message.
    pub error: String,
}

/// One grid point's outcome: a completed run or a structured failure.
#[derive(Clone, Debug)]
pub enum PointOutcome {
    /// The point simulated successfully.
    Run(RunOutcome),
    /// The point exhausted its retry budget.
    Failed(PointFailure),
}

impl PointOutcome {
    /// The point's grid index.
    pub fn index(&self) -> usize {
        match self {
            PointOutcome::Run(r) => r.index,
            PointOutcome::Failed(f) => f.index,
        }
    }

    /// The point's stable label.
    pub fn label(&self) -> &str {
        match self {
            PointOutcome::Run(r) => &r.label,
            PointOutcome::Failed(f) => &f.label,
        }
    }

    /// The point's workload seed.
    pub fn seed(&self) -> u64 {
        match self {
            PointOutcome::Run(r) => r.seed,
            PointOutcome::Failed(f) => f.seed,
        }
    }

    /// The run outcome, if the point completed.
    pub fn as_run(&self) -> Option<&RunOutcome> {
        match self {
            PointOutcome::Run(r) => Some(r),
            PointOutcome::Failed(_) => None,
        }
    }

    /// The failure record, if the point failed.
    pub fn failure(&self) -> Option<&PointFailure> {
        match self {
            PointOutcome::Run(_) => None,
            PointOutcome::Failed(f) => Some(f),
        }
    }

    /// The report entry for this point. `with_index` adds the grid
    /// index (shard documents and checkpoint records need it; the
    /// merged report keys on array position instead).
    pub(crate) fn entry_json(&self, with_index: bool) -> Json {
        let mut entry = Json::Obj(Vec::new());
        if with_index {
            entry.push("index", Json::UInt(self.index() as u64));
        }
        entry.push("label", Json::str(self.label()));
        entry.push("seed", Json::UInt(self.seed()));
        match self {
            PointOutcome::Run(r) => entry.push("run", r.doc.clone()),
            PointOutcome::Failed(f) => entry.push(
                "failed",
                Json::obj([
                    ("attempts", Json::UInt(u64::from(f.attempts))),
                    ("error", Json::str(&f.error)),
                ]),
            ),
        }
        entry
    }
}

/// How a sweep executes: worker count, shard slice, checkpoint log,
/// retry discipline, and the opt-in wall-clock instrumentation.
/// [`SweepConfig::default`] reproduces the plain `run_sweep(plan, 1)`
/// behavior: one worker, whole grid, no checkpoint, no clocks.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Worker threads (>= 1). Never affects report bytes.
    pub jobs: usize,
    /// Restrict execution to one round-robin slice of the grid.
    pub shard: Option<Shard>,
    /// Append each completed point to this CRC-guarded log and skip
    /// points the log already records.
    pub checkpoint: Option<String>,
    /// Per-point retry discipline (shared with `csim-fault`): a failing
    /// point is retried `max_retries` times with capped exponential
    /// backoff, `RetryPolicy::backoff(attempt)` read in milliseconds.
    pub retry: RetryPolicy,
    /// Measure per-point wall time through [`PhaseProfile`]. Off by
    /// default so the engine never reads a clock.
    pub time_points: bool,
    /// Flag executed points slower than this multiple of the median
    /// point wall time (requires [`SweepConfig::time_points`]).
    pub straggler_mult: Option<f64>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            jobs: 1,
            shard: None,
            checkpoint: None,
            retry: default_retry_policy(),
            time_points: false,
            straggler_mult: None,
        }
    }
}

/// The sweep retry discipline: the same capped-exponential-backoff
/// shape `csim-fault` applies to NACKed directory transactions, scaled
/// for host-level transients (milliseconds, small budget). Points are
/// deterministic, so a persistent failure recurs on every attempt and
/// the budget exists to ride out transient host trouble, not to make
/// broken configurations pass.
fn default_retry_policy() -> RetryPolicy {
    RetryPolicy { max_retries: 2, backoff_base: 10, exponential: true, backoff_cap: 1000 }
}

/// One executed point's wall-clock cost (only collected when
/// [`SweepConfig::time_points`] is set).
#[derive(Clone, Debug)]
pub struct PointTiming {
    /// The point's grid index.
    pub index: usize,
    /// The point's stable label.
    pub label: String,
    /// Wall milliseconds the point took (including retries).
    pub millis: f64,
    /// Simulated references per wall millisecond — equivalently
    /// thousands of refs per second — for spotting slow configurations.
    pub krefs_per_sec: f64,
    /// Wall milliseconds between the sweep's start and this point's
    /// start — the span offset for trace-event timeline export.
    pub start_millis: f64,
    /// Index of the worker thread that executed the point (a trace
    /// timeline track id; scheduling detail, never in reports).
    pub worker: usize,
}

/// Raw wall measurements a worker parks alongside a point outcome
/// (assembled into [`PointTiming`] in grid order afterwards).
#[derive(Clone, Copy, Debug)]
struct PointWall {
    millis: f64,
    start_millis: f64,
    worker: usize,
}

/// Wall-clock statistics of the executed points, with stragglers
/// flagged against the median.
#[derive(Clone, Debug)]
pub struct SweepTiming {
    /// Executed points in grid order (resumed points have no timing).
    pub points: Vec<PointTiming>,
    /// Median point wall milliseconds.
    pub median_millis: f64,
    /// Grid indices of points at or above the straggler threshold.
    pub stragglers: Vec<usize>,
}

impl SweepTiming {
    /// The timing block as a `PhaseProfile` — one phase per point, in
    /// grid order — so sweep reports reuse the run-report profile
    /// machinery (and inherit its "nondeterministic by nature, off by
    /// default" contract).
    pub fn to_profile(&self) -> PhaseProfile {
        let mut profile = PhaseProfile::new();
        for p in &self.points {
            profile.push(&p.label, p.millis);
        }
        profile
    }
}

/// A completed sweep: the plan and one outcome per selected grid point,
/// in grid order.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The plan that was swept.
    pub plan: SweepPlan,
    /// The slice that executed (`None` = the whole grid).
    pub shard: Option<Shard>,
    /// One outcome per selected grid point, in [`SweepPlan::expand`]
    /// order.
    pub points: Vec<PointOutcome>,
    /// Points restored from the checkpoint log instead of re-executed.
    pub resumed: usize,
    /// Recoverable problems encountered on the way (checkpoint damage
    /// that was detected and skipped, checkpoint writes that failed).
    /// The sweep's results are complete despite them.
    pub warnings: Vec<SweepError>,
    /// Wall-clock statistics (only with [`SweepConfig::time_points`]).
    pub timing: Option<SweepTiming>,
}

/// The deterministic plan echo shared by the merged report, the shard
/// report, and the checkpoint-binding fingerprint.
pub(crate) fn plan_json(plan: &SweepPlan) -> Json {
    let strs = |it: Vec<String>| Json::Arr(it.into_iter().map(Json::Str).collect());
    Json::obj([
        ("name", Json::str(&plan.name)),
        ("warm_refs_per_node", Json::UInt(plan.warm)),
        ("meas_refs_per_node", Json::UInt(plan.meas)),
        ("l2_dram", Json::Bool(plan.dram)),
        ("rac", Json::Bool(plan.rac)),
        ("replicate_instructions", Json::Bool(plan.replicate)),
        ("out_of_order", Json::Bool(plan.ooo)),
        (
            "integration",
            strs(plan
                .integration
                .iter()
                .map(|&l| integration_short_name(l).to_string())
                .collect()),
        ),
        ("l2", strs(plan.l2.iter().map(|s| s.label.clone()).collect())),
        ("nodes", Json::Arr(plan.nodes.iter().map(|&n| Json::UInt(n as u64)).collect())),
        ("cores", Json::Arr(plan.cores.iter().map(|&c| Json::UInt(c as u64)).collect())),
        ("seeds", Json::Arr(plan.seeds.iter().map(|&s| Json::UInt(s)).collect())),
        ("run_count", Json::UInt(plan.run_count() as u64)),
    ])
}

/// FNV-1a over the canonical plan echo: a cheap deterministic
/// fingerprint binding checkpoint logs and shard reports to the exact
/// grid they were produced from.
pub fn plan_fingerprint(plan: &SweepPlan) -> String {
    let bytes = plan_json(plan).to_string();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

impl SweepOutcome {
    /// The merged `csim-sweep-report/v1` document. Deliberately echoes
    /// the plan but *not* the worker count, checkpoint path, or wall
    /// clock: the report must be byte-identical whatever parallelism,
    /// interruptions, or resumptions produced it.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(SWEEP_REPORT_SCHEMA)),
            ("plan", plan_json(&self.plan)),
            (
                "runs",
                Json::Arr(self.points.iter().map(|p| p.entry_json(false)).collect()),
            ),
        ])
    }

    /// The `csim-sweep-shard/v1` document for this shard's slice:
    /// the full-plan echo and fingerprint (so `--sweep-merge` can
    /// refuse mismatched shards) plus this shard's point entries,
    /// each carrying its grid index.
    pub fn to_shard_json(&self) -> Json {
        let shard = self.shard.unwrap_or(Shard { index: 0, count: 1 });
        Json::obj([
            ("schema", Json::str(SWEEP_SHARD_SCHEMA)),
            ("plan_fingerprint", Json::str(plan_fingerprint(&self.plan))),
            (
                "shard",
                Json::obj([
                    ("index", Json::UInt(u64::from(shard.index))),
                    ("count", Json::UInt(u64::from(shard.count))),
                ]),
            ),
            ("plan", plan_json(&self.plan)),
            (
                "points",
                Json::Arr(self.points.iter().map(|p| p.entry_json(true)).collect()),
            ),
        ])
    }

    /// The failed points, in grid order.
    pub fn failures(&self) -> impl Iterator<Item = &PointFailure> {
        self.points.iter().filter_map(PointOutcome::failure)
    }
}

/// A poisoned sweep mutex only means another worker failed while holding
/// it; the protected data (an index queue / result slots / a checkpoint
/// writer) is still consistent, so recover the guard instead of
/// propagating a panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Executes one grid point: build the configuration, build the workload,
/// warm up, measure, and export the per-run report document.
fn execute(index: usize, spec: &RunSpec) -> Result<RunOutcome, SweepError> {
    let cfg = spec.build_config()?;
    let params = OltpParams { seed: spec.seed, ..OltpParams::default() };
    let mut sim = Simulation::with_oltp(&cfg, params)
        .map_err(|e| SweepError::Run { label: spec.label(), message: e.to_string() })?;
    sim.warm_up(spec.warm);
    let report = sim.run(spec.meas);
    let manifest = RunManifest {
        tool: "csim-sweep".to_string(),
        version: version_string(env!("CARGO_PKG_VERSION")),
        config_summary: cfg.summary(),
        config: vec![
            ("label".to_string(), spec.label()),
            ("nodes".to_string(), spec.nodes.to_string()),
            ("cores_per_node".to_string(), spec.cores.to_string()),
            ("integration".to_string(), format!("{:?}", spec.integration)),
            ("l2_bytes".to_string(), spec.l2_bytes.to_string()),
            ("l2_assoc".to_string(), spec.l2_assoc.to_string()),
            ("l2_dram".to_string(), spec.dram.to_string()),
            ("rac".to_string(), spec.rac.to_string()),
            ("replicate_instructions".to_string(), spec.replicate.to_string()),
            ("out_of_order".to_string(), spec.ooo.to_string()),
            ("warm_refs_per_node".to_string(), spec.warm.to_string()),
            ("meas_refs_per_node".to_string(), spec.meas.to_string()),
        ],
        seeds: vec![("workload".to_string(), spec.seed)],
    };
    // `profile: None` keeps the per-run document wall-clock-free and
    // therefore byte-stable.
    let doc = run_report_json(&report, sim.observer(), &manifest, None);
    let summary = RunSummary {
        cpi: report.breakdown.cpi(),
        mpki: report.mpki(),
        l2_misses: report.misses.total(),
        transactions: report.transactions,
    };
    Ok(RunOutcome { index, label: spec.label(), seed: spec.seed, summary, doc })
}

/// The worker function a sweep drives: everything needed to produce one
/// grid point's [`RunOutcome`]. `run_sweep_with` accepts any executor so
/// tests can inject failing or panicking points and so synthetic
/// workloads can reuse the scheduling/checkpoint/shard machinery.
pub type PointExecutor<'a> =
    dyn Fn(usize, &RunSpec) -> Result<RunOutcome, SweepError> + Sync + 'a;

/// Renders a caught panic payload into the structured failure entry's
/// message. `panic!` with a string (the overwhelmingly common case)
/// surfaces verbatim; anything else is named as such.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Runs one point to a [`PointOutcome`], never panicking and never
/// returning an error: panics and `Err`s are caught at this boundary,
/// retried per `retry` (backoff read as milliseconds), and finally
/// recorded as a structured [`PointFailure`].
fn run_point(
    exec: &PointExecutor<'_>,
    index: usize,
    spec: &RunSpec,
    retry: &RetryPolicy,
) -> PointOutcome {
    let mut attempts = 0u32;
    loop {
        // analyze: unwind — point isolation: the executor builds the point's outcome in locals, so a panic can tear only per-point scratch; shared state (checkpoint log, merge accumulators) is written by the coordinator after this boundary returns
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| exec(index, spec)));
        let error = match caught {
            Ok(Ok(outcome)) => return PointOutcome::Run(outcome),
            Ok(Err(e)) => e.to_string(),
            Err(payload) => panic_message(payload.as_ref()),
        };
        attempts += 1;
        if attempts > retry.max_retries {
            return PointOutcome::Failed(PointFailure {
                index,
                label: spec.label(),
                seed: spec.seed,
                attempts,
                error,
            });
        }
        // Same backoff discipline as csim-fault's NACK path, read in
        // milliseconds; the schedule is deterministic even though the
        // sleep itself obviously is not (it never reaches the report).
        let backoff = retry.backoff(attempts - 1);
        if backoff > 0 {
            std::thread::sleep(std::time::Duration::from_millis(backoff));
        }
    }
}

/// Runs every grid point of the plan on `jobs` workers and merges the
/// outcomes in grid order (the [`SweepConfig::default`] behavior of
/// [`run_sweep_cfg`]).
///
/// # Errors
///
/// Plan validation errors only. Point failures no longer abort the
/// sweep; they surface as [`PointFailure`] entries in the outcome.
pub fn run_sweep(plan: &SweepPlan, jobs: usize) -> Result<SweepOutcome, SweepError> {
    run_sweep_cfg(plan, &SweepConfig { jobs, ..SweepConfig::default() })
}

/// Runs a sweep with the full crash-safety configuration: sharding,
/// checkpointing, retry policy, and the straggler watchdog.
///
/// # Errors
///
/// Plan/config validation errors, and hard checkpoint errors (an
/// unreadable log file, or a log recorded by a different plan or
/// shard). Recoverable checkpoint damage and point failures do not
/// abort the sweep — see [`SweepOutcome::warnings`] and
/// [`SweepOutcome::failures`].
pub fn run_sweep_cfg(plan: &SweepPlan, cfg: &SweepConfig) -> Result<SweepOutcome, SweepError> {
    run_sweep_with(plan, cfg, &execute)
}

/// [`run_sweep_cfg`] with an injected point executor (the test seam for
/// panic isolation and checkpoint property tests).
///
/// # Errors
///
/// As [`run_sweep_cfg`].
// analyze: total — selection pairs grid indices with specs from the plan's own enumeration, so every idx is < specs.len(), and restored/slots are allocated with specs.len() slots
pub fn run_sweep_with(
    plan: &SweepPlan,
    cfg: &SweepConfig,
    exec: &PointExecutor<'_>,
) -> Result<SweepOutcome, SweepError> {
    plan.validate()?;
    if cfg.jobs == 0 {
        return Err(SweepError::Invalid {
            field: "config.jobs",
            message: "at least one worker is required".to_string(),
        });
    }
    if let Some(shard) = cfg.shard {
        if shard.count == 0 || shard.index >= shard.count {
            return Err(SweepError::Invalid {
                field: "config.shard",
                message: format!("shard {shard} is out of range"),
            });
        }
    }
    if cfg.straggler_mult.is_some() && !cfg.time_points {
        return Err(SweepError::Invalid {
            field: "config.straggler_mult",
            message: "the straggler watchdog needs time_points enabled".to_string(),
        });
    }

    let specs = plan.expand();
    let selection: Vec<(usize, &RunSpec)> = specs
        .iter()
        .enumerate()
        .filter(|(i, _)| cfg.shard.is_none_or(|s| s.owns(*i)))
        .collect();

    // Resume: load (and compact) the checkpoint log, keeping the writer
    // open for the points still to run.
    let mut warnings = Vec::new();
    let mut restored: Vec<Option<PointOutcome>> = (0..specs.len()).map(|_| None).collect();
    let log = match &cfg.checkpoint {
        None => None,
        Some(path) => {
            let loaded = CheckpointLog::open(path, plan, cfg.shard)?;
            warnings.extend(loaded.damage);
            for point in loaded.points {
                let idx = point.index();
                // Only trust records for points this shard selects; the
                // header binds shard identity, so anything else is a
                // stale artifact of earlier damage.
                if selection.iter().any(|(i, _)| *i == idx) {
                    restored[idx] = Some(point);
                }
            }
            Some(Mutex::new(loaded.log))
        }
    };
    let resumed = restored.iter().filter(|p| p.is_some()).count();

    let to_run: Vec<(usize, &RunSpec)> =
        selection.iter().copied().filter(|(i, _)| restored[*i].is_none()).collect();

    // Execute. Results (and optional wall times) park in index slots so
    // scheduling order can never reach the report.
    type Slot = Option<(PointOutcome, Option<PointWall>)>;
    let slots: Mutex<Vec<Slot>> = Mutex::new((0..specs.len()).map(|_| None).collect());
    let checkpoint_warnings: Mutex<Vec<SweepError>> = Mutex::new(Vec::new());
    // Epoch for per-point start offsets (trace-event timelines). Only
    // read when timing is opted into; like the per-point durations the
    // offsets stay out of the deterministic report.
    // lint: allow(no-wallclock) — start offsets feed the opt-in trace-event timeline, never the byte-stable report
    // lint: allow(taint-export) — quarantined in SweepTiming, which deterministic exports exclude by contract
    let epoch = cfg.time_points.then(std::time::Instant::now);
    if !to_run.is_empty() {
        let queue: Mutex<VecDeque<(usize, &RunSpec)>> =
            Mutex::new(to_run.iter().copied().collect());
        let workers = cfg.jobs.min(to_run.len());
        // The closures move only `w` (and Copy references); the shared
        // structures are captured through these explicit borrows.
        let (queue, slots, log, checkpoint_warnings) =
            (&queue, &slots, &log, &checkpoint_warnings);
        std::thread::scope(|scope| {
            for w in 0..workers {
                scope.spawn(move || loop {
                    let job = lock(queue).pop_front();
                    let Some((idx, spec)) = job else { break };
                    let (outcome, wall) = if let Some(epoch) = epoch {
                        let start_millis = epoch.elapsed().as_secs_f64() * 1000.0;
                        let mut profile = PhaseProfile::new();
                        let outcome =
                            profile.time("point", || run_point(exec, idx, spec, &cfg.retry));
                        let wall =
                            PointWall { millis: profile.total_millis(), start_millis, worker: w };
                        (outcome, Some(wall))
                    } else {
                        (run_point(exec, idx, spec, &cfg.retry), None)
                    };
                    if let Some(log) = &log {
                        let mut guard = lock(log);
                        if let Err(e) = guard.append(&outcome) {
                            // A failing checkpoint disk must not kill the
                            // sweep: disable further writes, surface the
                            // error once, and keep computing.
                            guard.disable();
                            lock(checkpoint_warnings).push(e);
                        }
                    }
                    lock(slots)[idx] = Some((outcome, wall));
                });
            }
        });
    }
    warnings.extend(lock(&checkpoint_warnings).drain(..));

    // Assemble in grid order from restored and freshly executed slots.
    let mut slots = slots.into_inner().unwrap_or_else(PoisonError::into_inner);
    let mut points = Vec::with_capacity(selection.len());
    let mut timings: Vec<PointTiming> = Vec::new();
    for &(idx, spec) in &selection {
        if let Some(point) = restored[idx].take() {
            points.push(point);
            continue;
        }
        let (outcome, wall) = slots[idx].take().ok_or_else(|| SweepError::Run {
            label: spec.label(),
            message: "worker exited without recording a result".to_string(),
        })?;
        if let Some(wall) = wall {
            let total_refs = (spec.warm + spec.meas) * spec.nodes as u64;
            let millis = wall.millis;
            timings.push(PointTiming {
                index: idx,
                label: outcome.label().to_string(),
                millis,
                // refs per wall millisecond == thousands of refs/sec.
                krefs_per_sec: if millis > 0.0 { total_refs as f64 / millis } else { 0.0 },
                start_millis: wall.start_millis,
                worker: wall.worker,
            });
        }
        points.push(outcome);
    }

    let timing = cfg.time_points.then(|| {
        let mut sorted: Vec<f64> = timings.iter().map(|t| t.millis).collect();
        sorted.sort_by(f64::total_cmp);
        let median_millis = if sorted.is_empty() { 0.0 } else { sorted[sorted.len() / 2] };
        let stragglers = match cfg.straggler_mult {
            Some(mult) if median_millis > 0.0 => timings
                .iter()
                .filter(|t| t.millis >= mult * median_millis)
                .map(|t| t.index)
                .collect(),
            _ => Vec::new(),
        };
        SweepTiming { points: timings, median_millis, stragglers }
    });

    Ok(SweepOutcome { plan: plan.clone(), shard: cfg.shard, points, resumed, warnings, timing })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csim_config::IntegrationLevel;

    fn small_plan() -> SweepPlan {
        SweepPlan {
            name: "engine-test".to_string(),
            warm: 2_000,
            meas: 5_000,
            integration: vec![IntegrationLevel::Base, IntegrationLevel::L2Integrated],
            seeds: vec![42, 43],
            ..SweepPlan::default()
        }
    }

    /// A retry policy that never sleeps, for failure-path tests.
    fn instant_retry(max_retries: u32) -> RetryPolicy {
        RetryPolicy { max_retries, backoff_base: 0, exponential: false, backoff_cap: 0 }
    }

    #[test]
    fn serial_sweep_runs_every_grid_point_in_order() {
        let plan = small_plan();
        let out = run_sweep(&plan, 1).unwrap();
        assert_eq!(out.points.len(), 4);
        let labels: Vec<&str> = out.points.iter().map(PointOutcome::label).collect();
        assert_eq!(
            labels,
            ["base/8M1w/1n1c/s0", "base/8M1w/1n1c/s1", "l2/2M8w/1n1c/s0", "l2/2M8w/1n1c/s1"]
        );
        assert_eq!(out.resumed, 0);
        assert!(out.warnings.is_empty());
        assert!(out.timing.is_none(), "no clock reads unless asked");
        for p in &out.points {
            // Runs this short complete no whole transaction; the other
            // summary channels must still be live.
            let r = p.as_run().expect("all points succeed");
            assert!(r.summary.cpi > 0.0);
            assert!(r.summary.l2_misses > 0);
        }
    }

    #[test]
    fn parallel_report_is_byte_identical_to_serial() {
        let plan = small_plan();
        let serial = run_sweep(&plan, 1).unwrap().to_json().to_string();
        let parallel = run_sweep(&plan, 4).unwrap().to_json().to_string();
        assert_eq!(serial, parallel);
        assert!(serial.contains("\"schema\":\"csim-sweep-report/v1\""));
        assert!(serial.contains("csim-run-report/v1"));
        assert!(!serial.contains("jobs"), "worker count must not leak into the report");
        csim_obs::json::validate(&serial).unwrap();
    }

    #[test]
    fn oversubscribed_pools_are_harmless() {
        let mut plan = small_plan();
        plan.integration = vec![IntegrationLevel::Base];
        plan.seeds = vec![7];
        let out = run_sweep(&plan, 64).unwrap();
        assert_eq!(out.points.len(), 1);
    }

    #[test]
    fn failing_grid_points_become_structured_entries_not_aborts() {
        let mut plan = small_plan();
        // A 64 MB on-chip SRAM L2 cannot build at the l2 level; the base
        // (off-chip) runs are fine.
        plan.l2 = vec![crate::plan::L2Spec::parse("64M8w").unwrap()];
        let cfg = SweepConfig { jobs: 2, retry: instant_retry(1), ..SweepConfig::default() };
        let out = run_sweep_cfg(&plan, &cfg).unwrap();
        assert_eq!(out.points.len(), 4);
        let failures: Vec<&PointFailure> = out.failures().collect();
        assert_eq!(failures.len(), 2, "both l2-level points fail to build");
        assert!(failures[0].label.starts_with("l2/64M8w"), "{}", failures[0].label);
        assert_eq!(failures[0].attempts, 2, "one try plus one retry");
        assert!(failures[0].error.contains("l2"), "{}", failures[0].error);
        // The base points still completed.
        assert_eq!(out.points.iter().filter(|p| p.as_run().is_some()).count(), 2);
        // And the failure is a structured report entry.
        let report = out.to_json().to_string();
        assert!(report.contains("\"failed\":{\"attempts\":2"), "{report}");
        csim_obs::json::validate(&report).unwrap();
    }

    #[test]
    fn panicking_points_are_isolated_and_recorded() {
        let plan = small_plan();
        let poison = "base/8M1w/1n1c/s1";
        let exec = |index: usize, spec: &RunSpec| {
            if spec.label() == poison {
                panic!("deliberate test panic");
            }
            execute(index, spec)
        };
        let cfg = SweepConfig { jobs: 3, retry: instant_retry(2), ..SweepConfig::default() };
        let out = run_sweep_with(&plan, &cfg, &exec).unwrap();
        assert_eq!(out.points.len(), 4);
        let failure = out.failures().next().expect("the poisoned point fails");
        assert_eq!(failure.label, poison);
        assert_eq!(failure.attempts, 3);
        assert_eq!(failure.error, "panicked: deliberate test panic");
        assert_eq!(out.points.iter().filter(|p| p.as_run().is_some()).count(), 3);
    }

    #[test]
    fn retries_can_ride_out_transient_failures() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let plan = small_plan();
        let flaky_attempts = AtomicU32::new(0);
        let exec = |index: usize, spec: &RunSpec| {
            if spec.label() == "l2/2M8w/1n1c/s0"
                && flaky_attempts.fetch_add(1, Ordering::SeqCst) < 2
            {
                return Err(SweepError::Run {
                    label: spec.label(),
                    message: "transient".to_string(),
                });
            }
            execute(index, spec)
        };
        let cfg = SweepConfig { retry: instant_retry(2), ..SweepConfig::default() };
        let out = run_sweep_with(&plan, &cfg, &exec).unwrap();
        assert_eq!(out.failures().count(), 0, "two retries absorb two transient failures");
        assert_eq!(flaky_attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn sharded_runs_partition_the_grid_and_merge_back() {
        let plan = small_plan();
        let full = run_sweep(&plan, 2).unwrap();
        let mut seen: Vec<usize> = Vec::new();
        for index in 0..3u32 {
            let cfg = SweepConfig {
                shard: Some(Shard { index, count: 3 }),
                jobs: 2,
                ..SweepConfig::default()
            };
            let out = run_sweep_cfg(&plan, &cfg).unwrap();
            for p in &out.points {
                assert_eq!(p.index() % 3, index as usize);
                seen.push(p.index());
            }
            let doc = out.to_shard_json().to_string();
            assert!(doc.contains("\"schema\":\"csim-sweep-shard/v1\""));
            csim_obs::json::validate(&doc).unwrap();
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..full.points.len()).collect::<Vec<_>>());
    }

    #[test]
    fn watchdog_timing_is_collected_and_median_is_sane() {
        let mut plan = small_plan();
        plan.integration = vec![IntegrationLevel::Base];
        let cfg = SweepConfig {
            time_points: true,
            straggler_mult: Some(1_000_000.0),
            ..SweepConfig::default()
        };
        let out = run_sweep_cfg(&plan, &cfg).unwrap();
        let timing = out.timing.as_ref().expect("timing requested");
        assert_eq!(timing.points.len(), 2);
        assert!(timing.median_millis > 0.0);
        assert!(timing.stragglers.is_empty(), "nothing is a million-fold straggler");
        assert_eq!(timing.to_profile().phases().len(), 2);
        // Timing never reaches the deterministic report.
        let report = out.to_json().to_string();
        assert!(!report.contains("millis"), "wall clock leaked into the report");
    }

    #[test]
    fn straggler_mult_without_timing_is_rejected() {
        let cfg = SweepConfig { straggler_mult: Some(2.0), ..SweepConfig::default() };
        let err = run_sweep_cfg(&small_plan(), &cfg).unwrap_err();
        assert!(matches!(err, SweepError::Invalid { field: "config.straggler_mult", .. }), "{err}");
    }

    #[test]
    fn zero_jobs_and_bad_shards_are_rejected() {
        let cfg = SweepConfig { jobs: 0, ..SweepConfig::default() };
        assert!(run_sweep_cfg(&small_plan(), &cfg).is_err());
        let cfg = SweepConfig {
            shard: Some(Shard { index: 5, count: 2 }),
            ..SweepConfig::default()
        };
        assert!(run_sweep_cfg(&small_plan(), &cfg).is_err());
    }

    #[test]
    fn distinct_seeds_produce_distinct_reports() {
        let plan = small_plan();
        let out = run_sweep(&plan, 2).unwrap();
        let runs: Vec<&RunOutcome> =
            out.points.iter().filter_map(PointOutcome::as_run).collect();
        assert_ne!(
            runs[0].doc.to_string(),
            runs[1].doc.to_string(),
            "different seeds should not produce identical reports"
        );
    }

    #[test]
    fn plan_fingerprint_tracks_the_grid() {
        let a = plan_fingerprint(&small_plan());
        assert_eq!(a, plan_fingerprint(&small_plan()));
        let mut other = small_plan();
        other.seeds.push(99);
        assert_ne!(a, plan_fingerprint(&other));
        assert_eq!(a.len(), 16);
    }
}
